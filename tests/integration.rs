//! Workspace-level integration tests: the full stack (trace generation →
//! scheduling → power policies → metrics) exercised end-to-end through
//! the public facade, asserting the paper's headline orderings.

use perq::core::{baselines, train_node_model, PerqConfig, PerqPolicy};
use perq::prelude::*;
use perq::sim::JobOutcome;

fn eval(
    system: &SystemModel,
    f: f64,
    hours: f64,
    seed: u64,
    policy: &mut dyn PowerPolicy,
) -> SimResult {
    let config = ClusterConfig::for_system(system, f, hours * 3600.0);
    let jobs = TraceGenerator::new(system.clone(), seed)
        .generate_saturating(config.nodes, config.duration_s);
    Cluster::new(config, jobs, seed).run(policy)
}

#[test]
fn headline_ordering_holds_on_tardis() {
    // The paper's central claim, on the small system so it runs in test
    // time: PERQ throughput ≥ FOP throughput at f = 2, with PERQ's mean
    // degradation well below SJS's.
    let system = SystemModel::tardis();
    let seed = 1234;
    let fop = eval(&system, 2.0, 3.0, seed, &mut FairPolicy::new());
    let mut perq = PerqPolicy::new(PerqConfig::default());
    let perq_res = eval(&system, 2.0, 3.0, seed, &mut perq);
    let sjs = eval(&system, 2.0, 3.0, seed, &mut baselines::sjs());

    assert!(
        perq_res.throughput() >= fop.throughput(),
        "PERQ {} < FOP {}",
        perq_res.throughput(),
        fop.throughput()
    );
    let perq_fair = compare_fairness(&perq_res, &fop);
    let sjs_fair = compare_fairness(&sjs, &fop);
    assert!(
        perq_fair.mean_degradation_pct < sjs_fair.mean_degradation_pct,
        "PERQ deg {} !< SJS deg {}",
        perq_fair.mean_degradation_pct,
        sjs_fair.mean_degradation_pct
    );
    assert!(
        perq_fair.mean_degradation_pct < 15.0,
        "PERQ mean degradation {}",
        perq_fair.mean_degradation_pct
    );
}

#[test]
fn throughput_grows_with_overprovisioning_under_perq() {
    let system = SystemModel::tardis();
    let seed = 77;
    let model = train_node_model(7).0;
    let mut last = 0usize;
    for f in [1.0, 1.5, 2.0] {
        let mut perq = PerqPolicy::with_model(model.clone(), PerqConfig::default());
        let result = eval(&system, f, 2.0, seed, &mut perq);
        assert!(
            result.throughput() + 2 >= last,
            "throughput fell from {last} to {} at f={f}",
            result.throughput()
        );
        last = result.throughput().max(last);
    }
}

#[test]
fn fop_never_violates_and_all_jobs_accounted() {
    let system = SystemModel::tardis();
    let jobs = TraceGenerator::new(system.clone(), 5).generate(300);
    let n_jobs = jobs.len();
    let config = ClusterConfig::for_system(&system, 1.8, 2.0 * 3600.0);
    let mut cluster = Cluster::new(config, jobs, 5);
    let result = cluster.run(&mut FairPolicy::new());
    assert_eq!(result.budget_violations, 0);
    // Every record is completed, crashed, or unfinished; completed +
    // running + queued = trace size.
    let completed = result.throughput();
    let unfinished = result
        .records
        .iter()
        .filter(|r| r.outcome == JobOutcome::Unfinished)
        .count();
    assert!(completed + unfinished <= n_jobs);
    for rec in result.completed() {
        assert!(rec.runtime_s() > 0.0);
        assert!(rec.slowdown() >= 0.99, "job faster than TDP?");
    }
}

#[test]
fn oracle_policy_uses_oracle_and_perq_does_not_need_it() {
    // SRN reads remaining_node_hours; PERQ must produce identical output
    // whether or not the oracle field is perturbed — guaranteeing it
    // never reads future knowledge.
    use perq::sim::{JobView, PolicyContext, PowerPolicy as _};
    let model = train_node_model(3).0;
    let mk_jobs = |oracle_scale: f64| -> Vec<JobView> {
        (0..4)
            .map(|i| JobView {
                id: i,
                size: 2,
                elapsed_s: 100.0,
                measured_ips: Some(2.0e9 + i as f64 * 1.0e8),
                current_cap_w: 150.0,
                measured_power_w: Some(120.0),
                remaining_node_hours: (i as f64 + 1.0) * oracle_scale,
                is_new: false,
            })
            .collect()
    };
    fn ctx<'a>(jobs: &'a [JobView]) -> PolicyContext<'a> {
        PolicyContext {
            time_s: 0.0,
            interval_s: 10.0,
            busy_budget_w: 8.0 * 200.0,
            cap_min_w: 90.0,
            cap_max_w: 290.0,
            total_nodes: 16,
            wp_nodes: 8,
            queue_depth: 0,
            violation_s: 0.0,
            jobs,
        }
    }

    // PERQ: identical decisions regardless of the oracle values.
    let jobs_a = mk_jobs(1.0);
    let jobs_b = mk_jobs(100.0);
    let mut perq_a = PerqPolicy::with_model(model.clone(), PerqConfig::default());
    let mut perq_b = PerqPolicy::with_model(model.clone(), PerqConfig::default());
    let out_a = perq_a.assign(&ctx(&jobs_a));
    let out_b = perq_b.assign(&ctx(&jobs_b));
    for (a, b) in out_a.iter().zip(out_b.iter()) {
        assert!((a.cap_w - b.cap_w).abs() < 1e-9, "PERQ read the oracle!");
    }

    // SRN: different priorities when the oracle changes order.
    let mut jobs_c = mk_jobs(1.0);
    jobs_c[0].remaining_node_hours = 50.0; // job 0 now farthest from done
    let mut srn = baselines::srn();
    let out_c = srn.assign(&ctx(&jobs_c));
    let out_d = srn.assign(&ctx(&mk_jobs(1.0)));
    assert!(
        (out_c[0].cap_w - out_d[0].cap_w).abs() > 1.0,
        "SRN should react to the oracle"
    );
}

#[test]
fn crash_and_dropout_do_not_wedge_perq() {
    let system = SystemModel::tardis();
    let mut config = ClusterConfig::for_system(&system, 2.0, 1.0 * 3600.0);
    config.crash_prob = 0.01;
    config.ips_dropout_prob = 0.3;
    let jobs = TraceGenerator::new(system, 21).generate(200);
    let mut perq = PerqPolicy::new(PerqConfig::default());
    let mut cluster = Cluster::new(config, jobs, 21);
    let result = cluster.run(&mut perq);
    assert!(result.throughput() > 0, "nothing completed under faults");
    assert!(result
        .records
        .iter()
        .any(|r| r.outcome == JobOutcome::Crashed));
}

#[test]
fn facade_prelude_compiles_and_runs_quickstart_flow() {
    let system = SystemModel::tardis();
    let jobs = TraceGenerator::new(system.clone(), 7).generate(50);
    let config = ClusterConfig::for_system(&system, 1.5, 1800.0);
    let result = Cluster::new(config, jobs, 7).run(&mut FairPolicy::new());
    assert!(result.intervals.len() == 180);
}
