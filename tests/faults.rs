//! Fault-injection matrix and graceful-degradation acceptance tests.
//!
//! Three layers of coverage:
//!
//! 1. **Matrix**: every fault kind crossed with every policy on the
//!    simulator — the run must terminate, consumption must respect the
//!    budget, and violations must stay rare regardless of what the fault
//!    does to the telemetry the policy sees.
//! 2. **Acceptance**: the prototype cluster loses worker 2 at control
//!    step 10. The run is seeded and replays bit-for-bit; the controller
//!    writes the node off, kills the job that lost its rank, and the
//!    dead node's budget share flows to the survivors without the
//!    committed power ever exceeding the cluster cap.
//! 3. **Replay property**: randomly seeded fault plans drive the
//!    simulator to the identical result twice.

use perq::core::{baselines, train_node_model, NodeModel, PerqConfig, PerqPolicy};
use perq::proto::{ProtoCluster, ProtoConfig};
use perq::sim::{
    Cluster, ClusterConfig, FairPolicy, FaultEvent, FaultKind, FaultPlan, FaultRates, JobOutcome,
    JobSpec, PowerPolicy, SimResult, SystemModel, TraceGenerator,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared identified node model: PERQ's training is a one-time cost
/// per node type, not per run.
fn trained() -> &'static NodeModel {
    static MODEL: OnceLock<NodeModel> = OnceLock::new();
    MODEL.get_or_init(|| train_node_model(7).0)
}

fn make_policy(name: &str) -> Box<dyn PowerPolicy> {
    match name {
        "fop" => Box::new(FairPolicy::new()),
        "sjs" => Box::new(baselines::sjs()),
        "ljs" => Box::new(baselines::ljs()),
        "srn" => Box::new(baselines::srn()),
        "perq" => Box::new(PerqPolicy::with_model(
            trained().clone(),
            PerqConfig::default(),
        )),
        other => panic!("unknown policy {other}"),
    }
}

fn ev(step: usize, kind: FaultKind) -> FaultEvent {
    FaultEvent { step, kind }
}

/// Scripted single-kind fault scenarios, one per [`FaultKind`].
fn scenarios() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "node-crash-and-recover",
            FaultPlan::new(vec![
                ev(20, FaultKind::NodeCrash { count: 3 }),
                ev(60, FaultKind::NodeRecover { count: 3 }),
            ]),
        ),
        (
            "telemetry-dropout",
            FaultPlan::new(vec![ev(
                25,
                FaultKind::TelemetryDropout {
                    nth: 1,
                    intervals: 4,
                },
            )]),
        ),
        (
            "stale-power",
            FaultPlan::new(vec![ev(
                25,
                FaultKind::StalePower {
                    nth: 0,
                    intervals: 3,
                },
            )]),
        ),
        (
            "corrupt-power",
            FaultPlan::new(vec![
                ev(
                    25,
                    FaultKind::CorruptPower {
                        nth: 0,
                        factor: 10.0,
                    },
                ),
                ev(
                    40,
                    FaultKind::CorruptPower {
                        nth: 1,
                        factor: 0.25,
                    },
                ),
            ]),
        ),
        (
            "job-kill",
            FaultPlan::new(vec![ev(30, FaultKind::JobKill { nth: 0 })]),
        ),
    ]
}

#[test]
fn every_fault_kind_terminates_under_every_policy_within_budget() {
    let system = SystemModel::tardis();
    let budget = 8.0 * 290.0;
    for (scenario, plan) in scenarios() {
        for policy_name in ["fop", "sjs", "ljs", "srn", "perq"] {
            let mut policy = make_policy(policy_name);
            let config = ClusterConfig::for_system(&system, 2.0, 1800.0);
            let jobs = TraceGenerator::new(system.clone(), 17)
                .generate_saturating(config.nodes, config.duration_s);
            let result = Cluster::new(config, jobs, 17)
                .with_fault_plan(plan.clone())
                .run(policy.as_mut());

            assert!(
                !result.faults.is_empty(),
                "{scenario}/{policy_name}: the plan never applied"
            );
            let intervals = result.intervals.len();
            assert_eq!(intervals, 180, "{scenario}/{policy_name}: run truncated");
            for log in &result.intervals {
                assert!(
                    log.total_power_w <= budget * 1.05,
                    "{scenario}/{policy_name}: {} W consumed at t={} (budget {budget})",
                    log.total_power_w,
                    log.t_s
                );
            }
            assert!(
                result.budget_violations as f64 <= 0.03 * intervals as f64,
                "{scenario}/{policy_name}: {} violations in {} intervals",
                result.budget_violations,
                intervals
            );
            match scenario {
                // 3 nodes crash at step 20 (t=200) and recover at step 60
                // (t=600): 400 s of outage per node, whatever the policy.
                "node-crash-and-recover" => {
                    assert_eq!(
                        result.recovery_latency_s,
                        vec![400.0; 3],
                        "{scenario}/{policy_name}: wrong recovery latencies"
                    );
                }
                "job-kill" => {
                    assert!(
                        result
                            .records
                            .iter()
                            .any(|r| r.outcome == JobOutcome::Killed),
                        "{scenario}/{policy_name}: no job was killed"
                    );
                }
                _ => {}
            }
        }
    }
}

/// The ISSUE acceptance scenario: 8 single-node jobs on 8 workers under
/// FOP, worker 2 dies at control step 10.
fn acceptance_run() -> SimResult {
    let mut config = ProtoConfig::tardis(4, 2.0, 80);
    config.crash_workers.push((2, 10));
    config.trace_jobs.push(0);
    // Long single-node jobs: every worker stays busy, so the fair share
    // is exactly budget / live-jobs before and after the crash.
    let jobs: Vec<JobSpec> = (0..8)
        .map(|id| JobSpec {
            id,
            app_index: 0,
            size: 1,
            runtime_tdp_s: 10_000.0,
            runtime_estimate_s: 12_000.0,
        })
        .collect();
    ProtoCluster::new(config)
        .run(jobs, &mut FairPolicy::new())
        .expect("prototype run")
}

#[test]
fn seeded_worker_crash_replays_deterministically_and_reallocates_budget() {
    let a = acceptance_run();
    let b = acceptance_run();

    // Bit-for-bit replay: every field except wall-clock decision times.
    assert_eq!(a.records, b.records);
    assert_eq!(a.intervals, b.intervals);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.budget_violations, b.budget_violations);
    assert_eq!(a.traces.get(&0), b.traces.get(&0));

    // The crash is logged at the scripted step against the right job
    // (single-node jobs launch FCFS, so job 2 runs on node 2).
    assert_eq!(a.faults.len(), 1, "exactly one injected fault");
    assert_eq!(a.faults[0].step, 10);
    assert!(matches!(
        a.faults[0].kind,
        FaultKind::NodeCrash { count: 1 }
    ));
    assert_eq!(a.faults[0].job_id, Some(2));
    assert_eq!(a.faults[0].nodes_offline_after, 1);

    // The job that lost its rank is killed at the end of that interval;
    // everything else outlives the 80-interval window.
    let killed: Vec<_> = a
        .records
        .iter()
        .filter(|r| r.outcome == JobOutcome::Killed)
        .collect();
    assert_eq!(killed.len(), 1);
    assert_eq!(killed[0].spec.id, 2);
    assert_eq!(killed[0].end_s, 110.0);
    assert_eq!(
        a.records
            .iter()
            .filter(|r| r.outcome == JobOutcome::Unfinished)
            .count(),
        7
    );

    // Budget reallocation: the fair share is budget/8 = 145 W before the
    // crash and budget/7 ≈ 165.7 W once the dead node is written off —
    // the survivors inherit its share.
    let budget = 4.0 * 290.0;
    let trace = a.traces.get(&0).expect("job 0 traced");
    for p in &trace.points {
        if p.t_s <= 100.0 {
            assert!(
                (p.cap_w - budget / 8.0).abs() < 1e-9,
                "pre-crash cap {}",
                p.cap_w
            );
        } else {
            assert!(
                (p.cap_w - budget / 7.0).abs() < 1e-9,
                "post-crash cap {}",
                p.cap_w
            );
        }
    }

    // And the cluster cap is never exceeded, by commitment or draw.
    assert_eq!(a.budget_violations, 0);
    for log in &a.intervals {
        assert!(
            log.committed_power_w <= budget + 1e-6,
            "committed {} W at t={}",
            log.committed_power_w,
            log.t_s
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seeded fault plan — crashes, recoveries, telemetry faults, job
    /// kills at aggressive rates — drives the simulator to the identical
    /// result twice.
    #[test]
    fn seeded_fault_plans_replay_bit_for_bit(seed in 0u64..1_000_000) {
        let run = || {
            let system = SystemModel::tardis();
            let config = ClusterConfig::for_system(&system, 2.0, 1500.0);
            let steps = (config.duration_s / config.interval_s) as usize;
            let plan = FaultPlan::generate(seed, steps, &FaultRates::aggressive());
            let jobs = TraceGenerator::new(system.clone(), seed)
                .generate_saturating(config.nodes, config.duration_s);
            Cluster::new(config, jobs, seed)
                .with_fault_plan(plan)
                .run(&mut FairPolicy::new())
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a.records, &b.records);
        prop_assert_eq!(&a.intervals, &b.intervals);
        prop_assert_eq!(&a.faults, &b.faults);
        prop_assert_eq!(&a.recovery_latency_s, &b.recovery_latency_s);
        prop_assert_eq!(a.budget_violations, b.budget_violations);
        prop_assert_eq!(a.budget_violation_s, b.budget_violation_s);
    }
}
