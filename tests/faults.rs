//! Fault-injection matrix and graceful-degradation acceptance tests.
//!
//! Three layers of coverage:
//!
//! 1. **Matrix**: every fault kind crossed with every policy on the
//!    simulator — the run must terminate, consumption must respect the
//!    budget, and violations must stay rare regardless of what the fault
//!    does to the telemetry the policy sees.
//! 2. **Acceptance**: the prototype cluster loses worker 2 at control
//!    step 10. The run is seeded and replays bit-for-bit; the controller
//!    writes the node off, kills the job that lost its rank, and the
//!    dead node's budget share flows to the survivors without the
//!    committed power ever exceeding the cluster cap.
//! 3. **Replay property**: randomly seeded fault plans drive the
//!    simulator to the identical result twice.

use perq::core::{baselines, train_node_model, NodeModel, PerqConfig, PerqPolicy};
use perq::proto::{ProtoCluster, ProtoConfig};
use perq::sim::{
    Cluster, ClusterConfig, FairPolicy, FaultEvent, FaultKind, FaultPlan, FaultRates, JobOutcome,
    JobSpec, PowerPolicy, SimResult, SystemModel, TraceGenerator,
};
use perq::telemetry::{validate_prometheus, Recorder};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared identified node model: PERQ's training is a one-time cost
/// per node type, not per run.
fn trained() -> &'static NodeModel {
    static MODEL: OnceLock<NodeModel> = OnceLock::new();
    MODEL.get_or_init(|| train_node_model(7).0)
}

fn make_policy(name: &str) -> Box<dyn PowerPolicy> {
    match name {
        "fop" => Box::new(FairPolicy::new()),
        "sjs" => Box::new(baselines::sjs()),
        "ljs" => Box::new(baselines::ljs()),
        "srn" => Box::new(baselines::srn()),
        "perq" => Box::new(PerqPolicy::with_model(
            trained().clone(),
            PerqConfig::default(),
        )),
        other => panic!("unknown policy {other}"),
    }
}

fn ev(step: usize, kind: FaultKind) -> FaultEvent {
    FaultEvent { step, kind }
}

/// Scripted single-kind fault scenarios, one per [`FaultKind`].
fn scenarios() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "node-crash-and-recover",
            FaultPlan::new(vec![
                ev(20, FaultKind::NodeCrash { count: 3 }),
                ev(60, FaultKind::NodeRecover { count: 3 }),
            ]),
        ),
        (
            "telemetry-dropout",
            FaultPlan::new(vec![ev(
                25,
                FaultKind::TelemetryDropout {
                    nth: 1,
                    intervals: 4,
                },
            )]),
        ),
        (
            "stale-power",
            FaultPlan::new(vec![ev(
                25,
                FaultKind::StalePower {
                    nth: 0,
                    intervals: 3,
                },
            )]),
        ),
        (
            "corrupt-power",
            FaultPlan::new(vec![
                ev(
                    25,
                    FaultKind::CorruptPower {
                        nth: 0,
                        factor: 10.0,
                    },
                ),
                ev(
                    40,
                    FaultKind::CorruptPower {
                        nth: 1,
                        factor: 0.25,
                    },
                ),
            ]),
        ),
        (
            "job-kill",
            FaultPlan::new(vec![ev(30, FaultKind::JobKill { nth: 0 })]),
        ),
    ]
}

#[test]
fn every_fault_kind_terminates_under_every_policy_within_budget() {
    let system = SystemModel::tardis();
    let budget = 8.0 * 290.0;
    for (scenario, plan) in scenarios() {
        for policy_name in ["fop", "sjs", "ljs", "srn", "perq"] {
            let mut policy = make_policy(policy_name);
            let config = ClusterConfig::for_system(&system, 2.0, 1800.0);
            let jobs = TraceGenerator::new(system.clone(), 17)
                .generate_saturating(config.nodes, config.duration_s);
            let result = Cluster::new(config, jobs, 17)
                .with_fault_plan(plan.clone())
                .run(policy.as_mut());

            assert!(
                !result.faults.is_empty(),
                "{scenario}/{policy_name}: the plan never applied"
            );
            let intervals = result.intervals.len();
            assert_eq!(intervals, 180, "{scenario}/{policy_name}: run truncated");
            for log in &result.intervals {
                assert!(
                    log.total_power_w <= budget * 1.05,
                    "{scenario}/{policy_name}: {} W consumed at t={} (budget {budget})",
                    log.total_power_w,
                    log.t_s
                );
            }
            assert!(
                result.budget_violations as f64 <= 0.03 * intervals as f64,
                "{scenario}/{policy_name}: {} violations in {} intervals",
                result.budget_violations,
                intervals
            );
            match scenario {
                // 3 nodes crash at step 20 (t=200) and recover at step 60
                // (t=600): 400 s of outage per node, whatever the policy.
                "node-crash-and-recover" => {
                    assert_eq!(
                        result.recovery_latency_s,
                        vec![400.0; 3],
                        "{scenario}/{policy_name}: wrong recovery latencies"
                    );
                }
                "job-kill" => {
                    assert!(
                        result
                            .records
                            .iter()
                            .any(|r| r.outcome == JobOutcome::Killed),
                        "{scenario}/{policy_name}: no job was killed"
                    );
                }
                _ => {}
            }
        }
    }
}

/// The ISSUE acceptance scenario: 8 single-node jobs on 8 workers under
/// FOP, worker 2 dies at control step 10.
fn acceptance_run() -> SimResult {
    let mut config = ProtoConfig::tardis(4, 2.0, 80);
    config.crash_workers.push((2, 10));
    config.trace_jobs.push(0);
    // Long single-node jobs: every worker stays busy, so the fair share
    // is exactly budget / live-jobs before and after the crash.
    let jobs: Vec<JobSpec> = (0..8)
        .map(|id| JobSpec {
            id,
            app_index: 0,
            size: 1,
            runtime_tdp_s: 10_000.0,
            runtime_estimate_s: 12_000.0,
            submit_s: 0.0,
        })
        .collect();
    ProtoCluster::new(config)
        .run(jobs, &mut FairPolicy::new())
        .expect("prototype run")
}

#[test]
fn seeded_worker_crash_replays_deterministically_and_reallocates_budget() {
    let a = acceptance_run();
    let b = acceptance_run();

    // Bit-for-bit replay: every field except wall-clock decision times.
    assert_eq!(a.records, b.records);
    assert_eq!(a.intervals, b.intervals);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.budget_violations, b.budget_violations);
    assert_eq!(a.traces.get(&0), b.traces.get(&0));

    // The crash is logged at the scripted step against the right job
    // (single-node jobs launch FCFS, so job 2 runs on node 2).
    assert_eq!(a.faults.len(), 1, "exactly one injected fault");
    assert_eq!(a.faults[0].step, 10);
    assert!(matches!(
        a.faults[0].kind,
        FaultKind::NodeCrash { count: 1 }
    ));
    assert_eq!(a.faults[0].job_id, Some(2));
    assert_eq!(a.faults[0].nodes_offline_after, 1);

    // The job that lost its rank is killed at the end of that interval;
    // everything else outlives the 80-interval window.
    let killed: Vec<_> = a
        .records
        .iter()
        .filter(|r| r.outcome == JobOutcome::Killed)
        .collect();
    assert_eq!(killed.len(), 1);
    assert_eq!(killed[0].spec.id, 2);
    assert_eq!(killed[0].end_s, 110.0);
    assert_eq!(
        a.records
            .iter()
            .filter(|r| r.outcome == JobOutcome::Unfinished)
            .count(),
        7
    );

    // Budget reallocation: the fair share is budget/8 = 145 W before the
    // crash and budget/7 ≈ 165.7 W once the dead node is written off —
    // the survivors inherit its share.
    let budget = 4.0 * 290.0;
    let trace = a.traces.get(&0).expect("job 0 traced");
    for p in &trace.points {
        if p.t_s <= 100.0 {
            assert!(
                (p.cap_w - budget / 8.0).abs() < 1e-9,
                "pre-crash cap {}",
                p.cap_w
            );
        } else {
            assert!(
                (p.cap_w - budget / 7.0).abs() < 1e-9,
                "post-crash cap {}",
                p.cap_w
            );
        }
    }

    // And the cluster cap is never exceeded, by commitment or draw.
    assert_eq!(a.budget_violations, 0);
    for log in &a.intervals {
        assert!(
            log.committed_power_w <= budget + 1e-6,
            "committed {} W at t={}",
            log.committed_power_w,
            log.t_s
        );
    }
}

/// Regression for the same-tick double-death path in the prototype's
/// budget reallocation: two workers hosting *different* jobs die on the
/// same control tick. The audit of `control_loop` found no
/// double-counting — `streams.remove` and the `free_nodes` purge run
/// before the killed-job survivor-freeing loop, which re-checks both —
/// and this test pins that behaviour: each dead node is written off
/// exactly once, and the survivors split the budget six ways.
#[test]
fn two_workers_dying_same_tick_reallocate_budget_once() {
    let mut config = ProtoConfig::tardis(4, 2.0, 40);
    config.crash_workers.push((1, 10));
    config.crash_workers.push((2, 10));
    config.trace_jobs.push(0);
    let jobs: Vec<JobSpec> = (0..8)
        .map(|id| JobSpec {
            id,
            app_index: 0,
            size: 1,
            runtime_tdp_s: 10_000.0,
            runtime_estimate_s: 12_000.0,
            submit_s: 0.0,
        })
        .collect();
    let result = ProtoCluster::new(config)
        .run(jobs, &mut FairPolicy::new())
        .expect("prototype run");

    // Both crashes logged on the scripted step, one write-off each.
    assert_eq!(result.faults.len(), 2, "{:?}", result.faults);
    for fault in &result.faults {
        assert_eq!(fault.step, 10);
        assert!(matches!(fault.kind, FaultKind::NodeCrash { count: 1 }));
    }
    assert_eq!(result.faults[1].nodes_offline_after, 2);

    // Jobs 1 and 2 (on nodes 1 and 2, FCFS) die with their hosts.
    let mut killed: Vec<u64> = result
        .records
        .iter()
        .filter(|r| r.outcome == JobOutcome::Killed)
        .map(|r| r.spec.id)
        .collect();
    killed.sort_unstable();
    assert_eq!(killed, vec![1, 2]);

    // Budget reallocation happens exactly once per dead node: the fair
    // share moves from budget/8 to budget/6 — not budget/4, which a
    // double write-off would produce, and not budget/7.
    let budget = 4.0 * 290.0;
    let trace = result.traces.get(&0).expect("job 0 traced");
    for p in &trace.points {
        let expected = if p.t_s <= 100.0 {
            budget / 8.0
        } else {
            budget / 6.0
        };
        assert!(
            (p.cap_w - expected).abs() < 1e-9,
            "cap {} at t={} (expected {expected})",
            p.cap_w,
            p.t_s
        );
    }

    // The six survivors stay busy and the cluster cap holds throughout.
    assert_eq!(result.budget_violations, 0);
    for log in &result.intervals {
        assert!(log.committed_power_w <= budget + 1e-6, "at t={}", log.t_s);
        if log.t_s > 100.0 {
            assert_eq!(log.busy_nodes, 6, "at t={}", log.t_s);
        }
    }
}

/// Same-tick double death where both dead workers host the *same* job:
/// the job must be killed once, its surviving ranks must not be freed
/// twice, and the write-off count must match the node count.
#[test]
fn two_workers_of_one_job_dying_same_tick_kill_it_once() {
    let mut config = ProtoConfig::tardis(4, 2.0, 40);
    config.crash_workers.push((0, 10));
    config.crash_workers.push((1, 10));
    config.trace_jobs.push(1);
    // Job 0 spans nodes 0-1 (FCFS assignment); jobs 1..=6 are
    // single-node on nodes 2..=7.
    let mut jobs = vec![JobSpec {
        id: 0,
        app_index: 0,
        size: 2,
        runtime_tdp_s: 10_000.0,
        runtime_estimate_s: 12_000.0,
        submit_s: 0.0,
    }];
    jobs.extend((1..7).map(|id| JobSpec {
        id,
        app_index: 0,
        size: 1,
        runtime_tdp_s: 10_000.0,
        runtime_estimate_s: 12_000.0,
        submit_s: 0.0,
    }));
    let result = ProtoCluster::new(config)
        .run(jobs, &mut FairPolicy::new())
        .expect("prototype run");

    assert_eq!(result.faults.len(), 2, "{:?}", result.faults);
    for fault in &result.faults {
        assert_eq!(fault.step, 10);
        assert_eq!(fault.job_id, Some(0), "both dead nodes hosted job 0");
    }
    let killed: Vec<u64> = result
        .records
        .iter()
        .filter(|r| r.outcome == JobOutcome::Killed)
        .map(|r| r.spec.id)
        .collect();
    assert_eq!(killed, vec![0], "job 0 killed exactly once");

    // Six single-node survivors split the budget six ways after the
    // crash (and eight busy nodes split it eight ways before).
    let budget = 4.0 * 290.0;
    let trace = result.traces.get(&1).expect("job 1 traced");
    for p in &trace.points {
        let expected = if p.t_s <= 100.0 {
            budget / 8.0
        } else {
            budget / 6.0
        };
        assert!(
            (p.cap_w - expected).abs() < 1e-9,
            "cap {} at t={} (expected {expected})",
            p.cap_w,
            p.t_s
        );
    }
    assert_eq!(result.budget_violations, 0);
    for log in &result.intervals {
        if log.t_s > 100.0 {
            assert_eq!(log.busy_nodes, 6, "at t={}", log.t_s);
        }
    }
}

/// Deterministic trace replay: the same seed and the same [`FaultPlan`]
/// must yield *byte-identical* telemetry exports across two runs — the
/// journal (fault events, in order, stamped with simulated time), every
/// counter/gauge/histogram, and both export formats. Runs under the
/// full PERQ policy so the solver and controller metrics are covered,
/// not just the simulator's.
#[test]
fn telemetry_export_replays_byte_for_byte_under_seeded_faults() {
    let run = || {
        let system = SystemModel::tardis();
        let config = ClusterConfig::for_system(&system, 2.0, 1500.0);
        let steps = (config.duration_s / config.interval_s) as usize;
        let plan = FaultPlan::generate(13, steps, &FaultRates::aggressive());
        let jobs = TraceGenerator::new(system.clone(), 13)
            .generate_saturating(config.nodes, config.duration_s);
        let recorder = Recorder::manual();
        let mut policy = make_policy("perq");
        let result = Cluster::new(config, jobs, 13)
            .with_fault_plan(plan)
            .with_recorder(recorder.clone())
            .run(policy.as_mut());
        (
            result,
            recorder.export_jsonl(),
            recorder.export_prometheus(),
        )
    };
    let (result_a, jsonl_a, prom_a) = run();
    let (_result_b, jsonl_b, prom_b) = run();

    assert!(!result_a.faults.is_empty(), "aggressive plan must apply");
    assert!(!jsonl_a.is_empty());
    assert_eq!(jsonl_a, jsonl_b, "JSONL export must replay byte-for-byte");
    assert_eq!(prom_a, prom_b, "Prometheus export must replay");

    // The journal carries the fault events and the registry carries
    // metrics from every instrumented layer of the stack.
    assert!(jsonl_a.contains("\"event\":\"perq_sim_fault\""));
    validate_prometheus(
        &prom_a,
        &[
            "perq_sim_steps_total",
            "perq_sim_power_w",
            "perq_sim_faults_total",
            "perq_core_decides_total",
            "perq_core_decide_seconds",
            "perq_qp_solves_total",
            "perq_qp_iterations",
        ],
    )
    .expect("exposition parses with all layers present");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seeded fault plan — crashes, recoveries, telemetry faults, job
    /// kills at aggressive rates — drives the simulator to the identical
    /// result twice.
    #[test]
    fn seeded_fault_plans_replay_bit_for_bit(seed in 0u64..1_000_000) {
        let run = || {
            let system = SystemModel::tardis();
            let config = ClusterConfig::for_system(&system, 2.0, 1500.0);
            let steps = (config.duration_s / config.interval_s) as usize;
            let plan = FaultPlan::generate(seed, steps, &FaultRates::aggressive());
            let jobs = TraceGenerator::new(system.clone(), seed)
                .generate_saturating(config.nodes, config.duration_s);
            Cluster::new(config, jobs, seed)
                .with_fault_plan(plan)
                .run(&mut FairPolicy::new())
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a.records, &b.records);
        prop_assert_eq!(&a.intervals, &b.intervals);
        prop_assert_eq!(&a.faults, &b.faults);
        prop_assert_eq!(&a.recovery_latency_s, &b.recovery_latency_s);
        prop_assert_eq!(a.budget_violations, b.budget_violations);
        prop_assert_eq!(a.budget_violation_s, b.budget_violation_s);
    }
}
