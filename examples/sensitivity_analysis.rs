//! Control-parameter sensitivity (Fig. 9 / Fig. 10 material): sweeps the
//! control interval, system-throughput improvement ratio, system
//! throughput weight, and ΔP weight on a small cluster, showing PERQ's
//! robustness to tuning.
//!
//! ```text
//! cargo run --release --example sensitivity_analysis -- [hours]
//! ```

use perq::core::{train_node_model, MpcSettings, PerqConfig, PerqPolicy};
use perq::prelude::*;

fn run(
    system: &SystemModel,
    hours: f64,
    seed: u64,
    interval_s: f64,
    config: PerqConfig,
    model: &perq::core::NodeModel,
) -> (usize, f64) {
    let jobs = TraceGenerator::new(system.clone(), seed).generate(2000);
    let mut cc = ClusterConfig::for_system(system, 2.0, hours * 3600.0);
    cc.interval_s = interval_s;
    let mut fop = FairPolicy::new();
    let fop_result = Cluster::new(cc.clone(), jobs.clone(), seed).run(&mut fop);
    let mut perq = PerqPolicy::with_model(model.clone(), config);
    let result = Cluster::new(cc, jobs, seed).run(&mut perq);
    let fairness = compare_fairness(&result, &fop_result);
    (result.throughput(), fairness.mean_degradation_pct)
}

fn main() {
    let hours: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2.0);
    let system = SystemModel::tardis();
    let seed = 99;
    let model = train_node_model(7).0;

    println!("== control interval (Fig. 9) ==");
    for interval in [5.0, 10.0, 20.0, 40.0, 60.0, 120.0] {
        let (tp, deg) = run(
            &system,
            hours,
            seed,
            interval,
            PerqConfig::default(),
            &model,
        );
        println!("interval {interval:>5.0} s: {tp} jobs, mean degradation {deg:.1}%");
    }

    println!();
    println!("== system throughput improvement ratio (Fig. 10a) ==");
    for ratio in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let config = PerqConfig {
            improvement_ratio: ratio,
            ..PerqConfig::default()
        };
        let (tp, deg) = run(&system, hours, seed, 10.0, config, &model);
        println!("ratio {ratio:>4.0}: {tp} jobs, mean degradation {deg:.1}%");
    }

    println!();
    println!("== system throughput weight (Fig. 10b) ==");
    for weight in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let config = PerqConfig {
            mpc: MpcSettings {
                wt_sys: weight,
                ..MpcSettings::default()
            },
            ..PerqConfig::default()
        };
        let (tp, deg) = run(&system, hours, seed, 10.0, config, &model);
        println!("weight {weight:>4.0}: {tp} jobs, mean degradation {deg:.1}%");
    }

    println!();
    println!("== ΔP weight (Fig. 10c) ==");
    for weight in [1.0, 5.0, 10.0, 25.0, 50.0, 100.0] {
        let config = PerqConfig {
            mpc: MpcSettings {
                w_dp: weight * 0.1, // paper's unit scale maps to 0.1 here
                ..MpcSettings::default()
            },
            ..PerqConfig::default()
        };
        let (tp, deg) = run(&system, hours, seed, 10.0, config, &model);
        println!("ΔP weight {weight:>5.0}: {tp} jobs, mean degradation {deg:.1}%");
    }
}
