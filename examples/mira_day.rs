//! A Mira-parameterised evaluation day (Fig. 6 material): runs all four
//! power-provisioning policies on the same trace at one over-provisioning
//! factor and prints the paper's three metrics.
//!
//! ```text
//! cargo run --release --example mira_day -- [f] [hours]
//! ```
//!
//! Defaults: `f = 2.0`, 6 simulated hours (use 24 for the paper's full
//! day; a single-core run takes a few minutes).

use perq::core::{baselines, PerqConfig, PerqPolicy};
use perq::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let f: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2.0);
    let hours: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(6.0);
    let seed = 20190622;

    let system = SystemModel::mira();
    println!(
        "Mira: N_WP = {}, f = {f}, N_OP = {}, {hours} h",
        system.wp_nodes,
        (system.wp_nodes as f64 * f) as usize
    );

    // Baseline throughput at f = 1 (worst-case provisioning).
    let base_jobs = {
        let mut gen = TraceGenerator::new(system.clone(), seed);
        gen.generate_saturating(system.wp_nodes, hours * 3600.0)
    };
    let base_config = ClusterConfig::for_system(&system, 1.0, hours * 3600.0);
    let base = Cluster::new(base_config, base_jobs, seed).run(&mut FairPolicy::new());
    println!("f=1.0 baseline: {} jobs", base.throughput());

    // The f-run trace (shared across policies).
    let nodes = (system.wp_nodes as f64 * f) as usize;
    let jobs = TraceGenerator::new(system.clone(), seed).generate_saturating(nodes, hours * 3600.0);
    let config = ClusterConfig::for_system(&system, f, hours * 3600.0);

    let model = perq::core::train_node_model(7).0;
    let mut fop_result = None;
    println!();
    println!(
        "{:<6} {:>6} {:>12} {:>10} {:>10}",
        "policy", "jobs", "improv(%)", "meandeg(%)", "maxdeg(%)"
    );
    for name in ["FOP", "SJS", "SRN", "PERQ"] {
        let mut policy: Box<dyn PowerPolicy> = match name {
            "FOP" => Box::new(FairPolicy::new()),
            "SJS" => Box::new(baselines::sjs()),
            "SRN" => Box::new(baselines::srn()),
            _ => Box::new(PerqPolicy::with_model(model.clone(), PerqConfig::default())),
        };
        let result = Cluster::new(config.clone(), jobs.clone(), seed).run(policy.as_mut());
        let improv = 100.0 * (result.throughput() as f64 - base.throughput() as f64)
            / base.throughput() as f64;
        let (mean_deg, max_deg) = match &fop_result {
            None => (0.0, 0.0),
            Some(fop) => {
                let rep = compare_fairness(&result, fop);
                (rep.mean_degradation_pct, rep.max_degradation_pct)
            }
        };
        println!(
            "{:<6} {:>6} {:>12.1} {:>10.1} {:>10.1}",
            name,
            result.throughput(),
            improv,
            mean_deg,
            max_deg
        );
        if name == "FOP" {
            fop_result = Some(result);
        }
    }
}
