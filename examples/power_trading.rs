//! Fig. 12 demonstration, twice over:
//!
//! 1. On the TCP prototype: a low-sensitivity application (ASPA)
//!    starts alone on the two-node cluster; a high-sensitivity
//!    application (SimpleMOC) arrives later, and PERQ gradually moves
//!    the power budget to it — without hurting the low-sensitivity job.
//! 2. On the simulator under a *time-varying* budget: the site buys
//!    power on a diurnal price/carbon curve ([`BudgetSchedule`]), and
//!    SimpleMOC arrives exactly when the curve dips. The example
//!    asserts the hand-off: once both jobs share the (now scarcer)
//!    budget, ASPA gives up cap and SimpleMOC receives it, while
//!    consumed power keeps tracking the schedule level in force.
//!
//! ```text
//! cargo run --release --example power_trading
//! ```

use perq::core::{PerqConfig, PerqPolicy};
use perq::proto::{ProtoCluster, ProtoConfig};
use perq::sim::{BudgetSchedule, Cluster, ClusterConfig, JobSpec, SystemModel};

fn main() {
    prototype_handoff();
    scheduled_handoff();
}

fn prototype_handoff() {
    // Two worker nodes, worst-case budget for one node (f = 2): only
    // ~one node's worth of power to share.
    let mut config = ProtoConfig::tardis(1, 2.0, 60);
    config.trace_jobs = vec![0, 1];

    // Job 0: ASPA (index 0, low sensitivity), long runtime.
    // Job 1: SimpleMOC (index 5, high sensitivity), arrives via the queue
    // once the schedule admits it (both fit immediately; the paper's
    // staggered start comes from the FCFS queue order).
    let jobs = vec![
        JobSpec {
            id: 0,
            app_index: 0,
            size: 1,
            runtime_tdp_s: 220.0,
            runtime_estimate_s: 280.0,
            submit_s: 0.0,
        },
        JobSpec {
            id: 1,
            app_index: 5,
            size: 1,
            runtime_tdp_s: 350.0,
            runtime_estimate_s: 450.0,
            submit_s: 0.0,
        },
    ];

    let mut perq = PerqPolicy::new(PerqConfig::default());
    let result = ProtoCluster::new(config)
        .run(jobs, &mut perq)
        .expect("prototype run");

    println!("t(s)   ASPA: cap/draw(W) perf(%)  |  SimpleMOC: cap/draw(W) perf(%)");
    let t0 = result.traces.get(&0).cloned().unwrap_or_default();
    let t1 = result.traces.get(&1).cloned().unwrap_or_default();
    let peak0 = t0.points.iter().map(|p| p.ips).fold(0.0f64, f64::max);
    let peak1 = t1.points.iter().map(|p| p.ips).fold(0.0f64, f64::max);
    for k in 0..60 {
        let t = k as f64 * 10.0;
        let p0 = t0.points.iter().find(|p| (p.t_s - t).abs() < 1e-6);
        let p1 = t1.points.iter().find(|p| (p.t_s - t).abs() < 1e-6);
        let fmt = |p: Option<&perq::sim::TracePoint>, peak: f64| match p {
            Some(p) => format!(
                "{:>6.1} {:>6.1}  {:>6.1}",
                p.cap_w,
                p.power_w,
                100.0 * p.ips / peak.max(1e-9)
            ),
            None => format!("{:>6} {:>6}  {:>6}", "-", "-", "-"),
        };
        println!("{:>4.0}   {}   |  {}", t, fmt(p0, peak0), fmt(p1, peak1));
        if p0.is_none() && p1.is_none() && k > 5 {
            break;
        }
    }
    println!();
    println!(
        "jobs completed: {}; budget violations: {}",
        result.throughput(),
        result.budget_violations
    );
}

/// The same trade on the simulator, with the budget following a diurnal
/// price/carbon curve: high for the first 600 s, dipping to 80% exactly
/// when the second compute-bound job arrives. Two *power-hungry* jobs
/// (a low-draw app never feels the budget, so it has nothing to trade):
/// SimpleMOC holds half the machine at ~200 W/node; when the budget
/// dips and miniMD claims the other half, the site can no longer power
/// both at full draw, and PERQ claws watts back from the incumbent.
fn scheduled_handoff() {
    let system = SystemModel::tardis();
    let mut config = ClusterConfig::for_system(&system, 2.0, 1800.0);
    config.trace_jobs = vec![0, 1];
    let base_w = config.budget_w();
    let schedule = BudgetSchedule::diurnal(base_w, 0.8, 1.0, 600.0, 1800.0);

    // Job 0: SimpleMOC (high sensitivity, ~0.7 × TDP draw) holds half
    // the machine from t = 0. Job 1: miniMD (also compute-bound)
    // arrives at t = 600 s — the moment the budget steps down.
    let jobs = vec![
        JobSpec {
            id: 0,
            app_index: 5,
            size: 8,
            runtime_tdp_s: 1500.0,
            runtime_estimate_s: 1800.0,
            submit_s: 0.0,
        },
        JobSpec {
            id: 1,
            app_index: 9,
            size: 8,
            runtime_tdp_s: 900.0,
            runtime_estimate_s: 1200.0,
            submit_s: 600.0,
        },
    ];

    let mut perq = PerqPolicy::new(PerqConfig::default());
    let result = Cluster::new(config, jobs, 7)
        .with_budget_schedule(schedule.clone())
        .run(&mut perq);

    // Mean per-node *draw* (caps over-commit on low-draw intervals, so
    // the hand-off is visible in consumed watts): SimpleMOC alone vs.
    // both jobs sharing the dipped budget. The first overlap intervals
    // are a ramp, so average over the whole window.
    let trace = |id: u64| result.traces.get(&id).cloned().unwrap_or_default();
    let mean_draw = |points: &[perq::sim::TracePoint], lo: f64, hi: f64| {
        let w: Vec<f64> = points
            .iter()
            .filter(|p| p.t_s >= lo && p.t_s < hi)
            .map(|p| p.power_w)
            .collect();
        w.iter().sum::<f64>() / w.len().max(1) as f64
    };
    let moc = trace(0);
    let md = trace(1);
    let moc_alone = mean_draw(&moc.points, 0.0, 600.0);
    let moc_shared = mean_draw(&moc.points, 700.0, 1200.0);
    let md_shared = mean_draw(&md.points, 700.0, 1200.0);

    println!();
    println!("diurnal-budget hand-off (simulator, Tardis f=2, seed 7):");
    println!(
        "  budget: {base_w:.0} W for 600 s, then {:.0} W",
        schedule.budget_at(600.0)
    );
    println!("  SimpleMOC mean draw alone      [0, 600)s: {moc_alone:.1} W/node");
    println!("  SimpleMOC mean draw shared  [700, 1200)s: {moc_shared:.1} W/node");
    println!("  miniMD    mean draw shared  [700, 1200)s: {md_shared:.1} W/node");
    println!(
        "  jobs completed: {}; budget violations: {}",
        result.throughput(),
        result.budget_violations
    );

    // The hand-off, asserted: the incumbent gives up real watts once
    // the budget dips and the second job arrives, and the power lands
    // on the newcomer.
    assert!(
        moc_shared < moc_alone - 10.0,
        "SimpleMOC should hand off power once miniMD shares the dipped budget \
         (alone {moc_alone:.1} W, shared {moc_shared:.1} W)"
    );
    assert!(
        md_shared > 50.0,
        "the handed-off watts should land on miniMD (drawing {md_shared:.1} W/node)"
    );
    // Consumed power tracks the schedule level in force at every
    // non-violating interval (violations are the rare shallow
    // transients PerqPolicy documents).
    for iv in &result.intervals {
        if !iv.violation {
            assert!(
                iv.total_power_w <= schedule.budget_at(iv.t_s) + 1e-6,
                "consumed {:.1} W above the {:.1} W level at t={}",
                iv.total_power_w,
                schedule.budget_at(iv.t_s),
                iv.t_s
            );
        }
    }
    println!("  hand-off asserted: caps follow the budget curve and the arrival");
}
