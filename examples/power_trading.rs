//! Fig. 12 demonstration on the TCP prototype: a low-sensitivity
//! application (ASPA) starts alone on the two-node cluster; a
//! high-sensitivity application (SimpleMOC) arrives later, and PERQ
//! gradually moves the power budget to it — without hurting the
//! low-sensitivity job.
//!
//! ```text
//! cargo run --release --example power_trading
//! ```

use perq::core::{PerqConfig, PerqPolicy};
use perq::proto::{ProtoCluster, ProtoConfig};
use perq::sim::JobSpec;

fn main() {
    // Two worker nodes, worst-case budget for one node (f = 2): only
    // ~one node's worth of power to share.
    let mut config = ProtoConfig::tardis(1, 2.0, 60);
    config.trace_jobs = vec![0, 1];

    // Job 0: ASPA (index 0, low sensitivity), long runtime.
    // Job 1: SimpleMOC (index 5, high sensitivity), arrives via the queue
    // once the schedule admits it (both fit immediately; the paper's
    // staggered start comes from the FCFS queue order).
    let jobs = vec![
        JobSpec {
            id: 0,
            app_index: 0,
            size: 1,
            runtime_tdp_s: 220.0,
            runtime_estimate_s: 280.0,
            submit_s: 0.0,
        },
        JobSpec {
            id: 1,
            app_index: 5,
            size: 1,
            runtime_tdp_s: 350.0,
            runtime_estimate_s: 450.0,
            submit_s: 0.0,
        },
    ];

    let mut perq = PerqPolicy::new(PerqConfig::default());
    let result = ProtoCluster::new(config)
        .run(jobs, &mut perq)
        .expect("prototype run");

    println!("t(s)   ASPA: cap/draw(W) perf(%)  |  SimpleMOC: cap/draw(W) perf(%)");
    let t0 = result.traces.get(&0).cloned().unwrap_or_default();
    let t1 = result.traces.get(&1).cloned().unwrap_or_default();
    let peak0 = t0.points.iter().map(|p| p.ips).fold(0.0f64, f64::max);
    let peak1 = t1.points.iter().map(|p| p.ips).fold(0.0f64, f64::max);
    for k in 0..60 {
        let t = k as f64 * 10.0;
        let p0 = t0.points.iter().find(|p| (p.t_s - t).abs() < 1e-6);
        let p1 = t1.points.iter().find(|p| (p.t_s - t).abs() < 1e-6);
        let fmt = |p: Option<&perq::sim::TracePoint>, peak: f64| match p {
            Some(p) => format!(
                "{:>6.1} {:>6.1}  {:>6.1}",
                p.cap_w,
                p.power_w,
                100.0 * p.ips / peak.max(1e-9)
            ),
            None => format!("{:>6} {:>6}  {:>6}", "-", "-", "-"),
        };
        println!("{:>4.0}   {}   |  {}", t, fmt(p0, peak0), fmt(p1, peak1));
        if p0.is_none() && p1.is_none() && k > 5 {
            break;
        }
    }
    println!();
    println!(
        "jobs completed: {}; budget violations: {}",
        result.throughput(),
        result.budget_violations
    );
}
