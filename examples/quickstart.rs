//! Quickstart: run PERQ against the fairness-oriented baseline on a small
//! over-provisioned cluster and print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use perq::prelude::*;

fn main() {
    // An 8-node worst-case-provisioned system, over-provisioned to 16
    // nodes (f = 2.0): twice the hardware under the same power budget.
    let system = SystemModel::tardis();
    let f = 2.0;
    let hours = 2.0;
    let seed = 42;

    let jobs = TraceGenerator::new(system.clone(), seed).generate(400);
    let config = ClusterConfig::for_system(&system, f, hours * 3600.0);
    println!(
        "system: {} wp-nodes, f = {f} ({} total nodes), budget {:.0} W, {} queued jobs",
        config.wp_nodes,
        config.nodes,
        config.budget_w(),
        jobs.len()
    );

    // Fairness-oriented policy: equal power to every busy node.
    let mut fop = FairPolicy::new();
    let fop_result = Cluster::new(config.clone(), jobs.clone(), seed).run(&mut fop);

    // PERQ: identifies its node model on the NPB-like training suite, then
    // reallocates power by feedback.
    let mut perq = PerqPolicy::new(PerqConfig::default());
    let perq_result = Cluster::new(config, jobs, seed).run(&mut perq);

    let fairness = compare_fairness(&perq_result, &fop_result);
    println!();
    println!("                     FOP     PERQ");
    println!(
        "jobs completed    {:>6}   {:>6}",
        fop_result.throughput(),
        perq_result.throughput()
    );
    println!(
        "budget violations {:>6}   {:>6}",
        fop_result.budget_violations, perq_result.budget_violations
    );
    println!();
    println!(
        "PERQ throughput improvement over FOP: {:+.1}%",
        100.0 * (perq_result.throughput() as f64 - fop_result.throughput() as f64)
            / fop_result.throughput() as f64
    );
    println!(
        "PERQ fairness vs FOP: mean degradation {:.1}% (max {:.1}%) over {} degraded / {} compared jobs",
        fairness.mean_degradation_pct,
        fairness.max_degradation_pct,
        fairness.degraded_jobs,
        fairness.compared_jobs
    );
}
