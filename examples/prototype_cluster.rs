//! Fig. 11 material: runs the TCP prototype cluster (Tardis) under all
//! four policies at a chosen over-provisioning factor and prints
//! throughput and fairness.
//!
//! ```text
//! cargo run --release --example prototype_cluster -- [f] [jobs]
//! ```

use perq::core::{baselines, PerqConfig, PerqPolicy};
use perq::prelude::*;
use perq::proto::{ProtoCluster, ProtoConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let f: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2.0);
    let n_jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(60);
    let seed = 16;

    // 16 worker nodes like Tardis; shortened job runtimes keep the demo
    // interactive.
    let mut jobs = TraceGenerator::new(SystemModel::tardis(), seed).generate(n_jobs);
    for j in jobs.iter_mut() {
        j.runtime_tdp_s = j.runtime_tdp_s.min(900.0);
        j.runtime_estimate_s = j.runtime_tdp_s * 1.3;
    }

    println!("prototype: 16 nodes, f = {f}, {n_jobs} jobs");
    println!(
        "{:<6} {:>6} {:>10} {:>10} {:>12}",
        "policy", "jobs", "meandeg(%)", "maxdeg(%)", "decision(ms)"
    );
    let mut fop_result = None;
    for name in ["FOP", "SJS", "SRN", "PERQ"] {
        let mut policy: Box<dyn PowerPolicy> = match name {
            "FOP" => Box::new(FairPolicy::new()),
            "SJS" => Box::new(baselines::sjs()),
            "SRN" => Box::new(baselines::srn()),
            _ => Box::new(PerqPolicy::new(PerqConfig::default())),
        };
        let config = ProtoConfig::tardis(8, f, 600);
        let result = ProtoCluster::new(config)
            .run(jobs.clone(), policy.as_mut())
            .expect("prototype run");
        let (mean_deg, max_deg) = match &fop_result {
            None => (0.0, 0.0),
            Some(fop) => {
                let rep = compare_fairness(&result, fop);
                (rep.mean_degradation_pct, rep.max_degradation_pct)
            }
        };
        let mean_decision_ms = 1000.0 * result.decision_times_s.iter().sum::<f64>()
            / result.decision_times_s.len().max(1) as f64;
        println!(
            "{:<6} {:>6} {:>10.1} {:>10.1} {:>12.2}",
            name,
            result.throughput(),
            mean_deg,
            max_deg,
            mean_decision_ms
        );
        if name == "FOP" {
            fop_result = Some(result);
        }
    }
}
