//! The policy-zoo ablation: every zoo citizen crossed with the five
//! evaluation regimes, as one deterministic campaign grid.
//!
//! The regimes span the axes the paper's evaluation varies one at a
//! time — machine scale, queue pressure, workload realism, budget
//! shape, telemetry trust:
//!
//! 1. `sparse-mira` — Mira-calibrated jobs on the large machine with a
//!    draining queue (the event engine's sparse regime).
//! 2. `dense-tardis` — the saturated paper queue on the small dense
//!    testbed.
//! 3. `swf-replay` — a real SWF log replayed with its arrival gaps
//!    (falls back to a draining synthetic stream when no log is given).
//! 4. `carbon-diurnal` — the saturated queue under a time-varying
//!    (carbon/price-shaped) [`BudgetSchedule`].
//! 5. `adversarial-telemetry` — the saturated queue with lying sensors
//!    ([`FaultRates::adversarial_telemetry`]: dropouts, stale readings,
//!    corrupted power).
//!
//! Determinism: the grid is pure data, every scenario is seeded, and
//! [`crate::run_campaign`] merges telemetry in scenario-index order —
//! so the rendered table and its JSON form are byte-identical on every
//! re-run at any thread count (pinned by `tests/zoo_ablation.rs`).

use crate::{FaultSpec, PolicySpec, Scenario, ScenarioOutcome, SwfReplayOptions, WorkloadSpec};
use perq_gym::ZooSpec;
use perq_sim::{BudgetSchedule, FaultRates, JobOutcome, SimEngine, SystemModel};
use serde::{Deserialize, Serialize};

/// The zoo arms the ablation compares, in table order.
pub fn ablation_policies(seed: u64) -> Vec<PolicySpec> {
    vec![
        PolicySpec::zoo(ZooSpec::FairShare),
        PolicySpec::zoo(ZooSpec::Greedy),
        PolicySpec::zoo(ZooSpec::bandit(seed)),
        PolicySpec::zoo(ZooSpec::perq()),
        PolicySpec::zoo(ZooSpec::hybrid()),
    ]
}

/// Builds the full regimes × policies grid (regime-major order, so
/// scenario index `r * policies + p` is regime `r` under policy `p`).
///
/// `swf_path` selects the log for the replay regime; `None` substitutes
/// a draining synthetic stream so the grid stays runnable without
/// fixtures on disk.
pub fn zoo_ablation_grid(seed: u64, swf_path: Option<&str>) -> Vec<Scenario> {
    let tardis = SystemModel::tardis();
    let mira = SystemModel::mira();
    // Tardis at f = 2: budget = 8 · 290 W. The diurnal curve dips to
    // 80% of it off-peak — well above the idle floor.
    let budget_w = 8.0 * 290.0;
    let mut grid = Vec::new();
    for policy in ablation_policies(seed) {
        let mut s = Scenario::new(
            "sparse-mira",
            mira.clone(),
            1.5,
            900.0,
            seed,
            policy.clone(),
        );
        s.workload = WorkloadSpec::SyntheticLight { jobs: 48 };
        grid.push(s.with_engine(SimEngine::Event));
    }
    for policy in ablation_policies(seed) {
        grid.push(Scenario::new(
            "dense-tardis",
            tardis.clone(),
            2.0,
            1800.0,
            seed,
            policy.clone(),
        ));
    }
    for policy in ablation_policies(seed) {
        let mut s = Scenario::new(
            "swf-replay",
            tardis.clone(),
            2.0,
            1800.0,
            seed,
            policy.clone(),
        );
        match swf_path {
            Some(path) => {
                let options = SwfReplayOptions {
                    honor_arrivals: true,
                    ..SwfReplayOptions::default()
                };
                s = s.with_swf(path, options).with_engine(SimEngine::Event);
            }
            None => {
                s.workload = WorkloadSpec::SyntheticLight { jobs: 24 };
                s = s.with_engine(SimEngine::Event);
            }
        }
        grid.push(s);
    }
    for policy in ablation_policies(seed) {
        let s = Scenario::new(
            "carbon-diurnal",
            tardis.clone(),
            2.0,
            1800.0,
            seed,
            policy.clone(),
        )
        .with_budget_schedule(BudgetSchedule::diurnal(budget_w, 0.8, 1.0, 450.0, 1800.0));
        grid.push(s);
    }
    for policy in ablation_policies(seed) {
        let mut s = Scenario::new(
            "adversarial-telemetry",
            tardis.clone(),
            2.0,
            1800.0,
            seed,
            policy.clone(),
        );
        s.faults = Some(FaultSpec::Generated {
            seed: seed ^ 0xADCE,
            rates: FaultRates::adversarial_telemetry(),
        });
        grid.push(s);
    }
    grid
}

/// One policy × regime cell of the rendered ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationCell {
    /// Regime name (the scenario's name).
    pub regime: String,
    /// Policy display name (`ZOO-*`).
    pub policy: String,
    /// Completed jobs — the paper's system-throughput metric.
    pub completed: usize,
    /// Simulated seconds above the power budget.
    pub violation_s: f64,
    /// Mean runtime of completed jobs, seconds (0 when none finished).
    pub mean_runtime_s: f64,
}

/// The rendered ablation: one cell per scenario, in grid order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationTable {
    /// Cells, regime-major like the grid.
    pub cells: Vec<AblationCell>,
}

/// Folds campaign outcomes into the ablation table. Order-preserving
/// and pure, so equal outcome sets render byte-identical tables.
pub fn ablation_table(outcomes: &[ScenarioOutcome]) -> AblationTable {
    let cells = outcomes
        .iter()
        .map(|o| {
            let completed: Vec<_> = o
                .result
                .records
                .iter()
                .filter(|r| r.outcome == JobOutcome::Completed)
                .collect();
            let mean_runtime_s = if completed.is_empty() {
                0.0
            } else {
                completed.iter().map(|r| r.runtime_s()).sum::<f64>() / completed.len() as f64
            };
            AblationCell {
                regime: o.scenario.name.clone(),
                policy: o.result.policy.clone(),
                completed: completed.len(),
                violation_s: o.result.budget_violation_s,
                mean_runtime_s,
            }
        })
        .collect();
    AblationTable { cells }
}

impl AblationTable {
    /// Regime names in first-appearance order.
    pub fn regimes(&self) -> Vec<&str> {
        let mut regimes: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !regimes.contains(&c.regime.as_str()) {
                regimes.push(&c.regime);
            }
        }
        regimes
    }

    /// The cell for one `(regime, policy)` pair.
    pub fn cell(&self, regime: &str, policy: &str) -> Option<&AblationCell> {
        self.cells
            .iter()
            .find(|c| c.regime == regime && c.policy == policy)
    }

    /// `completed(a) − completed(b)` per regime — positive when `a`
    /// beats `b`, zero when they tie. The PR's acceptance gate is
    /// `compare("ZOO-HYBRID", "ZOO-PERQ")` non-negative on most regimes.
    pub fn compare(&self, a: &str, b: &str) -> Vec<(String, i64)> {
        self.regimes()
            .iter()
            .filter_map(|&regime| {
                let ca = self.cell(regime, a)?;
                let cb = self.cell(regime, b)?;
                Some((
                    regime.to_string(),
                    ca.completed as i64 - cb.completed as i64,
                ))
            })
            .collect()
    }

    /// Renders the fixed-width text table (regimes as row groups).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:<12} {:>9} {:>12} {:>14}\n",
            "regime", "policy", "completed", "violation_s", "mean_runtime_s"
        ));
        out.push_str(&"-".repeat(73));
        out.push('\n');
        for c in &self.cells {
            out.push_str(&format!(
                "{:<22} {:<12} {:>9} {:>12.1} {:>14.1}\n",
                c.regime, c.policy, c.completed, c.violation_s, c.mean_runtime_s
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_five_by_five_and_regime_major() {
        let grid = zoo_ablation_grid(7, None);
        assert_eq!(grid.len(), 25);
        let names: Vec<_> = grid.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names[0..5], ["sparse-mira"; 5]);
        assert_eq!(names[20..25], ["adversarial-telemetry"; 5]);
        let policies: Vec<_> = grid[0..5].iter().map(|s| s.policy.name()).collect();
        assert_eq!(
            policies,
            [
                "ZOO-FAIR",
                "ZOO-GREEDY",
                "ZOO-BANDIT",
                "ZOO-PERQ",
                "ZOO-HYBRID"
            ]
        );
        // PERQ-based arms share one model spec → one training run.
        let specs: Vec<_> = grid
            .iter()
            .filter_map(|s| match &s.policy {
                PolicySpec::Zoo { model, .. } => model.clone(),
                _ => None,
            })
            .collect();
        assert_eq!(specs.len(), 10, "two model-backed arms per regime");
        assert!(specs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn swf_path_lands_on_the_replay_regime_only() {
        let grid = zoo_ablation_grid(7, Some("some/log.swf"));
        let swf_count = grid
            .iter()
            .filter(|s| matches!(s.workload, WorkloadSpec::Swf { .. }))
            .count();
        assert_eq!(swf_count, 5);
        assert!(grid
            .iter()
            .filter(|s| matches!(s.workload, WorkloadSpec::Swf { .. }))
            .all(|s| s.name == "swf-replay"));
    }
}
