//! Deterministic parallel campaign engine.
//!
//! The paper's entire evaluation is a grid of *independent* seeded
//! simulations — budgets × policies × traces × fault plans. This crate
//! runs such grids across worker threads while keeping every observable
//! output **byte-identical to the serial run**:
//!
//! - Each [`Scenario`] is fully specified by data (system, seed, policy
//!   spec, fault spec, workload spec — synthetic generator or SWF trace
//!   file), so a worker needs no shared mutable state.
//! - Every clock involved is simulated; nothing reads wall time except
//!   the per-decision latency samples, which are excluded from
//!   determinism comparisons ([`perq_sim::SimResult::same_simulation`]).
//! - Each worker records into its own `telemetry::Recorder`; the engine
//!   folds them into the caller's recorder in **scenario-index order**
//!   (counters add, histograms merge, journals append), so the merged
//!   export does not depend on thread count or completion order.
//!
//! See DESIGN.md §8 for the worker model and the determinism argument.

pub use perq_sim::{parallel_for_mut, parallel_map};

mod ablation;
pub use ablation::{
    ablation_policies, ablation_table, zoo_ablation_grid, AblationCell, AblationTable,
};

use perq_core::{
    baselines, train_node_model, train_node_model_with, CouplingAuthority, NodeModel, PerqConfig,
    PerqPolicy,
};
use perq_gym::{RewardSpec, ZooDriver, ZooSpec};
use perq_sim::{
    BudgetAuthority, BudgetSchedule, Cluster, ClusterConfig, FairPolicy, FaultPlan, FaultRates,
    HierSim, HierTopology, JobSpec, PowerPolicy, ProportionalAuthority, SimEngine, SimResult,
    SwfImportSummary, SystemModel, TenantSpec, TraceGenerator, TraceSource,
};
use perq_telemetry::{FieldValue, Recorder};
use perq_trace::{parse_swf_report, ParseMode, SwfTrace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Which node model a PERQ scenario trains (cached across the campaign:
/// scenarios sharing a spec share one training run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// The paper's protocol: NPB-like training suite, 10 s interval.
    Npb {
        /// Identification seed.
        seed: u64,
    },
    /// Trained on the evaluation (ECP) suite — the ablation's
    /// "what if the model saw the evaluation apps" arm.
    EcpSuite {
        /// Sampling interval, seconds.
        interval_s: f64,
        /// Excitation record length per application.
        steps_per_app: usize,
        /// Identification seed.
        seed: u64,
    },
}

impl ModelSpec {
    fn train(&self) -> NodeModel {
        match *self {
            ModelSpec::Npb { seed } => train_node_model(seed).0,
            ModelSpec::EcpSuite {
                interval_s,
                steps_per_app,
                seed,
            } => train_node_model_with(perq_apps::ecp_suite(), interval_s, steps_per_app, seed).0,
        }
    }
}

/// The policy a scenario runs — a pure-data description, so scenario
/// files round-trip through serde and two scenarios with equal specs
/// produce bit-identical policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Fairness-oriented policy: equal power everywhere.
    Fop,
    /// Smallest job size first.
    Sjs,
    /// Largest job size first.
    Ljs,
    /// Smallest remaining node-hours first (oracle baseline).
    Srn,
    /// The PERQ controller.
    Perq {
        /// Controller configuration.
        config: PerqConfig,
        /// Node-model training recipe.
        model: ModelSpec,
    },
    /// A policy-zoo citizen (`perq-gym`) driven through its
    /// [`ZooDriver`] adapter: fair-share/greedy baselines, the
    /// tabular-Q bandit, wrapped PERQ, or the forecaster hybrid —
    /// under a selectable reward shaping whose scores land on the
    /// scenario's recorder as `perq_gym_*` metrics.
    Zoo {
        /// Which zoo citizen runs.
        zoo: ZooSpec,
        /// Reward shaping the driver scores transitions with.
        reward: RewardSpec,
        /// Node-model recipe for the PERQ-based citizens; `None` for
        /// the model-free ones (or to train inline from the citizen's
        /// own training seed — deterministic, but uncached).
        model: Option<ModelSpec>,
    },
}

impl PolicySpec {
    /// The standard PERQ arm: default configuration, NPB model with the
    /// default training seed.
    pub fn perq_default() -> Self {
        let config = PerqConfig::default();
        let model = ModelSpec::Npb {
            seed: config.training_seed,
        };
        PolicySpec::Perq { config, model }
    }

    /// PERQ with an explicit model recipe and otherwise-default config.
    pub fn perq_with_model(model: ModelSpec) -> Self {
        PolicySpec::Perq {
            config: PerqConfig::default(),
            model,
        }
    }

    /// The paper's PERQ-T ablation arm: the system-throughput weight
    /// scaled 1000x, which makes the controller throughput-only.
    pub fn perq_throughput(model: ModelSpec) -> Self {
        let mut config = PerqConfig::default();
        config.mpc.wt_sys *= 1000.0;
        PolicySpec::Perq { config, model }
    }

    /// The standard PERQ arm under a non-default solver precision/layout
    /// profile (`f64_soa`, `f32_soa`, `mixed_soa`) — the knob a campaign
    /// uses to A/B decide-latency profiles against the `f64_aos`
    /// reference arm. Round-trips through serde like every other spec
    /// field; old scenario files without the field deserialize to the
    /// reference profile.
    pub fn perq_with_profile(profile: perq_core::SolverProfile) -> Self {
        let mut config = PerqConfig::default();
        config.solver_profile = profile;
        let model = ModelSpec::Npb {
            seed: config.training_seed,
        };
        PolicySpec::Perq { config, model }
    }

    /// A zoo arm under the balanced default shaping, carrying the model
    /// recipe the citizen needs (NPB at the citizen's training seed; the
    /// model-free citizens carry none) so campaign grids share one
    /// training run across zoo and plain-PERQ arms.
    pub fn zoo(zoo: ZooSpec) -> Self {
        let model = zoo.training_seed().map(|seed| ModelSpec::Npb { seed });
        PolicySpec::Zoo {
            zoo,
            reward: RewardSpec::default(),
            model,
        }
    }

    /// [`PolicySpec::zoo`] with an explicit reward shaping.
    pub fn zoo_with_reward(zoo: ZooSpec, reward: RewardSpec) -> Self {
        let model = zoo.training_seed().map(|seed| ModelSpec::Npb { seed });
        PolicySpec::Zoo { zoo, reward, model }
    }

    /// Display name (also what `SimResult::policy` will report).
    pub fn name(&self) -> &'static str {
        match self {
            PolicySpec::Fop => "FOP",
            PolicySpec::Sjs => "SJS",
            PolicySpec::Ljs => "LJS",
            PolicySpec::Srn => "SRN",
            PolicySpec::Perq { .. } => "PERQ",
            PolicySpec::Zoo { zoo, .. } => zoo.name(),
        }
    }

    /// The model spec this policy needs trained, if any.
    fn model_spec(&self) -> Option<&ModelSpec> {
        match self {
            PolicySpec::Perq { model, .. } => Some(model),
            PolicySpec::Zoo { model, .. } => model.as_ref(),
            _ => None,
        }
    }

    /// Instantiates the policy. `models` must hold an entry for this
    /// policy's [`ModelSpec`] (the engine pre-trains them). `Send`
    /// because hierarchical scenarios run one instance per enclave on
    /// the enclave worker pool.
    fn build(&self, models: &BTreeMap<String, NodeModel>) -> Box<dyn PowerPolicy + Send> {
        match self {
            PolicySpec::Fop => Box::new(FairPolicy::new()),
            PolicySpec::Sjs => Box::new(baselines::sjs()),
            PolicySpec::Ljs => Box::new(baselines::ljs()),
            PolicySpec::Srn => Box::new(baselines::srn()),
            PolicySpec::Perq { config, model } => {
                let trained = models
                    .get(&model_key(model))
                    .expect("engine pre-trains every referenced model");
                Box::new(PerqPolicy::with_model(trained.clone(), config.clone()))
            }
            PolicySpec::Zoo { zoo, reward, model } => {
                let trained = model.as_ref().map(|m| {
                    models
                        .get(&model_key(m))
                        .expect("engine pre-trains every referenced model")
                });
                Box::new(ZooDriver::new(zoo.build(trained), reward.clone()))
            }
        }
    }
}

/// Cache key for a [`ModelSpec`] (its Debug form is injective over the
/// spec's fields and deterministic).
fn model_key(spec: &ModelSpec) -> String {
    format!("{spec:?}")
}

/// A campaign could not run a scenario — in practice, a workload trace
/// file that does not exist, does not parse, or yields no jobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignError {
    /// Scenario the failure belongs to.
    pub scenario: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario '{}': {}", self.scenario, self.message)
    }
}

impl std::error::Error for CampaignError {}

/// Deterministic replay options for an SWF workload. Transforms apply
/// in a fixed order — window slice (in *logged* seconds), arrival
/// scaling, node rescaling onto the scenario system's `N_WP`, runtime
/// clamp — so a spec fully determines the replayed jobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwfReplayOptions {
    /// Arrival-rate scaling factor (the paper's knob; 1.0 = as logged).
    pub arrival_scale: f64,
    /// Optional submit-time window `[start, end)`, sliced before any
    /// other transform.
    pub window_s: Option<(f64, f64)>,
    /// Rescale the log's machine onto the scenario system's `wp_nodes`.
    pub rescale_to_wp: bool,
    /// Optional runtime clamp `[min, max]`, seconds.
    pub clamp_runtime_s: Option<(f64, f64)>,
    /// Power-synthesis seed; `None` uses the scenario seed.
    pub synth_seed: Option<u64>,
    /// Parse leniently (skip malformed lines) instead of failing on the
    /// first one. Lenient is the default: archive logs carry warts.
    pub lenient: bool,
    /// Honour the log's submit times (rebased so the first job arrives
    /// at `t = 0`) instead of making every job ready at `t = 0`. Off by
    /// default — the saturated queue reproduces the paper's setup —
    /// but arrivals are what expose the dead time the event engine
    /// skips. Missing in older scenario files, hence the serde default.
    #[serde(default)]
    pub honor_arrivals: bool,
}

impl Default for SwfReplayOptions {
    fn default() -> Self {
        SwfReplayOptions {
            arrival_scale: 1.0,
            window_s: None,
            rescale_to_wp: true,
            clamp_runtime_s: None,
            synth_seed: None,
            lenient: true,
            honor_arrivals: false,
        }
    }
}

/// Where a scenario's jobs come from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum WorkloadSpec {
    /// The seeded synthetic saturating trace calibrated to the
    /// scenario's [`SystemModel`] (the default, and the pre-SWF
    /// behaviour).
    #[default]
    Synthetic,
    /// A light, fixed-count synthetic stream from the same seeded
    /// generator: the queue drains, so the scenario exercises
    /// arrival/drain dynamics and idle headroom instead of the
    /// paper's saturated queue.
    SyntheticLight {
        /// Number of jobs to generate.
        jobs: usize,
    },
    /// An SWF log replayed through `perq-trace` → [`TraceSource`].
    Swf {
        /// Path to the SWF file, resolved when the scenario runs.
        path: String,
        /// Transform and synthesis options.
        options: SwfReplayOptions,
    },
}

/// Fault injection for a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultSpec {
    /// Plan generated from Poisson rates under a seed (deterministic).
    Generated {
        /// Plan generation seed.
        seed: u64,
        /// Per-step event rates.
        rates: FaultRates,
    },
    /// An explicit, fully materialised plan.
    Plan(FaultPlan),
}

impl FaultSpec {
    fn materialise(&self, steps: usize) -> FaultPlan {
        match self {
            FaultSpec::Generated { seed, rates } => FaultPlan::generate(*seed, steps, rates),
            FaultSpec::Plan(plan) => plan.clone(),
        }
    }
}

/// Which coordinator divides the budget in a hierarchical scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AuthoritySpec {
    /// The coupling-QP coordinator from `perq-core` (the default).
    #[default]
    CouplingQp,
    /// The closed-form weighted water-fill.
    Proportional,
}

impl AuthoritySpec {
    /// Instantiates the coordinator.
    pub fn build(&self) -> Box<dyn BudgetAuthority> {
        match self {
            AuthoritySpec::CouplingQp => Box::new(CouplingAuthority::new()),
            AuthoritySpec::Proportional => Box::new(ProportionalAuthority),
        }
    }
}

fn default_coordination_intervals() -> usize {
    6
}

/// How a scenario's machine is organised: one flat controller (the
/// paper's setup, and the default so older scenario files keep their
/// meaning), or a coordinator over independent per-enclave controllers
/// (`perq_sim::HierSim`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TopologySpec {
    /// One cluster, one controller.
    #[default]
    Flat,
    /// `count` enclaves under a budget coordinator.
    Enclaves {
        /// Number of enclaves (1 degenerates to the flat controller,
        /// byte-identically).
        count: usize,
        /// Tenant fairness weights, assigned to enclaves round-robin;
        /// empty means one weight-1 tenant.
        #[serde(default)]
        tenant_weights: Vec<f64>,
        /// Coordination epoch length in control intervals.
        #[serde(default = "default_coordination_intervals")]
        coordination_intervals: usize,
        /// The coordinator.
        #[serde(default)]
        authority: AuthoritySpec,
    },
}

impl TopologySpec {
    /// An `Enclaves` spec with the default tenant set, coordination
    /// epoch, and authority — the CLI's `topology=enclaves:N` form.
    pub fn enclaves(count: usize) -> Self {
        TopologySpec::Enclaves {
            count,
            tenant_weights: Vec::new(),
            coordination_intervals: default_coordination_intervals(),
            authority: AuthoritySpec::default(),
        }
    }

    /// The [`HierTopology`] this spec induces, when hierarchical.
    pub fn hier_topology(&self) -> Option<HierTopology> {
        match self {
            TopologySpec::Flat => None,
            TopologySpec::Enclaves {
                count,
                tenant_weights,
                coordination_intervals,
                ..
            } => Some(HierTopology {
                enclaves: *count,
                tenants: tenant_weights
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| TenantSpec::weighted(i, w))
                    .collect(),
                coordination_intervals: *coordination_intervals,
            }),
        }
    }
}

/// One cell of a campaign grid: everything needed to reproduce a single
/// simulation, as data. The power budget is encoded by `f` (the budget
/// is `wp_nodes · TDP` and the machine has `f · wp_nodes` nodes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Label used in logs and journal events.
    pub name: String,
    /// System under evaluation (node counts, trace calibration).
    pub system: SystemModel,
    /// Over-provisioning factor.
    pub f: f64,
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Control interval, seconds.
    pub interval_s: f64,
    /// Trace + noise + RAPL seed.
    pub seed: u64,
    /// The policy to run.
    pub policy: PolicySpec,
    /// Optional fault injection.
    pub faults: Option<FaultSpec>,
    /// Job ids whose full power/IPS traces are recorded.
    pub trace_jobs: Vec<u64>,
    /// The workload source (synthetic generator or SWF replay).
    #[serde(default)]
    pub workload: WorkloadSpec,
    /// Which simulator core executes the run. Both produce identical
    /// results ([`SimResult::same_simulation`] and byte-identical
    /// recorder exports); `Event` skips dead time. Defaults to `Step`
    /// so older scenario files keep their meaning.
    #[serde(default)]
    pub engine: SimEngine,
    /// Flat controller or coordinator-over-enclaves. Defaults to flat
    /// (the paper's setup; older scenario files deserialize to it).
    #[serde(default)]
    pub topology: TopologySpec,
    /// Time-varying power budget (carbon-intensity or price curves).
    /// `None` — the default, and what older scenario files deserialize
    /// to — keeps the flat `wp_nodes · TDP` budget bit-identically.
    /// Flat topologies only: enclave scenarios carry their budget
    /// through the coordinator's grants instead.
    #[serde(default)]
    pub budget_schedule: Option<BudgetSchedule>,
}

impl Scenario {
    /// A standard scenario with the default 10 s interval, no faults,
    /// and no traced jobs.
    pub fn new(
        name: impl Into<String>,
        system: SystemModel,
        f: f64,
        duration_s: f64,
        seed: u64,
        policy: PolicySpec,
    ) -> Self {
        Scenario {
            name: name.into(),
            system,
            f,
            duration_s,
            interval_s: 10.0,
            seed,
            policy,
            faults: None,
            trace_jobs: Vec::new(),
            workload: WorkloadSpec::default(),
            engine: SimEngine::default(),
            topology: TopologySpec::default(),
            budget_schedule: None,
        }
    }

    /// Installs a time-varying budget schedule (builder style). Only
    /// valid on flat topologies — running an enclave scenario with a
    /// schedule is a [`CampaignError`].
    pub fn with_budget_schedule(mut self, schedule: BudgetSchedule) -> Self {
        self.budget_schedule = Some(schedule);
        self
    }

    /// Switches the scenario onto an SWF workload.
    pub fn with_swf(mut self, path: impl Into<String>, options: SwfReplayOptions) -> Self {
        self.workload = WorkloadSpec::Swf {
            path: path.into(),
            options,
        };
        self
    }

    /// Selects the simulator core for this scenario.
    pub fn with_engine(mut self, engine: SimEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the machine organisation (builder style).
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }

    /// The cluster configuration this scenario induces.
    pub fn cluster_config(&self) -> ClusterConfig {
        let mut config = ClusterConfig::for_system(&self.system, self.f, self.duration_s);
        config.interval_s = self.interval_s;
        config.trace_jobs = self.trace_jobs.clone();
        if let WorkloadSpec::Swf { options, .. } = &self.workload {
            config.honor_arrivals = options.honor_arrivals;
        }
        config
    }

    /// Builds the scenario's job queue: the seeded synthetic saturating
    /// trace, or the SWF file parsed, transformed, and power-synthesised
    /// per the [`SwfReplayOptions`]. Pure function of the scenario spec
    /// and the file's bytes.
    pub fn jobs(&self) -> Result<(Vec<JobSpec>, Option<SwfImportSummary>), CampaignError> {
        let config = self.cluster_config();
        match &self.workload {
            WorkloadSpec::Synthetic => Ok((
                TraceGenerator::new(self.system.clone(), self.seed)
                    .generate_saturating(config.nodes, self.duration_s),
                None,
            )),
            WorkloadSpec::SyntheticLight { jobs } => Ok((
                TraceGenerator::new(self.system.clone(), self.seed).generate(*jobs),
                None,
            )),
            WorkloadSpec::Swf { path, options } => {
                let err = |message: String| CampaignError {
                    scenario: self.name.clone(),
                    message,
                };
                let text = std::fs::read_to_string(path)
                    .map_err(|e| err(format!("cannot read trace '{path}': {e}")))?;
                let mode = if options.lenient {
                    ParseMode::Lenient
                } else {
                    ParseMode::Strict
                };
                let report = parse_swf_report(&text, mode)
                    .map_err(|e| err(format!("trace '{path}': {e}")))?;
                let mut trace: SwfTrace = report.trace;
                if let Some((start, end)) = options.window_s {
                    trace.slice_window(start, end);
                }
                if options.arrival_scale != 1.0 {
                    trace.scale_arrivals(options.arrival_scale);
                }
                if options.rescale_to_wp {
                    trace.rescale_nodes(self.system.wp_nodes);
                }
                if let Some((min_s, max_s)) = options.clamp_runtime_s {
                    trace.clamp_runtime(min_s, max_s);
                }
                let synth_seed = options.synth_seed.unwrap_or(self.seed);
                let (jobs, summary) = TraceSource::new(trace, synth_seed)
                    .with_estimate_factor(self.system.estimate_factor)
                    .with_arrivals(options.honor_arrivals)
                    .jobs();
                if jobs.is_empty() {
                    return Err(err(format!(
                        "trace '{path}' yields no runnable jobs after transforms"
                    )));
                }
                Ok((jobs, Some(summary)))
            }
        }
    }

    /// Runs the scenario in isolation, recording into `recorder`.
    /// Deterministic: two calls with equal specs produce results for
    /// which [`SimResult::same_simulation`] holds and byte-identical
    /// recorder exports.
    ///
    /// Panics when an SWF workload fails to load; [`Scenario::try_run`]
    /// is the fallible form.
    pub fn run(&self, models: &BTreeMap<String, NodeModel>, recorder: Recorder) -> SimResult {
        self.try_run(models, recorder)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Scenario::run`], with workload failures surfaced as errors.
    pub fn try_run(
        &self,
        models: &BTreeMap<String, NodeModel>,
        recorder: Recorder,
    ) -> Result<SimResult, CampaignError> {
        self.try_run_with(models, recorder, 1)
    }

    /// [`Scenario::try_run`] with an explicit enclave worker-thread
    /// count for hierarchical scenarios (ignored for flat ones; the
    /// run is byte-identical at any count either way).
    pub fn try_run_with(
        &self,
        models: &BTreeMap<String, NodeModel>,
        recorder: Recorder,
        enclave_threads: usize,
    ) -> Result<SimResult, CampaignError> {
        let config = self.cluster_config();
        let steps = (config.duration_s / config.interval_s).ceil() as usize;
        let (jobs, import) = self.jobs()?;
        if let Some(summary) = import {
            summary.record_into(&recorder);
        }
        if let Some(topology) = self.topology.hier_topology() {
            if self.budget_schedule.is_some() {
                return Err(CampaignError {
                    scenario: self.name.clone(),
                    message: "budget schedules apply to flat topologies only; enclave \
                              scenarios receive their time-varying budget through the \
                              coordinator's grants"
                        .into(),
                });
            }
            let authority = match &self.topology {
                TopologySpec::Enclaves { authority, .. } => authority.build(),
                TopologySpec::Flat => unreachable!("hier_topology returned Some"),
            };
            let policies: Vec<Box<dyn PowerPolicy + Send>> = (0..topology.enclaves)
                .map(|_| self.policy.build(models))
                .collect();
            let mut sim = HierSim::new(config, jobs, self.seed, topology, policies)
                .with_engine(self.engine)
                .with_threads(enclave_threads)
                .with_recorder(recorder)
                .with_authority(authority);
            if let Some(faults) = &self.faults {
                // The flat fault plan lands on enclave 0 — on a
                // 1-enclave topology that is exactly the flat plan,
                // preserving the differential contract.
                sim = sim.with_fault_plan(faults.materialise(steps));
            }
            return Ok(sim.run().combined());
        }
        let mut policy = self.policy.build(models);
        let mut cluster = Cluster::new(config, jobs, self.seed).with_recorder(recorder);
        if let Some(schedule) = &self.budget_schedule {
            cluster = cluster.with_budget_schedule(schedule.clone());
        }
        if let Some(faults) = &self.faults {
            cluster = cluster.with_fault_plan(faults.materialise(steps));
        }
        Ok(cluster.run_engine(policy.as_mut(), self.engine))
    }
}

/// Runs a truncated copy of `scenario` under **both** engines and
/// checks they agree — [`SimResult::same_simulation`] plus
/// byte-identical Prometheus and JSONL exports. `steps` bounds the
/// truncated run's length in control intervals.
///
/// Trains the scenario's models from scratch; inside a campaign the
/// engine calls the shared-model variant instead.
pub fn verify_engine_parity(scenario: &Scenario, steps: usize) -> Result<(), CampaignError> {
    let models = train_referenced_models(std::slice::from_ref(scenario), 1);
    engine_parity_check(scenario, steps, &models)
}

fn engine_parity_check(
    scenario: &Scenario,
    steps: usize,
    models: &BTreeMap<String, NodeModel>,
) -> Result<(), CampaignError> {
    assert!(steps > 0, "parity check needs at least one step");
    let mut short = scenario.clone();
    short.duration_s = short.duration_s.min(steps as f64 * short.interval_s);
    let run = |engine: SimEngine| -> Result<(SimResult, String, String), CampaignError> {
        let recorder = Recorder::manual();
        let result = short
            .clone()
            .with_engine(engine)
            .try_run(models, recorder.clone())?;
        Ok((
            result,
            recorder.export_prometheus(),
            recorder.export_jsonl(),
        ))
    };
    let (step, step_prom, step_jsonl) = run(SimEngine::Step)?;
    let (event, event_prom, event_jsonl) = run(SimEngine::Event)?;
    let fail = |what: &str| {
        Err(CampaignError {
            scenario: scenario.name.clone(),
            message: format!(
                "engine parity preflight over {steps} steps: step and event engines \
                 disagree on {what}"
            ),
        })
    };
    if !step.same_simulation(&event) {
        return fail("the simulation result");
    }
    if step_prom != event_prom {
        return fail("the Prometheus export");
    }
    if step_jsonl != event_jsonl {
        return fail("the JSONL journal");
    }
    Ok(())
}

/// Campaign execution options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignOptions {
    /// Worker threads; `1` runs strictly serially.
    pub threads: usize,
    /// When non-zero, every scenario that selects [`SimEngine::Event`]
    /// first runs a truncated copy (this many control intervals) under
    /// both engines and the campaign refuses to start if they disagree.
    /// `0` (the default) skips the preflight.
    #[serde(default)]
    pub parity_preflight_steps: usize,
    /// Worker threads for the enclave fan-out *inside* each
    /// hierarchical scenario (`0`/`1` = serial). Composes with
    /// `threads`: a campaign can parallelise across scenarios, within
    /// them, or both — every combination is byte-identical.
    #[serde(default)]
    pub enclave_threads: usize,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            threads: 1,
            parity_preflight_steps: 0,
            enclave_threads: 1,
        }
    }
}

/// One scenario's outcome.
#[derive(Debug, Serialize)]
pub struct ScenarioOutcome {
    /// The scenario that ran (by value, for self-contained reports).
    pub scenario: Scenario,
    /// Its simulation result.
    pub result: SimResult,
}

/// Runs a scenario grid across up to `opts.threads` workers.
///
/// Results come back in scenario order. If `recorder` is live, each
/// worker records into a private manual-clock recorder and the engine
/// merges them into `recorder` in scenario-index order after the
/// fan-out, then emits one `perq_campaign_scenario` journal event per
/// scenario — so the merged export is a pure function of the grid,
/// independent of thread count and completion order.
pub fn run_campaign(
    scenarios: &[Scenario],
    opts: &CampaignOptions,
    recorder: &Recorder,
) -> Vec<ScenarioOutcome> {
    try_run_campaign(scenarios, opts, recorder).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_campaign`], with workload failures surfaced as errors: every
/// SWF workload is loaded once up front (serially, before any model is
/// trained or worker spawned), so a misnamed trace file fails fast with
/// the scenario's name instead of panicking inside a worker thread.
pub fn try_run_campaign(
    scenarios: &[Scenario],
    opts: &CampaignOptions,
    recorder: &Recorder,
) -> Result<Vec<ScenarioOutcome>, CampaignError> {
    for scenario in scenarios {
        if matches!(scenario.workload, WorkloadSpec::Swf { .. }) {
            scenario.jobs()?;
        }
        // Fail fast (with the scenario's name, before any training or
        // worker spawn) instead of panicking inside a worker thread.
        if scenario.budget_schedule.is_some() && scenario.topology.hier_topology().is_some() {
            return Err(CampaignError {
                scenario: scenario.name.clone(),
                message: "budget schedules apply to flat topologies only; enclave \
                          scenarios receive their time-varying budget through the \
                          coordinator's grants"
                    .into(),
            });
        }
    }
    let models = train_referenced_models(scenarios, opts.threads);
    if opts.parity_preflight_steps > 0 {
        for scenario in scenarios {
            if scenario.engine == SimEngine::Event {
                engine_parity_check(scenario, opts.parity_preflight_steps, &models)?;
            }
        }
    }
    let collect = recorder.enabled();
    let runs: Vec<(Recorder, SimResult)> = parallel_map(scenarios, opts.threads, |_i, scenario| {
        let worker = if collect {
            Recorder::manual()
        } else {
            Recorder::noop()
        };
        let result = scenario
            .try_run_with(&models, worker.clone(), opts.enclave_threads)
            .unwrap_or_else(|e| panic!("{e}"));
        (worker, result)
    });

    let mut outcomes = Vec::with_capacity(runs.len());
    for (scenario, (worker, result)) in scenarios.iter().zip(runs) {
        // Fixed fold order: scenario index. This is the determinism
        // linchpin — see the crate docs.
        recorder.merge_from(&worker);
        if recorder.enabled() {
            recorder.counter_inc("perq_campaign_scenarios_total");
            recorder.event(
                "perq_campaign_scenario",
                &[
                    ("index", FieldValue::U64(outcomes.len() as u64)),
                    ("seed", FieldValue::U64(scenario.seed)),
                    ("policy", FieldValue::Str(scenario.policy.name())),
                    ("throughput", FieldValue::U64(result.throughput() as u64)),
                    (
                        "budget_violations",
                        FieldValue::U64(result.budget_violations as u64),
                    ),
                    ("faults", FieldValue::U64(result.faults.len() as u64)),
                ],
            );
        }
        outcomes.push(ScenarioOutcome {
            scenario: scenario.clone(),
            result,
        });
    }
    Ok(outcomes)
}

/// Pre-trains every distinct node model the grid references, in
/// parallel, keyed so scenarios sharing a spec share the training run.
fn train_referenced_models(scenarios: &[Scenario], threads: usize) -> BTreeMap<String, NodeModel> {
    let mut specs: Vec<ModelSpec> = Vec::new();
    for scenario in scenarios {
        if let Some(spec) = scenario.policy.model_spec() {
            if !specs.iter().any(|s| s == spec) {
                specs.push(spec.clone());
            }
        }
    }
    let trained = parallel_map(&specs, threads, |_i, spec| spec.train());
    specs
        .into_iter()
        .zip(trained)
        .map(|(spec, model)| (model_key(&spec), model))
        .collect()
}

/// A fig8-style grid: PERQ tracking runs (traced jobs, f = 2) across a
/// seed range, used by the scaling bench and the CLI default.
pub fn fig8_style_grid(
    system: SystemModel,
    duration_s: f64,
    seeds: std::ops::Range<u64>,
) -> Vec<Scenario> {
    seeds
        .map(|seed| {
            let mut s = Scenario::new(
                format!("fig8-seed{seed}"),
                system.clone(),
                2.0,
                duration_s,
                seed,
                PolicySpec::perq_default(),
            );
            s.trace_jobs = (0..16).collect();
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> Vec<Scenario> {
        let system = SystemModel::tardis();
        let mut grid = vec![
            Scenario::new("fop-a", system.clone(), 1.5, 900.0, 3, PolicySpec::Fop),
            Scenario::new("sjs-b", system.clone(), 2.0, 900.0, 4, PolicySpec::Sjs),
            Scenario::new("srn-c", system.clone(), 1.0, 900.0, 5, PolicySpec::Srn),
        ];
        grid[1].faults = Some(FaultSpec::Generated {
            seed: 13,
            rates: FaultRates::aggressive(),
        });
        grid
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let grid = tiny_grid();
        let serial = run_campaign(
            &grid,
            &CampaignOptions {
                threads: 1,
                ..Default::default()
            },
            &Recorder::noop(),
        );
        for threads in [2, 8] {
            let par = run_campaign(
                &grid,
                &CampaignOptions {
                    threads,
                    ..Default::default()
                },
                &Recorder::noop(),
            );
            assert_eq!(par.len(), serial.len());
            for (a, b) in serial.iter().zip(par.iter()) {
                assert_eq!(a.scenario, b.scenario);
                assert!(
                    a.result.same_simulation(&b.result),
                    "scenario {} diverged at {threads} threads",
                    a.scenario.name
                );
            }
        }
    }

    #[test]
    fn exports_are_byte_identical_across_thread_counts() {
        let grid = tiny_grid();
        let export = |threads: usize| {
            let recorder = Recorder::manual();
            run_campaign(
                &grid,
                &CampaignOptions {
                    threads,
                    ..Default::default()
                },
                &recorder,
            );
            (recorder.export_prometheus(), recorder.export_jsonl())
        };
        let (prom1, jsonl1) = export(1);
        assert!(!prom1.is_empty());
        assert!(jsonl1.contains("perq_campaign_scenario"));
        for threads in [2, 8] {
            let (prom, jsonl) = export(threads);
            assert_eq!(prom, prom1, "prometheus diverged at {threads} threads");
            assert_eq!(jsonl, jsonl1, "jsonl diverged at {threads} threads");
        }
    }

    #[test]
    fn fault_specs_materialise_deterministically() {
        let mut scenario = tiny_grid().remove(1);
        scenario.name = "faulty".into();
        let run = || {
            let out = run_campaign(
                std::slice::from_ref(&scenario),
                &CampaignOptions {
                    threads: 1,
                    ..Default::default()
                },
                &Recorder::noop(),
            );
            out.into_iter().next().unwrap().result
        };
        let a = run();
        let b = run();
        assert!(!a.faults.is_empty(), "aggressive rates must apply faults");
        assert!(a.same_simulation(&b));
    }

    #[test]
    fn event_engine_campaign_matches_step_engine_campaign() {
        let grid = tiny_grid();
        let event_grid: Vec<Scenario> = grid
            .iter()
            .map(|s| s.clone().with_engine(SimEngine::Event))
            .collect();
        let run = |grid: &[Scenario]| {
            let recorder = Recorder::manual();
            let out = run_campaign(grid, &CampaignOptions::default(), &recorder);
            let results: Vec<SimResult> = out.into_iter().map(|o| o.result).collect();
            (
                results,
                recorder.export_prometheus(),
                recorder.export_jsonl(),
            )
        };
        let (step, step_prom, step_jsonl) = run(&grid);
        let (event, event_prom, event_jsonl) = run(&event_grid);
        for (a, b) in step.iter().zip(event.iter()) {
            assert!(a.same_simulation(b), "engines diverged on {}", a.policy);
        }
        assert_eq!(step_prom, event_prom);
        assert_eq!(step_jsonl, event_jsonl);
    }

    #[test]
    fn parity_preflight_accepts_equivalent_engines() {
        let scenario = tiny_grid().remove(1).with_engine(SimEngine::Event);
        verify_engine_parity(&scenario, 20).expect("engines must agree on the prefix");
        let opts = CampaignOptions {
            threads: 2,
            parity_preflight_steps: 10,
            ..Default::default()
        };
        let out = try_run_campaign(&[scenario], &opts, &Recorder::noop())
            .expect("preflight must pass for equivalent engines");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn scenario_round_trips_through_policy_names() {
        assert_eq!(PolicySpec::Fop.name(), "FOP");
        assert_eq!(PolicySpec::perq_default().name(), "PERQ");
        let grid = fig8_style_grid(SystemModel::tardis(), 600.0, 0..3);
        assert_eq!(grid.len(), 3);
        assert!(grid.iter().all(|s| s.trace_jobs.len() == 16));
        assert_eq!(grid[2].seed, 2);
    }
}
