//! Order-preserving fan-out primitive.
//!
//! [`parallel_map`] is the only concurrency the campaign engine uses:
//! every scenario is shared-nothing (its own RNGs, its own recorder),
//! workers pull items off an atomic queue, and results land in a slot
//! vector indexed by item — so the output order is *item* order, never
//! completion order. Everything downstream (telemetry merges, result
//! aggregation) folds in that fixed order, which is what makes exports
//! byte-identical across thread counts.

/// Applies `f(index, item)` to every item using up to `threads` worker
/// threads and returns the results in item order.
///
/// `threads <= 1` (or a single item) runs strictly serially on the
/// caller thread. With the `parallel` feature the fan-out runs on a
/// dedicated rayon pool of exactly `threads` threads; without it, a
/// `std::thread::scope` pool with an atomic work index provides the
/// same semantics, so the engine is parallel even in minimal builds.
///
/// `f` must be deterministic per item for campaign replays to be exact;
/// the engine guarantees the rest (fixed fold order, no shared state).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    #[cfg(feature = "parallel")]
    {
        rayon_map(items, threads, f)
    }
    #[cfg(not(feature = "parallel"))]
    {
        scoped_map(items, threads, f)
    }
}

#[cfg(feature = "parallel")]
fn rayon_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    use rayon::prelude::*;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("rayon pool construction");
    // par_iter preserves index order in collect regardless of which
    // worker finishes first.
    pool.install(|| items.par_iter().enumerate().map(|(i, t)| f(i, t)).collect())
}

#[cfg(not(feature = "parallel"))]
fn scoped_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    let workers = threads.min(items.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("slot lock") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every index was claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn maps_in_item_order_at_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let serial: Vec<u64> = parallel_map(&items, 1, |i, &x| x * 3 + i as u64);
        for threads in [2, 4, 8, 64] {
            let par = parallel_map(&items, threads, |i, &x| x * 3 + i as u64);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, 8, |_, &x: &u64| x).is_empty());
        assert_eq!(parallel_map(&[5u64], 8, |i, &x| x + i as u64), vec![5]);
    }

    #[test]
    fn every_item_is_visited_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 8, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out, items);
    }
}
