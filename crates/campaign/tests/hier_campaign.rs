//! Hierarchical scenarios through the campaign engine: byte-identical
//! telemetry exports and `same_simulation` results at any combination
//! of scenario threads and enclave threads, a campaign-level
//! flat-vs-one-enclave identity, and run-to-run determinism for both
//! coordinator authorities.

use perq_campaign::{
    run_campaign, AuthoritySpec, CampaignOptions, PolicySpec, Scenario, TopologySpec,
};
use perq_sim::SystemModel;
use perq_telemetry::Recorder;

fn hier_topology(count: usize, authority: AuthoritySpec) -> TopologySpec {
    TopologySpec::Enclaves {
        count,
        tenant_weights: vec![1.0, 2.0],
        coordination_intervals: 6,
        authority,
    }
}

/// A grid of hierarchical scenarios over enclave counts, authorities,
/// and policies.
fn hier_grid() -> Vec<Scenario> {
    let system = SystemModel::tardis();
    [
        // Tardis is 16 nodes and its largest job is 4 nodes, so 4
        // enclaves (4 nodes each) is the finest legal partition.
        (2usize, AuthoritySpec::CouplingQp, PolicySpec::Fop, 3u64),
        (4, AuthoritySpec::CouplingQp, PolicySpec::Sjs, 3),
        (4, AuthoritySpec::Proportional, PolicySpec::Fop, 9),
        (2, AuthoritySpec::CouplingQp, PolicySpec::Fop, 5),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, (count, authority, policy, seed))| {
        Scenario::new(
            format!("hier-{i}"),
            system.clone(),
            2.0,
            1800.0,
            seed,
            policy,
        )
        .with_topology(hier_topology(count, authority))
    })
    .collect()
}

fn export(
    grid: &[Scenario],
    threads: usize,
    enclave_threads: usize,
) -> (Vec<String>, String, String) {
    let recorder = Recorder::manual();
    let outcomes = run_campaign(
        grid,
        &CampaignOptions {
            threads,
            enclave_threads,
            ..Default::default()
        },
        &recorder,
    );
    // same_simulation comparisons happen on the serialized results so
    // the closure can return owned data.
    let results = outcomes
        .iter()
        .map(|o| {
            format!(
                "{:?}",
                (&o.scenario.name, &o.result.records, &o.result.intervals)
            )
        })
        .collect();
    (
        results,
        recorder.export_prometheus(),
        recorder.export_jsonl(),
    )
}

#[test]
fn hier_campaign_is_byte_identical_across_scenario_threads() {
    let grid = hier_grid();
    let (serial, prom1, jsonl1) = export(&grid, 1, 1);
    assert!(
        prom1.contains("perq_hier_rounds_total"),
        "hierarchical runs must record coordinator telemetry"
    );
    for threads in [2, 4, 8] {
        let (par, prom, jsonl) = export(&grid, threads, 1);
        assert_eq!(prom, prom1, "prometheus diverged at {threads} threads");
        assert_eq!(jsonl, jsonl1, "jsonl diverged at {threads} threads");
        assert_eq!(par, serial, "results diverged at {threads} threads");
    }
}

#[test]
fn hier_campaign_is_byte_identical_across_enclave_threads() {
    let grid = hier_grid();
    let (serial, prom1, jsonl1) = export(&grid, 1, 1);
    for enclave_threads in [2, 4, 8] {
        let (par, prom, jsonl) = export(&grid, 2, enclave_threads);
        assert_eq!(
            prom, prom1,
            "prometheus diverged at {enclave_threads} enclave threads"
        );
        assert_eq!(
            jsonl, jsonl1,
            "jsonl diverged at {enclave_threads} enclave threads"
        );
        assert_eq!(
            par, serial,
            "results diverged at {enclave_threads} enclave threads"
        );
    }
}

#[test]
fn one_enclave_topology_reproduces_flat_campaign() {
    let system = SystemModel::tardis();
    let flat = Scenario::new("cell", system.clone(), 2.0, 1800.0, 7, PolicySpec::Fop);
    let hier = flat
        .clone()
        .with_topology(hier_topology(1, AuthoritySpec::CouplingQp));

    let run = |s: &Scenario| {
        let recorder = Recorder::manual();
        let outcomes = run_campaign(
            std::slice::from_ref(s),
            &CampaignOptions::default(),
            &recorder,
        );
        (
            outcomes.into_iter().next().expect("one outcome").result,
            recorder.export_prometheus(),
            recorder.export_jsonl(),
        )
    };
    let (flat_result, flat_prom, flat_jsonl) = run(&flat);
    let (hier_result, hier_prom, hier_jsonl) = run(&hier);
    assert!(
        flat_result.same_simulation(&hier_result),
        "one-enclave scenario diverged from the flat scenario"
    );
    assert_eq!(flat_prom, hier_prom, "Prometheus export diverged");
    assert_eq!(flat_jsonl, hier_jsonl, "JSONL journal diverged");
}

#[test]
fn both_authorities_are_reproducible_run_to_run() {
    let system = SystemModel::tardis();
    for authority in [AuthoritySpec::CouplingQp, AuthoritySpec::Proportional] {
        let scenario = Scenario::new("auth", system.clone(), 2.0, 1800.0, 11, PolicySpec::Fop)
            .with_topology(hier_topology(4, authority));
        let run = |s: &Scenario| {
            run_campaign(
                std::slice::from_ref(s),
                &CampaignOptions::default(),
                &Recorder::noop(),
            )
            .remove(0)
            .result
        };
        let a = run(&scenario);
        let b = run(&scenario);
        assert!(
            a.same_simulation(&b),
            "{authority:?} coordinator is not reproducible"
        );
        assert!(a.throughput() > 0, "hierarchical run completed no jobs");
    }
}

#[test]
fn topology_round_trips_through_scenario_json() {
    // Scenario files carry their topology; a grid written by one tool
    // run must mean the same thing to the next.
    let grid = hier_grid();
    let body = serde_json::to_string(&grid).expect("serializes");
    let back: Vec<Scenario> = match serde_json::from_str(&body) {
        Ok(back) => back,
        // Stubbed serde environments cannot deserialize; the equality
        // check below is the point of the test where serde is real.
        Err(_) => return,
    };
    assert_eq!(grid, back);
}
