//! SWF replay through the campaign engine: same trace + seed must give
//! byte-identical telemetry exports and `same_simulation` results at
//! any thread count, and trace workloads must fail fast (not panic in a
//! worker) when the file is missing or unusable.

use perq_campaign::{
    run_campaign, try_run_campaign, CampaignOptions, PolicySpec, Scenario, SwfReplayOptions,
    WorkloadSpec,
};
use perq_sim::SystemModel;
use perq_telemetry::Recorder;

fn fixture(name: &str) -> String {
    format!("{}/../trace/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// A grid replaying the hand-built Tardis fixture under two policies
/// and two synthesis seeds.
fn swf_grid() -> Vec<Scenario> {
    let system = SystemModel::tardis();
    [
        (PolicySpec::Fop, 3u64),
        (PolicySpec::Sjs, 3),
        (PolicySpec::Fop, 9),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, (policy, seed))| {
        Scenario::new(
            format!("swf-{i}"),
            system.clone(),
            2.0,
            1800.0,
            seed,
            policy,
        )
        .with_swf(fixture("tardis_tiny.swf"), SwfReplayOptions::default())
    })
    .collect()
}

#[test]
fn swf_replay_is_byte_identical_across_thread_counts() {
    let grid = swf_grid();
    let export = |threads: usize| {
        let recorder = Recorder::manual();
        let outcomes = run_campaign(
            &grid,
            &CampaignOptions {
                threads,
                ..Default::default()
            },
            &recorder,
        );
        (
            outcomes,
            recorder.export_prometheus(),
            recorder.export_jsonl(),
        )
    };
    let (serial, prom1, jsonl1) = export(1);
    assert!(
        prom1.contains("perq_trace_jobs_imported_total"),
        "replay must record import counters"
    );
    for threads in [2, 4] {
        let (par, prom, jsonl) = export(threads);
        assert_eq!(prom, prom1, "prometheus diverged at {threads} threads");
        assert_eq!(jsonl, jsonl1, "jsonl diverged at {threads} threads");
        for (a, b) in serial.iter().zip(par.iter()) {
            assert!(
                a.result.same_simulation(&b.result),
                "scenario {} diverged at {threads} threads",
                a.scenario.name
            );
        }
    }
}

#[test]
fn swf_replay_is_reproducible_run_to_run() {
    let grid = swf_grid();
    let opts = CampaignOptions {
        threads: 2,
        ..Default::default()
    };
    let a = run_campaign(&grid, &opts, &Recorder::noop());
    let b = run_campaign(&grid, &opts, &Recorder::noop());
    for (x, y) in a.iter().zip(b.iter()) {
        assert!(x.result.same_simulation(&y.result));
    }
    // Replayed jobs actually complete on this tiny system.
    assert!(a.iter().all(|o| o.result.throughput() > 0));
}

#[test]
fn lenient_mode_replays_the_malformed_fixture() {
    let system = SystemModel::tardis();
    let scenario = Scenario::new("lenient", system, 2.0, 900.0, 5, PolicySpec::Fop)
        .with_swf(fixture("malformed.swf"), SwfReplayOptions::default());
    let recorder = Recorder::manual();
    let outcomes = run_campaign(
        std::slice::from_ref(&scenario),
        &CampaignOptions {
            threads: 1,
            ..Default::default()
        },
        &recorder,
    );
    assert_eq!(outcomes.len(), 1);
    let prom = recorder.export_prometheus();
    assert!(prom.contains("perq_trace_jobs_imported_total 3"), "{prom}");
}

#[test]
fn strict_mode_fails_fast_with_line_numbered_error() {
    let system = SystemModel::tardis();
    let scenario = Scenario::new("strict", system, 2.0, 900.0, 5, PolicySpec::Fop).with_swf(
        fixture("malformed.swf"),
        SwfReplayOptions {
            lenient: false,
            ..SwfReplayOptions::default()
        },
    );
    let err = try_run_campaign(
        std::slice::from_ref(&scenario),
        &CampaignOptions {
            threads: 4,
            ..Default::default()
        },
        &Recorder::noop(),
    )
    .unwrap_err();
    assert_eq!(err.scenario, "strict");
    assert!(err.message.contains("line 5"), "{}", err.message);
}

#[test]
fn missing_trace_file_is_an_error_not_a_worker_panic() {
    let system = SystemModel::tardis();
    let scenario = Scenario::new("missing", system, 2.0, 900.0, 5, PolicySpec::Fop)
        .with_swf("/nonexistent/trace.swf", SwfReplayOptions::default());
    let err = try_run_campaign(
        std::slice::from_ref(&scenario),
        &CampaignOptions {
            threads: 4,
            ..Default::default()
        },
        &Recorder::noop(),
    )
    .unwrap_err();
    assert!(err.message.contains("cannot read trace"), "{}", err.message);
}

#[test]
fn synthesis_seed_changes_the_replay() {
    let system = SystemModel::tardis();
    let scenario = |synth_seed| {
        Scenario::new("seeded", system.clone(), 2.0, 1800.0, 7, PolicySpec::Fop).with_swf(
            fixture("tardis_tiny.swf"),
            SwfReplayOptions {
                synth_seed: Some(synth_seed),
                ..SwfReplayOptions::default()
            },
        )
    };
    let run = |s: Scenario| {
        run_campaign(
            std::slice::from_ref(&s),
            &CampaignOptions {
                threads: 1,
                ..Default::default()
            },
            &Recorder::noop(),
        )
        .remove(0)
        .result
    };
    let a = run(scenario(1));
    let b = run(scenario(1));
    assert!(
        a.same_simulation(&b),
        "same synth seed must replay identically"
    );
    // Different synthesis seeds assign different power profiles, which
    // the per-job records expose via the executed application name.
    let c = run(scenario(2));
    let apps = |r: &perq_sim::SimResult| {
        r.records
            .iter()
            .map(|j| j.app_name.clone())
            .collect::<Vec<_>>()
    };
    assert_ne!(
        apps(&a),
        apps(&c),
        "synth seed should reshuffle app profiles"
    );
}

#[test]
fn default_workload_stays_synthetic() {
    let scenario = Scenario::new(
        "plain",
        SystemModel::tardis(),
        2.0,
        900.0,
        3,
        PolicySpec::Fop,
    );
    assert_eq!(scenario.workload, WorkloadSpec::Synthetic);
    let (jobs, summary) = scenario.jobs().unwrap();
    assert!(summary.is_none());
    assert!(!jobs.is_empty());
}
