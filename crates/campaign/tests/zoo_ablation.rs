//! The zoo ablation grid's determinism contract: results, telemetry
//! exports, and the rendered table are byte-identical at any campaign
//! thread count, and re-runs reproduce them exactly.

use perq_campaign::{
    ablation_table, run_campaign, try_run_campaign, zoo_ablation_grid, CampaignOptions, PolicySpec,
    Scenario, TopologySpec,
};
use perq_gym::{BudgetSchedule, ZooSpec};
use perq_sim::SystemModel;
use perq_telemetry::Recorder;

fn fixture(name: &str) -> String {
    format!("{}/../trace/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// A trimmed copy of the ablation grid (shorter regimes, fewer jobs)
/// so the 3× thread sweep stays test-sized while still crossing every
/// policy with every regime axis.
fn small_grid() -> Vec<perq_campaign::Scenario> {
    let mut grid = zoo_ablation_grid(7, Some(&fixture("tardis_tiny.swf")));
    for s in &mut grid {
        s.duration_s = s.duration_s.min(600.0);
        if let perq_campaign::WorkloadSpec::SyntheticLight { jobs } = &mut s.workload {
            *jobs = (*jobs).min(16);
        }
        if let Some(schedule) = &s.budget_schedule {
            // Re-fit the diurnal curve to the shorter run.
            let base = schedule.budget_at(0.0);
            s.budget_schedule = Some(BudgetSchedule::diurnal(base, 0.8, 1.0, 150.0, 600.0));
        }
    }
    grid
}

fn run(grid: &[perq_campaign::Scenario], threads: usize) -> (Vec<String>, String, String, String) {
    let recorder = Recorder::manual();
    let outcomes = run_campaign(
        grid,
        &CampaignOptions {
            threads,
            ..Default::default()
        },
        &recorder,
    );
    let table = ablation_table(&outcomes);
    let digests = outcomes
        .iter()
        .map(|o| {
            format!(
                "{}/{}: completed={} violations={} violation_s={} records={}",
                o.scenario.name,
                o.result.policy,
                o.result.throughput(),
                o.result.budget_violations,
                o.result.budget_violation_s,
                serde_json::to_string(&o.result.records).unwrap()
            )
        })
        .collect();
    (
        digests,
        recorder.export_prometheus(),
        recorder.export_jsonl(),
        table.render(),
    )
}

#[test]
fn ablation_grid_is_byte_identical_across_thread_counts() {
    let grid = small_grid();
    let (digests_1, prom_1, jsonl_1, table_1) = run(&grid, 1);
    assert_eq!(grid.len(), 25);
    assert!(table_1.contains("ZOO-HYBRID"));
    for threads in [2, 4] {
        let (digests_n, prom_n, jsonl_n, table_n) = run(&grid, threads);
        assert_eq!(
            digests_1, digests_n,
            "results diverged at {threads} threads"
        );
        assert_eq!(
            prom_1, prom_n,
            "Prometheus export diverged at {threads} threads"
        );
        assert_eq!(
            jsonl_1, jsonl_n,
            "JSONL journal diverged at {threads} threads"
        );
        assert_eq!(
            table_1, table_n,
            "rendered table diverged at {threads} threads"
        );
    }
}

#[test]
fn ablation_reruns_reproduce_byte_for_byte() {
    let grid = small_grid();
    let a = run(&grid, 2);
    let b = run(&grid, 2);
    assert_eq!(a, b);
}

#[test]
fn gym_metrics_land_on_the_campaign_recorder() {
    let mut grid = small_grid();
    grid.truncate(5); // one regime × all five policies
    let recorder = Recorder::manual();
    run_campaign(&grid, &CampaignOptions::default(), &recorder);
    let prom = recorder.export_prometheus();
    assert!(prom.contains("perq_gym_decisions_total"), "{prom}");
    assert!(prom.contains("perq_gym_reward_total"));
    assert!(prom.contains("perq_gym_epsilon"));
    assert!(prom.contains("perq_gym_q_updates_total"));
}

#[test]
fn scheduled_enclave_scenarios_fail_fast() {
    let scenario = Scenario::new(
        "bad",
        SystemModel::tardis(),
        2.0,
        600.0,
        1,
        PolicySpec::zoo(ZooSpec::FairShare),
    )
    .with_budget_schedule(BudgetSchedule::flat(2320.0))
    .with_topology(TopologySpec::enclaves(2));
    let err = try_run_campaign(
        std::slice::from_ref(&scenario),
        &CampaignOptions::default(),
        &Recorder::noop(),
    )
    .unwrap_err();
    assert!(err.message.contains("flat topologies only"), "{err}");
}
