//! Campaign determinism under parallelism: for seeded scenario grids —
//! including fault plans — runs at 1, 2, and 8 worker threads must
//! produce identical simulations and **byte-identical** JSONL and
//! Prometheus exports. This is the contract that makes campaign output
//! diffable across machines and thread counts.

use perq_campaign::{run_campaign, CampaignOptions, FaultSpec, ModelSpec, PolicySpec, Scenario};
use perq_sim::{FaultRates, SimResult, SystemModel};
use perq_telemetry::Recorder;
use proptest::prelude::*;

fn cheap_policy(choice: usize) -> PolicySpec {
    match choice % 4 {
        0 => PolicySpec::Fop,
        1 => PolicySpec::Sjs,
        2 => PolicySpec::Ljs,
        _ => PolicySpec::Srn,
    }
}

/// Runs the grid at a thread count and returns the per-scenario results
/// plus both export formats.
fn run_at(grid: &[Scenario], threads: usize) -> (Vec<SimResult>, String, String) {
    let recorder = Recorder::manual();
    let outcomes = run_campaign(
        grid,
        &CampaignOptions {
            threads,
            ..Default::default()
        },
        &recorder,
    );
    (
        outcomes.into_iter().map(|o| o.result).collect(),
        recorder.export_prometheus(),
        recorder.export_jsonl(),
    )
}

fn assert_thread_count_invariant(grid: &[Scenario]) {
    let (serial, prom1, jsonl1) = run_at(grid, 1);
    for threads in [2usize, 8] {
        let (par, prom, jsonl) = run_at(grid, threads);
        assert_eq!(par.len(), serial.len());
        for (i, (a, b)) in serial.iter().zip(par.iter()).enumerate() {
            assert!(
                a.same_simulation(b),
                "scenario {} ({}) diverged at {threads} threads",
                i,
                grid[i].name
            );
        }
        assert_eq!(
            prom, prom1,
            "prometheus export diverged at {threads} threads"
        );
        assert_eq!(jsonl, jsonl1, "jsonl export diverged at {threads} threads");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn seeded_grids_with_fault_plans_are_thread_count_invariant(
        seeds in prop::collection::vec(0u64..1000, 1..5),
        policy_choices in prop::collection::vec(0usize..4, 1..5),
        f in 1.0f64..2.0,
        fault_seed in 0u64..100,
    ) {
        let system = SystemModel::tardis();
        let grid: Vec<Scenario> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                let mut s = Scenario::new(
                    format!("case-{i}"),
                    system.clone(),
                    f,
                    600.0,
                    seed,
                    cheap_policy(policy_choices[i % policy_choices.len()]),
                );
                // Alternate fault injection so every grid mixes faulty
                // and clean scenarios; traced jobs exercise the journal.
                if i % 2 == 0 {
                    s.faults = Some(FaultSpec::Generated {
                        seed: fault_seed + i as u64,
                        rates: FaultRates::aggressive(),
                    });
                }
                s.trace_jobs = vec![0, 1];
                s
            })
            .collect();
        assert_thread_count_invariant(&grid);
    }
}

/// The MPC-driven policy goes through the full controller (model
/// training, FISTA solves, warm starts, LmaxCache) — one deterministic
/// PERQ grid pins that whole stack to the same invariant.
#[test]
fn perq_grid_is_thread_count_invariant() {
    let system = SystemModel::tardis();
    let mut grid = vec![
        Scenario::new(
            "perq-a",
            system.clone(),
            2.0,
            600.0,
            17,
            PolicySpec::perq_with_model(ModelSpec::Npb { seed: 7 }),
        ),
        Scenario::new(
            "perq-b",
            system.clone(),
            1.5,
            600.0,
            18,
            PolicySpec::perq_throughput(ModelSpec::Npb { seed: 7 }),
        ),
    ];
    grid[1].faults = Some(FaultSpec::Generated {
        seed: 3,
        rates: FaultRates::aggressive(),
    });
    assert_thread_count_invariant(&grid);
}
