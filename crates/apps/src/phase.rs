use serde::{Deserialize, Serialize};

/// One phase of an application's repeating execution cycle.
///
/// HPC applications are iterative: they cycle through compute-, memory-,
/// and communication-dominated segments, which is why their power draw
/// varies over time (Fig. 2) and why their power-cap sensitivity "changes
/// according to the phase it is in" (Observation 3). A profile's phase
/// list is played back cyclically over the job's runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase length in seconds. The paper notes phases "are often
    /// sufficiently long in duration, and do not change very frequently",
    /// i.e. long relative to the 10 s control interval.
    pub duration_s: f64,
    /// Natural (uncapped) power draw in this phase, as a fraction of TDP.
    pub demand_frac: f64,
    /// Sensitivity multiplier: > 1 for compute-bound phases (power-capping
    /// hurts more), < 1 for memory/communication-bound phases.
    pub intensity: f64,
}

impl Phase {
    /// Creates a phase, validating ranges.
    ///
    /// # Panics
    ///
    /// Panics on non-positive duration, demand outside `(0, 1]`, or
    /// non-positive intensity — phases are static profile data.
    pub fn new(duration_s: f64, demand_frac: f64, intensity: f64) -> Self {
        assert!(duration_s > 0.0, "phase duration must be positive");
        assert!(
            demand_frac > 0.0 && demand_frac <= 1.0,
            "demand must be in (0,1]"
        );
        assert!(intensity > 0.0, "intensity must be positive");
        Phase {
            duration_s,
            demand_frac,
            intensity,
        }
    }
}

/// Selects the phase active at time `t` (seconds since job start) from a
/// cyclic phase list, together with the index of that phase.
pub fn phase_at(phases: &[Phase], t: f64) -> (usize, &Phase) {
    assert!(!phases.is_empty(), "profile must have at least one phase");
    let cycle: f64 = phases.iter().map(|p| p.duration_s).sum();
    let mut pos = t.rem_euclid(cycle);
    for (i, p) in phases.iter().enumerate() {
        if pos < p.duration_s {
            return (i, p);
        }
        pos -= p.duration_s;
    }
    (phases.len() - 1, phases.last().expect("non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phases() -> Vec<Phase> {
        vec![
            Phase::new(10.0, 0.5, 1.0),
            Phase::new(20.0, 0.7, 1.5),
            Phase::new(5.0, 0.3, 0.5),
        ]
    }

    #[test]
    fn selects_by_offset() {
        let ps = phases();
        assert_eq!(phase_at(&ps, 0.0).0, 0);
        assert_eq!(phase_at(&ps, 9.9).0, 0);
        assert_eq!(phase_at(&ps, 10.0).0, 1);
        assert_eq!(phase_at(&ps, 29.9).0, 1);
        assert_eq!(phase_at(&ps, 30.0).0, 2);
        assert_eq!(phase_at(&ps, 34.9).0, 2);
    }

    #[test]
    fn wraps_cyclically() {
        let ps = phases();
        // Cycle is 35 s.
        assert_eq!(phase_at(&ps, 35.0).0, 0);
        assert_eq!(phase_at(&ps, 70.0 + 12.0).0, 1);
        assert_eq!(phase_at(&ps, 1e6 * 35.0 + 31.0).0, 2);
    }

    #[test]
    fn negative_time_wraps_too() {
        let ps = phases();
        // rem_euclid keeps the offset in [0, cycle).
        assert_eq!(phase_at(&ps, -1.0).0, 2);
    }

    #[test]
    #[should_panic(expected = "demand")]
    fn rejects_zero_demand() {
        Phase::new(1.0, 0.0, 1.0);
    }
}
