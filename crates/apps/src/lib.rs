//! Synthetic HPC application power/performance profiles.
//!
//! The paper's evaluation is driven by ten applications from the Exascale
//! Computing Project proxy-app suite measured on Intel Xeon E5-2686 nodes
//! (Table 1 average powers, Fig. 2 phase behaviour, Fig. 3 power-cap
//! sensitivity curves). Those measurements are not redistributable, so
//! this crate encodes the published characteristics as parametric
//! profiles:
//!
//! - [`PerfCurve`]: the power-cap → relative-performance map, a saturating
//!   family calibrated per app to the three sensitivity classes of Fig. 3;
//! - [`Phase`]: a segment of execution with its own power demand and
//!   compute intensity, reproducing the Fig. 2 time-varying draw;
//! - [`AppProfile`]: a named application with curve, phases, and Table 1
//!   average power; [`ecp_suite`] returns the ten evaluation apps.
//! - [`npb_training_suite`]: a *disjoint* NPB-like set used only to
//!   identify the controller's node model, mirroring the paper's
//!   train-on-NPB / evaluate-on-unseen-apps protocol.
//!
//! Node electrical constants ([`TDP_WATTS`], [`MIN_CAP_WATTS`],
//! [`IDLE_WATTS`]) follow the paper's testbed (TDP 290 W; Fig. 3 sweeps
//! caps from 90 W; idle nodes still draw power — Fig. 12 caption).

mod curve;
mod phase;
mod profile;
mod suite;

pub use curve::PerfCurve;
pub use phase::Phase;
pub use profile::{AppProfile, Sensitivity};
pub use suite::{ecp_suite, npb_training_suite};

/// Thermal design power of one node, in watts (Intel Xeon E5-2686 per the
/// paper).
pub const TDP_WATTS: f64 = 290.0;

/// Lowest admissible RAPL power cap, in watts (Fig. 3's sweep floor).
pub const MIN_CAP_WATTS: f64 = 90.0;

/// Power drawn by an idle node, in watts. The paper notes (Fig. 12) that
/// "the power-cap setting has a minimum limit too (as an idle node still
/// consumes power)".
pub const IDLE_WATTS: f64 = 35.0;

/// Reference per-node instruction rate at TDP, in instructions per second.
/// Job IPS values in the paper's Fig. 8 are in the 1e9–1e11 range for
/// multi-node jobs; 2e9 per node reproduces that magnitude.
pub const BASE_NODE_IPS: f64 = 2.0e9;
