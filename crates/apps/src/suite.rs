//! The application suites: ten ECP proxy apps for evaluation (Table 1) and
//! an NPB-like training set for system identification.

use crate::curve::PerfCurve;
use crate::phase::Phase;
use crate::profile::{AppProfile, Sensitivity};
use crate::{MIN_CAP_WATTS, TDP_WATTS};

fn min_frac() -> f64 {
    MIN_CAP_WATTS / TDP_WATTS
}

/// The ten Exascale Computing Project proxy applications of Table 1.
///
/// Per-app parameters are calibrated to the published data:
/// - phase demands are duration-weighted so [`AppProfile::avg_power_frac`]
///   reproduces the Table 1 "Avg. Power (% of TDP)" column exactly;
/// - `max_degradation` and `shape` reproduce the three Fig. 3 sensitivity
///   classes (low: < 20% loss at the 90 W floor; medium: ~35–45%; high:
///   > 60% with a steep knee);
/// - phase demand swings reproduce the Fig. 2 power ranges (e.g. HPCCG
///   oscillating between ~100 W and ~180 W).
pub fn ecp_suite() -> Vec<AppProfile> {
    let m = min_frac();
    vec![
        AppProfile::new(
            "ASPA",
            "Multi-scale physics",
            Sensitivity::Low,
            PerfCurve::with_saturation(0.15, 1.2, m, 0.61),
            vec![Phase::new(60.0, 0.25, 0.9), Phase::new(30.0, 0.31, 1.2)],
        ),
        AppProfile::new(
            "CoHMM",
            "Material shockwave analysis",
            Sensitivity::Low,
            PerfCurve::with_saturation(0.16, 1.3, m, 0.61),
            vec![Phase::new(40.0, 0.23, 0.8), Phase::new(40.0, 0.31, 1.2)],
        ),
        AppProfile::new(
            "CoMD",
            "Molecular dynamics",
            Sensitivity::Medium,
            PerfCurve::with_saturation(0.40, 1.6, m, 0.76),
            vec![Phase::new(50.0, 0.42, 0.9), Phase::new(50.0, 0.54, 1.2)],
        ),
        AppProfile::new(
            "HPCCG",
            "Conjugate gradient proxy",
            Sensitivity::Low,
            PerfCurve::with_saturation(0.18, 1.2, m, 0.94),
            vec![
                Phase::new(25.0, 0.40, 0.8),
                Phase::new(50.0, 0.62, 1.1),
                Phase::new(25.0, 0.64, 1.2),
            ],
        ),
        AppProfile::new(
            "RSBench",
            "Multipole resonance",
            Sensitivity::Low,
            PerfCurve::with_saturation(0.20, 1.3, m, 0.75),
            vec![Phase::new(30.0, 0.30, 0.9), Phase::new(45.0, 0.45, 1.1)],
        ),
        AppProfile::new(
            "SimpleMOC",
            "3D neutron transport in reactor",
            Sensitivity::High,
            PerfCurve::with_saturation(0.68, 2.2, m, 0.90),
            vec![Phase::new(60.0, 0.66, 1.0), Phase::new(30.0, 0.75, 1.1)],
        ),
        AppProfile::new(
            "SWFFT",
            "Cosmology",
            Sensitivity::High,
            PerfCurve::with_saturation(0.62, 2.0, m, 0.75),
            vec![Phase::new(40.0, 0.24, 0.9), Phase::new(40.0, 0.32, 1.1)],
        ),
        AppProfile::new(
            "XSBench",
            "Monte Carlo neutronics",
            Sensitivity::Medium,
            PerfCurve::with_saturation(0.42, 1.5, m, 0.70),
            vec![Phase::new(50.0, 0.38, 0.9), Phase::new(50.0, 0.48, 1.15)],
        ),
        AppProfile::new(
            "miniFE",
            "Unstructured finite element solver",
            Sensitivity::Medium,
            PerfCurve::with_saturation(0.38, 1.5, m, 0.89),
            vec![Phase::new(45.0, 0.55, 0.9), Phase::new(45.0, 0.67, 1.1)],
        ),
        AppProfile::new(
            "miniMD",
            "Parallel molecular dynamics",
            Sensitivity::High,
            PerfCurve::with_saturation(0.65, 2.0, m, 0.92),
            vec![
                Phase::new(20.0, 0.38, 0.8),
                Phase::new(60.0, 0.70, 1.1),
                Phase::new(20.0, 0.77, 1.2),
            ],
        ),
    ]
}

/// The NPB-like training suite used to identify the controller's node
/// model.
///
/// The paper trains its state-space model on NAS Parallel Benchmarks with
/// different input sizes — a set disjoint from the evaluated applications
/// — precisely so the model is not over-fit to the evaluation workloads.
/// These eight synthetic profiles play that role: they span the same
/// sensitivity classes with *different* curve parameters, demands, and
/// phase structures than any [`ecp_suite`] profile.
pub fn npb_training_suite() -> Vec<AppProfile> {
    let m = min_frac();
    vec![
        AppProfile::new(
            "npb-ep",
            "Embarrassingly parallel kernel",
            Sensitivity::High,
            PerfCurve::with_saturation(0.70, 2.1, m, 0.87),
            vec![Phase::new(45.0, 0.72, 1.05)],
        ),
        AppProfile::new(
            "npb-cg",
            "Conjugate gradient kernel",
            Sensitivity::Low,
            PerfCurve::with_saturation(0.17, 1.25, m, 0.79),
            vec![Phase::new(35.0, 0.41, 0.85), Phase::new(35.0, 0.49, 1.1)],
        ),
        AppProfile::new(
            "npb-mg",
            "Multigrid kernel",
            Sensitivity::Low,
            PerfCurve::with_saturation(0.22, 1.3, m, 0.83),
            vec![Phase::new(25.0, 0.44, 0.9), Phase::new(50.0, 0.53, 1.05)],
        ),
        AppProfile::new(
            "npb-ft",
            "3D FFT kernel",
            Sensitivity::High,
            PerfCurve::with_saturation(0.58, 1.9, m, 0.75),
            vec![Phase::new(40.0, 0.50, 0.95), Phase::new(40.0, 0.60, 1.15)],
        ),
        AppProfile::new(
            "npb-bt",
            "Block tridiagonal solver",
            Sensitivity::Medium,
            PerfCurve::with_saturation(0.38, 1.5, m, 0.86),
            vec![Phase::new(55.0, 0.54, 0.95), Phase::new(35.0, 0.64, 1.1)],
        ),
        AppProfile::new(
            "npb-sp",
            "Scalar pentadiagonal solver",
            Sensitivity::Medium,
            PerfCurve::with_saturation(0.44, 1.6, m, 0.77),
            vec![Phase::new(30.0, 0.46, 0.9), Phase::new(60.0, 0.55, 1.1)],
        ),
        AppProfile::new(
            "npb-lu",
            "Lower-upper Gauss-Seidel solver",
            Sensitivity::Medium,
            PerfCurve::with_saturation(0.35, 1.45, m, 0.88),
            vec![Phase::new(50.0, 0.57, 1.0), Phase::new(25.0, 0.66, 1.15)],
        ),
        AppProfile::new(
            "npb-is",
            "Integer sort kernel",
            Sensitivity::Low,
            PerfCurve::with_saturation(0.14, 1.15, m, 0.71),
            vec![Phase::new(40.0, 0.32, 0.85), Phase::new(20.0, 0.41, 1.1)],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 of the paper.
    const TABLE1: &[(&str, f64)] = &[
        ("ASPA", 0.27),
        ("CoHMM", 0.27),
        ("CoMD", 0.48),
        ("HPCCG", 0.57),
        ("RSBench", 0.39),
        ("SimpleMOC", 0.69),
        ("SWFFT", 0.28),
        ("XSBench", 0.43),
        ("miniFE", 0.61),
        ("miniMD", 0.65),
    ];

    #[test]
    fn avg_powers_match_table1() {
        let suite = ecp_suite();
        for (name, want) in TABLE1 {
            let app = suite.iter().find(|a| &a.name == name).expect(name);
            let got = app.avg_power_frac();
            assert!(
                (got - want).abs() < 0.005,
                "{name}: avg power {got:.3} vs Table 1 {want:.3}"
            );
        }
    }

    #[test]
    fn sensitivity_classes_match_fig3() {
        let floor = 90.0 / 290.0;
        for app in ecp_suite() {
            let loss = 1.0 - app.curve.perf_frac(floor);
            match app.sensitivity {
                Sensitivity::Low => assert!(loss < 0.21, "{}: loss {loss}", app.name),
                Sensitivity::Medium => {
                    assert!((0.3..0.5).contains(&loss), "{}: loss {loss}", app.name)
                }
                Sensitivity::High => assert!(loss > 0.6, "{}: loss {loss}", app.name),
            }
        }
    }

    #[test]
    fn fig3_membership() {
        let by_class = |s: Sensitivity| -> Vec<String> {
            ecp_suite()
                .into_iter()
                .filter(|a| a.sensitivity == s)
                .map(|a| a.name)
                .collect()
        };
        assert_eq!(
            by_class(Sensitivity::Low),
            vec!["ASPA", "CoHMM", "HPCCG", "RSBench"]
        );
        assert_eq!(
            by_class(Sensitivity::Medium),
            vec!["CoMD", "XSBench", "miniFE"]
        );
        assert_eq!(
            by_class(Sensitivity::High),
            vec!["SimpleMOC", "SWFFT", "miniMD"]
        );
    }

    #[test]
    fn training_suite_is_disjoint_from_evaluation_suite() {
        let eval: Vec<String> = ecp_suite().into_iter().map(|a| a.name).collect();
        for app in npb_training_suite() {
            assert!(
                !eval.contains(&app.name),
                "{} leaks into training",
                app.name
            );
        }
    }

    #[test]
    fn training_suite_spans_all_classes() {
        let suite = npb_training_suite();
        for class in [Sensitivity::Low, Sensitivity::Medium, Sensitivity::High] {
            assert!(
                suite.iter().any(|a| a.sensitivity == class),
                "missing {class:?}"
            );
        }
    }

    #[test]
    fn all_names_unique() {
        let mut names: Vec<String> = ecp_suite()
            .into_iter()
            .chain(npb_training_suite())
            .map(|a| a.name)
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn saturation_sits_above_peak_phase_demand() {
        // A cap above the app's peak draw cannot throttle it, so the curve
        // must saturate at (or above) the largest phase demand — this is
        // the headroom PERQ reclaims.
        for app in ecp_suite().into_iter().chain(npb_training_suite()) {
            let peak = app
                .phases
                .iter()
                .map(|p| p.demand_frac)
                .fold(0.0_f64, f64::max);
            assert!(
                app.curve.sat_frac >= peak,
                "{}: saturation {} below peak demand {}",
                app.name,
                app.curve.sat_frac,
                peak
            );
            assert!((app.curve.perf_frac(app.curve.sat_frac) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn phase_cycles_are_long_relative_to_control_interval() {
        // Observation 2: phases are long compared to the 10 s decision
        // interval, which is what lets the controller converge per phase.
        for app in ecp_suite().into_iter().chain(npb_training_suite()) {
            for phase in &app.phases {
                assert!(
                    phase.duration_s >= 20.0,
                    "{}: phase of {}s too short",
                    app.name,
                    phase.duration_s
                );
            }
        }
    }
}
