use serde::{Deserialize, Serialize};

/// Parametric power-cap → performance curve (the ground truth the
/// simulator runs; the controller never sees this — it must learn the
/// relationship through feedback).
///
/// For a cap fraction `c = cap/TDP`, define the normalized position
/// `x = (c − min_cap_frac)/(sat_frac − min_cap_frac)` clamped to `[0, 1]`.
/// Relative performance (fraction of the performance at TDP) is
///
/// ```text
/// perf(c) = 1 − max_degradation · (1 − x)^shape
/// ```
///
/// `max_degradation` is the performance loss at the minimum cap (the left
/// edge of Fig. 3) and `shape > 1` makes the curve flat near the top and
/// steep near the floor — the signature of the high-sensitivity class;
/// `shape` near 1 gives the gentle quasi-linear slope of the
/// low-sensitivity class.
///
/// `sat_frac` is the cap fraction where the curve *saturates*: a cap above
/// the application's peak power draw cannot throttle anything, so
/// performance is flat beyond it. This is clearly visible in Fig. 3 —
/// the low-sensitivity applications (average draw 27–57% of TDP) reach
/// 100% well below 290 W, while the high-sensitivity, compute-bound
/// applications keep gaining all the way to TDP. The headroom between a
/// job's consumption and its saturation cap is exactly the power PERQ
/// reclaims.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfCurve {
    /// Performance loss at the minimum power cap, in `[0, 1)`.
    pub max_degradation: f64,
    /// Curvature exponent (≥ 1).
    pub shape: f64,
    /// Cap fraction where the curve bottoms out (90/290 for the paper's
    /// testbed).
    pub min_cap_frac: f64,
    /// Cap fraction above which performance saturates at 100%.
    pub sat_frac: f64,
}

impl PerfCurve {
    /// Creates a curve saturating at TDP (`sat_frac = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `max_degradation ∉ [0, 1)`, `shape < 1`, or
    /// `min_cap_frac ∉ (0, 1)` — profile constants are static data, so a
    /// bad value is a programming error.
    pub fn new(max_degradation: f64, shape: f64, min_cap_frac: f64) -> Self {
        Self::with_saturation(max_degradation, shape, min_cap_frac, 1.0)
    }

    /// Creates a curve that saturates at `sat_frac` of TDP.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameter ranges (see [`PerfCurve::new`]) or if
    /// `sat_frac` is not in `(min_cap_frac, 1]`.
    pub fn with_saturation(
        max_degradation: f64,
        shape: f64,
        min_cap_frac: f64,
        sat_frac: f64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&max_degradation),
            "max_degradation must be in [0,1)"
        );
        assert!(shape >= 1.0, "shape must be >= 1");
        assert!(
            min_cap_frac > 0.0 && min_cap_frac < 1.0,
            "min_cap_frac must be in (0,1)"
        );
        assert!(
            sat_frac > min_cap_frac && sat_frac <= 1.0,
            "sat_frac must be in (min_cap_frac, 1]"
        );
        PerfCurve {
            max_degradation,
            shape,
            min_cap_frac,
            sat_frac,
        }
    }

    /// Relative performance (fraction of performance at TDP) at a given
    /// cap fraction, optionally scaled by a phase `intensity` multiplier
    /// on the degradation (compute-heavy phases are more sensitive).
    pub fn perf_frac_with_intensity(&self, cap_frac: f64, intensity: f64) -> f64 {
        let x =
            ((cap_frac - self.min_cap_frac) / (self.sat_frac - self.min_cap_frac)).clamp(0.0, 1.0);
        let degradation = (self.max_degradation * intensity).clamp(0.0, 0.97);
        1.0 - degradation * (1.0 - x).powf(self.shape)
    }

    /// Relative performance at a cap fraction with nominal intensity.
    pub fn perf_frac(&self, cap_frac: f64) -> f64 {
        self.perf_frac_with_intensity(cap_frac, 1.0)
    }

    /// Local slope `d perf / d cap_frac` (zero above saturation / below
    /// the floor).
    pub fn slope(&self, cap_frac: f64) -> f64 {
        let span = self.sat_frac - self.min_cap_frac;
        let x = (cap_frac - self.min_cap_frac) / span;
        if !(0.0..=1.0).contains(&x) {
            return 0.0;
        }
        self.max_degradation * self.shape * (1.0 - x).powf(self.shape - 1.0) / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIN_FRAC: f64 = 90.0 / 290.0;

    #[test]
    fn perf_is_one_at_tdp() {
        let c = PerfCurve::new(0.6, 2.0, MIN_FRAC);
        assert!((c.perf_frac(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perf_at_floor_is_one_minus_degradation() {
        let c = PerfCurve::new(0.6, 2.0, MIN_FRAC);
        assert!((c.perf_frac(MIN_FRAC) - 0.4).abs() < 1e-12);
        // Below the floor it stays clamped.
        assert!((c.perf_frac(0.1) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn monotone_non_decreasing_in_cap() {
        let c = PerfCurve::new(0.65, 2.5, MIN_FRAC);
        let mut prev = 0.0;
        for i in 0..=100 {
            let cap = MIN_FRAC + (1.0 - MIN_FRAC) * i as f64 / 100.0;
            let p = c.perf_frac(cap);
            assert!(p >= prev - 1e-12);
            prev = p;
        }
    }

    #[test]
    fn high_shape_is_flatter_near_tdp() {
        let gentle = PerfCurve::new(0.6, 1.0, MIN_FRAC);
        let steep = PerfCurve::new(0.6, 3.0, MIN_FRAC);
        // At 90% of the cap range both lose something, but the steep curve
        // loses less near the top.
        let cap = MIN_FRAC + 0.9 * (1.0 - MIN_FRAC);
        assert!(steep.perf_frac(cap) > gentle.perf_frac(cap));
        // And its descent is steeper near the floor (larger local slope).
        let cap_low = MIN_FRAC + 0.1 * (1.0 - MIN_FRAC);
        assert!(steep.slope(cap_low) > gentle.slope(cap_low));
    }

    #[test]
    fn intensity_scales_degradation() {
        let c = PerfCurve::new(0.4, 2.0, MIN_FRAC);
        let mild = c.perf_frac_with_intensity(MIN_FRAC, 0.5);
        let nominal = c.perf_frac(MIN_FRAC);
        let harsh = c.perf_frac_with_intensity(MIN_FRAC, 1.5);
        assert!(mild > nominal && nominal > harsh);
        // Extreme intensity is clamped below total starvation.
        assert!(c.perf_frac_with_intensity(MIN_FRAC, 100.0) > 0.0);
    }

    #[test]
    fn slope_positive_inside_range_zero_outside() {
        let c = PerfCurve::new(0.6, 2.0, MIN_FRAC);
        assert!(c.slope(0.5) > 0.0);
        assert_eq!(c.slope(1.5), 0.0);
        assert_eq!(c.slope(0.1), 0.0);
    }

    #[test]
    #[should_panic(expected = "max_degradation")]
    fn rejects_total_degradation() {
        PerfCurve::new(1.0, 2.0, MIN_FRAC);
    }
}
