use crate::curve::PerfCurve;
use crate::phase::{phase_at, Phase};
use serde::{Deserialize, Serialize};

/// Power-cap sensitivity class (Fig. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sensitivity {
    /// Memory/communication intensive; < ~20% degradation at the cap floor
    /// (ASPA, CoHMM, HPCCG, RSBench).
    Low,
    /// In-between behaviour (CoMD, XSBench, miniFE).
    Medium,
    /// Compute intensive; > ~60% degradation with a steep curve (SWFFT,
    /// SimpleMOC, miniMD).
    High,
}

/// A synthetic application profile: the ground-truth behaviour the
/// simulator and prototype nodes execute.
///
/// The controller never reads these fields — it interacts with the
/// application only through applied power-caps and observed IPS, exactly
/// as PERQ interacts with real jobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Application name (e.g. "CoMD").
    pub name: String,
    /// Science domain, from Table 1.
    pub domain: String,
    /// Sensitivity class.
    pub sensitivity: Sensitivity,
    /// Ground-truth power-cap → performance curve.
    pub curve: PerfCurve,
    /// Repeating execution phases (Fig. 2).
    pub phases: Vec<Phase>,
}

impl AppProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty — every application draws power
    /// somewhere.
    pub fn new(
        name: impl Into<String>,
        domain: impl Into<String>,
        sensitivity: Sensitivity,
        curve: PerfCurve,
        phases: Vec<Phase>,
    ) -> Self {
        assert!(!phases.is_empty(), "profile needs at least one phase");
        AppProfile {
            name: name.into(),
            domain: domain.into(),
            sensitivity,
            curve,
            phases,
        }
    }

    /// Time-averaged uncapped power draw as a fraction of TDP — the
    /// quantity reported in Table 1.
    pub fn avg_power_frac(&self) -> f64 {
        let cycle: f64 = self.phases.iter().map(|p| p.duration_s).sum();
        self.phases
            .iter()
            .map(|p| p.demand_frac * p.duration_s)
            .sum::<f64>()
            / cycle
    }

    /// The phase active `t` seconds into execution.
    pub fn phase(&self, t: f64) -> &Phase {
        phase_at(&self.phases, t).1
    }

    /// Index of the phase active at time `t`.
    pub fn phase_index(&self, t: f64) -> usize {
        phase_at(&self.phases, t).0
    }

    /// Ground-truth relative performance (fraction of performance at TDP)
    /// under a power cap `cap_frac` (fraction of TDP) at time `t`.
    pub fn perf_frac(&self, cap_frac: f64, t: f64) -> f64 {
        let phase = self.phase(t);
        self.curve
            .perf_frac_with_intensity(cap_frac, phase.intensity)
    }

    /// Ground-truth power draw (fraction of TDP) under a cap at time `t`:
    /// the node consumes its phase demand, clipped by the RAPL cap.
    pub fn power_frac(&self, cap_frac: f64, t: f64) -> f64 {
        self.phase(t).demand_frac.min(cap_frac)
    }

    /// Length of one full phase cycle in seconds.
    pub fn cycle_s(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> AppProfile {
        AppProfile::new(
            "test",
            "testing",
            Sensitivity::Medium,
            PerfCurve::new(0.4, 1.5, 90.0 / 290.0),
            vec![Phase::new(30.0, 0.5, 1.0), Phase::new(10.0, 0.8, 1.4)],
        )
    }

    #[test]
    fn avg_power_is_duration_weighted() {
        let p = profile();
        let expect = (0.5 * 30.0 + 0.8 * 10.0) / 40.0;
        assert!((p.avg_power_frac() - expect).abs() < 1e-12);
    }

    #[test]
    fn perf_varies_with_phase() {
        let p = profile();
        let cap = 0.5;
        let perf_calm = p.perf_frac(cap, 0.0); // intensity 1.0
        let perf_hot = p.perf_frac(cap, 35.0); // intensity 1.4
        assert!(perf_hot < perf_calm);
    }

    #[test]
    fn power_clips_at_cap() {
        let p = profile();
        // Phase 0 demand 0.5: uncapped draw is 0.5.
        assert!((p.power_frac(1.0, 0.0) - 0.5).abs() < 1e-12);
        // Cap below demand clips.
        assert!((p.power_frac(0.4, 0.0) - 0.4).abs() < 1e-12);
        // Phase 1 demand 0.8.
        assert!((p.power_frac(1.0, 35.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn cycle_length() {
        assert!((profile().cycle_s() - 40.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_panics() {
        AppProfile::new(
            "x",
            "y",
            Sensitivity::Low,
            PerfCurve::new(0.1, 1.0, 0.3),
            vec![],
        );
    }
}
