//! Property-based tests for the application profiles.

use perq_apps::{ecp_suite, npb_training_suite, AppProfile, PerfCurve, Phase, Sensitivity};
use proptest::prelude::*;

fn arb_curve() -> impl Strategy<Value = PerfCurve> {
    (0.0f64..0.9, 1.0f64..3.0, 0.4f64..1.0)
        .prop_map(|(d, s, sat)| PerfCurve::with_saturation(d, s, 0.31, sat.max(0.32)))
}

proptest! {
    #[test]
    fn curve_monotone_and_bounded(curve in arb_curve(), caps in prop::collection::vec(0.0f64..1.2, 2..50)) {
        let mut sorted = caps.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut prev = f64::NEG_INFINITY;
        for c in sorted {
            let p = curve.perf_frac(c);
            prop_assert!((0.0..=1.0).contains(&p), "perf {p} out of range");
            prop_assert!(p >= prev - 1e-12, "not monotone");
            prev = p;
        }
        // Saturation: perf is exactly 1 at and above sat_frac.
        prop_assert!((curve.perf_frac(curve.sat_frac) - 1.0).abs() < 1e-12);
        prop_assert!((curve.perf_frac(1.2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slope_is_nonnegative_and_zero_outside(curve in arb_curve(), cap in -0.5f64..1.5) {
        let s = curve.slope(cap);
        prop_assert!(s >= 0.0);
        if cap > curve.sat_frac || cap < curve.min_cap_frac {
            prop_assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn phase_lookup_covers_all_time(t in 0.0f64..1e6) {
        for app in ecp_suite() {
            let phase = app.phase(t);
            prop_assert!(phase.duration_s > 0.0);
            prop_assert!(phase.demand_frac > 0.0 && phase.demand_frac <= 1.0);
        }
    }

    #[test]
    fn power_draw_never_exceeds_cap_or_demand(cap in 0.0f64..1.0, t in 0.0f64..1e4) {
        for app in ecp_suite().into_iter().chain(npb_training_suite()) {
            let draw = app.power_frac(cap, t);
            prop_assert!(draw <= cap + 1e-12);
            prop_assert!(draw <= app.phase(t).demand_frac + 1e-12);
        }
    }

    #[test]
    fn intensity_ordering_preserved(curve in arb_curve(), cap in 0.31f64..0.99) {
        // Higher intensity can never *increase* performance.
        let lo = curve.perf_frac_with_intensity(cap, 0.5);
        let hi = curve.perf_frac_with_intensity(cap, 1.5);
        prop_assert!(hi <= lo + 1e-12);
    }
}

#[test]
fn custom_profile_round_trips_through_serde() {
    let app = AppProfile::new(
        "custom",
        "test domain",
        Sensitivity::Medium,
        PerfCurve::with_saturation(0.3, 1.5, 0.31, 0.8),
        vec![Phase::new(30.0, 0.5, 1.0)],
    );
    let json = serde_json::to_string(&app).expect("serializes");
    let back: AppProfile = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(app, back);
}
