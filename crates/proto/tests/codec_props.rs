//! Property tests for the sans-io framing codec: the incremental
//! decoder must recover exactly the encoded frame sequence no matter
//! how the byte stream is chopped up, stay byte-compatible with the
//! blocking transport, and reject corrupt length prefixes.

use perq_proto::codec::{FrameDecoder, FrameEncoder, MAX_FRAME};
use perq_proto::{read_frame, write_frame, Command, FrameError, Report};
use proptest::prelude::*;

fn arb_command() -> impl Strategy<Value = Command> {
    prop_oneof![
        (0.0f64..400.0).prop_map(|cap_w| Command::SetCap { cap_w }),
        (any::<u64>(), "[A-Za-z]{1,12}", 0.0f64..1e4).prop_map(|(job_id, app, work_intervals)| {
            Command::Launch {
                job_id,
                app,
                work_intervals,
            }
        }),
        Just(Command::Tick),
        Just(Command::Shutdown),
    ]
}

fn arb_report() -> impl Strategy<Value = Report> {
    (
        any::<u32>(),
        proptest::option::of(any::<u64>()),
        0.0f64..1e10,
        0.0f64..500.0,
        any::<bool>(),
    )
        .prop_map(|(node_id, job_id, ips, power_w, job_done)| Report {
            node_id,
            job_id,
            ips,
            power_w,
            job_done,
        })
}

/// Splits `wire` into chunks whose sizes are drawn from `cuts`
/// (cycled); the decoder must be insensitive to the chop.
fn feed_chopped(dec: &mut FrameDecoder, wire: &[u8], cuts: &[usize]) -> Vec<Command> {
    let mut out = Vec::new();
    let mut pos = 0;
    let mut k = 0;
    while pos < wire.len() {
        let step = cuts[k % cuts.len()].clamp(1, wire.len() - pos);
        k += 1;
        dec.feed(&wire[pos..pos + step]);
        pos += step;
        while let Some(cmd) = dec.next_frame::<Command>().expect("valid stream") {
            out.push(cmd);
        }
    }
    out
}

proptest! {
    /// Any frame sequence survives any partial-read chop, including
    /// one-byte reads that split the length header itself.
    #[test]
    fn chopped_streams_decode_identically(
        cmds in proptest::collection::vec(arb_command(), 1..24),
        cuts in proptest::collection::vec(1usize..64, 1..12),
    ) {
        let enc = FrameEncoder::new();
        let mut wire = Vec::new();
        for cmd in &cmds {
            enc.encode_into(cmd, &mut wire).unwrap();
        }

        // Reference: whole stream in one feed.
        let mut whole = FrameDecoder::new();
        let got_whole = feed_chopped(&mut whole, &wire, &[wire.len()]);
        prop_assert_eq!(&got_whole, &cmds);
        prop_assert_eq!(whole.buffered(), 0);

        // Chopped arbitrarily, including header splits.
        let mut chopped = FrameDecoder::new();
        let got_chopped = feed_chopped(&mut chopped, &wire, &cuts);
        prop_assert_eq!(&got_chopped, &cmds);

        // Degenerate one-byte chop.
        let mut trickle = FrameDecoder::new();
        let got_trickle = feed_chopped(&mut trickle, &wire, &[1]);
        prop_assert_eq!(&got_trickle, &cmds);
    }

    /// The sans-io encoder and the blocking writer emit identical
    /// bytes, and each side decodes the other's output: the refactor
    /// is wire-compatible in both directions.
    #[test]
    fn codec_is_byte_compatible_with_blocking_transport(
        reports in proptest::collection::vec(arb_report(), 1..16),
    ) {
        let enc = FrameEncoder::new();
        let mut sans_io_wire = Vec::new();
        let mut blocking_wire = Vec::new();
        for r in &reports {
            enc.encode_into(r, &mut sans_io_wire).unwrap();
            write_frame(&mut blocking_wire, r).unwrap();
        }
        prop_assert_eq!(&sans_io_wire, &blocking_wire);

        // Blocking reader consumes the sans-io encoder's stream...
        let mut cursor = std::io::Cursor::new(&sans_io_wire);
        for expected in &reports {
            let got: Report = read_frame(&mut cursor).unwrap();
            prop_assert_eq!(&got, expected);
        }
        prop_assert_eq!(cursor.position() as usize, sans_io_wire.len());

        // ...and the incremental decoder consumes the blocking writer's.
        let mut dec = FrameDecoder::new();
        dec.feed(&blocking_wire);
        for expected in &reports {
            let got: Report = dec.next_frame().unwrap().expect("frame available");
            prop_assert_eq!(&got, expected);
        }
        prop_assert!(dec.next_frame::<Report>().unwrap().is_none());
    }

    /// A length prefix above the frame ceiling is rejected before any
    /// payload is buffered, and poisons the decoder permanently — no
    /// amount of further bytes resynchronises a corrupt frame boundary.
    #[test]
    fn corrupt_length_is_rejected_and_poisons(
        over in (MAX_FRAME as u64 + 1..=u32::MAX as u64).prop_map(|v| v as u32),
        tail in proptest::collection::vec(any::<u8>(), 0..64),
        valid in arb_command(),
    ) {
        let mut dec = FrameDecoder::new();
        dec.feed(&over.to_be_bytes());
        match dec.next_frame::<Command>() {
            Err(FrameError::Oversized(n)) => prop_assert_eq!(n, over),
            other => prop_assert!(false, "expected Oversized, got {:?}", other),
        }
        // Even a subsequently valid frame must not be surfaced: the
        // stream position is untrustworthy.
        dec.feed(&tail);
        dec.feed(&FrameEncoder::new().encode(&valid).unwrap());
        prop_assert!(matches!(
            dec.next_frame::<Command>(),
            Err(FrameError::Oversized(_))
        ));
    }

    /// `want()` is an exact progress oracle: feeding precisely `want()`
    /// bytes at a time walks the stream frame by frame, and `want()`
    /// hits zero exactly when a frame is decodable.
    #[test]
    fn want_is_an_exact_progress_oracle(
        cmds in proptest::collection::vec(arb_command(), 1..8),
    ) {
        let enc = FrameEncoder::new();
        let mut wire = Vec::new();
        for cmd in &cmds {
            enc.encode_into(cmd, &mut wire).unwrap();
        }
        let mut dec = FrameDecoder::new();
        let mut pos = 0;
        let mut decoded = Vec::new();
        while decoded.len() < cmds.len() {
            let want = dec.want();
            if want == 0 {
                decoded.push(dec.next_frame::<Command>().unwrap().expect("want()==0"));
                continue;
            }
            prop_assert!(pos + want <= wire.len(), "oracle overshot the stream");
            dec.feed(&wire[pos..pos + want]);
            pos += want;
        }
        prop_assert_eq!(&decoded, &cmds);
        prop_assert_eq!(pos, wire.len());
    }
}
