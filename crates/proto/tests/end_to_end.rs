//! End-to-end prototype tests: full TCP cluster runs under different
//! policies.

use perq_core::{baselines, PerqConfig, PerqPolicy};
use perq_proto::{ProtoCluster, ProtoConfig};
use perq_sim::{FairPolicy, JobOutcome, SystemModel, TraceGenerator};

fn jobs(n: usize, seed: u64) -> Vec<perq_sim::JobSpec> {
    let mut gen = TraceGenerator::new(SystemModel::tardis(), seed);
    let mut jobs = gen.generate(n);
    // Shorten runtimes so prototype runs stay fast (minutes of logical
    // time, milliseconds of wall time).
    for j in jobs.iter_mut() {
        j.runtime_tdp_s = j.runtime_tdp_s.min(600.0);
        j.runtime_estimate_s = j.runtime_tdp_s * 1.3;
    }
    jobs
}

#[test]
fn fop_run_completes_jobs_within_budget() {
    let config = ProtoConfig::tardis(4, 2.0, 240);
    let budget = config.budget_w();
    let cluster = ProtoCluster::new(config);
    let result = cluster
        .run(jobs(40, 1), &mut FairPolicy::new())
        .expect("prototype run");
    assert!(result.throughput() > 0, "no jobs completed");
    assert_eq!(result.budget_violations, 0);
    for log in &result.intervals {
        assert!(
            log.committed_power_w <= budget + 1e-6,
            "budget exceeded at t={}",
            log.t_s
        );
    }
}

#[test]
fn perq_runs_on_the_prototype() {
    let config = ProtoConfig::tardis(4, 2.0, 240);
    let cluster = ProtoCluster::new(config);
    let mut perq = PerqPolicy::new(PerqConfig::default());
    let result = cluster.run(jobs(40, 2), &mut perq).expect("prototype run");
    assert!(result.throughput() > 0);
    // The budget bounds consumed power; on an 8-node cluster a single
    // job's first-visit phase peak can overshoot transiently (there are
    // too few jobs for statistical averaging), so tolerate rare, shallow
    // transients only.
    assert!(
        result.budget_violations * 100 <= 3 * result.intervals.len(),
        "violations {} / {} intervals",
        result.budget_violations,
        result.intervals.len()
    );
    let budget = 4.0 * 290.0;
    for log in &result.intervals {
        assert!(log.total_power_w <= budget * 1.10, "deep overshoot");
    }
    // Decision times were recorded for the overhead analysis.
    assert_eq!(result.decision_times_s.len(), 240);
}

#[test]
fn srn_prototype_run_is_recorded_consistently() {
    let config = ProtoConfig::tardis(4, 1.5, 180);
    let cluster = ProtoCluster::new(config);
    let result = cluster
        .run(jobs(30, 3), &mut baselines::srn())
        .expect("prototype run");
    // Every record is either completed or unfinished at window close.
    for rec in &result.records {
        match rec.outcome {
            JobOutcome::Completed => {
                assert!(rec.end_s > rec.start_s);
                assert!(rec.progress_s >= rec.spec.runtime_tdp_s - 1e-6);
            }
            JobOutcome::Unfinished => assert!(rec.progress_s < rec.spec.runtime_tdp_s),
            JobOutcome::Crashed => panic!("no crash injection configured"),
            JobOutcome::Killed => panic!("no fault injection configured"),
        }
    }
}

#[test]
fn traced_job_power_and_ips_are_recorded() {
    let mut config = ProtoConfig::tardis(2, 2.0, 120);
    config.trace_jobs = vec![0, 1];
    let cluster = ProtoCluster::new(config);
    let result = cluster
        .run(jobs(10, 4), &mut FairPolicy::new())
        .expect("prototype run");
    let trace = result.traces.get(&0).expect("job 0 traced");
    assert!(!trace.points.is_empty());
    for p in &trace.points {
        assert!((90.0..=290.0).contains(&p.cap_w));
    }
}

#[test]
fn prototype_determinism_for_fixed_seed() {
    let run = || {
        let config = ProtoConfig::tardis(3, 1.5, 100);
        ProtoCluster::new(config)
            .run(jobs(12, 9), &mut FairPolicy::new())
            .expect("prototype run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.throughput(), b.throughput());
    let ids = |r: &perq_sim::SimResult| -> Vec<u64> {
        r.records
            .iter()
            .filter(|x| x.outcome == JobOutcome::Completed)
            .map(|x| x.spec.id)
            .collect()
    };
    assert_eq!(ids(&a), ids(&b));
}
