use bytes::{Buf, BufMut, BytesMut};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;
use std::io::{Read, Write};

/// Maximum frame payload accepted (defence against corrupted length
/// prefixes).
const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Errors from the framed transport.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// Payload failed to (de)serialize.
    Codec(serde_json::Error),
    /// A length prefix exceeded the 16 MiB frame limit.
    Oversized(u32),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport I/O error: {e}"),
            FrameError::Codec(e) => write!(f, "frame codec error: {e}"),
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<serde_json::Error> for FrameError {
    fn from(e: serde_json::Error) -> Self {
        FrameError::Codec(e)
    }
}

/// Writes one length-prefixed JSON frame.
///
/// Wire format: 4-byte big-endian payload length followed by the JSON
/// payload. The `bytes` crate assembles the frame so it is flushed with a
/// single `write_all` (one TCP segment for typical report sizes).
pub fn write_frame<T: Serialize, W: Write>(writer: &mut W, value: &T) -> Result<(), FrameError> {
    let payload = serde_json::to_vec(value)?;
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(FrameError::Oversized(payload.len() as u32));
    }
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32(payload.len() as u32);
    buf.put_slice(&payload);
    writer.write_all(&buf)?;
    writer.flush()?;
    Ok(())
}

/// Reads one length-prefixed JSON frame.
pub fn read_frame<T: DeserializeOwned, R: Read>(reader: &mut R) -> Result<T, FrameError> {
    let mut len_buf = [0u8; 4];
    reader.read_exact(&mut len_buf)?;
    let len = (&len_buf[..]).get_u32();
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(serde_json::from_slice(&payload)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{Command, Report};
    use std::io::Cursor;

    #[test]
    fn round_trip_over_buffer() {
        let mut buf = Vec::new();
        let cmd = Command::SetCap { cap_w: 123.0 };
        write_frame(&mut buf, &cmd).unwrap();
        let mut cursor = Cursor::new(buf);
        let back: Command = read_frame(&mut cursor).unwrap();
        assert_eq!(back, cmd);
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let mut buf = Vec::new();
        for i in 0..5 {
            let r = Report {
                node_id: i,
                job_id: None,
                ips: i as f64,
                power_w: 35.0,
                job_done: false,
            };
            write_frame(&mut buf, &r).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for i in 0..5 {
            let r: Report = read_frame(&mut cursor).unwrap();
            assert_eq!(r.node_id, i);
        }
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Command::Tick).unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = Cursor::new(buf);
        let res: Result<Command, _> = read_frame(&mut cursor);
        assert!(matches!(res, Err(FrameError::Io(_))));
    }

    #[test]
    fn oversized_prefix_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut cursor = Cursor::new(buf);
        let res: Result<Command, _> = read_frame(&mut cursor);
        assert!(matches!(res, Err(FrameError::Oversized(_))));
    }

    #[test]
    fn garbage_payload_is_codec_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.extend_from_slice(b"zzz");
        let mut cursor = Cursor::new(buf);
        let res: Result<Command, _> = read_frame(&mut cursor);
        assert!(matches!(res, Err(FrameError::Codec(_))));
    }

    #[test]
    fn real_tcp_round_trip() {
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let cmd: Command = read_frame(&mut sock).unwrap();
            write_frame(&mut sock, &cmd).unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let cmd = Command::Launch {
            job_id: 9,
            app: "SWFFT".into(),
            work_intervals: 100.0,
        };
        write_frame(&mut client, &cmd).unwrap();
        let echoed: Command = read_frame(&mut client).unwrap();
        assert_eq!(echoed, cmd);
        handle.join().unwrap();
    }
}
