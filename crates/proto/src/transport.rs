use crate::codec::{FrameDecoder, FrameEncoder};
use perq_telemetry::Recorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// Errors from the framed transport.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// Payload failed to (de)serialize.
    Codec(serde_json::Error),
    /// A length prefix exceeded the 16 MiB frame limit.
    Oversized(u32),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport I/O error: {e}"),
            FrameError::Codec(e) => write!(f, "frame codec error: {e}"),
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<serde_json::Error> for FrameError {
    fn from(e: serde_json::Error) -> Self {
        FrameError::Codec(e)
    }
}

/// Writes one length-prefixed JSON frame.
///
/// Wire format: 4-byte big-endian payload length followed by the JSON
/// payload (see [`crate::codec`] for the sans-io implementation this
/// delegates to). The frame is assembled contiguously so it is flushed
/// with a single `write_all` (one TCP segment for typical report
/// sizes) — the property [`FaultyTransport`] relies on.
pub fn write_frame<T: Serialize, W: Write>(writer: &mut W, value: &T) -> Result<(), FrameError> {
    let buf = FrameEncoder::new().encode(value)?;
    writer.write_all(&buf)?;
    writer.flush()?;
    Ok(())
}

/// Reads one length-prefixed JSON frame.
///
/// Implemented on the incremental [`FrameDecoder`]: the reader is asked
/// for exactly the bytes the current frame still needs
/// ([`FrameDecoder::want`]), so no byte belonging to a later frame is
/// ever consumed — byte-for-byte the same stream behaviour as the
/// historical `read_exact` implementation.
pub fn read_frame<T: DeserializeOwned, R: Read>(reader: &mut R) -> Result<T, FrameError> {
    let mut dec = FrameDecoder::new();
    let mut scratch = [0u8; 4096];
    loop {
        if let Some(frame) = dec.next_frame()? {
            return Ok(frame);
        }
        let want = dec.want();
        debug_assert!(want > 0, "decoder must make progress");
        let mut remaining = want;
        while remaining > 0 {
            let n = remaining.min(scratch.len());
            reader.read_exact(&mut scratch[..n])?;
            dec.feed(&scratch[..n]);
            remaining -= n;
        }
    }
}

/// Bounded retry with exponential backoff for transient transport errors
/// (read timeouts on a heartbeat-limited socket, interrupted syscalls).
/// Permanent errors — disconnects, codec failures, oversized frames — are
/// never retried: the peer is gone or the stream is poisoned.
///
/// Two independent bounds apply: `max_attempts` caps how many times the
/// operation is tried, and `max_elapsed` caps the *total wall-clock
/// time* spent across attempts, including time lost inside the failed
/// attempts themselves. The elapsed bound is what keeps a slow-but-not-
/// dead peer from stalling a control tick: with a 5 s per-attempt
/// heartbeat timeout, an attempt bound of 4 alone still admits a ~20 s
/// stall — twice the paper's decide interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Backoff factor applied per retry.
    pub multiplier: f64,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// Total-elapsed deadline across all attempts: once this much wall
    /// time has passed since the operation started, no further retry is
    /// scheduled (the in-flight attempt still completes). The deadline
    /// also refuses retries whose backoff sleep would overshoot it.
    pub max_elapsed: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            multiplier: 2.0,
            max_delay: Duration::from_millis(200),
            // Generous: four attempts against a 5 s heartbeat timeout fit
            // comfortably, so the deadline only cuts off pathological
            // stalls. Latency-sensitive callers (the serve decide loop)
            // configure a budget matched to their tick.
            max_elapsed: Duration::from_secs(30),
        }
    }
}

impl RetryPolicy {
    /// No retries: fail on the first error.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            multiplier: 1.0,
            max_delay: Duration::ZERO,
            max_elapsed: Duration::MAX,
        }
    }

    /// Backoff delay before retry number `attempt` (0-based):
    /// `base · multiplier^attempt`, capped at `max_delay`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = self.multiplier.max(1.0).powi(attempt.min(30) as i32);
        self.base_delay.mul_f64(factor).min(self.max_delay)
    }

    /// Whether a retry attempt may still be scheduled `elapsed` into the
    /// operation: the attempt budget has room *and* the elapsed budget —
    /// including the backoff sleep about to be paid — is not exhausted.
    pub fn may_retry(&self, attempt: u32, elapsed: Duration) -> bool {
        attempt + 1 < self.max_attempts.max(1)
            && elapsed
                .checked_add(self.delay(attempt))
                .is_some_and(|total| total <= self.max_elapsed)
    }
}

/// Whether a transport error is worth retrying (the peer may still be
/// alive and responsive on a later attempt).
pub fn is_transient(err: &FrameError) -> bool {
    match err {
        FrameError::Io(e) => matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock
                | std::io::ErrorKind::TimedOut
                | std::io::ErrorKind::Interrupted
        ),
        FrameError::Codec(_) | FrameError::Oversized(_) => false,
    }
}

/// [`read_frame`] with bounded retry on transient errors.
///
/// Retrying restarts the frame from the length prefix, so it assumes the
/// failed attempt consumed no bytes — true for the timeout/interrupt
/// errors classified as transient, which fire before any data arrives.
pub fn read_frame_retry<T: DeserializeOwned, R: Read>(
    reader: &mut R,
    retry: &RetryPolicy,
) -> Result<T, FrameError> {
    read_frame_retry_with(reader, retry, &Recorder::noop())
}

/// [`read_frame_retry`] reporting to a telemetry recorder: successful
/// frames (`perq_proto_frames_recv_total`), retried attempts
/// (`perq_proto_retries_total`), final failures
/// (`perq_proto_recv_errors_total`), and transient exhaustion — a
/// worker that stayed silent through every attempt
/// (`perq_proto_heartbeat_timeouts_total`).
pub fn read_frame_retry_with<T: DeserializeOwned, R: Read>(
    reader: &mut R,
    retry: &RetryPolicy,
    rec: &Recorder,
) -> Result<T, FrameError> {
    let start = Instant::now();
    let mut attempt = 0u32;
    loop {
        match read_frame(reader) {
            Ok(value) => {
                rec.counter_inc("perq_proto_frames_recv_total");
                return Ok(value);
            }
            Err(e) if is_transient(&e) && retry.may_retry(attempt, start.elapsed()) => {
                rec.counter_inc("perq_proto_retries_total");
                std::thread::sleep(retry.delay(attempt));
                attempt += 1;
            }
            Err(e) => {
                rec.counter_inc("perq_proto_recv_errors_total");
                if is_transient(&e) {
                    rec.counter_inc("perq_proto_heartbeat_timeouts_total");
                    if attempt + 1 < retry.max_attempts.max(1) {
                        // Attempts remained; the elapsed deadline is
                        // what stopped the retry.
                        rec.counter_inc("perq_proto_retry_deadline_total");
                    }
                }
                return Err(e);
            }
        }
    }
}

/// [`write_frame`] with bounded retry on transient errors.
pub fn write_frame_retry<T: Serialize, W: Write>(
    writer: &mut W,
    value: &T,
    retry: &RetryPolicy,
) -> Result<(), FrameError> {
    write_frame_retry_with(writer, value, retry, &Recorder::noop())
}

/// [`write_frame_retry`] reporting to a telemetry recorder: successful
/// frames (`perq_proto_frames_sent_total`), retried attempts
/// (`perq_proto_retries_total`), and final failures
/// (`perq_proto_send_errors_total`).
pub fn write_frame_retry_with<T: Serialize, W: Write>(
    writer: &mut W,
    value: &T,
    retry: &RetryPolicy,
    rec: &Recorder,
) -> Result<(), FrameError> {
    let start = Instant::now();
    let mut attempt = 0u32;
    loop {
        match write_frame(writer, value) {
            Ok(()) => {
                rec.counter_inc("perq_proto_frames_sent_total");
                return Ok(());
            }
            Err(e) if is_transient(&e) && retry.may_retry(attempt, start.elapsed()) => {
                rec.counter_inc("perq_proto_retries_total");
                std::thread::sleep(retry.delay(attempt));
                attempt += 1;
            }
            Err(e) => {
                rec.counter_inc("perq_proto_send_errors_total");
                return Err(e);
            }
        }
    }
}

/// A transport wrapper that injects faults on the write path: frames are
/// dropped (vanish on the wire), garbled (payload bytes flipped, length
/// prefix intact — the reader sees a codec error), or delayed. Reads pass
/// through untouched. Fault draws come from a seeded RNG, so a given
/// `(seed, traffic)` pair misbehaves identically on every run.
///
/// Assumes each frame is written with a single `write` call, which is how
/// [`write_frame`] assembles frames.
pub struct FaultyTransport<S> {
    inner: S,
    rng: StdRng,
    drop_prob: f64,
    corrupt_prob: f64,
    delay: Duration,
}

impl<S> FaultyTransport<S> {
    /// Wraps a transport; fault probabilities default to zero.
    pub fn new(inner: S, seed: u64) -> Self {
        FaultyTransport {
            inner,
            rng: StdRng::seed_from_u64(seed ^ 0x4641_554c_5459_5f54),
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            delay: Duration::ZERO,
        }
    }

    /// Probability that a written frame is silently dropped.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_prob = p;
        self
    }

    /// Probability that a written frame's payload is garbled.
    pub fn with_corrupt_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.corrupt_prob = p;
        self
    }

    /// Fixed delay injected before every write.
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Write> Write for FaultyTransport<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        if self.drop_prob > 0.0 && self.rng.gen_bool(self.drop_prob) {
            // The frame vanishes: the caller believes it was sent.
            return Ok(buf.len());
        }
        if self.corrupt_prob > 0.0 && self.rng.gen_bool(self.corrupt_prob) && buf.len() > 4 {
            let mut garbled = buf.to_vec();
            for b in &mut garbled[4..] {
                *b ^= 0x5A;
            }
            self.inner.write_all(&garbled)?;
            return Ok(buf.len());
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl<S: Read> Read for FaultyTransport<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.inner.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{Command, Report};
    use std::io::Cursor;

    #[test]
    fn round_trip_over_buffer() {
        let mut buf = Vec::new();
        let cmd = Command::SetCap { cap_w: 123.0 };
        write_frame(&mut buf, &cmd).unwrap();
        let mut cursor = Cursor::new(buf);
        let back: Command = read_frame(&mut cursor).unwrap();
        assert_eq!(back, cmd);
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let mut buf = Vec::new();
        for i in 0..5 {
            let r = Report {
                node_id: i,
                job_id: None,
                ips: i as f64,
                power_w: 35.0,
                job_done: false,
            };
            write_frame(&mut buf, &r).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for i in 0..5 {
            let r: Report = read_frame(&mut cursor).unwrap();
            assert_eq!(r.node_id, i);
        }
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Command::Tick).unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = Cursor::new(buf);
        let res: Result<Command, _> = read_frame(&mut cursor);
        assert!(matches!(res, Err(FrameError::Io(_))));
    }

    #[test]
    fn oversized_prefix_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut cursor = Cursor::new(buf);
        let res: Result<Command, _> = read_frame(&mut cursor);
        assert!(matches!(res, Err(FrameError::Oversized(_))));
    }

    #[test]
    fn garbage_payload_is_codec_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.extend_from_slice(b"zzz");
        let mut cursor = Cursor::new(buf);
        let res: Result<Command, _> = read_frame(&mut cursor);
        assert!(matches!(res, Err(FrameError::Codec(_))));
    }

    #[test]
    fn real_tcp_round_trip() {
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let cmd: Command = read_frame(&mut sock).unwrap();
            write_frame(&mut sock, &cmd).unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let cmd = Command::Launch {
            job_id: 9,
            app: "SWFFT".into(),
            work_intervals: 100.0,
        };
        write_frame(&mut client, &cmd).unwrap();
        let echoed: Command = read_frame(&mut client).unwrap();
        assert_eq!(echoed, cmd);
        handle.join().unwrap();
    }

    /// A reader that fails with a transient error `failures` times before
    /// delegating, counting every attempt.
    struct Flaky<R> {
        inner: R,
        failures: u32,
        attempts: u32,
    }

    impl<R: Read> Read for Flaky<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.attempts += 1;
            if self.failures > 0 {
                self.failures -= 1;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "transient",
                ));
            }
            self.inner.read(buf)
        }
    }

    fn fast_retry(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_delay: Duration::from_micros(10),
            multiplier: 2.0,
            max_delay: Duration::from_micros(100),
            max_elapsed: Duration::from_secs(30),
        }
    }

    #[test]
    fn retry_recovers_from_transient_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Command::Tick).unwrap();
        let mut flaky = Flaky {
            inner: Cursor::new(buf),
            failures: 2,
            attempts: 0,
        };
        let cmd: Command = read_frame_retry(&mut flaky, &fast_retry(4)).unwrap();
        assert_eq!(cmd, Command::Tick);
        // Two failed attempts, then the successful attempt reads the
        // header and the payload with one call each.
        assert_eq!(flaky.attempts, 4, "two failures + one success");
    }

    #[test]
    fn retry_exhaustion_returns_the_transient_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Command::Tick).unwrap();
        let mut flaky = Flaky {
            inner: Cursor::new(buf),
            failures: 100,
            attempts: 0,
        };
        let res: Result<Command, _> = read_frame_retry(&mut flaky, &fast_retry(3));
        match res {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::WouldBlock),
            other => panic!("expected transient Io error, got {other:?}"),
        }
        assert_eq!(flaky.attempts, 3, "must stop at max_attempts");
    }

    #[test]
    fn retry_telemetry_counts_frames_retries_and_timeouts() {
        let rec = Recorder::manual();
        let mut buf = Vec::new();
        write_frame(&mut buf, &Command::Tick).unwrap();
        let mut flaky = Flaky {
            inner: Cursor::new(buf),
            failures: 2,
            attempts: 0,
        };
        let _: Command = read_frame_retry_with(&mut flaky, &fast_retry(4), &rec).unwrap();
        assert_eq!(rec.counter_value("perq_proto_frames_recv_total"), 1);
        assert_eq!(rec.counter_value("perq_proto_retries_total"), 2);

        // A peer that stays silent through every attempt is a heartbeat
        // timeout, not a generic receive error.
        let mut dead = Flaky {
            inner: Cursor::new(Vec::new()),
            failures: 100,
            attempts: 0,
        };
        let res: Result<Command, _> = read_frame_retry_with(&mut dead, &fast_retry(2), &rec);
        assert!(res.is_err());
        assert_eq!(rec.counter_value("perq_proto_recv_errors_total"), 1);
        assert_eq!(rec.counter_value("perq_proto_heartbeat_timeouts_total"), 1);

        let mut sink = Vec::new();
        write_frame_retry_with(&mut sink, &Command::Tick, &fast_retry(2), &rec).unwrap();
        assert_eq!(rec.counter_value("perq_proto_frames_sent_total"), 1);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        // An empty stream yields UnexpectedEof — a disconnect, not a
        // timeout — so the retry wrapper must fail immediately.
        let mut flaky = Flaky {
            inner: Cursor::new(Vec::new()),
            failures: 0,
            attempts: 0,
        };
        let res: Result<Command, _> = read_frame_retry(&mut flaky, &fast_retry(5));
        assert!(matches!(res, Err(FrameError::Io(_))));
        assert_eq!(flaky.attempts, 1);
    }

    /// A reader standing in for a slow-but-not-dead peer: every read
    /// attempt stalls for a fixed delay, then times out.
    struct SlowPeer {
        stall: Duration,
        attempts: u32,
    }

    impl Read for SlowPeer {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            self.attempts += 1;
            std::thread::sleep(self.stall);
            Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "slow"))
        }
    }

    #[test]
    fn elapsed_deadline_stops_retrying_a_slow_peer() {
        // Regression: RetryPolicy used to bound attempts only, so a peer
        // stalling each attempt could hold the control loop for
        // max_attempts × stall — past the decide interval. With a
        // total-elapsed deadline the loop gives up after the deadline
        // regardless of how many attempts remain.
        let mut peer = SlowPeer {
            stall: Duration::from_millis(30),
            attempts: 0,
        };
        let retry = RetryPolicy {
            max_attempts: 1000,
            base_delay: Duration::from_micros(10),
            multiplier: 1.0,
            max_delay: Duration::from_micros(10),
            max_elapsed: Duration::from_millis(50),
        };
        let t0 = Instant::now();
        let res: Result<Command, _> = read_frame_retry(&mut peer, &retry);
        let elapsed = t0.elapsed();
        assert!(matches!(res, Err(FrameError::Io(_))), "got {res:?}");
        // 50 ms deadline, 30 ms stalls: attempt 1 (30 ms) retries,
        // attempt 2 crosses the deadline, so at most one more attempt
        // may start. Allow slack for scheduler noise, but nothing close
        // to the 30 s an attempt-only bound would permit.
        assert!(
            peer.attempts <= 3,
            "deadline must bound attempts, made {}",
            peer.attempts
        );
        assert!(
            elapsed < Duration::from_secs(1),
            "stalled {elapsed:?}, deadline is 50 ms"
        );
    }

    #[test]
    fn deadline_regression_with_delaying_faulty_transport() {
        // The write leg of the same regression, through the fault
        // harness's delay injection: each write stalls 20 ms and then
        // fails as transient, so only the elapsed deadline keeps the
        // total bounded.
        struct TimedOutSink;
        impl Write for TimedOutSink {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut faulty =
            FaultyTransport::new(TimedOutSink, 3).with_delay(Duration::from_millis(20));
        let retry = RetryPolicy {
            max_attempts: 1000,
            base_delay: Duration::from_micros(10),
            multiplier: 1.0,
            max_delay: Duration::from_micros(10),
            max_elapsed: Duration::from_millis(45),
        };
        let t0 = Instant::now();
        let res = write_frame_retry(&mut faulty, &Command::Tick, &retry);
        assert!(matches!(res, Err(FrameError::Io(_))), "got {res:?}");
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "a delaying transport must not stall past the deadline"
        );
    }

    #[test]
    fn may_retry_honours_both_budgets() {
        let retry = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            multiplier: 1.0,
            max_delay: Duration::from_millis(10),
            max_elapsed: Duration::from_millis(100),
        };
        assert!(retry.may_retry(0, Duration::ZERO));
        assert!(retry.may_retry(1, Duration::from_millis(80)));
        assert!(!retry.may_retry(2, Duration::ZERO), "attempt budget");
        assert!(
            !retry.may_retry(0, Duration::from_millis(95)),
            "sleep would overshoot the deadline"
        );
        assert!(!retry.may_retry(0, Duration::from_millis(200)), "elapsed");
    }

    #[test]
    fn backoff_delays_grow_and_cap() {
        let retry = RetryPolicy::default();
        assert_eq!(retry.delay(0), Duration::from_millis(10));
        assert_eq!(retry.delay(1), Duration::from_millis(20));
        assert_eq!(retry.delay(2), Duration::from_millis(40));
        assert_eq!(retry.delay(10), Duration::from_millis(200), "capped");
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn faulty_transport_garbles_frames_into_codec_errors() {
        let mut faulty = FaultyTransport::new(Vec::new(), 1).with_corrupt_prob(1.0);
        write_frame(&mut faulty, &Command::SetCap { cap_w: 150.0 }).unwrap();
        let buf = faulty.into_inner();
        assert!(!buf.is_empty(), "garbled frames still hit the wire");
        let mut cursor = Cursor::new(buf);
        let res: Result<Command, _> = read_frame(&mut cursor);
        assert!(
            matches!(res, Err(FrameError::Codec(_))),
            "garbled payload must be rejected as a codec error, got {res:?}"
        );
    }

    #[test]
    fn faulty_transport_drops_frames_silently() {
        let mut faulty = FaultyTransport::new(Vec::new(), 1).with_drop_prob(1.0);
        write_frame(&mut faulty, &Command::Tick).unwrap();
        let buf = faulty.into_inner();
        assert!(buf.is_empty(), "dropped frames never reach the wire");
        // The reader waiting for the dropped frame sees a dead stream.
        let mut cursor = Cursor::new(buf);
        let res: Result<Command, _> = read_frame(&mut cursor);
        assert!(matches!(res, Err(FrameError::Io(_))));
    }

    #[test]
    fn faulty_transport_is_seed_deterministic() {
        let emit = |seed: u64| -> Vec<u8> {
            let mut faulty = FaultyTransport::new(Vec::new(), seed)
                .with_drop_prob(0.4)
                .with_corrupt_prob(0.3);
            for i in 0..32 {
                write_frame(&mut faulty, &Command::SetCap { cap_w: i as f64 }).unwrap();
            }
            faulty.into_inner()
        };
        assert_eq!(emit(7), emit(7), "same seed, same fault pattern");
        assert_ne!(emit(7), emit(8), "different seeds must diverge");
    }

    #[test]
    fn faulty_transport_reads_pass_through() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Command::Tick).unwrap();
        let mut faulty = FaultyTransport::new(Cursor::new(buf), 1)
            .with_drop_prob(1.0)
            .with_corrupt_prob(1.0);
        let cmd: Command = read_frame(&mut faulty).unwrap();
        assert_eq!(cmd, Command::Tick);
    }
}
