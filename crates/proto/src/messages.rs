use serde::{Deserialize, Serialize};

/// Controller → node commands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// Apply a new power cap (watts) for the next interval.
    SetCap {
        /// Per-node power cap, watts.
        cap_w: f64,
    },
    /// Start (the node's share of) a job.
    Launch {
        /// Cluster-wide job id.
        job_id: u64,
        /// Application profile name (resolved against the node's suite).
        app: String,
        /// Work to complete on this node, in TDP-equivalent control
        /// intervals.
        work_intervals: f64,
    },
    /// Advance one control interval: run the workload slice under the
    /// current cap and reply with a [`Report`].
    Tick,
    /// Terminate the worker thread.
    Shutdown,
}

/// Node → controller report, sent in response to every `Tick`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Reporting node id.
    pub node_id: u32,
    /// Job occupying this node, if any.
    pub job_id: Option<u64>,
    /// Measured node IPS over the last interval (0 when idle).
    pub ips: f64,
    /// Measured node power over the last interval, watts.
    pub power_w: f64,
    /// True if the node's share of the job completed during this interval.
    pub job_done: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_round_trip_through_json() {
        for cmd in [
            Command::SetCap { cap_w: 145.5 },
            Command::Launch {
                job_id: 7,
                app: "CoMD".into(),
                work_intervals: 42.0,
            },
            Command::Tick,
            Command::Shutdown,
        ] {
            let bytes = serde_json::to_vec(&cmd).unwrap();
            let back: Command = serde_json::from_slice(&bytes).unwrap();
            assert_eq!(cmd, back);
        }
    }

    #[test]
    fn reports_round_trip_through_json() {
        let r = Report {
            node_id: 3,
            job_id: Some(11),
            ips: 1.9e9,
            power_w: 201.0,
            job_done: true,
        };
        let bytes = serde_json::to_vec(&r).unwrap();
        let back: Report = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(r, back);
    }
}
