//! Communication-overhead stress test (§3 "Overhead Analysis").
//!
//! The paper stress-tests the report path by "spawning 100,000 clients in
//! our Tardis cluster" and measuring the delay to communicate IPS
//! information to the controller (0.19 s). This module reproduces that
//! measurement: the clients are multiplexed over a set of persistent
//! localhost TCP connections (cluster nodes hold their controller
//! connection open — there is no per-report handshake), each delivering
//! one framed [`Report`] per client; the collector clocks one full
//! collection round.

use crate::messages::Report;
use crate::transport::{read_frame, write_frame};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Result of one stress run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressReport {
    /// Number of client reports collected.
    pub clients: usize,
    /// Wall-clock time to collect every report.
    pub collection_time: Duration,
    /// Reports per second achieved.
    pub reports_per_second: f64,
}

/// Runs the collection stress test: `clients` logical clients multiplexed
/// over `connections` persistent TCP connections.
pub fn run_stress(clients: usize, connections: usize) -> StressReport {
    assert!(clients > 0 && connections > 0);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let go = Arc::new(AtomicBool::new(false));
    let per_conn = clients.div_ceil(connections);
    let mut senders = Vec::new();
    let mut total = 0usize;
    for t in 0..connections {
        let n = per_conn.min(clients - total);
        if n == 0 {
            break;
        }
        total += n;
        let go = Arc::clone(&go);
        senders.push(thread::spawn(move || {
            let mut sock = TcpStream::connect(addr).expect("connect");
            sock.set_nodelay(true).expect("nodelay");
            while !go.load(Ordering::Acquire) {
                thread::yield_now();
            }
            for i in 0..n {
                let report = Report {
                    node_id: (t * 1_000_000 + i) as u32,
                    job_id: None,
                    ips: 1.0e9,
                    power_w: 150.0,
                    job_done: false,
                };
                write_frame(&mut sock, &report).expect("send report");
            }
        }));
    }

    // Accept all persistent connections before starting the clock.
    let mut readers = Vec::new();
    let mut conns = Vec::new();
    for _ in 0..senders.len() {
        let (sock, _) = listener.accept().expect("accept");
        sock.set_nodelay(true).expect("nodelay");
        conns.push(sock);
    }

    let start = Instant::now();
    go.store(true, Ordering::Release);
    for mut sock in conns {
        readers.push(thread::spawn(move || {
            let mut received = 0usize;
            // Each sender closes its socket after its share of frames.
            while read_frame::<Report, _>(&mut sock).is_ok() {
                received += 1;
            }
            received
        }));
    }
    drop(listener);
    for h in senders {
        h.join().expect("sender thread");
    }
    let mut received = 0usize;
    for h in readers {
        received += h.join().expect("reader thread");
    }
    let collection_time = start.elapsed();
    assert_eq!(received, total, "lost reports");
    StressReport {
        clients: total,
        collection_time,
        reports_per_second: total as f64 / collection_time.as_secs_f64().max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_stress_run_collects_everything() {
        let r = run_stress(2000, 4);
        assert_eq!(r.clients, 2000);
        assert!(r.reports_per_second > 1000.0, "{r:?}");
    }

    #[test]
    fn client_count_honored_with_uneven_split() {
        let r = run_stress(37, 5);
        assert_eq!(r.clients, 37);
    }
}
