use crate::error::ProtoError;
use crate::messages::{Command, Report};
use crate::transport::{read_frame_retry_with, write_frame, write_frame_retry_with, RetryPolicy};
use crate::worker::NodeWorker;
use perq_apps::{ecp_suite, AppProfile, BASE_NODE_IPS, IDLE_WATTS, MIN_CAP_WATTS, TDP_WATTS};
use perq_sim::{
    AppliedFault, FaultKind, IntervalLog, JobOutcome, JobRecord, JobSpec, JobTrace, JobView,
    PolicyContext, PowerPolicy, Scheduler, SimResult, TracePoint,
};
use perq_telemetry::{FieldValue, Recorder};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::{TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a prototype cluster run.
#[derive(Debug, Clone)]
pub struct ProtoConfig {
    /// Worker node count (`N_OP`). The paper's Tardis has 15 workers + 1
    /// scheduler node.
    pub nodes: usize,
    /// Worst-case-provisioned node count (`N_WP`); budget = `N_WP·TDP`.
    pub wp_nodes: usize,
    /// Logical control-interval length in seconds (drives application
    /// phase behaviour; the wall-clock tick is as fast as the sockets
    /// allow).
    pub interval_s: f64,
    /// Maximum control intervals to run.
    pub max_intervals: usize,
    /// RNG seed (worker noise).
    pub seed: u64,
    /// Job ids to trace (Fig. 12 material).
    pub trace_jobs: Vec<u64>,
    /// Per-worker heartbeat: a node that produces no bytes for this long
    /// (per attempt; the retry policy may extend the total) is written
    /// off as crashed. `Duration::ZERO` disables the timeout.
    pub heartbeat_timeout: Duration,
    /// Retry/backoff policy for transient transport errors.
    pub retry: RetryPolicy,
    /// Fault injection: `(node_id, tick)` pairs; each worker drops its
    /// connection on the given 0-based control step, deterministically.
    pub crash_workers: Vec<(u32, usize)>,
}

impl ProtoConfig {
    /// A Tardis-like configuration: a fixed power budget of
    /// `wp_nodes · TDP` with `round(wp_nodes · f)` worker nodes — over-
    /// provisioning adds hardware under the same budget, exactly like the
    /// simulator's [`perq_sim::ClusterConfig::for_system`].
    pub fn tardis(wp_nodes: usize, f: f64, max_intervals: usize) -> Self {
        assert!(f >= 1.0, "over-provisioning factor must be >= 1");
        ProtoConfig {
            nodes: ((wp_nodes as f64) * f).round().max(1.0) as usize,
            wp_nodes,
            interval_s: 10.0,
            max_intervals,
            seed: 0x7461_7264,
            trace_jobs: Vec::new(),
            heartbeat_timeout: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            crash_workers: Vec::new(),
        }
    }

    /// System power budget, watts.
    pub fn budget_w(&self) -> f64 {
        self.wp_nodes as f64 * TDP_WATTS
    }
}

/// A running job's controller-side state.
struct LiveJob {
    spec: JobSpec,
    app_name: String,
    nodes: Vec<u32>,
    start_interval: usize,
    /// Nodes whose share completed.
    done_nodes: Vec<u32>,
    /// Accumulated normalized work (TDP-equivalent seconds).
    progress_s: f64,
    cap_w: f64,
    last_job_ips: Option<f64>,
    last_node_power_w: Option<f64>,
    is_new: bool,
}

/// The prototype cluster: spawns worker threads, connects them over
/// localhost TCP, and drives the control loop.
pub struct ProtoCluster {
    config: ProtoConfig,
    apps: Vec<AppProfile>,
    recorder: Recorder,
}

impl ProtoCluster {
    /// Creates a cluster with the ECP application suite.
    pub fn new(config: ProtoConfig) -> Self {
        ProtoCluster {
            config,
            apps: ecp_suite(),
            recorder: Recorder::noop(),
        }
    }

    /// Attaches a telemetry recorder (builder style). The controller
    /// drives the recorder's clock from logical interval time, counts
    /// every frame crossing its sockets, and journals worker write-offs,
    /// so one recorder covers the transport, the policy, and the solver.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Runs the control loop over a job trace under the given policy.
    ///
    /// Spawns one thread per node, each holding a live TCP connection to
    /// this controller; joins them all before returning. Setup failures
    /// surface as typed [`ProtoError`]s. A node whose connection dies
    /// mid-run is *not* an error: the controller writes it off, kills any
    /// job that lost a rank, and reallocates the node's budget share to
    /// the survivors (the crash is logged in [`SimResult::faults`]).
    pub fn run(
        &self,
        jobs: Vec<JobSpec>,
        policy: &mut dyn PowerPolicy,
    ) -> Result<SimResult, ProtoError> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(ProtoError::Socket)?;
        let addr = listener.local_addr().map_err(ProtoError::Socket)?;

        // Spawn workers; each thread returns its typed outcome, checked
        // after the run.
        let node_ids = 0..self.config.nodes as u32;
        let handles: Vec<(u32, JoinHandle<Result<(), ProtoError>>)> = node_ids
            .map(|node_id| {
                let apps = self.apps.clone();
                let interval = self.config.interval_s;
                let seed = self.config.seed;
                let crash_at = self
                    .config
                    .crash_workers
                    .iter()
                    .find(|&&(n, _)| n == node_id)
                    .map(|&(_, tick)| tick);
                let handle = std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).map_err(ProtoError::Socket)?;
                    let mut worker = NodeWorker::new(node_id, apps, interval, seed);
                    if let Some(tick) = crash_at {
                        worker = worker.with_crash_at_tick(tick);
                    }
                    worker.run(stream)
                });
                (node_id, handle)
            })
            .collect();

        // Accept registrations. The heartbeat timeout on every socket
        // bounds how long a hung worker can stall the control loop.
        let mut streams: BTreeMap<u32, TcpStream> = BTreeMap::new();
        for registered in 0..self.config.nodes {
            let (mut sock, _) = listener.accept().map_err(ProtoError::Socket)?;
            if !self.config.heartbeat_timeout.is_zero() {
                sock.set_read_timeout(Some(self.config.heartbeat_timeout))
                    .map_err(ProtoError::Socket)?;
            }
            let reg: Report = read_frame_retry_with(&mut sock, &self.config.retry, &self.recorder)
                .map_err(|source| ProtoError::Registration {
                    registered,
                    expected: self.config.nodes,
                    source,
                })?;
            streams.insert(reg.node_id, sock);
        }

        let (result, lost) = self.control_loop(&mut streams, jobs, policy);

        // Shut the survivors down (lost nodes' sockets are already gone).
        for sock in streams.values_mut() {
            let _ = write_frame(sock, &Command::Shutdown);
        }
        for (node_id, handle) in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                // A node the controller wrote off also saw the drop from
                // its side; that is the degradation working, not a bug.
                Ok(Err(ProtoError::ConnectionLost { .. })) if lost.contains(&node_id) => {}
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(ProtoError::WorkerPanic { node_id }),
            }
        }
        Ok(result)
    }

    /// Drives the per-interval control loop, degrading around node
    /// losses. Returns the run result plus the set of nodes written off.
    fn control_loop(
        &self,
        streams: &mut BTreeMap<u32, TcpStream>,
        jobs: Vec<JobSpec>,
        policy: &mut dyn PowerPolicy,
    ) -> (SimResult, BTreeSet<u32>) {
        let cfg = &self.config;
        let mut scheduler = Scheduler::new(jobs);
        let mut free_nodes: Vec<u32> = (0..cfg.nodes as u32).collect();
        let mut live: Vec<LiveJob> = Vec::new();
        let mut records: Vec<JobRecord> = Vec::new();
        let mut traces: HashMap<u64, JobTrace> = HashMap::new();
        let mut intervals: Vec<IntervalLog> = Vec::new();
        let mut decision_times = Vec::new();
        let mut violations = 0usize;
        let mut faults: Vec<AppliedFault> = Vec::new();
        let mut lost: BTreeSet<u32> = BTreeSet::new();
        let rec = self.recorder.clone();
        policy.set_recorder(rec.clone());

        for step in 0..cfg.max_intervals {
            let now_s = step as f64 * cfg.interval_s;
            // Telemetry timestamps follow logical interval time, so two
            // runs of the same configuration export identical journals
            // regardless of socket latency.
            rec.set_time_s(now_s);
            let mut newly_dead: BTreeSet<u32> = BTreeSet::new();

            // 1. Scheduling.
            let running_fp: Vec<perq_sim::RunningFootprint> = live
                .iter()
                .map(|j| perq_sim::RunningFootprint {
                    size: j.spec.size,
                    estimated_end_s: j.start_interval as f64 * cfg.interval_s
                        + j.spec.runtime_estimate_s,
                })
                .collect();
            let started = scheduler.schedule(now_s, free_nodes.len(), &running_fp);
            for spec in started {
                let assigned: Vec<u32> = free_nodes.drain(..spec.size).collect();
                let app = &self.apps[spec.app_index];
                let work_intervals = spec.runtime_tdp_s / cfg.interval_s;
                for &node in &assigned {
                    let sock = streams.get_mut(&node).expect("free node has a stream");
                    let launch = Command::Launch {
                        job_id: spec.id,
                        app: app.name.clone(),
                        work_intervals,
                    };
                    if write_frame_retry_with(sock, &launch, &cfg.retry, &rec).is_err() {
                        newly_dead.insert(node);
                    }
                }
                live.push(LiveJob {
                    app_name: app.name.clone(),
                    nodes: assigned,
                    start_interval: step,
                    done_nodes: Vec::new(),
                    progress_s: 0.0,
                    cap_w: TDP_WATTS,
                    last_job_ips: None,
                    last_node_power_w: None,
                    is_new: true,
                    spec,
                });
            }

            // 2. Policy decision.
            let idle = free_nodes.len();
            let busy_budget = cfg.budget_w() - idle as f64 * IDLE_WATTS;
            let views: Vec<JobView> = live
                .iter()
                .map(|j| JobView {
                    id: j.spec.id,
                    size: j.spec.size,
                    elapsed_s: (step - j.start_interval) as f64 * cfg.interval_s,
                    measured_ips: j.last_job_ips,
                    current_cap_w: j.cap_w,
                    measured_power_w: j.last_node_power_w,
                    remaining_node_hours: (j.spec.runtime_tdp_s - j.progress_s).max(0.0)
                        * j.spec.size as f64
                        / 3600.0,
                    is_new: j.is_new,
                })
                .collect();
            let ctx = PolicyContext {
                time_s: now_s,
                interval_s: cfg.interval_s,
                busy_budget_w: busy_budget,
                cap_min_w: MIN_CAP_WATTS,
                cap_max_w: TDP_WATTS,
                total_nodes: cfg.nodes,
                wp_nodes: cfg.wp_nodes,
                queue_depth: scheduler.pending(),
                violation_s: violations as f64 * cfg.interval_s,
                jobs: &views,
            };
            let t0 = Instant::now();
            let assignments = policy.assign(&ctx);
            decision_times.push(t0.elapsed().as_secs_f64());
            assert_eq!(assignments.len(), live.len(), "policy assignment count");

            // 3. Clamp caps to the RAPL window (the budget is checked on
            //    consumed power after the interval, as in the simulator).
            let caps: Vec<f64> = assignments
                .iter()
                .map(|a| a.cap_w.clamp(MIN_CAP_WATTS, TDP_WATTS))
                .collect();

            // 4. Send caps + tick everyone, gather reports. A transport
            //    failure on any leg marks the node dead; the step
            //    continues with whatever reports arrived.
            for (i, job) in live.iter_mut().enumerate() {
                job.cap_w = caps[i];
                for &node in &job.nodes {
                    if job.done_nodes.contains(&node) {
                        continue;
                    }
                    let Some(sock) = streams.get_mut(&node) else {
                        continue;
                    };
                    let cap = Command::SetCap { cap_w: caps[i] };
                    if write_frame_retry_with(sock, &cap, &cfg.retry, &rec).is_err() {
                        newly_dead.insert(node);
                    }
                }
            }
            for (&node, sock) in streams.iter_mut() {
                if newly_dead.contains(&node) {
                    continue;
                }
                if write_frame_retry_with(sock, &Command::Tick, &cfg.retry, &rec).is_err() {
                    newly_dead.insert(node);
                }
            }
            let mut reports: BTreeMap<u32, Report> = BTreeMap::new();
            for (&node, sock) in streams.iter_mut() {
                if newly_dead.contains(&node) {
                    continue;
                }
                match read_frame_retry_with::<Report, _>(sock, &cfg.retry, &rec) {
                    Ok(report) => {
                        reports.insert(node, report);
                    }
                    Err(_) => {
                        newly_dead.insert(node);
                    }
                }
            }

            // 5. Digest reports per job.
            let mut total_power: f64 = 0.0;
            for r in reports.values() {
                total_power += r.power_w;
            }
            let mut finished: Vec<usize> = Vec::new();
            for (ji, job) in live.iter_mut().enumerate() {
                // Slowest-rank IPS over the job's active nodes (§2.4:
                // "the IPS of the slowest job (MPI) process").
                let mut slowest: Option<f64> = None;
                let mut power_sum = 0.0;
                let mut power_n = 0usize;
                for &node in &job.nodes {
                    if job.done_nodes.contains(&node) {
                        continue;
                    }
                    // A dead node has no report; its job is killed below.
                    let Some(r) = reports.get(&node) else {
                        continue;
                    };
                    slowest = Some(match slowest {
                        Some(s) => s.min(r.ips),
                        None => r.ips,
                    });
                    power_sum += r.power_w;
                    power_n += 1;
                    if r.job_done {
                        job.done_nodes.push(node);
                    }
                }
                job.last_node_power_w = if power_n > 0 {
                    Some(power_sum / power_n as f64)
                } else {
                    None
                };
                let job_ips = slowest.map(|s| s * job.spec.size as f64);
                job.last_job_ips = job_ips;
                job.is_new = false;
                if let Some(ips) = job_ips {
                    job.progress_s += ips / (job.spec.size as f64 * BASE_NODE_IPS) * cfg.interval_s;
                }
                if cfg.trace_jobs.contains(&job.spec.id) {
                    traces
                        .entry(job.spec.id)
                        .or_default()
                        .points
                        .push(TracePoint {
                            t_s: now_s,
                            cap_w: job.cap_w,
                            ips: job_ips.unwrap_or(0.0),
                            power_w: job.last_node_power_w.unwrap_or(0.0),
                            target_ips: assignments[ji].target_ips,
                        });
                }
                if job.done_nodes.len() == job.nodes.len() {
                    finished.push(ji);
                }
            }
            for &ji in finished.iter().rev() {
                let job = live.swap_remove(ji);
                free_nodes.extend_from_slice(&job.nodes);
                policy.job_departed(job.spec.id);
                records.push(JobRecord {
                    app_name: job.app_name,
                    start_s: job.start_interval as f64 * cfg.interval_s,
                    end_s: (step + 1) as f64 * cfg.interval_s,
                    progress_s: job.spec.runtime_tdp_s,
                    outcome: JobOutcome::Completed,
                    spec: job.spec,
                });
            }

            // 6. Graceful degradation: write off nodes whose connection
            //    failed this interval. A dead node is neither free nor
            //    busy, so its budget share flows to the survivors on the
            //    next decision (busy_budget is derived from live state) —
            //    the reclamation step of the paper, applied to node loss.
            for &node in &newly_dead {
                let victim = live
                    .iter()
                    .find(|j| j.nodes.contains(&node) && !j.done_nodes.contains(&node))
                    .map(|j| j.spec.id);
                streams.remove(&node);
                free_nodes.retain(|&n| n != node);
                lost.insert(node);
                if rec.enabled() {
                    rec.counter_inc("perq_proto_worker_writeoffs_total");
                    let mut fields = vec![
                        ("node", FieldValue::U64(node as u64)),
                        ("step", FieldValue::U64(step as u64)),
                        ("nodes_lost", FieldValue::U64(lost.len() as u64)),
                    ];
                    if let Some(id) = victim {
                        fields.push(("job_id", FieldValue::U64(id)));
                    }
                    rec.event("perq_proto_writeoff", &fields);
                }
                faults.push(AppliedFault {
                    t_s: now_s,
                    step,
                    kind: FaultKind::NodeCrash { count: 1 },
                    job_id: victim,
                    nodes_offline_after: lost.len(),
                });
            }
            if !newly_dead.is_empty() {
                // Kill jobs that lost an active rank; surviving ranks are
                // freed (a later launch simply overwrites the orphaned
                // work on those workers).
                let killed: Vec<usize> = live
                    .iter()
                    .enumerate()
                    .filter(|(_, j)| {
                        j.nodes
                            .iter()
                            .any(|n| newly_dead.contains(n) && !j.done_nodes.contains(n))
                    })
                    .map(|(ji, _)| ji)
                    .collect();
                for &ji in killed.iter().rev() {
                    let job = live.swap_remove(ji);
                    for &n in &job.nodes {
                        if streams.contains_key(&n) && !free_nodes.contains(&n) {
                            free_nodes.push(n);
                        }
                    }
                    policy.job_departed(job.spec.id);
                    records.push(JobRecord {
                        app_name: job.app_name,
                        start_s: job.start_interval as f64 * cfg.interval_s,
                        end_s: (step + 1) as f64 * cfg.interval_s,
                        progress_s: job.progress_s,
                        outcome: JobOutcome::Killed,
                        spec: job.spec,
                    });
                }
            }

            let violation = total_power > cfg.budget_w() + 1e-6;
            if violation {
                violations += 1;
            }
            let busy_nodes = cfg.nodes - free_nodes.len() - lost.len();
            if rec.enabled() {
                rec.counter_inc("perq_proto_ticks_total");
                if violation {
                    rec.counter_inc("perq_proto_budget_violations_total");
                }
                rec.gauge_set("perq_proto_power_w", total_power);
                rec.gauge_set("perq_proto_budget_w", cfg.budget_w());
                rec.gauge_set("perq_proto_running_jobs", live.len() as f64);
                rec.gauge_set("perq_proto_busy_nodes", busy_nodes as f64);
                rec.gauge_set("perq_proto_lost_nodes", lost.len() as f64);
            }
            intervals.push(IntervalLog {
                t_s: now_s,
                busy_nodes,
                running_jobs: live.len(),
                total_power_w: total_power,
                committed_power_w: caps
                    .iter()
                    .zip(views.iter())
                    .map(|(&c, v)| c * v.size as f64)
                    .sum::<f64>()
                    + idle as f64 * IDLE_WATTS,
                violation,
            });
        }

        // Unfinished jobs.
        for job in live {
            records.push(JobRecord {
                app_name: job.app_name,
                start_s: job.start_interval as f64 * cfg.interval_s,
                end_s: cfg.max_intervals as f64 * cfg.interval_s,
                progress_s: job.progress_s,
                outcome: JobOutcome::Unfinished,
                spec: job.spec,
            });
        }
        records.sort_by_key(|r| r.spec.id);

        let result = SimResult {
            policy: policy.name().to_string(),
            f: cfg.nodes as f64 / cfg.wp_nodes as f64,
            records,
            intervals,
            traces,
            budget_violations: violations,
            budget_violation_s: violations as f64 * cfg.interval_s,
            faults,
            recovery_latency_s: Vec::new(),
            decision_times_s: decision_times,
        };
        (result, lost)
    }
}
