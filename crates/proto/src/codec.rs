//! Sans-io framing codec: the wire format of the prototype transport
//! ([`write_frame`](crate::write_frame) /
//! [`read_frame`](crate::read_frame)) factored into pure byte-in,
//! frame-out state machines.
//!
//! The wire format is unchanged and byte-compatible with every earlier
//! release: a 4-byte big-endian payload length followed by a JSON
//! payload, with a 16 MiB length ceiling rejecting corrupted prefixes.
//! What changed is *who drives the I/O*: [`FrameDecoder`] is fed
//! whatever bytes happen to be available — half a header, three frames
//! and a tail, one byte at a time — and yields complete frames as they
//! materialise, which is exactly the shape a readiness-driven event
//! loop (`perq-serve`) needs. The blocking helpers in
//! [`transport`](crate::transport) are rewired on top of the same
//! decoder, so there is one implementation of the format.
//!
//! Error discipline mirrors the blocking path:
//!
//! - an oversized length prefix is a *framing* error: the decoder
//!   refuses to resynchronise (the stream is poisoned — there is no way
//!   to find the next frame boundary after a corrupt length) and
//!   returns [`FrameError::Oversized`] on every subsequent call;
//! - a payload that fails to deserialize is a *codec* error: the frame
//!   boundary itself was sound, so the decoder consumes the bad payload
//!   and can keep decoding — the caller decides whether a garbled peer
//!   deserves a second chance.

use crate::transport::FrameError;
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Maximum frame payload accepted (defence against corrupted length
/// prefixes).
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Incremental, sans-io frame decoder.
///
/// Feed it bytes with [`FrameDecoder::feed`]; pull frames with
/// [`FrameDecoder::next_frame`]. The decoder never reads from a socket
/// and never blocks, so the same state machine serves the blocking
/// transport, the non-blocking event loop, and in-memory tests.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed as frames; compacted lazily so
    /// per-frame work stays amortised O(frame length).
    start: usize,
    /// Set once a corrupt length prefix has been seen; the stream has
    /// no recoverable framing past that point.
    poisoned: Option<u32>,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw bytes from the wire. Feeding never fails; errors
    /// surface on [`FrameDecoder::next_frame`] so partial reads can be
    /// accumulated unconditionally.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact once the dead prefix dominates, keeping the buffer
        // from growing without bound on a long-lived connection.
        if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    fn pending(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// How many more bytes are needed before the *current* frame can
    /// complete: the rest of the 4-byte header, or the rest of the
    /// announced payload. Returns 0 when a full frame (or a poisoned
    /// prefix) is already buffered — `next_frame` will produce
    /// something. Blocking callers use this to read exactly one frame
    /// from a stream without consuming bytes that belong to the next.
    pub fn want(&self) -> usize {
        if self.poisoned.is_some() {
            return 0;
        }
        let pending = self.pending();
        if pending.len() < 4 {
            return 4 - pending.len();
        }
        let len = u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]);
        if len > MAX_FRAME {
            return 0;
        }
        (4 + len as usize).saturating_sub(pending.len())
    }

    /// Pops the next complete payload without deserializing it, or
    /// `None` if more bytes are needed.
    pub fn next_payload(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if let Some(n) = self.poisoned {
            return Err(FrameError::Oversized(n));
        }
        let pending = self.pending();
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]);
        if len > MAX_FRAME {
            self.poisoned = Some(len);
            return Err(FrameError::Oversized(len));
        }
        if pending.len() < 4 + len as usize {
            return Ok(None);
        }
        let payload = pending[4..4 + len as usize].to_vec();
        self.start += 4 + len as usize;
        Ok(Some(payload))
    }

    /// Pops and deserializes the next complete frame, or `None` if more
    /// bytes are needed. A payload that fails to deserialize consumes
    /// the frame (the boundary was intact) and returns
    /// [`FrameError::Codec`].
    pub fn next_frame<T: DeserializeOwned>(&mut self) -> Result<Option<T>, FrameError> {
        match self.next_payload()? {
            None => Ok(None),
            Some(payload) => Ok(Some(serde_json::from_slice(&payload)?)),
        }
    }
}

/// Sans-io frame encoder: values in, wire bytes out.
///
/// Stateless (the wire format has no inter-frame state), so one encoder
/// serves any number of connections.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrameEncoder;

impl FrameEncoder {
    /// An encoder.
    pub fn new() -> Self {
        FrameEncoder
    }

    /// Appends one encoded frame to `out`. The frame is contiguous, so
    /// a caller that hands `out` to a single `write` call preserves the
    /// one-frame-one-write property [`FaultyTransport`]
    /// (crate::FaultyTransport) relies on.
    pub fn encode_into<T: Serialize>(
        &self,
        value: &T,
        out: &mut Vec<u8>,
    ) -> Result<(), FrameError> {
        let payload = serde_json::to_vec(value)?;
        if payload.len() as u64 > MAX_FRAME as u64 {
            return Err(FrameError::Oversized(payload.len() as u32));
        }
        out.reserve(4 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&payload);
        Ok(())
    }

    /// Encodes one frame into a fresh buffer.
    pub fn encode<T: Serialize>(&self, value: &T) -> Result<Vec<u8>, FrameError> {
        let mut out = Vec::new();
        self.encode_into(value, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{Command, Report};

    #[test]
    fn whole_frame_round_trips() {
        let enc = FrameEncoder::new();
        let bytes = enc.encode(&Command::SetCap { cap_w: 151.5 }).unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        let cmd: Command = dec.next_frame().unwrap().expect("one frame");
        assert_eq!(cmd, Command::SetCap { cap_w: 151.5 });
        assert_eq!(dec.buffered(), 0);
        assert!(dec.next_frame::<Command>().unwrap().is_none());
    }

    #[test]
    fn byte_at_a_time_yields_exactly_one_frame() {
        let bytes = FrameEncoder::new().encode(&Command::Tick).unwrap();
        let mut dec = FrameDecoder::new();
        let mut seen = 0;
        for &b in &bytes {
            dec.feed(&[b]);
            if let Some(cmd) = dec.next_frame::<Command>().unwrap() {
                assert_eq!(cmd, Command::Tick);
                seen += 1;
            }
        }
        assert_eq!(seen, 1);
    }

    #[test]
    fn many_frames_in_one_feed() {
        let enc = FrameEncoder::new();
        let mut wire = Vec::new();
        for i in 0..7u32 {
            enc.encode_into(
                &Report {
                    node_id: i,
                    job_id: None,
                    ips: f64::from(i),
                    power_w: 35.0,
                    job_done: false,
                },
                &mut wire,
            )
            .unwrap();
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        for i in 0..7u32 {
            let r: Report = dec.next_frame().unwrap().expect("frame present");
            assert_eq!(r.node_id, i);
        }
        assert!(dec.next_frame::<Report>().unwrap().is_none());
    }

    #[test]
    fn want_tracks_header_then_payload() {
        let bytes = FrameEncoder::new().encode(&Command::Tick).unwrap();
        let mut dec = FrameDecoder::new();
        assert_eq!(dec.want(), 4);
        dec.feed(&bytes[..2]);
        assert_eq!(dec.want(), 2);
        dec.feed(&bytes[2..4]);
        assert_eq!(dec.want(), bytes.len() - 4);
        dec.feed(&bytes[4..]);
        assert_eq!(dec.want(), 0);
    }

    #[test]
    fn oversized_prefix_poisons_the_decoder() {
        let mut dec = FrameDecoder::new();
        dec.feed(&u32::MAX.to_be_bytes());
        assert!(matches!(
            dec.next_frame::<Command>(),
            Err(FrameError::Oversized(_))
        ));
        // The framing is unrecoverable: every later call fails too,
        // even after more bytes arrive.
        dec.feed(b"more bytes");
        assert!(matches!(
            dec.next_frame::<Command>(),
            Err(FrameError::Oversized(_))
        ));
        assert_eq!(dec.want(), 0);
    }

    #[test]
    fn codec_error_consumes_the_frame_and_recovers() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&3u32.to_be_bytes());
        wire.extend_from_slice(b"zzz");
        FrameEncoder::new()
            .encode_into(&Command::Tick, &mut wire)
            .unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert!(matches!(
            dec.next_frame::<Command>(),
            Err(FrameError::Codec(_))
        ));
        // The boundary was intact, so the next frame decodes cleanly.
        let cmd: Command = dec.next_frame().unwrap().expect("next frame");
        assert_eq!(cmd, Command::Tick);
    }

    #[test]
    fn encoder_bytes_match_the_blocking_writer() {
        let cmd = Command::Launch {
            job_id: 3,
            app: "CoMD".into(),
            work_intervals: 12.5,
        };
        let mut blocking = Vec::new();
        crate::write_frame(&mut blocking, &cmd).unwrap();
        let sans_io = FrameEncoder::new().encode(&cmd).unwrap();
        assert_eq!(blocking, sans_io, "wire formats must be byte-identical");
    }
}
