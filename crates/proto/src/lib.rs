//! PERQ prototype runtime: a miniature power-managed cluster over real
//! TCP sockets.
//!
//! The paper deploys PERQ on "Tardis", a 16-node cluster where "all nodes
//! communicate with the scheduler over a TCP socket about power-cap, IPS,
//! and job start and finish information" (§3). This crate reproduces that
//! prototype in-process: every node is a thread running a synthetic
//! workload against a simulated RAPL device (`perq-rapl`), connected to
//! the controller through a real localhost TCP connection with
//! length-prefixed JSON frames. The controller schedules jobs FCFS,
//! gathers per-interval IPS reports, invokes any `perq-sim`
//! [`perq_sim::PowerPolicy`] (FOP, SJS, SRN, or PERQ itself), and pushes
//! new power caps.
//!
//! Differences from the pure simulator (`perq-sim`) that make this the
//! "real-system" leg of the evaluation:
//!
//! - per-node granularity: a job's nodes run as independent threads with
//!   their own RAPL devices and noise; the job-level IPS is the *slowest
//!   rank's* rate times the node count, as in the paper;
//! - real transport: reports and commands cross an actual TCP stack with
//!   framing, so the §3 overhead analysis (communication stress test) is
//!   measured, not modelled;
//! - wall-clock decision loop: each control interval is a real-time tick
//!   (compressed from 10 s to milliseconds for testability — the control
//!   dynamics are invariant to the tick length because the workload
//!   advances one logical interval per tick).
//!
//! The [`stress`] module reproduces the 100,000-client report-collection
//! measurement.

mod cluster;
pub mod codec;
mod error;
mod messages;
pub mod stress;
mod transport;
mod worker;

pub use cluster::{ProtoCluster, ProtoConfig};
pub use codec::{FrameDecoder, FrameEncoder, MAX_FRAME};
pub use error::ProtoError;
pub use messages::{Command, Report};
pub use transport::{
    is_transient, read_frame, read_frame_retry, read_frame_retry_with, write_frame,
    write_frame_retry, write_frame_retry_with, FaultyTransport, FrameError, RetryPolicy,
};
pub use worker::NodeWorker;
