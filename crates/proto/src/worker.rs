use crate::error::{classify, ProtoError};
use crate::messages::{Command, Report};
use crate::transport::{read_frame, write_frame};
use perq_apps::{AppProfile, BASE_NODE_IPS, IDLE_WATTS, TDP_WATTS};
use perq_rapl::{PowerCapDevice, SimulatedRapl};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use std::net::TcpStream;

/// One cluster node: a synthetic workload runner behind a simulated RAPL
/// device, driven entirely by controller commands over TCP.
///
/// The worker owns no scheduling logic — it launches whatever the
/// controller sends, advances one logical control interval per `Tick`,
/// and reports the measured IPS and power. This mirrors the paper's
/// prototype split: "one node being the scheduler node …, and others
/// being the cluster nodes (running the actual jobs and performing
/// power-caps)".
pub struct NodeWorker {
    node_id: u32,
    apps: Vec<AppProfile>,
    rapl: SimulatedRapl,
    interval_s: f64,
    /// Active job: (job id, profile index, work remaining in
    /// TDP-equivalent intervals, elapsed intervals).
    job: Option<(u64, usize, f64, f64)>,
    noise: Normal<f64>,
    rng: StdRng,
    /// Fault injection: die (drop the connection without reporting) upon
    /// receiving this 0-based `Tick`.
    crash_at_tick: Option<usize>,
    ticks_seen: usize,
}

impl NodeWorker {
    /// Creates a worker for node `node_id` with the given ground-truth
    /// application suite.
    pub fn new(node_id: u32, apps: Vec<AppProfile>, interval_s: f64, seed: u64) -> Self {
        NodeWorker {
            node_id,
            apps,
            rapl: SimulatedRapl::xeon_e5_2686(seed ^ u64::from(node_id)),
            interval_s,
            job: None,
            noise: Normal::new(0.0, 0.01).expect("valid sigma"),
            rng: StdRng::seed_from_u64(seed.rotate_left(7) ^ u64::from(node_id)),
            crash_at_tick: None,
            ticks_seen: 0,
        }
    }

    /// Arms a deterministic node failure: the worker drops its connection
    /// without reporting when it receives `Tick` number `tick` (0-based,
    /// i.e. at control step `tick`). Used by the fault suite to replay a
    /// crash at a fixed point in the run.
    pub fn with_crash_at_tick(mut self, tick: usize) -> Self {
        self.crash_at_tick = Some(tick);
        self
    }

    /// Connects to the controller and serves commands until `Shutdown`.
    ///
    /// The controller vanishing mid-session surfaces as
    /// [`ProtoError::ConnectionLost`]; other transport failures as
    /// [`ProtoError::Transport`]. An armed crash ([`Self::with_crash_at_tick`])
    /// returns `Ok`: dying on cue is the injected behaviour, not a bug.
    pub fn run(mut self, mut stream: TcpStream) -> Result<(), ProtoError> {
        let node_id = self.node_id;
        // Register with the controller.
        write_frame(
            &mut stream,
            &Report {
                node_id,
                job_id: None,
                ips: 0.0,
                power_w: IDLE_WATTS,
                job_done: false,
            },
        )
        .map_err(|e| classify(node_id, e))?;
        loop {
            let cmd: Command = read_frame(&mut stream).map_err(|e| classify(node_id, e))?;
            match cmd {
                Command::Shutdown => return Ok(()),
                Command::SetCap { cap_w } => {
                    self.rapl.request_cap(cap_w);
                }
                Command::Launch {
                    job_id,
                    app,
                    work_intervals,
                } => {
                    let idx = self
                        .apps
                        .iter()
                        .position(|a| a.name == app)
                        .unwrap_or_default();
                    self.job = Some((job_id, idx, work_intervals, 0.0));
                }
                Command::Tick => {
                    if self.crash_at_tick == Some(self.ticks_seen) {
                        // Injected node failure: vanish without a report.
                        return Ok(());
                    }
                    self.ticks_seen += 1;
                    let report = self.tick();
                    write_frame(&mut stream, &report).map_err(|e| classify(node_id, e))?;
                }
            }
        }
    }

    /// Advances one control interval and produces the report (exposed for
    /// direct in-process testing without sockets).
    pub fn tick(&mut self) -> Report {
        match self.job.take() {
            None => {
                // Idle node: draws idle power, no progress.
                let power = self.rapl.advance(self.interval_s, IDLE_WATTS);
                Report {
                    node_id: self.node_id,
                    job_id: None,
                    ips: 0.0,
                    power_w: power,
                    job_done: false,
                }
            }
            Some((job_id, idx, work_left, elapsed)) => {
                let app = &self.apps[idx];
                let t = elapsed * self.interval_s;
                let cap_frac = self.rapl.effective_cap() / TDP_WATTS;
                let perf = app.perf_frac(cap_frac, t);
                let demand_w = app.phase(t).demand_frac * TDP_WATTS;
                let power = self.rapl.advance(self.interval_s, demand_w);
                let noise = self.noise.sample(&mut self.rng);
                let ips = (BASE_NODE_IPS * perf * (1.0 + noise)).max(0.0);

                let new_left = work_left - perf;
                let done = new_left <= 0.0;
                if !done {
                    self.job = Some((job_id, idx, new_left, elapsed + 1.0));
                }
                Report {
                    node_id: self.node_id,
                    job_id: Some(job_id),
                    ips,
                    power_w: power,
                    job_done: done,
                }
            }
        }
    }

    /// The node's id.
    pub fn node_id(&self) -> u32 {
        self.node_id
    }

    /// Whether a job is currently assigned.
    pub fn busy(&self) -> bool {
        self.job.is_some()
    }

    /// Applies a cap directly (test helper mirroring `Command::SetCap`).
    pub fn set_cap(&mut self, cap_w: f64) -> f64 {
        self.rapl.request_cap(cap_w)
    }

    /// Launches a job directly (test helper mirroring `Command::Launch`).
    pub fn launch(&mut self, job_id: u64, app_index: usize, work_intervals: f64) {
        self.job = Some((job_id, app_index, work_intervals, 0.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::FrameError;
    use perq_apps::ecp_suite;

    fn worker() -> NodeWorker {
        NodeWorker::new(1, ecp_suite(), 10.0, 42)
    }

    #[test]
    fn idle_node_draws_idle_power() {
        let mut w = worker();
        let r = w.tick();
        assert_eq!(r.job_id, None);
        assert_eq!(r.ips, 0.0);
        assert!((r.power_w - IDLE_WATTS).abs() < 1.0);
    }

    #[test]
    fn job_progresses_and_completes() {
        let mut w = worker();
        w.launch(5, 0, 3.0); // 3 intervals of work at TDP
        w.set_cap(TDP_WATTS);
        let mut done_at = None;
        for k in 0..10 {
            let r = w.tick();
            if r.job_done {
                done_at = Some(k);
                break;
            }
        }
        // At TDP, perf ~1 ⇒ done in ~3 ticks (allow 4 for noise).
        let k = done_at.expect("job should finish");
        assert!(k <= 4, "took {k} ticks");
        assert!(!w.busy());
    }

    #[test]
    fn capping_slows_progress() {
        let run_ticks = |cap: f64| -> usize {
            let mut w = NodeWorker::new(1, ecp_suite(), 10.0, 42);
            // App 5 = SimpleMOC (high sensitivity).
            w.launch(1, 5, 5.0);
            w.set_cap(cap);
            for k in 0..100 {
                if w.tick().job_done {
                    return k;
                }
            }
            100
        };
        let fast = run_ticks(TDP_WATTS);
        let slow = run_ticks(90.0);
        assert!(
            slow > fast + 3,
            "capped run ({slow}) should be much slower than uncapped ({fast})"
        );
    }

    #[test]
    fn report_reflects_job_identity() {
        let mut w = worker();
        w.launch(99, 2, 100.0);
        let r = w.tick();
        assert_eq!(r.job_id, Some(99));
        assert!(r.ips > 0.0);
        assert!(r.power_w > IDLE_WATTS);
    }

    #[test]
    fn full_socket_session() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let w = NodeWorker::new(7, ecp_suite(), 10.0, 3);
        let handle = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            w.run(stream).unwrap();
        });
        let (mut sock, _) = listener.accept().unwrap();
        // Registration report.
        let reg: Report = read_frame(&mut sock).unwrap();
        assert_eq!(reg.node_id, 7);
        // Launch + cap + tick.
        write_frame(
            &mut sock,
            &Command::Launch {
                job_id: 1,
                app: "CoMD".into(),
                work_intervals: 50.0,
            },
        )
        .unwrap();
        write_frame(&mut sock, &Command::SetCap { cap_w: 200.0 }).unwrap();
        write_frame(&mut sock, &Command::Tick).unwrap();
        let r: Report = read_frame(&mut sock).unwrap();
        assert_eq!(r.job_id, Some(1));
        assert!(r.ips > 0.0);
        write_frame(&mut sock, &Command::Shutdown).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn dropped_controller_is_a_typed_connection_loss() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let w = NodeWorker::new(7, ecp_suite(), 10.0, 3);
        let handle = std::thread::spawn(move || w.run(TcpStream::connect(addr).unwrap()));
        let (mut sock, _) = listener.accept().unwrap();
        let reg: Report = read_frame(&mut sock).unwrap();
        assert_eq!(reg.node_id, 7);
        // Vanish without sending Shutdown: the worker must observe a
        // typed connection loss, not panic.
        drop(sock);
        let err = handle
            .join()
            .expect("worker thread must not panic")
            .expect_err("connection loss must surface as an error");
        assert!(
            matches!(err, ProtoError::ConnectionLost { node_id: 7 }),
            "got {err}"
        );
    }

    #[test]
    fn armed_crash_drops_the_connection_on_cue() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let w = NodeWorker::new(2, ecp_suite(), 10.0, 3).with_crash_at_tick(1);
        let handle = std::thread::spawn(move || w.run(TcpStream::connect(addr).unwrap()));
        let (mut sock, _) = listener.accept().unwrap();
        let _reg: Report = read_frame(&mut sock).unwrap();
        // Tick 0 is served normally.
        write_frame(&mut sock, &Command::Tick).unwrap();
        let r: Report = read_frame(&mut sock).unwrap();
        assert_eq!(r.node_id, 2);
        // Tick 1 triggers the armed crash: no report, connection gone.
        write_frame(&mut sock, &Command::Tick).unwrap();
        let res: Result<Report, _> = read_frame(&mut sock);
        assert!(matches!(res, Err(FrameError::Io(_))), "got {res:?}");
        // Dying on cue is the injected behaviour: Ok, not an error.
        handle.join().unwrap().unwrap();
    }
}
