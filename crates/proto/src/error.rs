//! Typed errors for the prototype runtime.
//!
//! The original prototype treated every socket hiccup as fatal (an
//! `expect` in the controller, an ignored `Result` in the workers). The
//! fault-tolerant runtime instead classifies failures: connection losses
//! are *expected* events the controller degrades around (the vanished
//! node's budget is reallocated to survivors), while setup failures and
//! worker panics surface as [`ProtoError`]s to the caller.

use crate::transport::FrameError;
use std::fmt;

/// Errors surfaced by the prototype cluster and its workers.
#[derive(Debug)]
pub enum ProtoError {
    /// Listener or socket setup failed before the run started.
    Socket(std::io::Error),
    /// A worker failed to register during startup.
    Registration {
        /// Workers registered before the failure.
        registered: usize,
        /// Workers expected.
        expected: usize,
        /// The transport error that ended registration.
        source: FrameError,
    },
    /// A peer's connection dropped mid-session (EOF, reset, or broken
    /// pipe). For a worker this means the controller vanished; for the
    /// controller it means the node crashed.
    ConnectionLost {
        /// The node on whose connection the loss was observed.
        node_id: u32,
    },
    /// A non-disconnect transport failure on a node's connection.
    Transport {
        /// The node whose connection failed.
        node_id: u32,
        /// The underlying framing error.
        source: FrameError,
    },
    /// A worker thread panicked (a bug, not an injected fault).
    WorkerPanic {
        /// The panicked node.
        node_id: u32,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Socket(e) => write!(f, "socket setup failed: {e}"),
            ProtoError::Registration {
                registered,
                expected,
                source,
            } => write!(
                f,
                "worker registration failed after {registered}/{expected}: {source}"
            ),
            ProtoError::ConnectionLost { node_id } => {
                write!(f, "connection to node {node_id} lost")
            }
            ProtoError::Transport { node_id, source } => {
                write!(f, "transport failure on node {node_id}: {source}")
            }
            ProtoError::WorkerPanic { node_id } => {
                write!(f, "worker thread for node {node_id} panicked")
            }
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Socket(e) => Some(e),
            ProtoError::Registration { source, .. } | ProtoError::Transport { source, .. } => {
                Some(source)
            }
            _ => None,
        }
    }
}

/// Classifies a framing error on a node's connection: disconnects become
/// [`ProtoError::ConnectionLost`], anything else is a transport failure.
pub(crate) fn classify(node_id: u32, e: FrameError) -> ProtoError {
    use std::io::ErrorKind;
    match &e {
        FrameError::Io(io)
            if matches!(
                io.kind(),
                ErrorKind::UnexpectedEof
                    | ErrorKind::ConnectionReset
                    | ErrorKind::ConnectionAborted
                    | ErrorKind::BrokenPipe
            ) =>
        {
            ProtoError::ConnectionLost { node_id }
        }
        _ => ProtoError::Transport { node_id, source: e },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::ErrorKind;

    #[test]
    fn disconnects_classify_as_connection_lost() {
        for kind in [
            ErrorKind::UnexpectedEof,
            ErrorKind::ConnectionReset,
            ErrorKind::ConnectionAborted,
            ErrorKind::BrokenPipe,
        ] {
            let e = FrameError::Io(std::io::Error::new(kind, "gone"));
            assert!(matches!(
                classify(3, e),
                ProtoError::ConnectionLost { node_id: 3 }
            ));
        }
    }

    #[test]
    fn other_errors_classify_as_transport() {
        let e = FrameError::Oversized(u32::MAX);
        assert!(matches!(
            classify(5, e),
            ProtoError::Transport { node_id: 5, .. }
        ));
    }

    #[test]
    fn display_names_the_node() {
        let msg = ProtoError::ConnectionLost { node_id: 9 }.to_string();
        assert!(msg.contains("node 9"), "{msg}");
    }
}
