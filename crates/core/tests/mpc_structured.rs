//! Property-based equivalence of the structured (O(jobs)) and dense
//! (O(jobs²)) MPC decision paths on random job sets.

use perq_core::mpc_assembly::{assemble_dense_qp, assemble_structured_qp, AssemblyParams};
use perq_core::{MpcController, MpcInput, MpcJobState, MpcSettings};
use perq_qp::{estimate_lmax, QpOperator};
use proptest::prelude::*;
use std::sync::OnceLock;

fn model() -> &'static perq_core::NodeModel {
    static MODEL: OnceLock<perq_core::NodeModel> = OnceLock::new();
    MODEL.get_or_init(|| perq_core::train_node_model(3).0)
}

/// A random job state with a plausible operating range (free response is
/// arbitrary — the assembly treats it as opaque constants).
fn job_state(m: usize) -> impl Strategy<Value = MpcJobState> {
    (
        1usize..16,
        0.4f64..1.3,
        0.32f64..0.95,
        0.1f64..2.0,
        prop::collection::vec(0.3f64..1.1, m),
        0.3f64..0.9,
        0.4f64..1.6,
        -0.05f64..0.05,
        prop::bool::ANY,
    )
        .prop_map(
            |(size, target, cap, gain, free, cv, cs, bias, charged)| MpcJobState {
                size,
                target,
                current_cap_frac: cap,
                gain,
                free_response: free,
                curve_value: cv,
                curve_slope: cs,
                bias,
                charged,
            },
        )
}

/// A full scenario: horizon, jobs (≤ 12), system target, budget fraction.
fn scenario() -> impl Strategy<Value = (usize, Vec<MpcJobState>, f64, f64)> {
    (1usize..=5).prop_flat_map(|m| {
        (
            Just(m),
            prop::collection::vec(job_state(m), 1..=12),
            0.5f64..1.5,
            0.4f64..0.95,
        )
    })
}

fn tight_controller(m: usize) -> MpcController {
    MpcController::new(
        model(),
        MpcSettings {
            horizon: m,
            max_qp_iters: 200_000,
            qp_tol: 1e-12,
            ..MpcSettings::default()
        },
    )
}

fn make_input<'a>(jobs: &'a [MpcJobState], sys_target: f64, budget_frac: f64) -> MpcInput<'a> {
    let total_nodes: f64 = jobs.iter().map(|j| j.size as f64).sum();
    MpcInput {
        jobs,
        system_target: sys_target,
        budget_nodes: budget_frac * total_nodes,
        cap_min_frac: 90.0 / 290.0,
        wp_nodes: (0.8 * total_nodes).max(1.0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn structured_objective_and_gradient_match_dense(
        (horizon, jobs, sys_target, budget_frac) in scenario(),
        seed in 0u64..1000,
    ) {
        let ctrl = tight_controller(horizon);
        let input = make_input(&jobs, sys_target, budget_frac);
        let (sqp, swarm, sconsts) = ctrl.assemble_qp(&input).unwrap();
        let (dqp, dwarm, dconsts) = ctrl.assemble_dense_qp(&input).unwrap();
        prop_assert_eq!(swarm, dwarm);
        prop_assert_eq!(sconsts, dconsts);
        let n = dqp.dim();
        for probe in 0..3u32 {
            let x: Vec<f64> = (0..n)
                .map(|i| {
                    let t = ((i as f64 + 1.7) * (probe as f64 + 0.9) + seed as f64).sin();
                    0.31 + 0.69 * (t + 1.0) / 2.0
                })
                .collect();
            let fo = dqp.objective(&x);
            let fs = QpOperator::objective(&sqp, &x);
            prop_assert!(
                (fo - fs).abs() <= 1e-9 * (1.0 + fo.abs()),
                "objective {} vs {}", fo, fs
            );
            let mut gd = vec![0.0; n];
            let mut gs = vec![0.0; n];
            dqp.gradient_into(&x, &mut gd);
            sqp.gradient_into(&x, &mut gs);
            for i in 0..n {
                prop_assert!(
                    (gd[i] - gs[i]).abs() <= 1e-9 * (1.0 + gd[i].abs()),
                    "gradient[{}] {} vs {}", i, gd[i], gs[i]
                );
            }
        }
        // Structured storage stays linear in the job count.
        prop_assert!(sqp.hessian_stored_floats() <= 2 * n * horizon);
    }

    #[test]
    fn decide_agrees_across_paths(
        (horizon, jobs, sys_target, budget_frac) in scenario(),
    ) {
        let ctrl = tight_controller(horizon);
        let input = make_input(&jobs, sys_target, budget_frac);
        let structured = ctrl.decide(&input).unwrap();
        let dense = ctrl.decide_dense(&input).unwrap();
        for (i, (s, d)) in structured
            .caps_frac
            .iter()
            .zip(dense.caps_frac.iter())
            .enumerate()
        {
            // Both paths solve to 1e-12 fixed-point residual; the argmins
            // agree far below the acceptance threshold.
            prop_assert!((s - d).abs() < 1e-8, "cap[{}]: {} vs {}", i, s, d);
        }
    }

    #[test]
    fn lmax_bound_dominates_power_iteration(
        (horizon, jobs, sys_target, budget_frac) in scenario(),
    ) {
        let ctrl = tight_controller(horizon);
        let input = make_input(&jobs, sys_target, budget_frac);
        let (sqp, _, _) = ctrl.assemble_qp(&input).unwrap();
        let est = estimate_lmax(&sqp, 200);
        prop_assert!(
            sqp.lmax_bound() >= est / 1.02,
            "bound {} below estimate {}", sqp.lmax_bound(), est
        );
    }
}

/// The structured assembly must not allocate any O(nv²) object. Direct
/// accounting: all Hessian storage is `jobs·M² + M·nv` floats.
#[test]
fn structured_assembly_memory_is_linear_in_jobs() {
    let m = 4usize;
    let params = AssemblyParams {
        horizon: m,
        wt_job: 1.0,
        wt_sys: 1.0,
        w_dp: 1.0,
        terminal_weight: 2.0,
        markov: &[0.2, 0.1, 0.05, 0.02],
        feedthrough: 0.55,
        input_offset: 0.0,
    };
    let mk_jobs = |n: usize| -> Vec<MpcJobState> {
        (0..n)
            .map(|i| MpcJobState {
                size: 1 + i % 5,
                target: 0.9,
                current_cap_frac: 0.5,
                gain: 0.5 + 0.1 * (i % 7) as f64,
                free_response: vec![0.7; m],
                curve_value: 0.6,
                curve_slope: 0.9,
                bias: 0.0,
                charged: true,
            })
            .collect()
    };
    let floats_for = |n: usize| -> usize {
        let jobs = mk_jobs(n);
        let input = MpcInput {
            jobs: &jobs,
            system_target: 1.0,
            budget_nodes: 0.7 * jobs.iter().map(|j| j.size as f64).sum::<f64>(),
            cap_min_frac: 0.31,
            wp_nodes: 100.0,
        };
        let (sqp, _, _) = assemble_structured_qp(&params, &input).unwrap();
        let (dqp, _, _) = assemble_dense_qp(&params, &input).unwrap();
        assert_eq!(dqp.dim(), QpOperator::dim(&sqp));
        sqp.hessian_stored_floats()
    };
    let f32_jobs = floats_for(32);
    let f512_jobs = floats_for(512);
    // Exactly linear: 16× the jobs means 16× the floats.
    assert_eq!(f512_jobs, 16 * f32_jobs);
    // And far below the dense nv² footprint.
    let nv = 512 * m;
    assert!(f512_jobs < nv * nv / 64, "{f512_jobs} vs {}", nv * nv);
}
