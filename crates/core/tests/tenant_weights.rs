//! Tenant-weight properties of the inter-enclave coordinators, under
//! random weight vectors and demand mixes:
//!
//! - **Conservation**: grants never exceed the global budget, respect
//!   every enclave's floor and ceiling, and — when demand saturates the
//!   budget — place essentially all of it (the slack-recycling pass's
//!   contract).
//! - **Fairness monotonicity**: raising one tenant's weight (everything
//!   else fixed) never lowers that tenant's aggregate steady-state
//!   grant.
//!
//! Both hold for the coupling-QP coordinator and the proportional
//! water-fill, so the properties are run against each.

use perq_core::CouplingAuthority;
use perq_sim::{BudgetAuthority, EnclaveDemand, GrantContext, ProportionalAuthority};
use proptest::prelude::*;

const TDP_W: f64 = 290.0;
const CAP_MIN_W: f64 = 80.0;
const IDLE_W: f64 = 45.0;

/// A saturated enclave: every node busy, work queued, so the floor is
/// `live · cap_min` and the ceiling `live · tdp`.
fn saturated(enclave: usize, tenant: usize, weight: f64, live_nodes: usize) -> EnclaveDemand {
    EnclaveDemand {
        enclave,
        tenant,
        weight,
        wp_nodes: live_nodes.div_ceil(2),
        live_nodes,
        busy_nodes: live_nodes,
        pending_jobs: 4,
        floor_w: live_nodes as f64 * CAP_MIN_W,
        ceil_w: live_nodes as f64 * TDP_W,
    }
}

fn context(budget_w: f64) -> GrantContext {
    GrantContext {
        time_s: 0.0,
        budget_w,
        tdp_w: TDP_W,
        cap_min_w: CAP_MIN_W,
        idle_w: IDLE_W,
    }
}

/// Assigns tenants to enclaves round-robin and builds saturated
/// demands; `weights[t]` is tenant `t`'s fairness weight.
fn demands_for(weights: &[f64], sizes: &[usize]) -> Vec<EnclaveDemand> {
    sizes
        .iter()
        .enumerate()
        .map(|(e, &live)| {
            let tenant = e % weights.len();
            saturated(e, tenant, weights[tenant], live)
        })
        .collect()
}

/// Steady-state grants: repeat the round until the warm-started answer
/// stops moving (three rounds is plenty for identical inputs).
fn steady_grants(
    authority: &mut dyn BudgetAuthority,
    ctx: &GrantContext,
    demands: &[EnclaveDemand],
) -> Vec<f64> {
    let mut grants = Vec::new();
    for _ in 0..3 {
        grants = authority.grant(ctx, demands);
    }
    grants
}

fn tenant_total(demands: &[EnclaveDemand], grants: &[f64], tenant: usize) -> f64 {
    demands
        .iter()
        .zip(grants.iter())
        .filter(|(d, _)| d.tenant == tenant)
        .map(|(_, &g)| g)
        .sum()
}

fn authorities() -> Vec<(&'static str, Box<dyn BudgetAuthority>)> {
    vec![
        ("coupling-qp", Box::new(CouplingAuthority::new())),
        ("proportional", Box::new(ProportionalAuthority)),
    ]
}

fn check_conservation(weights: &[f64], sizes: &[usize], budget_frac: f64) {
    let demands = demands_for(weights, sizes);
    let floor: f64 = demands.iter().map(|d| d.floor_w).sum();
    let ceil: f64 = demands.iter().map(|d| d.ceil_w).sum();
    // A budget between the aggregate floor and ceiling: feasible, and
    // saturated demand can absorb all of it.
    let budget = floor + budget_frac * (ceil - floor);
    let ctx = context(budget);
    for (name, mut authority) in authorities() {
        let grants = steady_grants(authority.as_mut(), &ctx, &demands);
        assert_eq!(grants.len(), demands.len());
        let total: f64 = grants.iter().sum();
        assert!(
            total <= budget * (1.0 + 1e-9) + 1e-6,
            "{name}: granted {total} over budget {budget}"
        );
        for (d, &g) in demands.iter().zip(grants.iter()) {
            assert!(
                g >= d.floor_w - 1e-6 && g <= d.ceil_w + 1e-6,
                "{name}: enclave {} grant {g} outside [{}, {}]",
                d.enclave,
                d.floor_w,
                d.ceil_w
            );
        }
        // Saturated demand pressure: the budget must be fully placed
        // (the QP's unconstrained slack is recycled by water-fill).
        let usable = budget.min(ceil);
        assert!(
            usable - total <= 1e-6 * usable,
            "{name}: left {:.3} W of {usable:.1} W unplaced",
            usable - total
        );
    }
}

fn check_monotonicity(weights: &[f64], sizes: &[usize], tenant: usize, raise: f64) {
    let tenant = tenant % weights.len();
    let demands = demands_for(weights, sizes);
    let mut raised_weights = weights.to_vec();
    raised_weights[tenant] *= raise;
    let raised = demands_for(&raised_weights, sizes);

    let floor: f64 = demands.iter().map(|d| d.floor_w).sum();
    let ceil: f64 = demands.iter().map(|d| d.ceil_w).sum();
    let budget = floor + 0.6 * (ceil - floor);
    let ctx = context(budget);

    for (name, mut authority) in authorities() {
        let before = steady_grants(authority.as_mut(), &ctx, &demands);
        let after = steady_grants(authority.as_mut(), &ctx, &raised);
        let before_total = tenant_total(&demands, &before, tenant);
        let after_total = tenant_total(&raised, &after, tenant);
        assert!(
            after_total >= before_total - 1e-6 * budget,
            "{name}: raising tenant {tenant}'s weight by {raise}x lowered its grant \
             from {before_total:.3} W to {after_total:.3} W"
        );
    }
}

#[test]
fn equal_weights_split_equal_enclaves_evenly() {
    let demands = demands_for(&[1.0], &[4, 4, 4, 4]);
    let floor: f64 = demands.iter().map(|d| d.floor_w).sum();
    let ceil: f64 = demands.iter().map(|d| d.ceil_w).sum();
    let budget = (floor + ceil) / 2.0;
    let ctx = context(budget);
    for (name, mut authority) in authorities() {
        let grants = steady_grants(authority.as_mut(), &ctx, &demands);
        for &g in &grants {
            assert!(
                (g - budget / 4.0).abs() <= 1e-6 * budget,
                "{name}: symmetric demand split unevenly: {grants:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grants_conserve_the_budget(
        weights in prop::collection::vec(0.1f64..8.0, 1..5),
        sizes in prop::collection::vec(2usize..12, 2..10),
        budget_frac in 0.1f64..0.95,
    ) {
        check_conservation(&weights, &sizes, budget_frac);
    }

    #[test]
    fn raising_a_tenant_weight_never_lowers_its_grant(
        weights in prop::collection::vec(0.2f64..4.0, 1..5),
        sizes in prop::collection::vec(2usize..12, 2..10),
        tenant in 0usize..5,
        raise in 1.0f64..6.0,
    ) {
        check_monotonicity(&weights, &sizes, tenant, raise);
    }
}
