//! Robustness of the MPC controller to job churn.
//!
//! Node failures and job kills (the fault model in `perq-sim` /
//! `perq-proto`) change the decision problem's dimension between
//! consecutive `decide()` calls on the *same* controller: jobs vanish
//! mid-horizon, recovered capacity lets new ones start. The controller's
//! cached solver state (warm starts, eigenvector cache) is keyed to the
//! previous dimension, so these tests hammer one shared controller with
//! shrinking and growing job sets and assert every decision stays
//! feasible and finite.

use perq_core::{
    train_node_model, JobAdapter, MpcController, MpcInput, MpcJobState, MpcSettings, NodeModel,
};
use proptest::prelude::*;
use std::sync::OnceLock;

const CAP_MIN_FRAC: f64 = 90.0 / 290.0;

/// One shared model + controller for the whole test binary: re-training
/// per case would dominate the runtime, and sharing is the point — the
/// fault scenarios reuse a long-lived controller across churn.
fn stack() -> &'static (NodeModel, MpcController) {
    static STACK: OnceLock<(NodeModel, MpcController)> = OnceLock::new();
    STACK.get_or_init(|| {
        let (model, _report) = train_node_model(0x5045_5251);
        let controller = MpcController::new(&model, MpcSettings::default());
        (model, controller)
    })
}

/// Builds the per-job MPC state exactly the way `PerqPolicy` does for a
/// freshly adopted job.
fn job_state(size: usize, cap_frac: f64, target: f64) -> MpcJobState {
    let (model, controller) = stack();
    let adapter = JobAdapter::new(model, cap_frac);
    MpcJobState {
        size,
        target,
        current_cap_frac: cap_frac,
        gain: adapter.gain(),
        free_response: controller.free_response(model, adapter.state()),
        curve_value: model.curve.eval(cap_frac),
        curve_slope: model.curve.secant_slope(cap_frac, 0.10),
        bias: adapter.bias(),
        charged: true,
    }
}

/// Runs one decision on the shared controller and checks the feasibility
/// invariants: a decision exists, has one finite cap per job inside the
/// RAPL window, and the committed power of charged jobs respects the
/// budget.
fn decide_and_check(jobs: &[MpcJobState], budget_nodes: f64) {
    let (_, controller) = stack();
    let input = MpcInput {
        jobs,
        system_target: 0.8,
        budget_nodes,
        cap_min_frac: CAP_MIN_FRAC,
        wp_nodes: jobs.iter().map(|j| j.size as f64).sum(),
    };
    let decision = controller
        .decide(&input)
        .expect("non-empty job list must yield a decision");
    assert_eq!(decision.caps_frac.len(), jobs.len());
    assert_eq!(decision.predicted_ips.len(), jobs.len());
    let mut committed = 0.0;
    for (cap, job) in decision.caps_frac.iter().zip(jobs) {
        assert!(cap.is_finite(), "non-finite cap {cap}");
        assert!(
            (CAP_MIN_FRAC - 1e-9..=1.0 + 1e-9).contains(cap),
            "cap {cap} outside the RAPL window"
        );
        if job.charged {
            committed += job.size as f64 * cap;
        }
    }
    assert!(
        committed <= budget_nodes + 1e-6,
        "committed {committed} exceeds budget {budget_nodes}"
    );
    for ips in &decision.predicted_ips {
        assert!(ips.is_finite(), "non-finite predicted IPS {ips}");
    }
}

fn budget_for(jobs: &[MpcJobState]) -> f64 {
    // Binding but feasible: 60% of full TDP commitment, always above the
    // cap-min floor (cap_min_frac ≈ 0.31 per node).
    0.6 * jobs.iter().map(|j| j.size as f64).sum::<f64>()
}

#[test]
fn one_controller_survives_a_scripted_shrink_and_regrow() {
    // The deterministic skeleton of the fault scenario: 8 jobs running,
    // a crash kills all but 3, recovery lets 12 start. Same controller
    // throughout — each call re-dimensions the cached QP structures.
    let mk = |n: usize| -> Vec<MpcJobState> {
        (0..n)
            .map(|i| {
                job_state(
                    1 + i % 4,
                    0.4 + 0.05 * (i % 12) as f64,
                    0.3 + 0.05 * (i % 8) as f64,
                )
            })
            .collect()
    };
    for n in [8, 3, 12, 1, 12] {
        let jobs = mk(n);
        decide_and_check(&jobs, budget_for(&jobs));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized churn: full set → surviving subset → regrown superset,
    /// all against the shared controller. Shapes and caps vary per case.
    #[test]
    fn decide_stays_feasible_under_random_job_churn(
        specs in proptest::collection::vec(
            (1usize..=4, 0.35f64..1.0, 0.2f64..1.0),
            2..10,
        ),
        keep_mask in proptest::collection::vec(any::<bool>(), 10),
        regrow in proptest::collection::vec(
            (1usize..=4, 0.35f64..1.0, 0.2f64..1.0),
            1..5,
        ),
    ) {
        let full: Vec<MpcJobState> = specs
            .iter()
            .map(|&(size, cap, target)| job_state(size, cap, target))
            .collect();
        decide_and_check(&full, budget_for(&full));

        // A crash removes an arbitrary subset (at least one survivor).
        let mut survivors: Vec<MpcJobState> = full
            .iter()
            .zip(keep_mask.iter().cycle())
            .filter(|(_, &keep)| keep)
            .map(|(j, _)| j.clone())
            .collect();
        if survivors.is_empty() {
            survivors.push(full[0].clone());
        }
        decide_and_check(&survivors, budget_for(&survivors));

        // Recovery grows the set past its original size.
        let mut regrown = full;
        regrown.extend(
            regrow
                .iter()
                .map(|&(size, cap, target)| job_state(size, cap, target)),
        );
        decide_and_check(&regrown, budget_for(&regrown));
    }
}
