//! PERQ: fair and efficient power management for power-constrained,
//! hardware-over-provisioned computing systems.
//!
//! This crate is the paper's primary contribution — the feedback control
//! stack of Fig. 4:
//!
//! ```text
//!   job statuses ──► Target Generator ──targets──► MPC Controller ──caps──► nodes
//!        ▲                                              ▲                     │
//!        └────────────── performance indicators (IPS) ──┴─────────────────────┘
//! ```
//!
//! - [`NodeModel`] / [`train_node_model`]: the one-time-per-node-type
//!   identified model (§2.4.2) — a Hammerstein static curve plus a
//!   3rd-order state-space model fitted on the NPB-like training suite
//!   under uniformly switched power caps. The training applications are
//!   disjoint from the evaluation applications by construction.
//! - [`JobAdapter`]: per-job online adaptation — a Kalman observer tracks
//!   the node state from measured IPS, and an RLS gain/offset layer maps
//!   the shared model onto the job at hand (this is how one model serves
//!   jobs whose power sensitivity differs by 3×).
//! - [`TargetGenerator`]: produces the job-level fairness targets
//!   (performance at the fair power `P_fair = TDP·N_WP/N_OP`) and the
//!   system throughput target `T_OP = T_ratio · T_WP` (§2.4.1).
//! - [`MpcController`]: builds and solves the constrained quadratic
//!   program of Eq. 4 every decision interval (prediction matrices from
//!   the model's Markov parameters, box constraints from the RAPL window,
//!   per-horizon-step budget constraints, ΔP smoothing cost, terminal
//!   weighting).
//! - [`PerqPolicy`]: the complete policy wired into the `perq-sim`
//!   [`perq_sim::PowerPolicy`] interface.
//! - [`baselines`]: the comparison policies of §3 — SJS (smallest job
//!   size), LJS (largest job size), and SRN (smallest remaining
//!   node-hours, which uses oracle knowledge).

pub mod baselines;
pub mod grouping;
mod hier;
mod model;
mod mpc;
pub mod mpc_assembly;
mod perq;
mod targets;

pub use grouping::group_jobs;
pub use hier::{CouplingAuthority, DEFAULT_SYSTEM_WEIGHT_RATIO};
pub use model::{train_node_model, train_node_model_with, JobAdapter, NodeModel, TrainingReport};
pub use mpc::{MpcController, MpcDecision, MpcInput, MpcJobState, MpcSettings};
pub use perq::{PerqConfig, PerqPolicy};
pub use targets::{TargetGenerator, Targets};

// Solver precision/layout selection, re-exported so policy consumers
// (campaign specs, the CLI, perq-serve) can name profiles without a
// direct perq-qp dependency.
pub use perq_qp::{Layout, Precision, SolverProfile};
