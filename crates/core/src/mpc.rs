use crate::model::NodeModel;
use crate::mpc_assembly::{assemble_dense_qp, assemble_structured_qp, AssemblyParams};
use perq_qp::{
    solve_profiled, BoxBudgetQp, ProfiledQpState, ProjGradSettings, ProjGradSolver, SolverProfile,
    StructuredQp,
};
use perq_telemetry::Recorder;
use std::sync::Mutex;

pub use crate::mpc_assembly::{MpcInput, MpcJobState};

/// MPC controller settings (the weights of Eq. 2/Eq. 3 and the horizon).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(default)]
pub struct MpcSettings {
    /// Prediction horizon `M` in control intervals (paper uses ~4 and
    /// reports insensitivity to the exact value).
    pub horizon: usize,
    /// Weight on job-level tracking errors (`W_Tjob`).
    pub wt_job: f64,
    /// Weight on the system-throughput tracking error (`W_Tsys`).
    pub wt_sys: f64,
    /// Weight on power-cap changes between instances (`W_ΔP`).
    pub w_dp: f64,
    /// Multiplier applied to the tracking weights at the last horizon
    /// step — the "terminal cost" that enforces convergence by the end of
    /// the horizon (§2.3.2).
    pub terminal_weight: f64,
    /// QP solver iteration cap (bounds the decision time).
    pub max_qp_iters: usize,
    /// QP solver convergence tolerance.
    pub qp_tol: f64,
}

impl Default for MpcSettings {
    fn default() -> Self {
        MpcSettings {
            horizon: 4,
            wt_job: 1.0,
            wt_sys: 1.0,
            w_dp: 1.0,
            terminal_weight: 2.0,
            max_qp_iters: 400,
            qp_tol: 1e-6,
        }
    }
}

/// Result of one decision.
#[derive(Debug, Clone)]
pub struct MpcDecision {
    /// First-step cap fraction per job (what gets applied).
    pub caps_frac: Vec<f64>,
    /// Predicted normalized per-node IPS per job at the first step.
    pub predicted_ips: Vec<f64>,
    /// The full optimized cap trajectory, job-major (`x[i·M + j]` is job
    /// `i`'s cap at horizon step `j`). Shift it one step and feed it to
    /// [`MpcController::decide_warm`] as the next interval's warm start:
    /// consecutive instances differ by one interval of feedback, so the
    /// previous optimum is a far better start than holding current caps.
    pub x: Vec<f64>,
    /// QP iterations used.
    pub qp_iterations: usize,
    /// Whether the QP converged within the iteration cap.
    pub converged: bool,
}

/// Per-controller solver state reused across decisions: per-precision
/// FISTA workspaces (so repeated decisions allocate almost nothing) and
/// Lipschitz caches (the previous Hessian's dominant eigenvector seeds
/// the next power iteration — consecutive decisions see nearly the same
/// spectrum, so the re-estimate converges in a couple of products).
#[derive(Debug, Default)]
struct ControllerScratch {
    state: ProfiledQpState,
}

/// The PERQ model-predictive controller (§2.4.3).
///
/// Every decision interval it assembles the quadratic program of Eq. 4 —
/// `find P to minimize ½PᵀQP + cᵀP` with `Q = HᵀW_TH + DᵀW_ΔPD` — from the
/// node model's Markov parameters, each job's observer state (free
/// response) and adapted gain, and solves it with the projected-gradient
/// solver under box and per-step budget constraints.
///
/// The Hessian is kept in structured block + low-rank form
/// ([`StructuredQp`]) rather than as a dense matrix, so both assembly and
/// each solver iteration cost O(jobs·horizon²) instead of
/// O(jobs²·horizon²) — see [`crate::mpc_assembly`] for the derivation.
/// The dense path survives as [`MpcController::assemble_dense_qp`] /
/// [`MpcController::decide_dense`] for testing and diagnostics.
///
/// Timing convention: cap `p(j)` is applied during prediction interval
/// `j` and the output `y(j)` is measured at its end, so `y(j)` sees
/// `p(j)` through the model's direct feedthrough and earlier caps through
/// the Markov parameters. The per-job sensitivity gain `g` scales the
/// response to cap *changes*; absolute levels are tracked by the
/// observer's free response.
#[derive(Debug)]
pub struct MpcController {
    settings: MpcSettings,
    /// Delayed Markov parameters `h_1..h_M` of the node model.
    markov: Vec<f64>,
    /// Direct feedthrough `D` (same-interval response).
    feedthrough: f64,
    /// Identified input offset `u₀` of the node model.
    input_offset: f64,
    solver: ProjGradSolver,
    profile: SolverProfile,
    recorder: Recorder,
    /// Interior-mutable so [`MpcController::decide`] keeps its `&self`
    /// signature while reusing buffers and the spectral cache.
    scratch: Mutex<ControllerScratch>,
}

impl Clone for MpcController {
    fn clone(&self) -> Self {
        // The scratch is a pure cache: a clone starts cold and re-warms on
        // its first decision.
        MpcController {
            settings: self.settings.clone(),
            markov: self.markov.clone(),
            feedthrough: self.feedthrough,
            input_offset: self.input_offset,
            solver: self.solver.clone(),
            profile: self.profile,
            recorder: self.recorder.clone(),
            scratch: Mutex::new(ControllerScratch::default()),
        }
    }
}

impl MpcController {
    /// Builds a controller for an identified node model.
    pub fn new(model: &NodeModel, settings: MpcSettings) -> Self {
        assert!(settings.horizon >= 1, "horizon must be at least 1");
        let markov = model.ss.markov_parameters(settings.horizon);
        let solver = ProjGradSolver::new(ProjGradSettings {
            max_iters: settings.max_qp_iters,
            tol: settings.qp_tol,
            power_iters: 20,
        });
        MpcController {
            settings,
            markov,
            feedthrough: model.ss.feedthrough(),
            input_offset: model.ss.input_offset(),
            solver,
            profile: SolverProfile::default(),
            recorder: Recorder::noop(),
            scratch: Mutex::new(ControllerScratch::default()),
        }
    }

    /// Selects the solver precision/layout profile for subsequent
    /// decisions. The default (`f64_aos`) reproduces the pre-profile
    /// behaviour bit for bit; `f32`/`mixed` profiles trade reference
    /// precision for decide latency and are strictly opt-in.
    pub fn set_solver_profile(&mut self, profile: SolverProfile) {
        self.profile = profile;
    }

    /// The active solver precision/layout profile.
    pub fn solver_profile(&self) -> SolverProfile {
        self.profile
    }

    /// Attaches a telemetry recorder. Decisions then report
    /// `perq_core_*` metrics (decide span, job/horizon gauges, QP
    /// iteration histogram) and the handle is forwarded to the inner QP
    /// solver for its `perq_qp_*` metrics.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.solver.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// The controller's settings.
    pub fn settings(&self) -> &MpcSettings {
        &self.settings
    }

    /// Arms (or clears) a wall-clock deadline for subsequent decisions:
    /// the QP solver switches to anytime mode and returns its best
    /// iterate when the deadline passes instead of running to
    /// convergence. A batched control loop sets `tick_start + budget`
    /// once per tick so one hard QP cannot stall the cap fan-out.
    pub fn set_decide_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.solver.set_deadline(deadline);
    }

    /// The assembly view of this controller's parameters.
    fn params(&self) -> AssemblyParams<'_> {
        AssemblyParams {
            horizon: self.settings.horizon,
            wt_job: self.settings.wt_job,
            wt_sys: self.settings.wt_sys,
            w_dp: self.settings.w_dp,
            terminal_weight: self.settings.terminal_weight,
            markov: &self.markov,
            feedthrough: self.feedthrough,
            input_offset: self.input_offset,
        }
    }

    /// Free-response horizon rows `C Aʲ x̂ + y₀` for `j = 0..M` — the
    /// zero-input output trajectory from a job's state estimate; helper so
    /// callers build [`MpcJobState`] without touching the model internals.
    pub fn free_response(&self, model: &NodeModel, state: &[f64]) -> Vec<f64> {
        let rows = model.ss.output_response_rows(self.settings.horizon);
        (0..self.settings.horizon)
            .map(|j| {
                rows.row(j)
                    .iter()
                    .zip(state.iter())
                    .map(|(&a, &b)| a * b)
                    .sum::<f64>()
                    + model.ss.output_offset()
            })
            .collect()
    }

    /// Assembles the decision QP of Eq. 4 in structured form — the
    /// representation [`MpcController::decide`] solves (exposed for
    /// diagnostics and benchmarks). Returns the operator together with
    /// the warm-start point (current caps held across the horizon) and
    /// the per-(job, step) affine constants `k_ij` of the output
    /// predictions.
    pub fn assemble_qp(&self, input: &MpcInput<'_>) -> Option<(StructuredQp, Vec<f64>, Vec<f64>)> {
        assemble_structured_qp(&self.params(), input)
    }

    /// Assembles the same QP with a dense Hessian — O(jobs²) memory; the
    /// test oracle for the structured path.
    pub fn assemble_dense_qp(
        &self,
        input: &MpcInput<'_>,
    ) -> Option<(BoxBudgetQp, Vec<f64>, Vec<f64>)> {
        assemble_dense_qp(&self.params(), input)
    }

    /// Solves one decision instance via the structured O(jobs) path.
    /// Returns `None` when there are no jobs.
    pub fn decide(&self, input: &MpcInput<'_>) -> Option<MpcDecision> {
        self.decide_warm(input, None)
    }

    /// Like [`MpcController::decide`], but seeded from a caller-provided
    /// warm start — typically the previous interval's
    /// [`MpcDecision::x`] shifted by one step. A hint of the wrong
    /// length (the job population changed shape) falls back to the
    /// assembled default (current caps held across the horizon); any
    /// hint is projected into the feasible set before the first
    /// iteration, so stale values cost iterations, never correctness.
    pub fn decide_warm(
        &self,
        input: &MpcInput<'_>,
        warm_hint: Option<&[f64]>,
    ) -> Option<MpcDecision> {
        let _span = self.recorder.span("perq_core_decide");
        let (qp, assembled_warm, _consts) = self.assemble_qp(input)?;
        let warm = match warm_hint {
            Some(hint) if hint.len() == assembled_warm.len() => hint,
            _ => &assembled_warm[..],
        };
        let mut scratch = self.scratch.lock().expect("controller scratch poisoned");
        let profiled = solve_profiled(
            &self.solver,
            &qp,
            Some(warm),
            self.profile,
            &mut scratch.state,
        )
        .expect("MPC QP is validated feasible");
        let sol = profiled.solution;
        if self.recorder.enabled() {
            self.recorder.counter_inc("perq_core_decides_total");
            self.recorder
                .gauge_set("perq_core_jobs", input.jobs.len() as f64);
            self.recorder
                .gauge_set("perq_core_horizon", self.settings.horizon as f64);
            self.recorder
                .observe("perq_core_qp_iterations", sol.iterations as f64);
            self.recorder
                .counter_add(self.profile.iterations_metric(), sol.iterations as u64);
            if self.profile.precision == perq_qp::Precision::Mixed {
                // Register the series even for clean decisions, so
                // "0 fallbacks" is an export, not an absence.
                self.recorder.counter_add(
                    "perq_qp_precision_fallbacks_total",
                    u64::from(profiled.fell_back),
                );
            }
        }
        Some(self.extract_decision(input, &sol))
    }

    /// Solves one decision instance via the dense reference path (kept as
    /// the oracle the structured path is validated against).
    pub fn decide_dense(&self, input: &MpcInput<'_>) -> Option<MpcDecision> {
        let (qp, warm, _consts) = self.assemble_dense_qp(input)?;
        let sol = self
            .solver
            .solve(&qp, Some(&warm))
            .expect("MPC QP is validated feasible");
        Some(self.extract_decision(input, &sol))
    }

    /// Extracts first-step caps and predicted outputs from a QP solution.
    fn extract_decision(&self, input: &MpcInput<'_>, sol: &perq_qp::QpSolution) -> MpcDecision {
        let nj = input.jobs.len();
        let m = self.settings.horizon;
        let mut caps = Vec::with_capacity(nj);
        let mut predicted = Vec::with_capacity(nj);
        for (i, job) in input.jobs.iter().enumerate() {
            let p1 = sol.x[i * m];
            caps.push(p1);
            let const_in = job.curve_value - job.gain * job.curve_slope * job.current_cap_frac
                + self.input_offset;
            let y1 = job.free_response[0]
                + const_in * self.feedthrough
                + job.bias
                + job.gain * job.curve_slope * self.feedthrough * p1;
            predicted.push(y1);
        }
        MpcDecision {
            caps_frac: caps,
            predicted_ips: predicted,
            x: sol.x.clone(),
            qp_iterations: sol.iterations,
            converged: sol.converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::train_node_model;

    fn model() -> NodeModel {
        train_node_model(3).0
    }

    /// Builds a steady-state job input: observer state at equilibrium for
    /// the given cap, targets as requested.
    fn job_at(
        ctrl: &MpcController,
        model: &NodeModel,
        size: usize,
        cap: f64,
        target: f64,
        gain: f64,
    ) -> MpcJobState {
        job_at_output(
            ctrl,
            model,
            size,
            cap,
            target,
            gain,
            gain * model.curve.eval(cap),
        )
    }

    /// Like [`job_at`] but with the job's current output level seeded
    /// explicitly.
    fn job_at_output(
        ctrl: &MpcController,
        model: &NodeModel,
        size: usize,
        cap: f64,
        target: f64,
        gain: f64,
        y_now: f64,
    ) -> MpcJobState {
        // Equilibrium state: x = (I−A)⁻¹ B (u + u0) with u = φ(cap); the
        // free response of that state decays from the current output.
        let mut obs = perq_sysid::KalmanObserver::new(model.ss.clone(), 0.05, 1e-3);
        let u = model.curve.eval(cap);
        obs.seed_steady_state(u, y_now);
        MpcJobState {
            size,
            target,
            current_cap_frac: cap,
            gain,
            free_response: ctrl.free_response(model, obs.state()),
            curve_value: model.curve.eval(cap),
            curve_slope: model.curve.secant_slope(cap, 0.10),
            bias: 0.0,
            charged: true,
        }
    }

    /// Settings that track only the job-level targets (no system pull).
    fn job_only_settings() -> MpcSettings {
        MpcSettings {
            wt_sys: 0.0,
            ..MpcSettings::default()
        }
    }

    #[test]
    fn past_decide_deadline_still_yields_feasible_caps() {
        let m = model();
        let mut ctrl = MpcController::new(&m, job_only_settings());
        let job = job_at(&ctrl, &m, 10, 0.5, 0.95, 1.0);
        let input = MpcInput {
            jobs: std::slice::from_ref(&job),
            system_target: 0.0,
            budget_nodes: 10.0,
            cap_min_frac: 90.0 / 290.0,
            wp_nodes: 10.0,
        };
        ctrl.set_decide_deadline(Some(
            std::time::Instant::now() - std::time::Duration::from_secs(1),
        ));
        let d = ctrl.decide(&input).unwrap();
        // Anytime mode: the decision is the projected warm start — a
        // feasible, sane cap vector — produced without iterating.
        assert_eq!(d.qp_iterations, 0);
        for &cap in &d.caps_frac {
            assert!((0.0..=1.0).contains(&cap), "infeasible cap {cap}");
        }
        // Disarming restores full convergence on the same controller.
        ctrl.set_decide_deadline(None);
        let d2 = ctrl.decide(&input).unwrap();
        assert!(d2.converged);
        assert!(d2.qp_iterations > 0);
    }

    #[test]
    fn raises_power_for_underperforming_job() {
        let m = model();
        let ctrl = MpcController::new(&m, job_only_settings());
        // One job below target with plenty of budget: cap must rise.
        let job = job_at(&ctrl, &m, 10, 0.5, 0.95, 1.0);
        let input = MpcInput {
            jobs: std::slice::from_ref(&job),
            system_target: 0.0,
            budget_nodes: 10.0, // up to TDP on all nodes
            cap_min_frac: 90.0 / 290.0,
            wp_nodes: 10.0,
        };
        let d = ctrl.decide(&input).unwrap();
        assert!(
            d.caps_frac[0] > job.current_cap_frac + 0.02,
            "cap {} should exceed {}",
            d.caps_frac[0],
            job.current_cap_frac
        );
    }

    #[test]
    fn lowers_power_for_overperforming_job() {
        let m = model();
        let ctrl = MpcController::new(&m, job_only_settings());
        // Job at a high cap, producing well above its target: tracking
        // pushes the cap down.
        let mut job = job_at(&ctrl, &m, 10, 0.9, 0.6, 1.0);
        for f in job.free_response.iter_mut() {
            *f = 0.95;
        }
        let input = MpcInput {
            jobs: std::slice::from_ref(&job),
            system_target: 0.0,
            budget_nodes: 10.0,
            cap_min_frac: 90.0 / 290.0,
            wp_nodes: 10.0,
        };
        let d = ctrl.decide(&input).unwrap();
        assert!(
            d.caps_frac[0] < 0.85,
            "overperforming job should shed power, got {}",
            d.caps_frac[0]
        );
    }

    #[test]
    fn budget_constraint_binds_and_favors_sensitive_job() {
        let m = model();
        let ctrl = MpcController::new(&m, MpcSettings::default());
        // Two equal-size jobs at the same current output, both below
        // target; budget allows an average cap of 0.6. The sensitive job
        // (g=1.5) gains more per watt, so it should receive more power
        // than the insensitive one (g=0.2).
        let sensitive = job_at_output(&ctrl, &m, 10, 0.6, 0.95, 1.5, 0.7);
        let insensitive = job_at_output(&ctrl, &m, 10, 0.6, 0.95, 0.2, 0.7);
        let jobs = vec![sensitive, insensitive];
        let input = MpcInput {
            jobs: &jobs,
            system_target: 2.0, // unreachable: push throughput
            budget_nodes: 12.0, // avg cap 0.6 over 20 nodes
            cap_min_frac: 90.0 / 290.0,
            wp_nodes: 10.0,
        };
        let d = ctrl.decide(&input).unwrap();
        // Budget respected.
        let commit = 10.0 * d.caps_frac[0] + 10.0 * d.caps_frac[1];
        assert!(commit <= 12.0 + 1e-6, "commit {commit}");
        assert!(
            d.caps_frac[0] > d.caps_frac[1],
            "sensitive {} vs insensitive {}",
            d.caps_frac[0],
            d.caps_frac[1]
        );
    }

    #[test]
    fn caps_stay_in_admissible_window() {
        let m = model();
        let ctrl = MpcController::new(&m, MpcSettings::default());
        let jobs: Vec<MpcJobState> = (0..8)
            .map(|i| job_at(&ctrl, &m, 4, 0.5, 1.2, 0.5 + 0.2 * i as f64))
            .collect();
        let input = MpcInput {
            jobs: &jobs,
            system_target: 5.0,
            budget_nodes: 18.0,
            cap_min_frac: 90.0 / 290.0,
            wp_nodes: 16.0,
        };
        let d = ctrl.decide(&input).unwrap();
        for &cap in &d.caps_frac {
            assert!((90.0 / 290.0 - 1e-9..=1.0 + 1e-9).contains(&cap));
        }
        assert!(d.converged);
    }

    #[test]
    fn no_jobs_no_decision() {
        let m = model();
        let ctrl = MpcController::new(&m, MpcSettings::default());
        let input = MpcInput {
            jobs: &[],
            system_target: 1.0,
            budget_nodes: 10.0,
            cap_min_frac: 0.31,
            wp_nodes: 10.0,
        };
        assert!(ctrl.decide(&input).is_none());
        assert!(ctrl.decide_dense(&input).is_none());
    }

    #[test]
    fn infeasible_budget_degrades_to_floor() {
        let m = model();
        let ctrl = MpcController::new(&m, MpcSettings::default());
        let job = job_at(&ctrl, &m, 10, 0.5, 0.9, 1.0);
        let input = MpcInput {
            jobs: std::slice::from_ref(&job),
            system_target: 1.0,
            budget_nodes: 1.0, // below 10 nodes at the floor
            cap_min_frac: 90.0 / 290.0,
            wp_nodes: 10.0,
        };
        let d = ctrl.decide(&input).unwrap();
        assert!((d.caps_frac[0] - 90.0 / 290.0).abs() < 1e-6);
    }

    #[test]
    fn higher_dp_weight_slows_cap_movement() {
        let m = model();
        let settle = |w_dp: f64| -> f64 {
            let ctrl = MpcController::new(
                &m,
                MpcSettings {
                    w_dp,
                    wt_sys: 0.0,
                    ..MpcSettings::default()
                },
            );
            let job = job_at(&ctrl, &m, 10, 0.4, 1.0, 1.0);
            let input = MpcInput {
                jobs: std::slice::from_ref(&job),
                system_target: 0.0,
                budget_nodes: 10.0,
                cap_min_frac: 90.0 / 290.0,
                wp_nodes: 10.0,
            };
            ctrl.decide(&input).unwrap().caps_frac[0]
        };
        let fast = settle(0.01);
        let slow = settle(5.0);
        assert!(
            fast - 0.4 > slow - 0.4,
            "w_dp=0.01 moved {fast}, w_dp=5 moved {slow}"
        );
        assert!(slow >= 0.4 - 1e-9);
    }

    #[test]
    fn structured_and_dense_paths_agree() {
        let m = model();
        // Tight solver tolerance so both paths land on the optimum rather
        // than on path-dependent approximations of it.
        let ctrl = MpcController::new(
            &m,
            MpcSettings {
                max_qp_iters: 200_000,
                qp_tol: 1e-12,
                ..MpcSettings::default()
            },
        );
        let jobs: Vec<MpcJobState> = (0..6)
            .map(|i| {
                job_at_output(
                    &ctrl,
                    &m,
                    3 + i,
                    0.45 + 0.05 * i as f64,
                    0.9,
                    0.4 + 0.25 * i as f64,
                    0.6 + 0.03 * i as f64,
                )
            })
            .collect();
        let input = MpcInput {
            jobs: &jobs,
            system_target: 1.5,
            budget_nodes: 18.0,
            cap_min_frac: 90.0 / 290.0,
            wp_nodes: 30.0,
        };
        let structured = ctrl.decide(&input).unwrap();
        let dense = ctrl.decide_dense(&input).unwrap();
        for (s, d) in structured.caps_frac.iter().zip(dense.caps_frac.iter()) {
            assert!((s - d).abs() < 1e-9, "structured {s} vs dense {d}");
        }
    }

    #[test]
    fn structured_assembly_matches_dense_objective() {
        let m = model();
        let ctrl = MpcController::new(&m, MpcSettings::default());
        let jobs: Vec<MpcJobState> = (0..5)
            .map(|i| {
                job_at(
                    &ctrl,
                    &m,
                    2 + i,
                    0.4 + 0.1 * i as f64,
                    1.0,
                    0.3 + 0.3 * i as f64,
                )
            })
            .collect();
        let input = MpcInput {
            jobs: &jobs,
            system_target: 1.2,
            budget_nodes: 12.0,
            cap_min_frac: 90.0 / 290.0,
            wp_nodes: 20.0,
        };
        let (sqp, swarm, sconsts) = ctrl.assemble_qp(&input).unwrap();
        let (dqp, dwarm, dconsts) = ctrl.assemble_dense_qp(&input).unwrap();
        assert_eq!(swarm, dwarm);
        assert_eq!(sconsts, dconsts);
        use perq_qp::QpOperator;
        // Probe objective/gradient agreement at several points.
        let n = dqp.dim();
        for seed in 0..4u32 {
            let x: Vec<f64> = (0..n)
                .map(|i| 0.31 + 0.6 * (((i as f64 + 1.3) * (seed as f64 + 0.7)).sin() + 1.0) / 2.0)
                .collect();
            let fo = dqp.objective(&x);
            let fs = QpOperator::objective(&sqp, &x);
            assert!(
                (fo - fs).abs() <= 1e-9 * (1.0 + fo.abs()),
                "objective {fo} vs {fs}"
            );
            let mut gd = vec![0.0; n];
            let mut gs = vec![0.0; n];
            dqp.gradient_into(&x, &mut gd);
            sqp.gradient_into(&x, &mut gs);
            for (a, b) in gd.iter().zip(gs.iter()) {
                assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()), "grad {a} vs {b}");
            }
        }
        // The structured operator must not materialise anything close to
        // an nv×nv Hessian.
        let nv = input.jobs.len() * ctrl.settings().horizon;
        assert!(sqp.hessian_stored_floats() < nv * nv / 2);
    }

    #[test]
    fn warm_hint_reaches_the_same_optimum() {
        let m = model();
        let ctrl = MpcController::new(
            &m,
            MpcSettings {
                max_qp_iters: 200_000,
                qp_tol: 1e-12,
                ..MpcSettings::default()
            },
        );
        let jobs: Vec<MpcJobState> = (0..4)
            .map(|i| {
                job_at(
                    &ctrl,
                    &m,
                    5,
                    0.4 + 0.1 * i as f64,
                    0.9,
                    0.5 + 0.3 * i as f64,
                )
            })
            .collect();
        let input = MpcInput {
            jobs: &jobs,
            system_target: 1.2,
            budget_nodes: 12.0,
            cap_min_frac: 90.0 / 290.0,
            wp_nodes: 20.0,
        };
        let horizon = ctrl.settings().horizon;
        let cold = ctrl.decide(&input).unwrap();
        assert_eq!(cold.x.len(), jobs.len() * horizon);

        // Shift-by-one feedback of the previous trajectory, plus a
        // deliberately out-of-range value: the solver projects the start,
        // so the optimum is unchanged.
        let mut shifted = Vec::with_capacity(cold.x.len());
        for traj in cold.x.chunks(horizon) {
            shifted.extend_from_slice(&traj[1..]);
            shifted.push(traj[horizon - 1]);
        }
        shifted[0] = 5.0;
        let warm = ctrl.decide_warm(&input, Some(&shifted)).unwrap();
        for (a, b) in cold.caps_frac.iter().zip(warm.caps_frac.iter()) {
            assert!((a - b).abs() < 1e-9, "cold {a} vs warm {b}");
        }

        // A wrong-length hint (population changed shape) must fall back
        // to the assembled default, not panic.
        let warm2 = ctrl.decide_warm(&input, Some(&shifted[..3])).unwrap();
        for (a, b) in cold.caps_frac.iter().zip(warm2.caps_frac.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn lipschitz_cache_warms_across_decisions() {
        let m = model();
        let ctrl = MpcController::new(&m, MpcSettings::default());
        let job = job_at(&ctrl, &m, 10, 0.5, 0.95, 1.0);
        let input = MpcInput {
            jobs: std::slice::from_ref(&job),
            system_target: 1.0,
            budget_nodes: 10.0,
            cap_min_frac: 90.0 / 290.0,
            wp_nodes: 10.0,
        };
        let first = ctrl.decide(&input).unwrap();
        assert!(ctrl.scratch.lock().unwrap().state.f64_lmax().is_some());
        let second = ctrl.decide(&input).unwrap();
        for (a, b) in first.caps_frac.iter().zip(second.caps_frac.iter()) {
            assert!((a - b).abs() < 1e-7, "decisions drifted: {a} vs {b}");
        }
    }
}
