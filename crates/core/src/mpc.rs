use crate::model::NodeModel;
use perq_linalg::Matrix;
use perq_qp::{BoxBudgetQp, Budget, ProjGradSettings, ProjGradSolver};

/// MPC controller settings (the weights of Eq. 2/Eq. 3 and the horizon).
#[derive(Debug, Clone)]
pub struct MpcSettings {
    /// Prediction horizon `M` in control intervals (paper uses ~4 and
    /// reports insensitivity to the exact value).
    pub horizon: usize,
    /// Weight on job-level tracking errors (`W_Tjob`).
    pub wt_job: f64,
    /// Weight on the system-throughput tracking error (`W_Tsys`).
    pub wt_sys: f64,
    /// Weight on power-cap changes between instances (`W_ΔP`).
    pub w_dp: f64,
    /// Multiplier applied to the tracking weights at the last horizon
    /// step — the "terminal cost" that enforces convergence by the end of
    /// the horizon (§2.3.2).
    pub terminal_weight: f64,
    /// QP solver iteration cap (bounds the decision time).
    pub max_qp_iters: usize,
}

impl Default for MpcSettings {
    fn default() -> Self {
        MpcSettings {
            horizon: 4,
            wt_job: 1.0,
            wt_sys: 1.0,
            w_dp: 1.0,
            terminal_weight: 2.0,
            max_qp_iters: 400,
        }
    }
}

/// Per-job inputs to one MPC decision, produced from the job's adapter.
#[derive(Debug, Clone)]
pub struct MpcJobState {
    /// Node count of the job.
    pub size: usize,
    /// Normalized per-node IPS target (fairness target from the target
    /// generator).
    pub target: f64,
    /// Cap fraction currently applied (`P0` of Eq. 4).
    pub current_cap_frac: f64,
    /// Adapted sensitivity gain `g` of this job.
    pub gain: f64,
    /// Free response `C Aʲ x̂` for `j = 1..=M` (what the job's output
    /// would do if the curve-transformed input were zero) — `G·X0` of
    /// Eq. 4.
    pub free_response: Vec<f64>,
    /// Static curve value `φ(P0)` at the current cap.
    pub curve_value: f64,
    /// Static curve slope `φ'(P0)` at the current cap (successive
    /// linearisation).
    pub curve_slope: f64,
    /// Constant output-disturbance estimate for this job (offset-free
    /// correction added to every predicted output).
    pub bias: f64,
    /// Whether this job's cap is charged against the power budget. Jobs
    /// observed to draw comfortably less than their cap are *slack*: the
    /// caller charges their estimated demand as a constant (already
    /// subtracted from [`MpcInput::budget_nodes`]) and their cap headroom
    /// is free — this is the usage-based budget accounting that lets PERQ
    /// over-commit caps (§2.4.1: the constraint is on "overall power
    /// usage", not on the sum of caps).
    pub charged: bool,
}

/// Cluster-level inputs to one MPC decision.
#[derive(Debug, Clone)]
pub struct MpcInput<'a> {
    /// Running jobs.
    pub jobs: &'a [MpcJobState],
    /// System throughput target (normalized by `N_WP`).
    pub system_target: f64,
    /// Remaining power budget for *charged* jobs in units of `TDP·nodes`:
    /// `Σ_{charged} sizeᵢ·pᵢ(j) ≤ budget_nodes` must hold at every
    /// horizon step (the slack jobs' estimated demands have already been
    /// subtracted by the caller).
    pub budget_nodes: f64,
    /// Lowest admissible cap fraction.
    pub cap_min_frac: f64,
    /// `N_WP`, used to normalize the system output row.
    pub wp_nodes: f64,
}

/// Result of one decision.
#[derive(Debug, Clone)]
pub struct MpcDecision {
    /// First-step cap fraction per job (what gets applied).
    pub caps_frac: Vec<f64>,
    /// Predicted normalized per-node IPS per job at the first step.
    pub predicted_ips: Vec<f64>,
    /// QP iterations used.
    pub qp_iterations: usize,
    /// Whether the QP converged within the iteration cap.
    pub converged: bool,
}

/// The PERQ model-predictive controller (§2.4.3).
///
/// Every decision interval it assembles the quadratic program of Eq. 4 —
/// `find P to minimize ½PᵀQP + cᵀP` with `Q = HᵀW_TH + DᵀW_ΔPD` — from the
/// node model's Markov parameters, each job's observer state (free
/// response) and adapted gain, and solves it with the projected-gradient
/// solver under box and per-step budget constraints.
///
/// Timing convention: cap `p(j)` is applied during prediction interval
/// `j` and the output `y(j)` is measured at its end, so `y(j)` sees
/// `p(j)` through the model's direct feedthrough and earlier caps through
/// the Markov parameters. The per-job sensitivity gain `g` scales the
/// response to cap *changes*; absolute levels are tracked by the
/// observer's free response.
#[derive(Debug, Clone)]
pub struct MpcController {
    settings: MpcSettings,
    /// Delayed Markov parameters `h_1..h_M` of the node model.
    markov: Vec<f64>,
    /// Direct feedthrough `D` (same-interval response).
    feedthrough: f64,
    /// Identified input offset `u₀` of the node model.
    input_offset: f64,
    solver: ProjGradSolver,
}

impl MpcController {
    /// Builds a controller for an identified node model.
    pub fn new(model: &NodeModel, settings: MpcSettings) -> Self {
        assert!(settings.horizon >= 1, "horizon must be at least 1");
        let markov = model.ss.markov_parameters(settings.horizon);
        let solver = ProjGradSolver::new(ProjGradSettings {
            max_iters: settings.max_qp_iters,
            tol: 1e-6,
            power_iters: 20,
        });
        MpcController {
            settings,
            markov,
            feedthrough: model.ss.feedthrough(),
            input_offset: model.ss.input_offset(),
            solver,
        }
    }

    /// The controller's settings.
    pub fn settings(&self) -> &MpcSettings {
        &self.settings
    }

    /// Free-response horizon rows `C Aʲ x̂ + y₀` for `j = 0..M` — the
    /// zero-input output trajectory from a job's state estimate; helper so
    /// callers build [`MpcJobState`] without touching the model internals.
    pub fn free_response(&self, model: &NodeModel, state: &[f64]) -> Vec<f64> {
        let rows = model.ss.output_response_rows(self.settings.horizon);
        (0..self.settings.horizon)
            .map(|j| {
                rows.row(j)
                    .iter()
                    .zip(state.iter())
                    .map(|(&a, &b)| a * b)
                    .sum::<f64>()
                    + model.ss.output_offset()
            })
            .collect()
    }

    /// Assembles the decision QP of Eq. 4 for an input (exposed for
    /// diagnostics and benchmarks). Returns the QP together with the
    /// warm-start point (current caps held across the horizon) and the
    /// per-(job, step) affine constants `k_ij` of the output predictions.
    pub fn assemble_qp(&self, input: &MpcInput<'_>) -> Option<(BoxBudgetQp, Vec<f64>, Vec<f64>)> {
        let nj = input.jobs.len();
        if nj == 0 {
            return None;
        }
        let m = self.settings.horizon;
        let nv = nj * m;
        let var = |i: usize, j: usize| i * m + j; // j = 0-based horizon step

        // Cumulative input-response sums for the constant part of the
        // forced response: h0cum[j] = D + Σ_{l=1..j} h_l is the total
        // response at output step j of a constant unit input held from
        // step 0.
        let mut h0cum = vec![0.0; m];
        h0cum[0] = self.feedthrough;
        for j in 1..m {
            h0cum[j] = h0cum[j - 1] + self.markov[j - 1];
        }

        // Row accumulation: Q += w rᵀr, c += −w·resid·r for each output
        // row, where the predicted output is `r·p + k` and resid = T − k.
        let mut q = Matrix::zeros(nv, nv);
        let mut c = vec![0.0; nv];
        let mut consts = vec![0.0; nv];
        let add_row = |q: &mut Matrix,
                           c: &mut Vec<f64>,
                           w: f64,
                           entries: &[(usize, f64)],
                           resid: f64| {
            for &(a, va) in entries {
                c[a] -= w * resid * va;
                for &(b, vb) in entries {
                    q[(a, b)] += w * va * vb;
                }
            }
        };

        // Per-job constants k_i(j) and row templates. With the input at
        // step mᵢ linearised as u(m) = φ(p0) + g·s0·(p(m) − p0), the
        // predicted output is
        //   y_i(j) = free_i(j) + (φ(p0) − g·s0·p0 + u0)·h0cum(j)
        //          + g·s0·[ D·p_i(j) + Σ_{l<j} h_{j−l}·p_i(l) ].
        let mut row_buf: Vec<(usize, f64)> = Vec::with_capacity(nv);
        let mut sys_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        let mut sys_consts = vec![0.0; m];

        for (i, job) in input.jobs.iter().enumerate() {
            debug_assert_eq!(job.free_response.len(), m, "free response length");
            let gs = job.gain * job.curve_slope;
            let const_in =
                job.curve_value - job.gain * job.curve_slope * job.current_cap_frac
                    + self.input_offset;
            for j in 0..m {
                // Constant part of y_i at output step j.
                let k_ij = job.free_response[j] + const_in * h0cum[j] + job.bias;
                consts[var(i, j)] = k_ij;
                row_buf.clear();
                for l in 0..=j {
                    let coeff = if l == j {
                        gs * self.feedthrough
                    } else {
                        gs * self.markov[j - l - 1]
                    };
                    if coeff != 0.0 {
                        row_buf.push((var(i, l), coeff));
                    }
                }
                let w = self.settings.wt_job
                    * if j + 1 == m {
                        self.settings.terminal_weight
                    } else {
                        1.0
                    };
                add_row(&mut q, &mut c, w, &row_buf, job.target - k_ij);

                // Contribute to the system row for step j.
                let scale = job.size as f64 / input.wp_nodes;
                sys_consts[j] += scale * k_ij;
                for &(idx, v) in &row_buf {
                    sys_rows[j].push((idx, scale * v));
                }
            }
        }

        // System throughput rows.
        for j in 0..m {
            let w = self.settings.wt_sys
                * if j + 1 == m {
                    self.settings.terminal_weight
                } else {
                    1.0
                };
            add_row(
                &mut q,
                &mut c,
                w,
                &sys_rows[j],
                input.system_target - sys_consts[j],
            );
        }

        // ΔP smoothing rows: p_i(0) − p0_i, then p_i(j) − p_i(j−1).
        for (i, job) in input.jobs.iter().enumerate() {
            add_row(
                &mut q,
                &mut c,
                self.settings.w_dp,
                &[(var(i, 0), 1.0)],
                job.current_cap_frac,
            );
            for j in 1..m {
                add_row(
                    &mut q,
                    &mut c,
                    self.settings.w_dp,
                    &[(var(i, j), 1.0), (var(i, j - 1), -1.0)],
                    0.0,
                );
            }
        }

        // Constraints: box on every cap, budget only over charged jobs.
        let lo = vec![input.cap_min_frac; nv];
        let hi = vec![1.0; nv];
        let min_commit: f64 = input
            .jobs
            .iter()
            .filter(|jb| jb.charged)
            .map(|jb| jb.size as f64 * input.cap_min_frac)
            .sum();
        let any_charged = input.jobs.iter().any(|jb| jb.charged);
        let budget_limit = input.budget_nodes.max(min_commit);
        let budgets: Vec<Budget> = if any_charged {
            (0..m)
                .map(|j| {
                    let mut coeffs = vec![0.0; nv];
                    for (i, job) in input.jobs.iter().enumerate() {
                        if job.charged {
                            coeffs[var(i, j)] = job.size as f64;
                        }
                    }
                    Budget {
                        coeffs,
                        limit: budget_limit,
                    }
                })
                .collect()
        } else {
            Vec::new()
        };

        let qp = BoxBudgetQp {
            q,
            c,
            lo,
            hi,
            budgets,
        };
        // Warm start: hold the current caps across the horizon.
        let warm: Vec<f64> = input
            .jobs
            .iter()
            .flat_map(|jb| std::iter::repeat_n(jb.current_cap_frac, m))
            .collect();
        Some((qp, warm, consts))
    }

    /// Solves one decision instance. Returns `None` when there are no
    /// jobs.
    pub fn decide(&self, input: &MpcInput<'_>) -> Option<MpcDecision> {
        let nj = input.jobs.len();
        let m = self.settings.horizon;
        let var = |i: usize, j: usize| i * m + j;
        let (qp, warm, _consts) = self.assemble_qp(input)?;
        let sol = self
            .solver
            .solve(&qp, Some(&warm))
            .expect("MPC QP is validated feasible");

        // Extract first-step caps and predicted outputs.
        let mut caps = Vec::with_capacity(nj);
        let mut predicted = Vec::with_capacity(nj);
        for (i, job) in input.jobs.iter().enumerate() {
            let p1 = sol.x[var(i, 0)];
            caps.push(p1);
            let const_in =
                job.curve_value - job.gain * job.curve_slope * job.current_cap_frac
                    + self.input_offset;
            let y1 = job.free_response[0]
                + const_in * self.feedthrough
                + job.bias
                + job.gain * job.curve_slope * self.feedthrough * p1;
            predicted.push(y1);
        }
        Some(MpcDecision {
            caps_frac: caps,
            predicted_ips: predicted,
            qp_iterations: sol.iterations,
            converged: sol.converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::train_node_model;

    fn model() -> NodeModel {
        train_node_model(3).0
    }

    /// Builds a steady-state job input: observer state at equilibrium for
    /// the given cap, targets as requested.
    fn job_at(
        ctrl: &MpcController,
        model: &NodeModel,
        size: usize,
        cap: f64,
        target: f64,
        gain: f64,
    ) -> MpcJobState {
        job_at_output(ctrl, model, size, cap, target, gain, gain * model.curve.eval(cap))
    }

    /// Like [`job_at`] but with the job's current output level seeded
    /// explicitly.
    fn job_at_output(
        ctrl: &MpcController,
        model: &NodeModel,
        size: usize,
        cap: f64,
        target: f64,
        gain: f64,
        y_now: f64,
    ) -> MpcJobState {
        // Equilibrium state: x = (I−A)⁻¹ B (u + u0) with u = φ(cap); the
        // free response of that state decays from the current output.
        let mut obs = perq_sysid::KalmanObserver::new(model.ss.clone(), 0.05, 1e-3);
        let u = model.curve.eval(cap);
        obs.seed_steady_state(u, y_now);
        MpcJobState {
            size,
            target,
            current_cap_frac: cap,
            gain,
            free_response: ctrl.free_response(model, obs.state()),
            curve_value: model.curve.eval(cap),
            curve_slope: model.curve.secant_slope(cap, 0.10),
            bias: 0.0,
            charged: true,
        }
    }

    /// Settings that track only the job-level targets (no system pull).
    fn job_only_settings() -> MpcSettings {
        MpcSettings {
            wt_sys: 0.0,
            ..MpcSettings::default()
        }
    }

    #[test]
    fn raises_power_for_underperforming_job() {
        let m = model();
        let ctrl = MpcController::new(&m, job_only_settings());
        // One job below target with plenty of budget: cap must rise.
        let job = job_at(&ctrl, &m, 10, 0.5, 0.95, 1.0);
        let input = MpcInput {
            jobs: std::slice::from_ref(&job),
            system_target: 0.0,
            budget_nodes: 10.0, // up to TDP on all nodes
            cap_min_frac: 90.0 / 290.0,
            wp_nodes: 10.0,
        };
        let d = ctrl.decide(&input).unwrap();
        assert!(
            d.caps_frac[0] > job.current_cap_frac + 0.02,
            "cap {} should exceed {}",
            d.caps_frac[0],
            job.current_cap_frac
        );
    }

    #[test]
    fn lowers_power_for_overperforming_job() {
        let m = model();
        let ctrl = MpcController::new(&m, job_only_settings());
        // Job at a high cap, producing well above its target: tracking
        // pushes the cap down.
        let mut job = job_at(&ctrl, &m, 10, 0.9, 0.6, 1.0);
        for f in job.free_response.iter_mut() {
            *f = 0.95;
        }
        let input = MpcInput {
            jobs: std::slice::from_ref(&job),
            system_target: 0.0,
            budget_nodes: 10.0,
            cap_min_frac: 90.0 / 290.0,
            wp_nodes: 10.0,
        };
        let d = ctrl.decide(&input).unwrap();
        assert!(
            d.caps_frac[0] < 0.85,
            "overperforming job should shed power, got {}",
            d.caps_frac[0]
        );
    }

    #[test]
    fn budget_constraint_binds_and_favors_sensitive_job() {
        let m = model();
        let ctrl = MpcController::new(&m, MpcSettings::default());
        // Two equal-size jobs at the same current output, both below
        // target; budget allows an average cap of 0.6. The sensitive job
        // (g=1.5) gains more per watt, so it should receive more power
        // than the insensitive one (g=0.2).
        let sensitive = job_at_output(&ctrl, &m, 10, 0.6, 0.95, 1.5, 0.7);
        let insensitive = job_at_output(&ctrl, &m, 10, 0.6, 0.95, 0.2, 0.7);
        let jobs = vec![sensitive, insensitive];
        let input = MpcInput {
            jobs: &jobs,
            system_target: 2.0, // unreachable: push throughput
            budget_nodes: 12.0, // avg cap 0.6 over 20 nodes
            cap_min_frac: 90.0 / 290.0,
            wp_nodes: 10.0,
        };
        let d = ctrl.decide(&input).unwrap();
        // Budget respected.
        let commit = 10.0 * d.caps_frac[0] + 10.0 * d.caps_frac[1];
        assert!(commit <= 12.0 + 1e-6, "commit {commit}");
        assert!(
            d.caps_frac[0] > d.caps_frac[1],
            "sensitive {} vs insensitive {}",
            d.caps_frac[0],
            d.caps_frac[1]
        );
    }

    #[test]
    fn caps_stay_in_admissible_window() {
        let m = model();
        let ctrl = MpcController::new(&m, MpcSettings::default());
        let jobs: Vec<MpcJobState> = (0..8)
            .map(|i| job_at(&ctrl, &m, 4, 0.5, 1.2, 0.5 + 0.2 * i as f64))
            .collect();
        let input = MpcInput {
            jobs: &jobs,
            system_target: 5.0,
            budget_nodes: 18.0,
            cap_min_frac: 90.0 / 290.0,
            wp_nodes: 16.0,
        };
        let d = ctrl.decide(&input).unwrap();
        for &cap in &d.caps_frac {
            assert!((90.0 / 290.0 - 1e-9..=1.0 + 1e-9).contains(&cap));
        }
        assert!(d.converged);
    }

    #[test]
    fn no_jobs_no_decision() {
        let m = model();
        let ctrl = MpcController::new(&m, MpcSettings::default());
        let input = MpcInput {
            jobs: &[],
            system_target: 1.0,
            budget_nodes: 10.0,
            cap_min_frac: 0.31,
            wp_nodes: 10.0,
        };
        assert!(ctrl.decide(&input).is_none());
    }

    #[test]
    fn infeasible_budget_degrades_to_floor() {
        let m = model();
        let ctrl = MpcController::new(&m, MpcSettings::default());
        let job = job_at(&ctrl, &m, 10, 0.5, 0.9, 1.0);
        let input = MpcInput {
            jobs: std::slice::from_ref(&job),
            system_target: 1.0,
            budget_nodes: 1.0, // below 10 nodes at the floor
            cap_min_frac: 90.0 / 290.0,
            wp_nodes: 10.0,
        };
        let d = ctrl.decide(&input).unwrap();
        assert!((d.caps_frac[0] - 90.0 / 290.0).abs() < 1e-6);
    }

    #[test]
    fn higher_dp_weight_slows_cap_movement() {
        let m = model();
        let settle = |w_dp: f64| -> f64 {
            let ctrl = MpcController::new(
                &m,
                MpcSettings {
                    w_dp,
                    wt_sys: 0.0,
                    ..MpcSettings::default()
                },
            );
            let job = job_at(&ctrl, &m, 10, 0.4, 1.0, 1.0);
            let input = MpcInput {
                jobs: std::slice::from_ref(&job),
                system_target: 0.0,
                budget_nodes: 10.0,
                cap_min_frac: 90.0 / 290.0,
                wp_nodes: 10.0,
            };
            ctrl.decide(&input).unwrap().caps_frac[0]
        };
        let fast = settle(0.01);
        let slow = settle(5.0);
        assert!(
            fast - 0.4 > slow - 0.4,
            "w_dp=0.01 moved {fast}, w_dp=5 moved {slow}"
        );
        assert!(slow >= 0.4 - 1e-9);
    }
}
