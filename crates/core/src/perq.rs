use crate::model::{train_node_model, JobAdapter, NodeModel};
use crate::mpc::{MpcController, MpcInput, MpcJobState, MpcSettings};
use crate::targets::TargetGenerator;
use perq_apps::{BASE_NODE_IPS, IDLE_WATTS};
use perq_sim::{PolicyContext, PowerAssignment, PowerPolicy};
use perq_telemetry::Recorder;
use std::collections::HashMap;

/// Configuration of the full PERQ policy.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(default)]
pub struct PerqConfig {
    /// MPC weights and horizon.
    pub mpc: MpcSettings,
    /// System-throughput improvement ratio `T_ratio` (§2.4.1; ≥ 4
    /// recommended — Fig. 10a).
    pub improvement_ratio: f64,
    /// Seed for the one-time node-model identification.
    pub training_seed: u64,
    /// Identification dither amplitude as a fraction of TDP. A small
    /// alternating perturbation is added to each job's cap so the
    /// per-job sensitivity estimator always sees cap variation — without
    /// it, a job whose cap has converged becomes unidentifiable and its
    /// sensitivity estimate goes stale. Set to 0 to disable.
    pub dither_frac: f64,
    /// Concurrent-job count above which the controller switches to
    /// grouped (hierarchical) decisions — the paper's §3 remedy for
    /// 10,000-job scaling. Set to `usize::MAX` to always solve exactly.
    pub group_threshold: usize,
    /// Maximum pseudo-job groups for grouped decisions.
    pub max_groups: usize,
    /// QP solver precision/layout profile. `f64_aos` (the default)
    /// reproduces the reference decide path bit for bit; `f32_soa` and
    /// `mixed_soa` trade precision for decide latency (see
    /// [`perq_qp::SolverProfile`]).
    pub solver_profile: perq_qp::SolverProfile,
}

impl Default for PerqConfig {
    fn default() -> Self {
        PerqConfig {
            mpc: MpcSettings::default(),
            improvement_ratio: 4.0,
            training_seed: 0x5045_5251,
            dither_frac: 0.025,
            group_threshold: 150,
            max_groups: 64,
            solver_profile: perq_qp::SolverProfile::default(),
        }
    }
}

/// The complete PERQ power-allocation policy (Fig. 4): target generator +
/// MPC controller + per-job adaptation, wired into the simulator's
/// [`PowerPolicy`] interface.
///
/// PERQ never reads oracle fields (remaining runtimes) and never sees the
/// ground-truth application curves — it interacts with jobs exclusively
/// through applied caps and measured IPS.
pub struct PerqPolicy {
    model: NodeModel,
    controller: MpcController,
    target_gen: TargetGenerator,
    adapters: HashMap<u64, JobAdapter>,
    /// Last decision's optimized cap trajectory per job (horizon steps),
    /// shifted one step and fed back as the next decision's FISTA warm
    /// start — consecutive MPC instances differ by one interval of
    /// feedback, so this cuts solver iterations without changing what
    /// the solver converges to.
    prev_traj: HashMap<u64, Vec<f64>>,
    dither_frac: f64,
    group_threshold: usize,
    max_groups: usize,
    step: u64,
    name: String,
    recorder: Recorder,
}

impl PerqPolicy {
    /// Creates the policy, identifying the node model from the NPB-like
    /// training suite (one-time cost, §2.4.4).
    pub fn new(config: PerqConfig) -> Self {
        let (model, _report) = train_node_model(config.training_seed);
        Self::with_model(model, config)
    }

    /// Creates the policy with a pre-identified node model (so sweeps
    /// don't re-train per run).
    pub fn with_model(model: NodeModel, config: PerqConfig) -> Self {
        let mut controller = MpcController::new(&model, config.mpc.clone());
        controller.set_solver_profile(config.solver_profile);
        PerqPolicy {
            model,
            controller,
            target_gen: TargetGenerator::new(config.improvement_ratio),
            adapters: HashMap::new(),
            prev_traj: HashMap::new(),
            dither_frac: config.dither_frac,
            group_threshold: config.group_threshold,
            max_groups: config.max_groups,
            step: 0,
            name: "PERQ".to_string(),
            recorder: Recorder::noop(),
        }
    }

    /// A throughput-only variant: orders-of-magnitude higher weight on
    /// the system target than on job fairness (§3 reports this gains up
    /// to ~5% throughput but pushes worst-case degradation toward 70%).
    pub fn throughput_focused(config: PerqConfig) -> Self {
        let mut cfg = config;
        cfg.mpc.wt_sys *= 1000.0;
        let mut p = Self::new(cfg);
        p.name = "PERQ-T".to_string();
        p
    }

    /// The identified node model in use.
    pub fn model(&self) -> &NodeModel {
        &self.model
    }

    /// Number of jobs currently tracked.
    pub fn tracked_jobs(&self) -> usize {
        self.adapters.len()
    }

    /// The adapter state for a tracked job (diagnostics).
    pub fn adapter(&self, job_id: u64) -> Option<&JobAdapter> {
        self.adapters.get(&job_id)
    }

    /// The MPC controller (diagnostics).
    pub fn controller(&self) -> &MpcController {
        &self.controller
    }

    /// All tracked adapters keyed by job id (diagnostics).
    pub fn adapters(&self) -> &HashMap<u64, JobAdapter> {
        &self.adapters
    }

    /// The target generator in use (diagnostics).
    pub fn target_generator(&self) -> &TargetGenerator {
        &self.target_gen
    }

    /// The MPC horizon length `m` — the length a seeded warm-start
    /// trajectory must have.
    pub fn horizon(&self) -> usize {
        self.controller.settings().horizon
    }

    /// Seeds the FISTA warm start for a job before its next decision.
    ///
    /// Normally `prev_traj` is populated from the previous decision's
    /// own solution, so a *new* job starts the solver from its current
    /// cap held flat across the horizon. A forecaster that has seen the
    /// job's application before (the gym's hybrid policy feeds
    /// `perq-sysid` RLS demand predictions through here) can do better
    /// by seeding the predicted cap-fraction trajectory instead. This
    /// only moves the solver's starting point: under the iteration cap
    /// (or a decide deadline) a closer seed yields an earlier, slightly
    /// better iterate, which is exactly the hybrid's edge. Trajectories
    /// whose length differs from [`Self::horizon`] are ignored at
    /// decision time.
    pub fn seed_warm_start(&mut self, job_id: u64, traj_frac: Vec<f64>) {
        self.prev_traj.insert(job_id, traj_frac);
    }
}

impl PowerPolicy for PerqPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.controller.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    fn set_decide_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.controller.set_decide_deadline(deadline);
    }

    fn solver_profile_label(&self) -> &'static str {
        self.controller.solver_profile().label()
    }

    fn assign(&mut self, ctx: &PolicyContext<'_>) -> Vec<PowerAssignment> {
        if ctx.jobs.is_empty() {
            return Vec::new();
        }
        let cap_max = ctx.cap_max_w;

        // 1. Feedback: absorb last interval's measurements into the
        //    per-job adapters; create adapters for new arrivals.
        for job in ctx.jobs {
            let cap_frac = (job.current_cap_w / cap_max).clamp(0.0, 1.0);
            let adapter = self
                .adapters
                .entry(job.id)
                .or_insert_with(|| JobAdapter::new(&self.model, cap_frac));
            if let Some(ips) = job.measured_ips {
                let ips_norm = ips / (job.size as f64 * BASE_NODE_IPS);
                adapter.update(&self.model, cap_frac, ips_norm);
            }
            if let Some(power) = job.measured_power_w {
                // Degradation guard: a corrupted sensor can report a
                // physically impossible per-node power (far above TDP, or
                // below the idle floor). Feeding it into the peak-tracking
                // demand estimator would mis-budget the job for several
                // intervals, so implausible readings are discarded — the
                // estimator simply coasts through the gap.
                let plausible = (0.5 * IDLE_WATTS..=cap_max * 1.1).contains(&power);
                if plausible {
                    adapter.observe_power(power / cap_max, cap_frac);
                } else {
                    self.recorder
                        .counter_inc("perq_core_implausible_power_total");
                }
            }
        }
        self.adapters
            .retain(|id, _| ctx.jobs.iter().any(|j| j.id == *id));
        let adapters = &self.adapters;
        self.prev_traj.retain(|id, _| adapters.contains_key(id));

        // 2. Targets.
        let targets = self.target_gen.generate(&self.model, ctx, &self.adapters);

        // 3. Usage-based budget accounting (§2.4.1: the constraint is on
        //    power *usage*): a job observed to draw comfortably below its
        //    cap is "slack" — its estimated demand (plus a safety margin)
        //    is charged as a constant and its cap headroom is free. Jobs
        //    whose caps bind (or whose demand is still unknown) are
        //    charged their full cap.
        const SLACK_MARGIN: f64 = 0.04; // cap must exceed demand by this
        const CHARGE_MARGIN: f64 = 0.02; // safety margin on charged demand
                                         // Global reserve against simultaneous phase-driven demand rises in
                                         // slack jobs: the demand estimates are decaying *peak* trackers,
                                         // so in aggregate only a first-visit phase peak can overshoot its
                                         // charge; 2% of the budget absorbs that transient.
        const RESERVE_FRAC: f64 = 0.02;
        let mut charged_flags = Vec::with_capacity(ctx.jobs.len());
        let mut slack_charge_nodes = 0.0;
        for job in ctx.jobs {
            let cap_frac = (job.current_cap_w / cap_max).clamp(0.0, 1.0);
            let adapter = &self.adapters[&job.id];
            let demand = adapter.demand_frac();
            // A job is only treated as slack once it has been observed for
            // several intervals (roughly one application phase), so a
            // fresh job's yet-unseen phase peaks cannot blow the budget.
            let seasoned = adapter.updates() >= 6;
            let slack = seasoned && matches!(demand, Some(d) if d + SLACK_MARGIN < cap_frac);
            if slack {
                let d = demand.expect("slack implies known demand");
                slack_charge_nodes += job.size as f64 * (d + CHARGE_MARGIN);
            }
            charged_flags.push(!slack);
        }
        let budget_nodes = ctx.busy_budget_w * (1.0 - RESERVE_FRAC) / cap_max - slack_charge_nodes;

        // 4. MPC decision.
        let job_states: Vec<MpcJobState> = ctx
            .jobs
            .iter()
            .zip(targets.job_targets.iter())
            .zip(charged_flags.iter())
            .map(|((job, &target), &charged)| {
                let adapter = &self.adapters[&job.id];
                let cap_frac = (job.current_cap_w / cap_max).clamp(0.0, 1.0);
                MpcJobState {
                    size: job.size,
                    target,
                    current_cap_frac: cap_frac,
                    gain: adapter.gain(),
                    free_response: self.controller.free_response(&self.model, adapter.state()),
                    curve_value: self.model.curve.eval(cap_frac),
                    curve_slope: self.model.curve.secant_slope(cap_frac, 0.10),
                    bias: adapter.bias(),
                    charged,
                }
            })
            .collect();
        let input = MpcInput {
            jobs: &job_states,
            system_target: targets.system_target,
            budget_nodes,
            cap_min_frac: ctx.cap_min_w / cap_max,
            wp_nodes: ctx.wp_nodes as f64,
        };
        let decision = if ctx.jobs.len() > self.group_threshold {
            // The grouped path solves in group space, where last
            // interval's per-job trajectories don't map onto the
            // variables; it warm-starts from held caps internally.
            self.controller
                .decide_grouped(&input, self.max_groups)
                .expect("non-empty job list always yields a decision")
        } else {
            // Warm start: last interval's optimized trajectory per job,
            // advanced one step (the classic MPC shift), falling back to
            // the current cap held across the horizon for new jobs.
            let m = self.controller.settings().horizon;
            let mut warm = Vec::with_capacity(ctx.jobs.len() * m);
            for (job, state) in ctx.jobs.iter().zip(job_states.iter()) {
                match self.prev_traj.get(&job.id) {
                    Some(traj) if traj.len() == m => {
                        warm.extend_from_slice(&traj[1..]);
                        warm.push(traj[m - 1]);
                    }
                    _ => warm.extend(std::iter::repeat_n(state.current_cap_frac, m)),
                }
            }
            self.controller
                .decide_warm(&input, Some(&warm))
                .expect("non-empty job list always yields a decision")
        };
        let m = self.controller.settings().horizon;
        if decision.x.len() == ctx.jobs.len() * m {
            for (i, job) in ctx.jobs.iter().enumerate() {
                self.prev_traj
                    .insert(job.id, decision.x[i * m..(i + 1) * m].to_vec());
            }
        }
        let mut caps = decision.caps_frac.clone();

        // 5. Identification dither: alternate a small perturbation per
        //    job (the sign flips each interval and across jobs, so the
        //    net budget effect is near zero), then project the dithered
        //    caps of the *charged* jobs back onto the remaining budget.
        self.step += 1;
        if self.dither_frac > 0.0 {
            for (i, cap) in caps.iter_mut().enumerate() {
                let sign = if (i as u64 + self.step).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
                *cap += sign * self.dither_frac;
            }
            let coeffs: Vec<f64> = ctx
                .jobs
                .iter()
                .zip(charged_flags.iter())
                .map(|(j, &charged)| if charged { j.size as f64 } else { 0.0 })
                .collect();
            let min_commit: f64 = ctx
                .jobs
                .iter()
                .zip(charged_flags.iter())
                .filter(|(_, &charged)| charged)
                .map(|(j, _)| j.size as f64 * ctx.cap_min_w / cap_max)
                .sum();
            let budget = perq_qp::Budget {
                coeffs,
                limit: budget_nodes.max(min_commit),
            };
            let lo = vec![ctx.cap_min_w / cap_max; caps.len()];
            let hi = vec![1.0; caps.len()];
            perq_qp::project_box_budget(&mut caps, &lo, &hi, &budget);
        }

        // 6. Emit caps in watts with the fairness target published for
        //    tracing.
        caps.iter()
            .zip(ctx.jobs.iter())
            .zip(targets.job_targets.iter())
            .map(|((&frac, job), &target)| PowerAssignment {
                cap_w: frac * cap_max,
                target_ips: Some(target * job.size as f64 * BASE_NODE_IPS),
            })
            .collect()
    }

    fn job_departed(&mut self, job_id: u64) {
        self.adapters.remove(&job_id);
        self.prev_traj.remove(&job_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perq_sim::{
        compare_fairness, Cluster, ClusterConfig, FairPolicy, SystemModel, TraceGenerator,
    };

    fn run_tardis(
        policy: &mut dyn PowerPolicy,
        f: f64,
        hours: f64,
        seed: u64,
    ) -> perq_sim::SimResult {
        let system = SystemModel::tardis();
        let jobs = TraceGenerator::new(system.clone(), seed).generate(500);
        let mut config = ClusterConfig::for_system(&system, f, hours * 3600.0);
        config.ips_noise_rel = 0.01;
        let mut cluster = Cluster::new(config, jobs, seed);
        cluster.run(policy)
    }

    #[test]
    fn perq_beats_fop_throughput_when_overprovisioned() {
        let seed = 42;
        let fop = run_tardis(&mut FairPolicy::new(), 2.0, 3.0, seed);
        let mut perq = PerqPolicy::new(PerqConfig::default());
        let perq_res = run_tardis(&mut perq, 2.0, 3.0, seed);
        assert!(
            perq_res.throughput() >= fop.throughput(),
            "PERQ {} < FOP {}",
            perq_res.throughput(),
            fop.throughput()
        );
    }

    #[test]
    fn perq_respects_budget() {
        // The budget bounds consumed power. PERQ's usage accounting uses
        // peak-tracking demand estimates plus a reserve, so sustained
        // violations are impossible; on a tiny cluster a single job's
        // first-visit phase peak can still produce an isolated transient
        // (no averaging across jobs), which must stay rare and shallow.
        let mut perq = PerqPolicy::new(PerqConfig::default());
        let res = run_tardis(&mut perq, 1.6, 2.0, 7);
        let intervals = res.intervals.len() as f64;
        assert!(
            (res.budget_violations as f64) <= 0.01 * intervals,
            "violations {} / {} intervals",
            res.budget_violations,
            intervals
        );
        // And any transient is small: consumed power never exceeds the
        // budget by more than the largest single job's phase swing.
        let budget = 8.0 * 290.0;
        for log in &res.intervals {
            assert!(
                log.total_power_w <= budget * 1.05,
                "overshoot {} W at t={}",
                log.total_power_w,
                log.t_s
            );
        }
    }

    #[test]
    fn perq_remains_fair_relative_to_fop() {
        let seed = 11;
        let fop = run_tardis(&mut FairPolicy::new(), 2.0, 3.0, seed);
        let mut perq = PerqPolicy::new(PerqConfig::default());
        let perq_res = run_tardis(&mut perq, 2.0, 3.0, seed);
        let report = compare_fairness(&perq_res, &fop);
        assert!(
            report.mean_degradation_pct < 15.0,
            "mean degradation {}%",
            report.mean_degradation_pct
        );
    }

    #[test]
    fn warm_started_policy_replays_bit_for_bit() {
        // The warm-start feedback loop (prev_traj → decide_warm) must not
        // introduce any nondeterminism: same seed, same simulation.
        let run = || {
            let mut p = PerqPolicy::new(PerqConfig::default());
            run_tardis(&mut p, 1.6, 1.0, 9)
        };
        assert!(run().same_simulation(&run()));
    }

    #[test]
    fn adapters_follow_job_population() {
        let mut perq = PerqPolicy::new(PerqConfig::default());
        let _ = run_tardis(&mut perq, 1.5, 1.0, 3);
        // After the run every adapter belongs to a job that was still
        // running at the window close (departures pruned).
        assert!(perq.tracked_jobs() <= 16);
    }

    #[test]
    fn usage_accounting_overcommits_caps_but_not_consumption() {
        // Two jobs on a 16-node machine with an 8-node budget: one draws
        // far below any cap (slack after seasoning), one draws at its
        // cap. After the adapters season, the sum of CAPS may exceed the
        // busy budget (that is the reclaimed headroom), while the sum of
        // charged power stays within it.
        use perq_sim::JobView;
        let mut perq = PerqPolicy::new(PerqConfig::default());
        let cap_max = 290.0;
        let mut caps = [145.0_f64, 145.0];
        for step in 0..12 {
            let jobs = vec![
                JobView {
                    id: 0,
                    size: 8,
                    elapsed_s: step as f64 * 10.0,
                    measured_ips: Some(8.0 * 1.9e9),
                    current_cap_w: caps[0],
                    measured_power_w: Some(80.0), // low draw: slack
                    remaining_node_hours: 5.0,
                    is_new: step == 0,
                },
                JobView {
                    id: 1,
                    size: 8,
                    elapsed_s: step as f64 * 10.0,
                    measured_ips: Some(8.0 * 1.2e9),
                    current_cap_w: caps[1],
                    measured_power_w: Some(caps[1]), // pinned at cap
                    remaining_node_hours: 5.0,
                    is_new: step == 0,
                },
            ];
            let ctx = perq_sim::PolicyContext {
                time_s: step as f64 * 10.0,
                interval_s: 10.0,
                busy_budget_w: 8.0 * cap_max, // 8-node budget, 16 busy nodes
                cap_min_w: 90.0,
                cap_max_w: cap_max,
                total_nodes: 16,
                wp_nodes: 8,
                queue_depth: 0,
                violation_s: 0.0,
                jobs: &jobs,
            };
            let out = perq.assign(&ctx);
            caps = [out[0].cap_w, out[1].cap_w];
        }
        // The slack job's demand (80 W + margins) is charged, not its cap,
        // so the pinned job can hold far more than half the budget.
        let total_caps = 8.0 * caps[0] + 8.0 * caps[1];
        let charged = 8.0 * (80.0 + 0.02 * cap_max) + 8.0 * caps[1];
        assert!(
            charged <= 8.0 * cap_max * 1.01,
            "charged {charged} exceeds budget"
        );
        // Remaining budget for the pinned job after charging the slack
        // job's demand: (0.98·2320 − 8·(80+5.8)) / 8 ≈ 198 W per node.
        assert!(
            caps[1] > 180.0,
            "pinned job should receive most of the remaining budget, got {}",
            caps[1]
        );
        assert!(
            total_caps > 8.0 * cap_max,
            "caps should over-commit the budget (reclaimed headroom), got {total_caps}"
        );
    }

    #[test]
    fn implausible_power_readings_do_not_move_the_demand_estimate() {
        // Degradation guard: a corrupted sensor (e.g. a telemetry fault
        // injected by the simulator) can report power far above TDP or
        // below the idle floor. Such readings must be discarded before
        // they reach the peak-tracking demand estimator, so the estimate
        // is bit-identical to a run where the reading never arrived.
        use perq_sim::JobView;
        let cap_max = 290.0;
        let step_once = |perq: &mut PerqPolicy, step: usize, cap: f64, power: Option<f64>| {
            let jobs = vec![JobView {
                id: 0,
                size: 4,
                elapsed_s: step as f64 * 10.0,
                measured_ips: Some(4.0 * 1.5e9),
                current_cap_w: cap,
                measured_power_w: power,
                remaining_node_hours: 5.0,
                is_new: step == 0,
            }];
            let ctx = perq_sim::PolicyContext {
                time_s: step as f64 * 10.0,
                interval_s: 10.0,
                busy_budget_w: 4.0 * cap_max,
                cap_min_w: 90.0,
                cap_max_w: cap_max,
                total_nodes: 4,
                wp_nodes: 4,
                queue_depth: 0,
                violation_s: 0.0,
                jobs: &jobs,
            };
            perq.assign(&ctx)[0].cap_w
        };

        let mut perq = PerqPolicy::new(PerqConfig::default());
        let mut cap = 145.0;
        for step in 0..8 {
            cap = step_once(&mut perq, step, cap, Some(150.0));
        }
        let seasoned = perq.adapter(0).expect("tracked").demand_frac();
        assert!(seasoned.is_some(), "sane readings must season the tracker");

        // Garbage: 10x TDP, then a reading below half the idle floor.
        cap = step_once(&mut perq, 8, cap, Some(10.0 * cap_max));
        cap = step_once(&mut perq, 9, cap, Some(0.2 * IDLE_WATTS));
        assert_eq!(
            perq.adapter(0).expect("tracked").demand_frac(),
            seasoned,
            "implausible readings must leave the demand estimate untouched"
        );

        // A plausible high reading still gets through the gate.
        let _ = step_once(&mut perq, 10, cap, Some(280.0));
        let after = perq.adapter(0).expect("tracked").demand_frac();
        assert!(
            after > seasoned,
            "plausible readings must still update the estimate: {after:?} vs {seasoned:?}"
        );
    }

    #[test]
    fn at_f1_perq_is_equivalent_to_tdp_operation() {
        // With no over-provisioning the fair cap is TDP and the budget
        // allows TDP everywhere: PERQ should keep caps near TDP and not
        // slow jobs down.
        let mut perq = PerqPolicy::new(PerqConfig::default());
        let res = run_tardis(&mut perq, 1.0, 2.0, 5);
        for rec in res.completed() {
            assert!(
                rec.slowdown() < 1.25,
                "job {} slowed {}x at f=1",
                rec.spec.id,
                rec.slowdown()
            );
        }
    }
}
