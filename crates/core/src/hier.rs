//! The coupling-QP budget coordinator (DESIGN.md §11).
//!
//! The top level of the hierarchical allocation solves, every
//! coordination epoch, a QP over one variable per enclave:
//!
//! ```text
//!   minimize   Σ_e (1/2)(x_e − t_e)²  +  (w_sys/2)(Σ_e x_e − d)²
//!   subject to floor_e ≤ x_e ≤ ceil_e,   Σ_e x_e ≤ B
//! ```
//!
//! where `t_e` is enclave `e`'s weighted fair-share target and `d =
//! min(B, Σ ceil)` is the usable demand. The per-enclave tracking
//! terms pull each grant to its fairness target; the rank-1 system
//! term pulls the *total* to the usable demand, which is what moves
//! budget from idle enclaves to busy ones. The Hessian is
//! `I + w_sys·𝟙𝟙ᵀ` — exactly the block-diagonal-plus-low-rank shape
//! [`StructuredQp`] factors, with block size 1 — so the coordinator
//! reuses the MPC's matrix-free solver stack (projected gradient,
//! workspace reuse, `λ_max` cache, warm starts from the previous
//! epoch's grants); `BENCH_hier.json` has the measured per-round solve
//! cost vs enclave count.
//!
//! Tenant weights enter **only** through the targets `t_e` and the
//! slack-recycling shares — never as tracking stiffness. This is
//! deliberate: if the weight also scaled the quadratic penalty (the
//! superficially natural `Σ (w_e/2)(x_e − t_e)²`), a heavier weight
//! would pin its enclave *harder* to a clamped target, and whenever
//! the water-fill level sits above that target, raising a tenant's
//! weight could *lower* its grant — breaking the fairness
//! monotonicity contract tested in `tests/tenant_weights.rs`. With
//! uniform stiffness the interior optimum is a common shift
//! `x_e = t_e + δ`, and raising one tenant's weight moves its targets
//! weakly up and everyone else's weakly down, which the shared δ can
//! never invert.
//!
//! At the unconstrained optimum the slack obeys
//! `|Σx − d| = |Σt − d| / (1 + n·w_sys)`, so the tracking terms can
//! hold back a sliver of the budget whenever the clamped targets
//! under-sell the demand (e.g. one enclave pinned at a tiny ceiling).
//! A final deterministic *slack-recycling* water-fill therefore pours
//! any residual `d − Σx` into enclaves with ceiling headroom, in share
//! proportion — so under demand pressure (`Σ ceil ≥ B`) the budget is
//! fully placed, and the QP governs only how the base split reflects
//! the tenant weights.
//!
//! Failure containment: if the QP is ever rejected or the solver
//! errors, the coordinator falls back to the closed-form
//! [`ProportionalAuthority`] water-fill for that epoch — the grants
//! stay feasible, only the coupling refinement is lost.

use perq_qp::{
    solve_profiled, Budget, Coupling, ProfiledQpState, ProjGradSettings, ProjGradSolver,
    SolverProfile, StructuredQp,
};
use perq_sim::{BudgetAuthority, EnclaveDemand, GrantContext, ProportionalAuthority};

/// Default ratio of the system-tracking weight `w_sys` to the (unit)
/// per-enclave tracking stiffness. Higher values trade fairness-target
/// tracking for fuller budget utilization; 8 keeps the worst-case
/// slack under 2% of the target gap at 4+ enclaves.
pub const DEFAULT_SYSTEM_WEIGHT_RATIO: f64 = 8.0;

/// [`BudgetAuthority`] that divides the global budget by solving the
/// coupling QP above. Deterministic (fixed iteration schedule, no
/// randomness), warm-started across epochs, and conserving: grants are
/// clamped to `[floor, ceil]` and scaled so they never exceed the
/// budget.
pub struct CouplingAuthority {
    solver: ProjGradSolver,
    profile: SolverProfile,
    state: ProfiledQpState,
    /// Previous epoch's grants, warm-starting the next solve (cleared
    /// whenever the enclave count changes).
    last_grants: Vec<f64>,
    /// `w_sys` relative to the unit per-enclave tracking stiffness.
    system_weight_ratio: f64,
    fallback: ProportionalAuthority,
}

impl CouplingAuthority {
    /// An authority with the default solver settings and system-weight
    /// ratio.
    pub fn new() -> Self {
        CouplingAuthority {
            solver: ProjGradSolver::new(ProjGradSettings::default()),
            profile: SolverProfile::default(),
            state: ProfiledQpState::default(),
            last_grants: Vec::new(),
            system_weight_ratio: DEFAULT_SYSTEM_WEIGHT_RATIO,
            fallback: ProportionalAuthority,
        }
    }

    /// Overrides the system-tracking weight `w_sys` (builder style).
    /// Must be positive.
    pub fn with_system_weight_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio.is_finite() && ratio > 0.0, "ratio must be positive");
        self.system_weight_ratio = ratio;
        self
    }

    /// Selects the coupling solve's precision/layout profile (builder
    /// style). The coordinator QP is tiny (one variable per enclave), so
    /// this matters for symmetry with the leaf controllers more than for
    /// speed; the default `f64_aos` keeps grants bit-identical to the
    /// pre-profile authority.
    pub fn with_profile(mut self, profile: SolverProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The active solver precision/layout profile.
    pub fn solver_profile(&self) -> SolverProfile {
        self.profile
    }

    /// Solves the coupling QP; `None` when the problem could not be
    /// built or the solver failed (caller falls back).
    fn solve(&mut self, ctx: &GrantContext, demands: &[EnclaveDemand]) -> Option<Vec<f64>> {
        let n = demands.len();
        let budget = ctx.budget_w;
        let lo: Vec<f64> = demands.iter().map(|d| d.floor_w).collect();
        let hi: Vec<f64> = demands.iter().map(|d| d.ceil_w.max(d.floor_w)).collect();
        let weights: Vec<f64> = demands.iter().map(|d| d.weight.max(1e-9)).collect();
        let shares: Vec<f64> = demands
            .iter()
            .zip(&weights)
            .map(|(d, &w)| w * d.wp_nodes.max(1) as f64)
            .collect();
        let total_share: f64 = shares.iter().sum();
        if total_share <= 0.0 {
            return None;
        }
        let usable: f64 = budget.min(hi.iter().sum());
        let w_sys = self.system_weight_ratio;
        let targets: Vec<f64> = shares
            .iter()
            .zip(lo.iter().zip(&hi))
            .map(|(&s, (&l, &h))| (budget * s / total_share).clamp(l, h))
            .collect();
        // Uniform tracking stiffness: weights shape the targets and the
        // recycling shares only (see the module doc for why stiffness
        // must not depend on the tenant weight).
        let c: Vec<f64> = targets.iter().map(|&t| -(t + w_sys * usable)).collect();
        let qp = StructuredQp::new(
            1,
            vec![1.0; n],
            vec![Coupling {
                weight: w_sys,
                s: vec![1.0; n],
            }],
            c,
            lo.clone(),
            hi.clone(),
            vec![Budget {
                coeffs: vec![1.0; n],
                limit: budget,
            }],
        )
        .ok()?;
        if self.last_grants.len() != n {
            self.last_grants.clear();
        }
        let x0 = if self.last_grants.is_empty() {
            None
        } else {
            Some(self.last_grants.as_slice())
        };
        let solution = solve_profiled(&self.solver, &qp, x0, self.profile, &mut self.state)
            .ok()?
            .solution;
        // Re-clamp against numerical drift so the HierSim conservation
        // assertion holds exactly: inside the box, then scaled onto the
        // budget if the projection left a hair of overshoot.
        let mut grants: Vec<f64> = solution
            .x
            .iter()
            .zip(lo.iter().zip(&hi))
            .map(|(&x, (&l, &h))| x.clamp(l, h))
            .collect();
        let total: f64 = grants.iter().sum();
        if total > budget && total > 0.0 {
            let scale = budget / total;
            for g in &mut grants {
                *g *= scale;
            }
        } else {
            recycle_slack(&mut grants, usable, &hi, &shares);
        }
        self.last_grants = grants.clone();
        Some(grants)
    }
}

/// Pours the residual `usable − Σgrants` into enclaves with ceiling
/// headroom, in share proportion (the same water-filling loop as the
/// proportional authority): each round either saturates an enclave or
/// distributes everything, so it terminates in at most `n` rounds and
/// is a pure function of its inputs.
fn recycle_slack(grants: &mut [f64], usable: f64, hi: &[f64], shares: &[f64]) {
    let mut remaining = usable - grants.iter().sum::<f64>();
    let mut active: Vec<usize> = (0..grants.len())
        .filter(|&e| grants[e] < hi[e] - 1e-12)
        .collect();
    while remaining > 1e-9 && !active.is_empty() {
        let total_share: f64 = active.iter().map(|&e| shares[e]).sum();
        if total_share <= 0.0 {
            break;
        }
        let mut spent = 0.0;
        let mut still_active = Vec::with_capacity(active.len());
        for &e in &active {
            let pour = remaining * shares[e] / total_share;
            let add = pour.min((hi[e] - grants[e]).max(0.0));
            grants[e] += add;
            spent += add;
            if grants[e] < hi[e] - 1e-12 {
                still_active.push(e);
            }
        }
        active = still_active;
        if spent <= 1e-12 {
            break;
        }
        remaining -= spent;
    }
}

impl Default for CouplingAuthority {
    fn default() -> Self {
        Self::new()
    }
}

impl BudgetAuthority for CouplingAuthority {
    fn name(&self) -> &'static str {
        "coupling-qp"
    }

    fn grant(&mut self, ctx: &GrantContext, demands: &[EnclaveDemand]) -> Vec<f64> {
        let n = demands.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![ctx.budget_w];
        }
        // Infeasible epoch (Σ floor exceeds the budget): the QP's box
        // and budget constraints contradict; hand straight to the
        // water-fill, whose proportional floor scaling is the defined
        // behaviour for this corner.
        let total_floor: f64 = demands.iter().map(|d| d.floor_w).sum();
        if total_floor > ctx.budget_w {
            return self.fallback.grant(ctx, demands);
        }
        match self.solve(ctx, demands) {
            Some(grants) => grants,
            None => self.fallback.grant(ctx, demands),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(enclave: usize, weight: f64, wp: usize, floor: f64, ceil: f64) -> EnclaveDemand {
        EnclaveDemand {
            enclave,
            tenant: enclave,
            weight,
            wp_nodes: wp,
            live_nodes: wp,
            busy_nodes: wp / 2,
            pending_jobs: 2,
            floor_w: floor,
            ceil_w: ceil,
        }
    }

    fn ctx(budget: f64) -> GrantContext {
        GrantContext {
            time_s: 0.0,
            budget_w: budget,
            tdp_w: 290.0,
            cap_min_w: 90.0,
            idle_w: 35.0,
        }
    }

    #[test]
    fn saturated_demand_uses_whole_budget() {
        let mut auth = CouplingAuthority::new();
        let demands: Vec<EnclaveDemand> =
            (0..4).map(|e| demand(e, 1.0, 16, 800.0, 4_640.0)).collect();
        let grants = auth.grant(&ctx(9_000.0), &demands);
        let total: f64 = grants.iter().sum();
        assert!(total <= 9_000.0 + 1e-6);
        assert!(
            total >= 9_000.0 * 0.98,
            "coordinator left {} W unplaced under saturation",
            9_000.0 - total
        );
        for (g, d) in grants.iter().zip(&demands) {
            assert!(*g >= d.floor_w - 1e-6 && *g <= d.ceil_w + 1e-6);
        }
    }

    #[test]
    fn higher_weight_wins_budget() {
        let mut auth = CouplingAuthority::new();
        let demands = vec![
            demand(0, 1.0, 16, 800.0, 4_640.0),
            demand(1, 3.0, 16, 800.0, 4_640.0),
        ];
        let grants = auth.grant(&ctx(6_000.0), &demands);
        assert!(
            grants[1] > grants[0] + 100.0,
            "weight 3 vs 1 should separate clearly: {grants:?}"
        );
    }

    #[test]
    fn idle_enclave_releases_budget_to_busy_one() {
        let mut auth = CouplingAuthority::new();
        // Enclave 0 is idle: its ceiling is its idle draw. Everything
        // beyond it must flow to enclave 1.
        let demands = vec![
            demand(0, 1.0, 16, 560.0, 560.0),
            demand(1, 1.0, 16, 800.0, 9_000.0),
        ];
        let grants = auth.grant(&ctx(9_280.0), &demands);
        assert!((grants[0] - 560.0).abs() < 1e-6);
        assert!(grants[1] >= 9_280.0 - 560.0 - 50.0);
    }

    #[test]
    fn matches_water_fill_on_single_and_empty_inputs() {
        let mut auth = CouplingAuthority::new();
        assert!(auth.grant(&ctx(1_000.0), &[]).is_empty());
        let one = auth.grant(&ctx(1_000.0), &[demand(0, 1.0, 8, 280.0, 1_000.0)]);
        assert_eq!(one, vec![1_000.0]);
    }

    #[test]
    fn infeasible_floors_fall_back_to_scaled_water_fill() {
        let mut auth = CouplingAuthority::new();
        let demands = vec![
            demand(0, 1.0, 16, 800.0, 4_000.0),
            demand(1, 1.0, 16, 700.0, 4_000.0),
        ];
        let grants = auth.grant(&ctx(1_000.0), &demands);
        let total: f64 = grants.iter().sum();
        assert!(total <= 1_000.0 + 1e-6);
        // Proportional floor scaling: 1000 · 800/1500, 1000 · 700/1500.
        assert!((grants[0] - 1_000.0 * 800.0 / 1_500.0).abs() < 1e-6);
        assert!((grants[1] - 1_000.0 * 700.0 / 1_500.0).abs() < 1e-6);
    }

    #[test]
    fn repeated_epochs_are_deterministic_with_warm_start() {
        let run = || {
            let mut auth = CouplingAuthority::new();
            let mut all = Vec::new();
            for epoch in 0..5 {
                let busy = 4 + epoch;
                let demands = vec![
                    demand(0, 1.0, 16, 560.0 + 90.0 * busy as f64, 4_640.0),
                    demand(1, 2.0, 16, 560.0, 4_640.0),
                    demand(2, 1.0, 8, 280.0, 2_320.0),
                ];
                all.push(auth.grant(&ctx(8_000.0), &demands));
            }
            all
        };
        assert_eq!(run(), run(), "warm-started solves must replay exactly");
    }
}
