use crate::model::{JobAdapter, NodeModel};
use perq_sim::PolicyContext;
use std::collections::HashMap;

/// The targets the MPC controller tracks during one decision interval
/// (§2.4.1), all in normalized units (per-node IPS as a fraction of the
/// base node rate).
#[derive(Debug, Clone)]
pub struct Targets {
    /// Per-job normalized per-node IPS targets, aligned with the context's
    /// job list: the performance the job would see under the fair power
    /// allocation `P_fair = TDP · N_WP / N_OP`.
    pub job_targets: Vec<f64>,
    /// System throughput target: `T_ratio ·` (predicted aggregate IPS of
    /// the FCFS prefix of jobs a worst-case-provisioned system could run
    /// at TDP), normalized by `N_WP`.
    pub system_target: f64,
    /// Fair per-node cap fraction used for the job targets.
    pub fair_cap_frac: f64,
}

/// PERQ target generator (Fig. 4, §2.4.1).
///
/// From the jobs' perspective the target is the performance under equal
/// power sharing (fairness); from the system's perspective the target is
/// `T_OP = T_ratio · T_WP`, where `T_WP` is the *predicted* throughput of
/// an equivalent worst-case-provisioned system — predicted with the node
/// model, because actually running that system "is infeasible".
#[derive(Debug, Clone)]
pub struct TargetGenerator {
    /// The system-throughput improvement ratio `T_ratio` (paper: values
    /// ≥ 4 all behave the same; the target is intentionally optimistic so
    /// the controller keeps pushing throughput).
    pub improvement_ratio: f64,
}

impl TargetGenerator {
    /// Creates a generator with the given improvement ratio.
    pub fn new(improvement_ratio: f64) -> Self {
        assert!(improvement_ratio > 0.0, "ratio must be positive");
        TargetGenerator { improvement_ratio }
    }

    /// Computes this interval's targets.
    ///
    /// `adapters` must contain an entry per running job (keyed by job id).
    pub fn generate(
        &self,
        model: &NodeModel,
        ctx: &PolicyContext<'_>,
        adapters: &HashMap<u64, JobAdapter>,
    ) -> Targets {
        let fair_cap_frac = ctx.fair_cap_w() / ctx.cap_max_w;

        // Job-level fairness targets: predicted performance at P_fair.
        let job_targets: Vec<f64> = ctx
            .jobs
            .iter()
            .map(|j| {
                adapters
                    .get(&j.id)
                    .map(|a| a.predict_steady_state(model, fair_cap_frac))
                    .unwrap_or_else(|| model.steady_state(fair_cap_frac))
            })
            .collect();

        // T_WP: FCFS prefix of the running jobs that fits on N_WP nodes,
        // each predicted at TDP (cap fraction 1.0).
        let mut order: Vec<usize> = (0..ctx.jobs.len()).collect();
        order.sort_by_key(|&i| ctx.jobs[i].id); // FCFS = arrival = id order
        let mut wp_nodes_left = ctx.wp_nodes as i64;
        let mut t_wp = 0.0;
        for &i in &order {
            let job = &ctx.jobs[i];
            if wp_nodes_left <= 0 {
                break;
            }
            if (job.size as i64) <= wp_nodes_left {
                let per_node = adapters
                    .get(&job.id)
                    .map(|a| a.predict_steady_state(model, 1.0))
                    .unwrap_or_else(|| model.steady_state(1.0));
                t_wp += per_node * job.size as f64;
                wp_nodes_left -= job.size as i64;
            }
        }
        let system_target = self.improvement_ratio * t_wp / ctx.wp_nodes as f64;

        Targets {
            job_targets,
            system_target,
            fair_cap_frac,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::train_node_model;
    use perq_sim::JobView;

    fn job(id: u64, size: usize) -> JobView {
        JobView {
            id,
            size,
            elapsed_s: 100.0,
            measured_ips: Some(1e9),
            current_cap_w: 145.0,
            measured_power_w: Some(140.0),
            remaining_node_hours: 1.0,
            is_new: false,
        }
    }

    fn ctx<'a>(jobs: &'a [JobView], total: usize, wp: usize) -> PolicyContext<'a> {
        PolicyContext {
            time_s: 0.0,
            interval_s: 10.0,
            busy_budget_w: wp as f64 * 290.0,
            cap_min_w: 90.0,
            cap_max_w: 290.0,
            total_nodes: total,
            wp_nodes: wp,
            queue_depth: 0,
            violation_s: 0.0,
            jobs,
        }
    }

    #[test]
    fn fair_cap_reflects_overprovisioning() {
        let model = train_node_model(1).0;
        let jobs = vec![job(0, 8)];
        let c = ctx(&jobs, 32, 16);
        let t = TargetGenerator::new(4.0).generate(&model, &c, &HashMap::new());
        assert!((t.fair_cap_frac - 0.5).abs() < 1e-9);
        // At f=1 the fair cap is TDP.
        let c1 = ctx(&jobs, 16, 16);
        let t1 = TargetGenerator::new(4.0).generate(&model, &c1, &HashMap::new());
        assert!((t1.fair_cap_frac - 1.0).abs() < 1e-9);
    }

    #[test]
    fn job_targets_fall_with_overprovisioning() {
        // Tighter fair power ⇒ lower fairness target.
        let model = train_node_model(1).0;
        let jobs = vec![job(0, 8)];
        let t_f1 = TargetGenerator::new(4.0).generate(&model, &ctx(&jobs, 16, 16), &HashMap::new());
        let t_f2 = TargetGenerator::new(4.0).generate(&model, &ctx(&jobs, 32, 16), &HashMap::new());
        assert!(t_f2.job_targets[0] < t_f1.job_targets[0]);
    }

    #[test]
    fn system_target_counts_only_wp_prefix() {
        let model = train_node_model(1).0;
        // Two 12-node jobs on a 16-node WP system: only the first fits.
        let jobs = vec![job(0, 12), job(1, 12)];
        let c = ctx(&jobs, 32, 16);
        let t = TargetGenerator::new(1.0).generate(&model, &c, &HashMap::new());
        let per_node = model.steady_state(1.0);
        let expect = per_node * 12.0 / 16.0;
        assert!((t.system_target - expect).abs() < 1e-9);
    }

    #[test]
    fn ratio_scales_system_target() {
        let model = train_node_model(1).0;
        let jobs = vec![job(0, 8)];
        let c = ctx(&jobs, 32, 16);
        let t1 = TargetGenerator::new(1.0).generate(&model, &c, &HashMap::new());
        let t4 = TargetGenerator::new(4.0).generate(&model, &c, &HashMap::new());
        assert!((t4.system_target - 4.0 * t1.system_target).abs() < 1e-9);
    }

    #[test]
    fn adapters_refine_targets() {
        let model = train_node_model(1).0;
        let jobs = vec![job(0, 8)];
        let c = ctx(&jobs, 32, 16);
        // An adapter that learned a flat (insensitive) job: its fairness
        // target stays near its actual (high) performance level.
        let mut adapters = HashMap::new();
        let mut a = JobAdapter::new(&model, 0.5);
        for k in 0..100 {
            let cap = if k % 2 == 0 { 0.45 } else { 0.75 };
            a.update(&model, cap, 0.95);
        }
        adapters.insert(0, a);
        let t = TargetGenerator::new(4.0).generate(&model, &c, &adapters);
        assert!(
            t.job_targets[0] > 0.85,
            "flat job's fair target {}",
            t.job_targets[0]
        );
    }
}
