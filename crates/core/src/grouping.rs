//! Grouped (hierarchical) MPC decisions for very large job counts.
//!
//! §3 of the paper notes that "increasing the number of concurrently
//! running jobs in the order of 10,000 can prohibitively increase the MPC
//! controller decision making time" and lists the remedies: hierarchical
//! decision making and "creating groups of jobs with similar
//! characteristics". This module implements that extension: jobs are
//! partitioned into at most `max_groups` clusters of similar control
//! state (charged/slack, sensitivity, target deficit), one aggregate
//! pseudo-job is built per cluster (node counts summed, everything else
//! size-weighted), the ordinary QP is solved over the pseudo-jobs, and
//! every member inherits its group's cap.
//!
//! The QP cost is quadratic in `N_J · M` variables, so collapsing 10,000
//! jobs onto ~64 groups turns an intractable dense solve into a
//! sub-millisecond one while preserving the allocation structure — jobs
//! in a group were going to receive nearly identical caps anyway, because
//! the optimizer equalizes marginal value across jobs and the grouping
//! key *is* the marginal-value structure.

use crate::mpc::{MpcController, MpcDecision, MpcInput, MpcJobState};

/// Partitions job indices into at most `max_groups` clusters of similar
/// control state.
///
/// The key is hierarchical: charged and slack jobs never share a group
/// (they face different budget charging); within each class, jobs are
/// ordered by sensitivity (`gain · curve_slope`) and then by target
/// deficit, and split into contiguous runs.
pub fn group_jobs(jobs: &[MpcJobState], max_groups: usize) -> Vec<Vec<usize>> {
    assert!(max_groups >= 2, "need at least one group per charge class");
    let mut charged: Vec<usize> = Vec::new();
    let mut slack: Vec<usize> = Vec::new();
    for (i, j) in jobs.iter().enumerate() {
        if j.charged {
            charged.push(i);
        } else {
            slack.push(i);
        }
    }
    // Split the group budget proportionally to class population, at least
    // one group for any non-empty class.
    let total = jobs.len().max(1);
    let charged_groups = if charged.is_empty() {
        0
    } else {
        ((max_groups * charged.len()) / total).clamp(1, max_groups - usize::from(!slack.is_empty()))
    };
    let slack_groups = if slack.is_empty() {
        0
    } else {
        (max_groups - charged_groups).max(1)
    };

    let mut groups = Vec::new();
    for (indices, n_groups) in [(charged, charged_groups), (slack, slack_groups)] {
        if indices.is_empty() {
            continue;
        }
        let mut sorted = indices;
        sorted.sort_by(|&a, &b| {
            let key = |i: usize| {
                let j = &jobs[i];
                (
                    j.gain * j.curve_slope,
                    j.target - j.free_response.first().copied().unwrap_or(0.0),
                )
            };
            key(a).partial_cmp(&key(b)).expect("finite control state")
        });
        let n_groups = n_groups.min(sorted.len()).max(1);
        let chunk = sorted.len().div_ceil(n_groups);
        for block in sorted.chunks(chunk) {
            groups.push(block.to_vec());
        }
    }
    groups
}

/// Builds the size-weighted aggregate pseudo-job for a group.
fn aggregate(jobs: &[MpcJobState], members: &[usize]) -> MpcJobState {
    let total_size: usize = members.iter().map(|&i| jobs[i].size).sum();
    let w = |i: usize| jobs[i].size as f64 / total_size.max(1) as f64;
    let horizon = jobs[members[0]].free_response.len();
    let mut free = vec![0.0; horizon];
    let mut target = 0.0;
    let mut cap = 0.0;
    let mut gain = 0.0;
    let mut curve_value = 0.0;
    let mut curve_slope = 0.0;
    let mut bias = 0.0;
    for &i in members {
        let wi = w(i);
        target += wi * jobs[i].target;
        cap += wi * jobs[i].current_cap_frac;
        gain += wi * jobs[i].gain;
        curve_value += wi * jobs[i].curve_value;
        curve_slope += wi * jobs[i].curve_slope;
        bias += wi * jobs[i].bias;
        for (f, &v) in free.iter_mut().zip(jobs[i].free_response.iter()) {
            *f += wi * v;
        }
    }
    MpcJobState {
        size: total_size,
        target,
        current_cap_frac: cap,
        gain,
        free_response: free,
        curve_value,
        curve_slope,
        bias,
        charged: jobs[members[0]].charged,
    }
}

impl MpcController {
    /// Like [`MpcController::decide`], but collapses the jobs onto at most
    /// `max_groups` aggregate pseudo-jobs before solving, then expands the
    /// group caps back to every member.
    ///
    /// With `jobs.len() <= max_groups` this is exactly `decide`. Use for
    /// very large concurrent-job counts (the paper's 10,000-job scaling
    /// concern); see `grouping` module docs for the clustering key.
    pub fn decide_grouped(&self, input: &MpcInput<'_>, max_groups: usize) -> Option<MpcDecision> {
        if input.jobs.len() <= max_groups.max(2) {
            return self.decide(input);
        }
        let groups = group_jobs(input.jobs, max_groups.max(2));
        let pseudo: Vec<MpcJobState> = groups
            .iter()
            .map(|members| aggregate(input.jobs, members))
            .collect();
        let grouped_input = MpcInput {
            jobs: &pseudo,
            system_target: input.system_target,
            budget_nodes: input.budget_nodes,
            cap_min_frac: input.cap_min_frac,
            wp_nodes: input.wp_nodes,
        };
        let group_decision = self.decide(&grouped_input)?;

        let m = self.settings().horizon;
        let mut caps = vec![0.0; input.jobs.len()];
        let mut predicted = vec![0.0; input.jobs.len()];
        let mut x = vec![0.0; input.jobs.len() * m];
        for (g, members) in groups.iter().enumerate() {
            for &i in members {
                caps[i] = group_decision.caps_frac[g];
                predicted[i] = group_decision.predicted_ips[g];
                // Expand the group trajectory to every member so the
                // result stays usable as a per-job warm start.
                x[i * m..(i + 1) * m].copy_from_slice(&group_decision.x[g * m..(g + 1) * m]);
            }
        }
        Some(MpcDecision {
            caps_frac: caps,
            predicted_ips: predicted,
            x,
            qp_iterations: group_decision.qp_iterations,
            converged: group_decision.converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::train_node_model;
    use crate::mpc::MpcSettings;
    use perq_sysid::KalmanObserver;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Instant;

    fn make_jobs(
        ctrl: &MpcController,
        model: &crate::NodeModel,
        n: usize,
        seed: u64,
    ) -> Vec<MpcJobState> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let cap = rng.gen_range(0.32..1.0);
                let gain = rng.gen_range(0.1..2.0);
                let mut obs = KalmanObserver::new(model.ss.clone(), 0.05, 1e-3);
                obs.seed_steady_state(model.curve.eval(cap), model.curve.eval(cap));
                MpcJobState {
                    size: rng.gen_range(1..64),
                    target: rng.gen_range(0.5..1.0),
                    current_cap_frac: cap,
                    gain,
                    free_response: ctrl.free_response(model, obs.state()),
                    curve_value: model.curve.eval(cap),
                    curve_slope: model.curve.secant_slope(cap, 0.10),
                    bias: 0.0,
                    charged: rng.gen_bool(0.7),
                }
            })
            .collect()
    }

    fn input<'a>(jobs: &'a [MpcJobState]) -> MpcInput<'a> {
        let budget: f64 = jobs
            .iter()
            .filter(|j| j.charged)
            .map(|j| j.size as f64)
            .sum::<f64>()
            * 0.55;
        MpcInput {
            jobs,
            system_target: 3.0,
            budget_nodes: budget,
            cap_min_frac: 90.0 / 290.0,
            wp_nodes: 1000.0,
        }
    }

    #[test]
    fn grouping_partitions_all_jobs_once() {
        let (model, _) = train_node_model(5);
        let ctrl = MpcController::new(&model, MpcSettings::default());
        let jobs = make_jobs(&ctrl, &model, 200, 1);
        let groups = group_jobs(&jobs, 16);
        assert!(groups.len() <= 16 + 1, "{} groups", groups.len());
        let mut seen = vec![false; jobs.len()];
        for g in &groups {
            for &i in g {
                assert!(!seen[i], "job {i} in two groups");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some job ungrouped");
        // Charge classes never mix.
        for g in &groups {
            let charged = jobs[g[0]].charged;
            assert!(g.iter().all(|&i| jobs[i].charged == charged));
        }
    }

    #[test]
    fn grouped_decision_respects_budget_and_window() {
        let (model, _) = train_node_model(5);
        let ctrl = MpcController::new(&model, MpcSettings::default());
        let jobs = make_jobs(&ctrl, &model, 300, 2);
        let inp = input(&jobs);
        let d = ctrl.decide_grouped(&inp, 24).expect("jobs present");
        assert_eq!(d.caps_frac.len(), jobs.len());
        let committed: f64 = d
            .caps_frac
            .iter()
            .zip(jobs.iter())
            .filter(|(_, j)| j.charged)
            .map(|(&c, j)| c * j.size as f64)
            .sum();
        assert!(
            committed <= inp.budget_nodes + 1e-6,
            "committed {committed} > {}",
            inp.budget_nodes
        );
        for &c in &d.caps_frac {
            assert!((90.0 / 290.0 - 1e-9..=1.0 + 1e-9).contains(&c));
        }
    }

    #[test]
    fn grouped_matches_exact_when_few_jobs() {
        // Regression pinning (was seed debt): the original assertion
        // demanded 1e-12 agreement between `decide` and
        // `decide_grouped` *on the same controller*. With `n <=
        // max_groups` the grouped path literally delegates to
        // `decide`, but the controller's cross-decision solver scratch
        // (the `LmaxCache` behind the `scratch` mutex) means the
        // second call does not replay the first bit-for-bit — it only
        // agrees to solver tolerance. The exact-delegation identity
        // holds on a *fresh* controller, which is what we pin exactly;
        // the same-controller comparison is held to solver tolerance.
        let (model, _) = train_node_model(5);
        let ctrl = MpcController::new(&model, MpcSettings::default());
        let jobs = make_jobs(&ctrl, &model, 10, 3);
        let inp = input(&jobs);

        // Same controller: agreement at solver tolerance.
        let exact = ctrl.decide(&inp).expect("jobs");
        let grouped = ctrl.decide_grouped(&inp, 32).expect("jobs");
        for (a, b) in exact.caps_frac.iter().zip(grouped.caps_frac.iter()) {
            assert!((a - b).abs() < 1e-6, "solver-tolerance drift: {a} vs {b}");
        }

        // Fresh controllers: the delegation is exact, to the bit.
        let exact_fresh = MpcController::new(&model, MpcSettings::default())
            .decide(&inp)
            .expect("jobs");
        let grouped_fresh = MpcController::new(&model, MpcSettings::default())
            .decide_grouped(&inp, 32)
            .expect("jobs");
        for (a, b) in exact_fresh
            .caps_frac
            .iter()
            .zip(grouped_fresh.caps_frac.iter())
        {
            assert!(
                a.to_bits() == b.to_bits(),
                "fresh-controller delegation must be exact: {a} vs {b}"
            );
        }
    }

    #[test]
    fn grouped_allocation_close_to_exact_in_aggregate() {
        // The grouped solve should put roughly the same total power into
        // high- vs low-sensitivity halves as the exact solve.
        let (model, _) = train_node_model(5);
        let ctrl = MpcController::new(&model, MpcSettings::default());
        let jobs = make_jobs(&ctrl, &model, 120, 4);
        let inp = input(&jobs);
        let exact = ctrl.decide(&inp).expect("jobs");
        let grouped = ctrl.decide_grouped(&inp, 24).expect("jobs");
        let split_power = |d: &MpcDecision| -> (f64, f64) {
            let mut hi = 0.0;
            let mut lo = 0.0;
            for (i, j) in jobs.iter().enumerate() {
                let p = d.caps_frac[i] * j.size as f64;
                if j.gain * j.curve_slope > 0.5 {
                    hi += p;
                } else {
                    lo += p;
                }
            }
            (hi, lo)
        };
        let (eh, el) = split_power(&exact);
        let (gh, gl) = split_power(&grouped);
        assert!(
            (eh - gh).abs() / (eh + el) < 0.10,
            "high-sensitivity power differs: exact {eh:.1} vs grouped {gh:.1}"
        );
        assert!((el - gl).abs() / (eh + el) < 0.10);
    }

    #[test]
    fn ten_thousand_jobs_decide_fast() {
        // The paper's scaling concern: 10,000 concurrent jobs. Grouped
        // decisions must stay well under the control interval.
        let (model, _) = train_node_model(5);
        let ctrl = MpcController::new(&model, MpcSettings::default());
        let jobs = make_jobs(&ctrl, &model, 10_000, 6);
        let inp = input(&jobs);
        let t0 = Instant::now();
        let d = ctrl.decide_grouped(&inp, 64).expect("jobs");
        let elapsed = t0.elapsed();
        assert_eq!(d.caps_frac.len(), 10_000);
        assert!(
            elapsed.as_secs_f64() < 2.0,
            "grouped decision took {elapsed:?}"
        );
    }
}
