//! Assembly of the MPC decision QP (Eq. 4) from per-job inputs.
//!
//! This module is deliberately free of dependencies beyond `perq-linalg`
//! and `perq-qp`: it contains the pure math that turns one decision
//! instance into a QP, in two equivalent representations:
//!
//! - [`assemble_dense_qp`] materialises the full `nv × nv` Hessian
//!   (`nv = jobs · horizon`) — O(jobs²) memory and assembly time. Kept as
//!   the test oracle and for diagnostics.
//! - [`assemble_structured_qp`] builds a [`StructuredQp`]: per-job `M × M`
//!   Hessian blocks plus `M` rank-one coupling vectors — O(jobs · M²)
//!   memory and assembly time, which is what makes large-cluster decision
//!   cost linear in the number of jobs.
//!
//! # Why the Hessian factors this way
//!
//! The dense assembly accumulates `Q = Σ w·rᵀr` over three row families:
//!
//! 1. **Job tracking rows** (one per job `i` and step `j`): the row only
//!    touches job `i`'s block, and equals `gsᵢ · tⱼ` where
//!    `tⱼ[l] = D` if `l = j`, `h_{j−l}` if `l < j` (the model's Markov
//!    template, identical for every job) and `gsᵢ = gainᵢ · slopeᵢ`.
//!    Summed over `j`, job `i`'s block gains `gsᵢ² · T` with the
//!    job-independent `T = Σⱼ w_t(j) · tⱼ tⱼᵀ`.
//! 2. **ΔP smoothing rows**: tridiagonal within each block, identical for
//!    every job (`D_ΔP`).
//! 3. **System throughput rows** (one per step `j`): the only coupling
//!    across jobs — a single rank-one term `w_s(j) · sⱼ sⱼᵀ` with
//!    `sⱼ[(i,l)] = scaleᵢ · gsᵢ · tⱼ[l]`.
//!
//! Hence `Q = blockdiag(B₁.. B_n) + Σⱼ w_s(j)·sⱼsⱼᵀ` with
//! `Bᵢ = gsᵢ²·T + D_ΔP`: per-job assembly is an `M × M` AXPY after the
//! two `M × M` templates are built once per decision.

use perq_linalg::Matrix;
use perq_qp::{BoxBudgetQp, Budget, Coupling, StructuredQp};

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Per-job inputs to one MPC decision, produced from the job's adapter.
#[derive(Debug, Clone)]
pub struct MpcJobState {
    /// Node count of the job.
    pub size: usize,
    /// Normalized per-node IPS target (fairness target from the target
    /// generator).
    pub target: f64,
    /// Cap fraction currently applied (`P0` of Eq. 4).
    pub current_cap_frac: f64,
    /// Adapted sensitivity gain `g` of this job.
    pub gain: f64,
    /// Free response `C Aʲ x̂` for `j = 1..=M` (what the job's output
    /// would do if the curve-transformed input were zero) — `G·X0` of
    /// Eq. 4.
    pub free_response: Vec<f64>,
    /// Static curve value `φ(P0)` at the current cap.
    pub curve_value: f64,
    /// Static curve slope `φ'(P0)` at the current cap (successive
    /// linearisation).
    pub curve_slope: f64,
    /// Constant output-disturbance estimate for this job (offset-free
    /// correction added to every predicted output).
    pub bias: f64,
    /// Whether this job's cap is charged against the power budget. Jobs
    /// observed to draw comfortably less than their cap are *slack*: the
    /// caller charges their estimated demand as a constant (already
    /// subtracted from [`MpcInput::budget_nodes`]) and their cap headroom
    /// is free — this is the usage-based budget accounting that lets PERQ
    /// over-commit caps (§2.4.1: the constraint is on "overall power
    /// usage", not on the sum of caps).
    pub charged: bool,
}

/// Cluster-level inputs to one MPC decision.
#[derive(Debug, Clone)]
pub struct MpcInput<'a> {
    /// Running jobs.
    pub jobs: &'a [MpcJobState],
    /// System throughput target (normalized by `N_WP`).
    pub system_target: f64,
    /// Remaining power budget for *charged* jobs in units of `TDP·nodes`:
    /// `Σ_{charged} sizeᵢ·pᵢ(j) ≤ budget_nodes` must hold at every
    /// horizon step (the slack jobs' estimated demands have already been
    /// subtracted by the caller).
    pub budget_nodes: f64,
    /// Lowest admissible cap fraction.
    pub cap_min_frac: f64,
    /// `N_WP`, used to normalize the system output row.
    pub wp_nodes: f64,
}

/// Everything the assembly needs from the controller: weights, horizon,
/// and the identified node model's impulse-response data.
#[derive(Debug, Clone)]
pub struct AssemblyParams<'a> {
    /// Prediction horizon `M`.
    pub horizon: usize,
    /// Weight on job-level tracking errors (`W_Tjob`).
    pub wt_job: f64,
    /// Weight on the system-throughput tracking error (`W_Tsys`).
    pub wt_sys: f64,
    /// Weight on power-cap changes between instances (`W_ΔP`).
    pub w_dp: f64,
    /// Multiplier applied to the tracking weights at the last horizon step.
    pub terminal_weight: f64,
    /// Delayed Markov parameters `h_1..h_M` of the node model.
    pub markov: &'a [f64],
    /// Direct feedthrough `D` (same-interval response).
    pub feedthrough: f64,
    /// Identified input offset `u₀` of the node model.
    pub input_offset: f64,
}

impl AssemblyParams<'_> {
    /// Tracking weight at horizon step `j` (0-based): the base weight with
    /// the terminal multiplier on the last step.
    #[inline]
    fn step_weight(&self, base: f64, j: usize) -> f64 {
        base * if j + 1 == self.horizon {
            self.terminal_weight
        } else {
            1.0
        }
    }

    /// Cumulative input response `h0cum[j] = D + Σ_{l=1..j} h_l`: the total
    /// response at output step `j` of a constant unit input held from
    /// step 0 (multiplies the constant part of the linearised input).
    fn h0cum(&self) -> Vec<f64> {
        let m = self.horizon;
        let mut h0cum = vec![0.0; m];
        h0cum[0] = self.feedthrough;
        for j in 1..m {
            h0cum[j] = h0cum[j - 1] + self.markov[j - 1];
        }
        h0cum
    }

    /// Row templates `tⱼ` (row-major `M × M`, lower triangular):
    /// `tⱼ[l] = D` if `l == j`, `h_{j−l}` if `l < j`, `0` above the
    /// diagonal. Row `j` is the coefficient pattern of every output
    /// prediction at step `j`, before per-job scaling.
    fn templates(&self) -> Vec<f64> {
        let m = self.horizon;
        let mut tmpl = vec![0.0; m * m];
        for j in 0..m {
            tmpl[j * m + j] = self.feedthrough;
            for l in 0..j {
                tmpl[j * m + l] = self.markov[j - l - 1];
            }
        }
        tmpl
    }

    /// Job-independent tracking Gram `T = Σⱼ w_t(j)·tⱼtⱼᵀ` (exactly
    /// symmetric by construction).
    fn tracking_gram(&self, tmpl: &[f64]) -> Vec<f64> {
        let m = self.horizon;
        let mut t = vec![0.0; m * m];
        for j in 0..m {
            let w = self.step_weight(self.wt_job, j);
            let row = &tmpl[j * m..(j + 1) * m];
            for r in 0..=j {
                let wr = w * row[r];
                if wr == 0.0 {
                    continue;
                }
                for c in 0..=j {
                    t[r * m + c] += wr * row[c];
                }
            }
        }
        t
    }

    /// Job-independent ΔP smoothing block (tridiagonal):
    /// `w_dp·(e₀e₀ᵀ + Σ_{j≥1}(eⱼ−e_{j−1})(eⱼ−e_{j−1})ᵀ)`.
    fn dp_block(&self) -> Vec<f64> {
        let m = self.horizon;
        let mut d = vec![0.0; m * m];
        d[0] += self.w_dp;
        for j in 1..m {
            d[j * m + j] += self.w_dp;
            d[(j - 1) * m + (j - 1)] += self.w_dp;
            d[j * m + (j - 1)] -= self.w_dp;
            d[(j - 1) * m + j] -= self.w_dp;
        }
        d
    }
}

/// Constraint set shared by both assemblies: box on every cap, one budget
/// per horizon step over charged jobs only. Also returns the warm start
/// (current caps held across the horizon).
fn constraints_and_warm(
    input: &MpcInput<'_>,
    m: usize,
) -> (Vec<f64>, Vec<f64>, Vec<Budget>, Vec<f64>) {
    let nj = input.jobs.len();
    let nv = nj * m;
    let lo = vec![input.cap_min_frac; nv];
    let hi = vec![1.0; nv];
    let min_commit: f64 = input
        .jobs
        .iter()
        .filter(|jb| jb.charged)
        .map(|jb| jb.size as f64 * input.cap_min_frac)
        .sum();
    let any_charged = input.jobs.iter().any(|jb| jb.charged);
    let budget_limit = input.budget_nodes.max(min_commit);
    let budgets: Vec<Budget> = if any_charged {
        (0..m)
            .map(|j| {
                let mut coeffs = vec![0.0; nv];
                for (i, job) in input.jobs.iter().enumerate() {
                    if job.charged {
                        coeffs[i * m + j] = job.size as f64;
                    }
                }
                Budget {
                    coeffs,
                    limit: budget_limit,
                }
            })
            .collect()
    } else {
        Vec::new()
    };
    let warm: Vec<f64> = input
        .jobs
        .iter()
        .flat_map(|jb| std::iter::repeat_n(jb.current_cap_frac, m))
        .collect();
    (lo, hi, budgets, warm)
}

/// Constant part of the linearised input for a job:
/// `φ(p₀) − g·φ'(p₀)·p₀ + u₀`.
#[inline]
fn const_input(job: &MpcJobState, input_offset: f64) -> f64 {
    job.curve_value - job.gain * job.curve_slope * job.current_cap_frac + input_offset
}

/// Assembles the decision QP with a dense Hessian — O((jobs·M)²) memory
/// and time. This is the reference implementation the structured path is
/// tested against; production decisions use [`assemble_structured_qp`].
///
/// Returns the QP together with the warm-start point and the per-(job,
/// step) affine constants `k_ij` of the output predictions (variable
/// layout `i·M + j`).
pub fn assemble_dense_qp(
    params: &AssemblyParams<'_>,
    input: &MpcInput<'_>,
) -> Option<(BoxBudgetQp, Vec<f64>, Vec<f64>)> {
    let nj = input.jobs.len();
    if nj == 0 {
        return None;
    }
    let m = params.horizon;
    let nv = nj * m;
    let var = |i: usize, j: usize| i * m + j; // j = 0-based horizon step

    let h0cum = params.h0cum();

    // Row accumulation: Q += w rᵀr, c += −w·resid·r for each output
    // row, where the predicted output is `r·p + k` and resid = T − k.
    let mut q = Matrix::zeros(nv, nv);
    let mut c = vec![0.0; nv];
    let mut consts = vec![0.0; nv];
    let add_row =
        |q: &mut Matrix, c: &mut Vec<f64>, w: f64, entries: &[(usize, f64)], resid: f64| {
            for &(a, va) in entries {
                c[a] -= w * resid * va;
                for &(b, vb) in entries {
                    q[(a, b)] += w * va * vb;
                }
            }
        };

    // Per-job constants k_i(j) and row templates. With the input at
    // step mᵢ linearised as u(m) = φ(p0) + g·s0·(p(m) − p0), the
    // predicted output is
    //   y_i(j) = free_i(j) + (φ(p0) − g·s0·p0 + u0)·h0cum(j)
    //          + g·s0·[ D·p_i(j) + Σ_{l<j} h_{j−l}·p_i(l) ].
    let mut row_buf: Vec<(usize, f64)> = Vec::with_capacity(nv);
    let mut sys_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
    let mut sys_consts = vec![0.0; m];

    for (i, job) in input.jobs.iter().enumerate() {
        debug_assert_eq!(job.free_response.len(), m, "free response length");
        let gs = job.gain * job.curve_slope;
        let const_in = const_input(job, params.input_offset);
        for j in 0..m {
            // Constant part of y_i at output step j.
            let k_ij = job.free_response[j] + const_in * h0cum[j] + job.bias;
            consts[var(i, j)] = k_ij;
            row_buf.clear();
            for l in 0..=j {
                let coeff = if l == j {
                    gs * params.feedthrough
                } else {
                    gs * params.markov[j - l - 1]
                };
                if coeff != 0.0 {
                    row_buf.push((var(i, l), coeff));
                }
            }
            let w = params.step_weight(params.wt_job, j);
            add_row(&mut q, &mut c, w, &row_buf, job.target - k_ij);

            // Contribute to the system row for step j.
            let scale = job.size as f64 / input.wp_nodes;
            sys_consts[j] += scale * k_ij;
            for &(idx, v) in &row_buf {
                sys_rows[j].push((idx, scale * v));
            }
        }
    }

    // System throughput rows.
    for j in 0..m {
        let w = params.step_weight(params.wt_sys, j);
        add_row(
            &mut q,
            &mut c,
            w,
            &sys_rows[j],
            input.system_target - sys_consts[j],
        );
    }

    // ΔP smoothing rows: p_i(0) − p0_i, then p_i(j) − p_i(j−1).
    for (i, job) in input.jobs.iter().enumerate() {
        add_row(
            &mut q,
            &mut c,
            params.w_dp,
            &[(var(i, 0), 1.0)],
            job.current_cap_frac,
        );
        for j in 1..m {
            add_row(
                &mut q,
                &mut c,
                params.w_dp,
                &[(var(i, j), 1.0), (var(i, j - 1), -1.0)],
                0.0,
            );
        }
    }

    let (lo, hi, budgets, warm) = constraints_and_warm(input, m);
    let qp = BoxBudgetQp {
        q,
        c,
        lo,
        hi,
        budgets,
    };
    Some((qp, warm, consts))
}

/// Assembles the decision QP in structured (block + low-rank) form —
/// O(jobs·M²) memory and time after two O(M³) template products.
///
/// The returned operator represents exactly the same QP as
/// [`assemble_dense_qp`] (up to floating-point summation order): per-job
/// blocks `Bᵢ = gsᵢ²·T + D_ΔP` and one coupling `(w_s(j), sⱼ)` per
/// horizon step. Returns the operator, the warm-start point, and the
/// `k_ij` constants.
///
/// With the `parallel` feature the per-job block/constant assembly fans
/// out across jobs with rayon; the serial tail (couplings, constraints)
/// is O(jobs·M²) with small constants.
pub fn assemble_structured_qp(
    params: &AssemblyParams<'_>,
    input: &MpcInput<'_>,
) -> Option<(StructuredQp, Vec<f64>, Vec<f64>)> {
    let nj = input.jobs.len();
    if nj == 0 {
        return None;
    }
    let m = params.horizon;
    let nv = nj * m;

    let h0cum = params.h0cum();
    let tmpl = params.templates();
    let tgram = params.tracking_gram(&tmpl);
    let dp = params.dp_block();

    let mut blocks = vec![0.0; nj * m * m];
    let mut c = vec![0.0; nv];
    let mut consts = vec![0.0; nv];

    // Per-job block, linear term, and affine constants. Each job writes a
    // disjoint m²-chunk of `blocks` and m-chunk of `c`/`consts`, so the
    // loop parallelises without synchronisation.
    let fill_job = |job: &MpcJobState, block: &mut [f64], cj: &mut [f64], kj: &mut [f64]| {
        debug_assert_eq!(job.free_response.len(), m, "free response length");
        let gs = job.gain * job.curve_slope;
        let const_in = const_input(job, params.input_offset);
        // Bᵢ = gsᵢ²·T + D_ΔP.
        let gs2 = gs * gs;
        for (b, (&t, &d)) in block.iter_mut().zip(tgram.iter().zip(dp.iter())) {
            *b = gs2 * t + d;
        }
        // Constants k_ij and the tracking part of the linear term:
        // cᵢ −= Σⱼ w_t(j)·(target − k_ij)·gs·tⱼ.
        for j in 0..m {
            let k_ij = job.free_response[j] + const_in * h0cum[j] + job.bias;
            kj[j] = k_ij;
            let wr = params.step_weight(params.wt_job, j) * (job.target - k_ij) * gs;
            if wr != 0.0 {
                for l in 0..=j {
                    cj[l] -= wr * tmpl[j * m + l];
                }
            }
        }
        // ΔP anchoring toward the currently applied cap.
        cj[0] -= params.w_dp * job.current_cap_frac;
    };

    #[cfg(feature = "parallel")]
    {
        blocks
            .par_chunks_mut(m * m)
            .zip(c.par_chunks_mut(m))
            .zip(consts.par_chunks_mut(m))
            .zip(input.jobs.par_iter())
            .for_each(|(((block, cj), kj), job)| fill_job(job, block, cj, kj));
    }
    #[cfg(not(feature = "parallel"))]
    {
        for (((block, cj), kj), job) in blocks
            .chunks_mut(m * m)
            .zip(c.chunks_mut(m))
            .zip(consts.chunks_mut(m))
            .zip(input.jobs.iter())
        {
            fill_job(job, block, cj, kj);
        }
    }

    // System-throughput couplings: sⱼ[(i,l)] = scaleᵢ·gsᵢ·tⱼ[l], one
    // rank-one term per step. Their contribution to the linear term uses
    // the step's aggregate constant Σᵢ scaleᵢ·k_ij.
    let mut couplings = Vec::with_capacity(m);
    for j in 0..m {
        let weight = params.step_weight(params.wt_sys, j);
        let mut s = vec![0.0; nv];
        let mut sys_const = 0.0;
        for (i, job) in input.jobs.iter().enumerate() {
            let scale = job.size as f64 / input.wp_nodes;
            let gs = job.gain * job.curve_slope;
            sys_const += scale * consts[i * m + j];
            let sg = scale * gs;
            if sg != 0.0 {
                for l in 0..=j {
                    s[i * m + l] = sg * tmpl[j * m + l];
                }
            }
        }
        let wr = weight * (input.system_target - sys_const);
        if wr != 0.0 {
            for (ci, &si) in c.iter_mut().zip(s.iter()) {
                *ci -= wr * si;
            }
        }
        couplings.push(Coupling { weight, s });
    }

    let (lo, hi, budgets, warm) = constraints_and_warm(input, m);
    let qp = StructuredQp::new(m, blocks, couplings, c, lo, hi, budgets)
        .unwrap_or_else(|e| panic!("structured MPC QP assembly produced invalid operator: {e}"));
    Some((qp, warm, consts))
}
