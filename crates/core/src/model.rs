use perq_apps::{npb_training_suite, AppProfile, MIN_CAP_WATTS, TDP_WATTS};
use perq_sysid::{
    excite, fit_arx_segments, fit_monotone_curve, fit_percent, KalmanObserver, MonotoneCurve, Rls,
    StateSpaceModel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// The identified node model: what the controller believes about the
/// power-cap → IPS relationship of a node (§2.4.2).
///
/// Structure is Hammerstein: a static monotone curve `φ(cap)` capturing
/// the saturating steady-state relationship, followed by 3rd-order linear
/// dynamics identified on `u = φ(cap)`. Everything is in normalized
/// units: caps as fractions of TDP, IPS as fractions of the base node
/// rate, so the model transfers across node counts.
#[derive(Debug, Clone)]
pub struct NodeModel {
    /// Static power→performance curve (cap fraction → normalized IPS).
    pub curve: MonotoneCurve,
    /// Linear dynamics on the curve-transformed input.
    pub ss: StateSpaceModel,
    /// Control decision interval the model was sampled at, seconds.
    pub interval_s: f64,
}

/// Diagnostics of the identification run.
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// MATLAB-style NRMSE fit of the dynamic model on held-out data, %.
    pub dynamic_fit_pct: f64,
    /// Number of training samples used.
    pub samples: usize,
    /// Benchmarks in the training suite.
    pub benchmarks: usize,
}

impl NodeModel {
    /// Predicted steady-state normalized IPS at a cap fraction.
    pub fn steady_state(&self, cap_frac: f64) -> f64 {
        self.curve.eval(cap_frac)
    }
}

/// Identifies the node model from the NPB-like training suite (§2.4.2).
///
/// Reproduces the paper's protocol: each training benchmark is run under
/// power caps "switching … frequently using a uniform distribution", the
/// static curve is fitted to the (cap, IPS) cloud, and a 3rd-order model
/// is identified on the curve-transformed input with rows pooled across
/// benchmarks. The evaluation applications are never touched.
pub fn train_node_model(seed: u64) -> (NodeModel, TrainingReport) {
    train_node_model_with(npb_training_suite(), 10.0, 600, seed)
}

/// Identification with explicit suite, interval, and record length —
/// exposed for ablation experiments (e.g. "what if the model were trained
/// on the evaluation apps?").
pub fn train_node_model_with(
    suite: Vec<AppProfile>,
    interval_s: f64,
    steps_per_app: usize,
    seed: u64,
) -> (NodeModel, TrainingReport) {
    assert!(!suite.is_empty(), "training suite is empty");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4e50_425f_7472);
    let noise = Normal::new(0.0, 0.01).expect("valid sigma");
    let min_frac = MIN_CAP_WATTS / TDP_WATTS;

    // 1. Generate switching-cap records per benchmark.
    let mut caps_all: Vec<f64> = Vec::new();
    let mut ips_all: Vec<f64> = Vec::new();
    let mut records: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
    for app in &suite {
        let caps = excite::uniform_switching(&mut rng, steps_per_app, min_frac, 1.0, 6);
        let mut ips = Vec::with_capacity(steps_per_app);
        for (k, &cap) in caps.iter().enumerate() {
            let t = k as f64 * interval_s;
            let perf = app.perf_frac(cap, t);
            ips.push((perf * (1.0 + noise.sample(&mut rng))).max(0.0));
        }
        caps_all.extend_from_slice(&caps);
        ips_all.extend_from_slice(&ips);
        records.push((caps, ips));
    }

    // 2. Static Hammerstein curve over the pooled cloud.
    let curve = fit_monotone_curve(&caps_all, &ips_all, 21).expect("training data is well-formed");

    // 3. Dynamics on the curve-transformed input, pooled across
    //    benchmarks with an 80/20 train/validation split per record.
    //    Orders follow §2.4.2: the model "uses the previous three
    //    power-caps (P(k−3), P(k−2) and P(k−1)) and outputs IPS at the
    //    current instance … based on the current power-cap P(k)" — i.e.
    //    na = 3 autoregressive lags, nb = 4 input taps including the
    //    direct (same-interval) term.
    let transformed: Vec<(Vec<f64>, Vec<f64>)> = records
        .iter()
        .map(|(caps, ips)| {
            let u: Vec<f64> = caps.iter().map(|&c| curve.eval(c)).collect();
            (u, ips.clone())
        })
        .collect();
    let split = |v: &[f64]| -> usize { v.len() * 4 / 5 };
    let train_segments: Vec<(&[f64], &[f64])> = transformed
        .iter()
        .map(|(u, y)| (&u[..split(u)], &y[..split(y)]))
        .collect();
    let arx = fit_arx_segments(&train_segments, 3, 4).expect("training regression solvable");
    let ss = arx.to_state_space();

    // 4. Validation: one-step-ahead prediction fit on the held-out tails
    //    (the quantity the observer-corrected controller actually relies
    //    on each interval).
    let mut predicted = Vec::new();
    let mut reference = Vec::new();
    for (u, y) in &transformed {
        let s = split(u);
        for k in (s + 4)..y.len() {
            predicted.push(arx.predict_one(&y[..k], &u[..=k]));
            reference.push(y[k]);
        }
    }
    let fit = fit_percent(&predicted, &reference);

    (
        NodeModel {
            curve,
            ss,
            interval_s,
        },
        TrainingReport {
            dynamic_fit_pct: fit,
            samples: caps_all.len(),
            benchmarks: suite.len(),
        },
    )
}

/// Per-job online adaptation layer (§2.4.2: "the internal state X(k) of
/// the node gets updated every decision instance based on the active
/// input-output relationship of the currently running job").
///
/// Combines a Kalman observer on the shared node model (state tracking /
/// transient prediction) with an RLS-estimated affine correction
/// `y_job ≈ g·φ(cap) + b` (steady-state gain/offset of *this* job relative
/// to the average training behaviour). `g` is the job's power sensitivity
/// relative to the model: a job whose IPS barely moves when its cap moves
/// settles at a small `g`.
#[derive(Debug, Clone)]
pub struct JobAdapter {
    observer: KalmanObserver,
    /// First-difference slope estimator: regresses `Δy` on `Δφ(cap)`.
    /// Differencing removes the job's constant offset and slow phase
    /// drift, isolating the *causal* same-interval response to cap
    /// changes — level-based regression in closed loop would conflate the
    /// controller's reactions to phase changes with power sensitivity.
    slope: Rls,
    /// Low-passed post-correction prediction residual — the constant
    /// output disturbance the observer state cannot express (the node
    /// model is feedthrough-dominated, so its state has little authority
    /// over the output level). Added to the MPC prediction constants,
    /// this is the standard offset-free MPC bias correction.
    bias: f64,
    /// Low-passed measured output level (for steady-state extrapolation).
    y_smooth: f64,
    /// Decaying-peak estimate of the job's per-node power demand
    /// (fraction of TDP). `None` until the first power reading. When the
    /// cap is not binding this tracks the observed draw; when the cap is
    /// binding, the true demand is only known to be above the cap.
    demand_frac: Option<f64>,
    /// Previous `(φ(cap), y)` sample for differencing.
    prev: Option<(f64, f64)>,
    /// Last cap fraction applied to this job.
    last_cap_frac: f64,
    updates: usize,
}

/// Minimum `|Δφ|` that carries slope information; below this the sample
/// is noise-dominated and skipped.
const MIN_DPHI: f64 = 0.01;

/// Bounds for the adapted gain — a safety rail against noise-driven
/// excursions (a negative gain would tell the MPC that more power slows
/// the job down).
const GAIN_RANGE: (f64, f64) = (0.02, 5.0);

impl JobAdapter {
    /// Creates an adapter for a newly started job. `initial_cap_frac` is
    /// the cap the job starts under; the observer is seeded at the model's
    /// steady state for that cap so the first predictions are sane.
    pub fn new(model: &NodeModel, initial_cap_frac: f64) -> Self {
        let mut observer = KalmanObserver::new(model.ss.clone(), 0.05, 1e-3);
        let u0 = model.curve.eval(initial_cap_frac);
        observer.seed_steady_state(u0, model.curve.eval(initial_cap_frac));
        // Prior: the job responds like the average training benchmark
        // (relative slope 1), held with moderate confidence; the start-up
        // transient — caps sweep from TDP down to the operating point —
        // carries enough Δφ excitation to re-estimate the slope quickly.
        let slope = Rls::with_initial(vec![1.0], 0.998, 50.0);
        JobAdapter {
            observer,
            slope,
            bias: 0.0,
            y_smooth: model.curve.eval(initial_cap_frac),
            demand_frac: None,
            prev: None,
            last_cap_frac: initial_cap_frac,
            updates: 0,
        }
    }

    /// Number of feedback updates absorbed so far.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// The adapted sensitivity gain `g = Δy/Δφ` relative to the node
    /// model's static curve.
    pub fn gain(&self) -> f64 {
        self.slope.theta()[0].clamp(GAIN_RANGE.0, GAIN_RANGE.1)
    }

    /// Low-passed measured output level.
    pub fn level(&self) -> f64 {
        self.y_smooth
    }

    /// Current observer state estimate (for MPC free-response prediction).
    pub fn state(&self) -> &[f64] {
        self.observer.state()
    }

    /// Absorbs one interval of feedback: the cap that was applied and the
    /// measured normalized per-node IPS.
    pub fn update(&mut self, model: &NodeModel, cap_frac: f64, ips_norm: f64) {
        let u = model.curve.eval(cap_frac);
        self.observer.update(u, ips_norm);
        // Slope from first differences, only when the cap actually moved.
        if let Some((prev_u, prev_y)) = self.prev {
            let dphi = u - prev_u;
            let dy = ips_norm - prev_y;
            // Reject phase-transition jumps: an output change far larger
            // than any physical power response (|Δy| > 5|Δφ|) is a phase
            // boundary, not slope information.
            if dphi.abs() > MIN_DPHI && dy.abs() <= 5.0 * dphi.abs() {
                self.slope.update(&[dphi], dy);
            }
        }
        self.prev = Some((u, ips_norm));
        self.y_smooth += if self.updates == 0 {
            ips_norm - self.y_smooth
        } else {
            0.4 * (ips_norm - self.y_smooth)
        };
        // Residual after the state correction: the part of the output the
        // state has no authority over. Low-pass filtered so measurement
        // noise does not whip the MPC constants around.
        let residual = ips_norm - self.observer.predicted_output(u);
        self.bias += 0.4 * (residual - self.bias);
        self.last_cap_frac = cap_frac;
        self.updates += 1;
    }

    /// The output-bias correction to add to model predictions for this
    /// job (offset-free MPC disturbance estimate).
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Absorbs one RAPL power reading: per-node consumption and the cap
    /// that was in force, both as fractions of TDP.
    ///
    /// When the job draws visibly less than its cap, the demand is
    /// directly observed (decaying-peak tracked so phase peaks are
    /// retained but stale peaks fade); when the draw is pinned at the
    /// cap, the demand is only known to exceed it, so the estimate is
    /// ratcheted slightly above the cap — raising the cap then reveals
    /// more, which is the gradual power transfer of Fig. 12.
    pub fn observe_power(&mut self, power_frac: f64, cap_frac: f64) {
        const CAP_BINDING_TOL: f64 = 0.015;
        let est = if power_frac < cap_frac - CAP_BINDING_TOL {
            match self.demand_frac {
                None => power_frac,
                Some(old) => (0.9 * old + 0.1 * power_frac).max(power_frac),
            }
        } else {
            let above = cap_frac + 0.03;
            match self.demand_frac {
                None => above,
                Some(old) => old.max(above),
            }
        };
        self.demand_frac = Some(est.clamp(0.0, 1.0));
    }

    /// Current per-node demand estimate (fraction of TDP), if any power
    /// reading has been absorbed.
    pub fn demand_frac(&self) -> Option<f64> {
        self.demand_frac
    }

    /// Steady-state normalized IPS prediction for this job at an arbitrary
    /// cap fraction — the quantity the target generator needs at TDP and
    /// at `P_fair`. Extrapolates from the job's smoothed level along its
    /// adapted slope: `ŷ(c) = y_level + g·(φ(c) − φ(c_now))`.
    pub fn predict_steady_state(&self, model: &NodeModel, cap_frac: f64) -> f64 {
        if self.updates == 0 {
            return model.curve.eval(cap_frac);
        }
        let dphi = model.curve.eval(cap_frac) - model.curve.eval(self.last_cap_frac);
        (self.y_smooth + self.gain() * dphi).clamp(0.0, 1.5)
    }

    /// Local sensitivity `∂IPS/∂cap_frac` at a cap fraction, in normalized
    /// units — the successive-linearisation slope the MPC uses. A secant
    /// slope (±5% of TDP) bridges the locally flat blocks of the isotonic
    /// curve fit.
    pub fn sensitivity(&self, model: &NodeModel, cap_frac: f64) -> f64 {
        (self.gain() * model.curve.secant_slope(cap_frac, 0.10)).max(0.0)
    }

    /// Cap fraction applied at the last update.
    pub fn last_cap_frac(&self) -> f64 {
        self.last_cap_frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perq_apps::ecp_suite;

    fn model() -> NodeModel {
        train_node_model(7).0
    }

    #[test]
    fn training_produces_stable_accurate_model() {
        let (model, report) = train_node_model(42);
        assert!(model.ss.is_stable(), "identified model must be stable");
        assert!(
            report.dynamic_fit_pct > 60.0,
            "validation fit too poor: {:.1}%",
            report.dynamic_fit_pct
        );
        assert_eq!(report.benchmarks, 8);
    }

    #[test]
    fn curve_is_saturating_and_monotone() {
        let m = model();
        let lo = m.steady_state(90.0 / 290.0);
        let mid = m.steady_state(0.6);
        let hi = m.steady_state(1.0);
        assert!(lo < mid && mid <= hi + 1e-9);
        assert!(hi > 0.9, "near-TDP performance should be ~1, got {hi}");
        assert!(lo > 0.2, "even the floor keeps some throughput, got {lo}");
    }

    #[test]
    fn adapter_learns_low_sensitivity_job() {
        // Feed the adapter a ground-truth low-sensitivity app (ASPA) and
        // check the learned gain is below that of a high-sensitivity app
        // (SimpleMOC) — this is the signal PERQ exploits.
        let m = model();
        let suite = ecp_suite();
        let learn = |name: &str| -> f64 {
            let app = suite.iter().find(|a| a.name == name).unwrap();
            let mut adapter = JobAdapter::new(&m, 0.6);
            // Sweep caps so the RLS sees slope information.
            for k in 0..120 {
                let cap = 0.35 + 0.55 * ((k as f64 * 0.7).sin().abs());
                let ips = app.perf_frac(cap, k as f64 * 10.0);
                adapter.update(&m, cap, ips);
            }
            adapter.gain()
        };
        let g_low = learn("ASPA");
        let g_high = learn("SimpleMOC");
        assert!(
            g_low < g_high,
            "low-sensitivity gain {g_low} should be below high-sensitivity {g_high}"
        );
    }

    #[test]
    fn adapter_prediction_tracks_observations() {
        let m = model();
        let suite = ecp_suite();
        let app = &suite[2]; // CoMD, medium
        let mut adapter = JobAdapter::new(&m, 0.5);
        for k in 0..100 {
            let cap = 0.4 + 0.3 * ((k as f64 * 0.9).cos().abs());
            adapter.update(&m, cap, app.perf_frac(cap, k as f64 * 10.0));
        }
        // Steady-state prediction at a cap inside the explored range.
        let cap = 0.55;
        let predicted = adapter.predict_steady_state(&m, cap);
        let actual = app.perf_frac(cap, 1000.0);
        assert!(
            (predicted - actual).abs() < 0.12,
            "predicted {predicted} vs actual {actual}"
        );
    }

    #[test]
    fn gain_clamped_against_noise() {
        let m = model();
        let mut adapter = JobAdapter::new(&m, 0.5);
        // Pathological feedback: constant output regardless of cap.
        for k in 0..200 {
            let cap = if k % 2 == 0 { 0.4 } else { 0.9 };
            adapter.update(&m, cap, 0.5);
        }
        let g = adapter.gain();
        assert!((GAIN_RANGE.0..=GAIN_RANGE.1).contains(&g));
        // A flat job should learn a (near-)zero sensitivity.
        assert!(g < 0.2, "flat job gain {g}");
        assert!(adapter.sensitivity(&m, 0.6) < 0.1);
    }

    #[test]
    fn sensitivity_never_negative() {
        let m = model();
        let mut adapter = JobAdapter::new(&m, 0.5);
        for k in 0..50 {
            // Adversarial: IPS anti-correlated with cap.
            let cap = if k % 2 == 0 { 0.4 } else { 0.9 };
            let ips = if k % 2 == 0 { 0.9 } else { 0.4 };
            adapter.update(&m, cap, ips);
        }
        assert!(adapter.sensitivity(&m, 0.6) >= 0.0);
    }

    #[test]
    fn training_is_reproducible() {
        let (a, _) = train_node_model(123);
        let (b, _) = train_node_model(123);
        assert_eq!(a.curve.values(), b.curve.values());
        assert_eq!(a.ss, b.ss);
    }
}
