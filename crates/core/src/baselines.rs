//! Throughput-oriented baseline policies from §3 of the paper.
//!
//! All three are priority water-filling allocators: jobs are sorted by a
//! priority key, then power is granted in priority order — each job's
//! nodes are raised from the minimum cap toward TDP until the busy-node
//! budget is exhausted; everyone else stays at the floor. This is exactly
//! the "give maximum power to jobs which …" construction the paper
//! describes, and it is what makes them fast but unfair.

use perq_sim::{PolicyContext, PowerAssignment, PowerPolicy};

/// Priority key used by a water-filling baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Priority {
    /// Smallest job size first (SJS): "allocates more power to small
    /// jobs, anticipating that accelerating them would improve system
    /// throughput".
    SmallestJob,
    /// Largest job size first (LJS): the paper reports this variant
    /// actually degrades throughput; included for the ablation.
    LargestJob,
    /// Smallest remaining node-hours first (SRN): "diverts power to
    /// shortest and smallest jobs, knowing that finishing them would
    /// improve throughput. It uses future knowledge of when the job is
    /// going to finish."
    SmallestRemaining,
}

/// A water-filling baseline policy; construct via [`sjs`], [`ljs`], or
/// [`srn`].
#[derive(Debug, Clone)]
pub struct WaterfillPolicy {
    priority: Priority,
    name: &'static str,
}

/// Smallest-job-size policy (SJS).
pub fn sjs() -> WaterfillPolicy {
    WaterfillPolicy {
        priority: Priority::SmallestJob,
        name: "SJS",
    }
}

/// Largest-job-size policy (LJS).
pub fn ljs() -> WaterfillPolicy {
    WaterfillPolicy {
        priority: Priority::LargestJob,
        name: "LJS",
    }
}

/// Smallest-remaining-node-hours policy (SRN). Uses the oracle
/// `remaining_node_hours` field.
pub fn srn() -> WaterfillPolicy {
    WaterfillPolicy {
        priority: Priority::SmallestRemaining,
        name: "SRN",
    }
}

impl PowerPolicy for WaterfillPolicy {
    fn name(&self) -> &str {
        self.name
    }

    fn assign(&mut self, ctx: &PolicyContext<'_>) -> Vec<PowerAssignment> {
        let n = ctx.jobs.len();
        if n == 0 {
            return Vec::new();
        }

        // Order of service.
        let mut order: Vec<usize> = (0..n).collect();
        match self.priority {
            Priority::SmallestJob => {
                order.sort_by_key(|&i| (ctx.jobs[i].size, ctx.jobs[i].id));
            }
            Priority::LargestJob => {
                order.sort_by_key(|&i| (std::cmp::Reverse(ctx.jobs[i].size), ctx.jobs[i].id));
            }
            Priority::SmallestRemaining => {
                order.sort_by(|&a, &b| {
                    ctx.jobs[a]
                        .remaining_node_hours
                        .partial_cmp(&ctx.jobs[b].remaining_node_hours)
                        .expect("finite node-hours")
                        .then(ctx.jobs[a].id.cmp(&ctx.jobs[b].id))
                });
            }
        }

        // Water-fill: everyone at the floor, then raise in priority order.
        let mut caps = vec![ctx.cap_min_w; n];
        let floor_total: f64 = ctx.jobs.iter().map(|j| ctx.cap_min_w * j.size as f64).sum();
        let mut headroom = (ctx.busy_budget_w - floor_total).max(0.0);
        for &i in &order {
            if headroom <= 0.0 {
                break;
            }
            let size = ctx.jobs[i].size as f64;
            let want = (ctx.cap_max_w - ctx.cap_min_w) * size;
            let grant = want.min(headroom);
            caps[i] = ctx.cap_min_w + grant / size;
            headroom -= grant;
        }
        caps.into_iter().map(PowerAssignment::cap).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perq_sim::JobView;

    fn job(id: u64, size: usize, remaining_nh: f64) -> JobView {
        JobView {
            id,
            size,
            elapsed_s: 0.0,
            measured_ips: Some(1e9),
            current_cap_w: 145.0,
            measured_power_w: Some(140.0),
            remaining_node_hours: remaining_nh,
            is_new: false,
        }
    }

    fn ctx<'a>(jobs: &'a [JobView], busy_budget_w: f64) -> PolicyContext<'a> {
        PolicyContext {
            time_s: 0.0,
            interval_s: 10.0,
            busy_budget_w,
            cap_min_w: 90.0,
            cap_max_w: 290.0,
            total_nodes: 32,
            wp_nodes: 16,
            queue_depth: 0,
            violation_s: 0.0,
            jobs,
        }
    }

    #[test]
    fn sjs_gives_tdp_to_smallest_first() {
        let jobs = vec![job(0, 8, 10.0), job(1, 2, 10.0), job(2, 4, 10.0)];
        // Budget: floors 14*90=1260; headroom for exactly the 2-node and
        // 4-node jobs at TDP: (290-90)*(2+4)=1200. Total 2460.
        let c = ctx(&jobs, 2460.0);
        let out = sjs().assign(&c);
        assert!((out[1].cap_w - 290.0).abs() < 1e-9, "smallest at TDP");
        assert!((out[2].cap_w - 290.0).abs() < 1e-9, "next smallest at TDP");
        assert!((out[0].cap_w - 90.0).abs() < 1e-9, "largest starved");
    }

    #[test]
    fn ljs_reverses_priority() {
        let jobs = vec![job(0, 8, 10.0), job(1, 2, 10.0)];
        // Headroom only for the 8-node job: (290-90)*8 = 1600; floors 900.
        let c = ctx(&jobs, 2500.0);
        let out = ljs().assign(&c);
        assert!((out[0].cap_w - 290.0).abs() < 1e-9);
        assert!((out[1].cap_w - 90.0).abs() < 1e-9);
    }

    #[test]
    fn srn_prioritizes_nearest_completion() {
        let jobs = vec![job(0, 4, 50.0), job(1, 4, 1.0), job(2, 4, 20.0)];
        // Headroom for exactly one job at TDP.
        let floors = 12.0 * 90.0;
        let c = ctx(&jobs, floors + 200.0 * 4.0);
        let out = srn().assign(&c);
        assert!((out[1].cap_w - 290.0).abs() < 1e-9, "{out:?}");
        assert!((out[0].cap_w - 90.0).abs() < 1e-9);
        assert!((out[2].cap_w - 90.0).abs() < 1e-9);
    }

    #[test]
    fn partial_grant_when_headroom_runs_out() {
        let jobs = vec![job(0, 4, 1.0), job(1, 4, 2.0)];
        let floors = 8.0 * 90.0;
        // Headroom = 1.5 jobs' worth.
        let c = ctx(&jobs, floors + 200.0 * 6.0);
        let out = srn().assign(&c);
        assert!((out[0].cap_w - 290.0).abs() < 1e-9);
        assert!((out[1].cap_w - 190.0).abs() < 1e-9); // 90 + 1200-800=400/4
    }

    #[test]
    fn budget_respected_exactly() {
        let jobs = vec![job(0, 3, 5.0), job(1, 5, 2.0), job(2, 7, 9.0)];
        let c = ctx(&jobs, 2000.0);
        for policy in [sjs(), ljs(), srn()] {
            let mut p = policy;
            let out = p.assign(&c);
            let committed: f64 = out
                .iter()
                .zip(c.jobs.iter())
                .map(|(a, j)| a.cap_w * j.size as f64)
                .sum();
            assert!(committed <= 2000.0 + 1e-6, "{}: {committed}", p.name());
        }
    }

    #[test]
    fn ties_broken_by_job_id_for_determinism() {
        let jobs = vec![job(5, 4, 1.0), job(3, 4, 1.0)];
        let floors = 8.0 * 90.0;
        let c = ctx(&jobs, floors + 200.0 * 4.0);
        let out = sjs().assign(&c);
        // Same size: lower id (3, at index 1) wins.
        assert!((out[1].cap_w - 290.0).abs() < 1e-9);
        assert!((out[0].cap_w - 90.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_overfull() {
        let jobs: Vec<JobView> = vec![];
        let c = ctx(&jobs, 1000.0);
        assert!(sjs().assign(&c).is_empty());
        // Budget below floors: everyone at the floor (simulator will
        // record the violation).
        let jobs = vec![job(0, 10, 1.0)];
        let c = ctx(&jobs, 100.0);
        let out = srn().assign(&c);
        assert!((out[0].cap_w - 90.0).abs() < 1e-9);
    }
}
