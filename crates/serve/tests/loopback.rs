//! Loopback harness: full serve loops over the in-memory poller.
//!
//! Everything here is single-threaded and driven by logical ticks, so a
//! run is a pure function of its inputs — which is exactly what the
//! determinism tests assert, across repeated runs *and* across poller
//! batch sizes.

use perq_proto::FaultyTransport;
use perq_serve::{
    make_policy, mem_pair, MemIo, MemPoller, ServeConfig, Server, SwarmStatus, SwarmWorker,
};
use perq_telemetry::{parse_prometheus, validate_prometheus, Recorder};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::time::Duration;

const PIPE_CAP: usize = 256 * 1024;

#[derive(Debug, Clone, Copy, Default)]
struct Faults {
    drop: f64,
    corrupt: f64,
    delay_ms: u64,
    crash_at: Option<usize>,
}

/// Worker transport whose faults arm only after the registration frame,
/// so drop/corrupt exercise the mid-session paths (heartbeat write-off,
/// corrupt-frame write-off) instead of just losing the handshake.
struct Transport {
    faulty: FaultyTransport<MemIo>,
    raw: MemIo,
    clean_writes_left: usize,
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.raw.read(buf)
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.clean_writes_left > 0 {
            self.clean_writes_left -= 1;
            self.raw.write(buf)
        } else {
            self.faulty.write(buf)
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.raw.flush()
    }
}

struct Rig {
    server: Server<MemPoller>,
    workers: Vec<SwarmWorker<Transport>>,
    handles: Vec<MemIo>,
    scratch: Vec<u8>,
}

fn build_rig(nodes: u32, batch: usize, cfg: ServeConfig, faults: &BTreeMap<u32, Faults>) -> Rig {
    let server = Server::with_recorders(
        MemPoller::new(batch),
        cfg,
        make_policy("fop").unwrap(),
        Recorder::manual(),
        Recorder::noop(),
    );
    let mut rig = Rig {
        server,
        workers: Vec::new(),
        handles: Vec::new(),
        scratch: vec![0u8; 16 * 1024],
    };
    for node_id in 0..nodes {
        let (server_io, worker_io) = mem_pair(PIPE_CAP);
        rig.server.attach_worker(server_io).unwrap();
        let f = faults.get(&node_id).copied().unwrap_or_default();
        let mut faulty = FaultyTransport::new(worker_io.clone(), u64::from(node_id))
            .with_drop_prob(f.drop)
            .with_corrupt_prob(f.corrupt);
        if f.delay_ms > 0 {
            faulty = faulty.with_delay(Duration::from_millis(f.delay_ms));
        }
        let transport = Transport {
            faulty,
            raw: worker_io.clone(),
            clean_writes_left: 1, // registration goes through untouched
        };
        let mut w = SwarmWorker::new(node_id, perq_apps::ecp_suite(), 1.0, 42, transport);
        if let Some(t) = f.crash_at {
            w = w.with_crash_at_tick(t);
        }
        rig.workers.push(w);
        rig.handles.push(worker_io);
    }
    rig
}

/// Pumps the server and steps every worker until a full round moves
/// nothing — the inter-tick quiescent point.
fn settle(rig: &mut Rig) {
    for _ in 0..100_000 {
        let mut any = rig.server.pump(Some(Duration::ZERO)).unwrap().handled > 0;
        for (w, h) in rig.workers.iter_mut().zip(&rig.handles) {
            if w.finished().is_some() {
                continue;
            }
            match w.step(&mut rig.scratch) {
                SwarmStatus::Progress => any = true,
                SwarmStatus::Crashed => {
                    // The node vanishes: close the pipe so the server
                    // observes EOF like a dead TCP peer.
                    h.close();
                    any = true;
                }
                SwarmStatus::Shutdown | SwarmStatus::Dead => any = true,
                SwarmStatus::Idle => {}
            }
        }
        if !any {
            return;
        }
    }
    panic!("loopback harness failed to quiesce");
}

/// Performs one HTTP exchange against the serve loop and returns the raw
/// response bytes.
fn http(rig: &mut Rig, request: &[u8]) -> Vec<u8> {
    let (server_io, mut client) = mem_pair(PIPE_CAP);
    rig.server.attach_http(server_io).unwrap();
    client.write_all(request).unwrap();
    let mut resp = Vec::new();
    let mut buf = [0u8; 4096];
    for _ in 0..10_000 {
        rig.server.pump(Some(Duration::ZERO)).unwrap();
        match client.read(&mut buf) {
            Ok(0) => return resp,
            Ok(n) => resp.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => panic!("http client read: {e}"),
        }
    }
    panic!("no http response after 10k pumps");
}

fn http_body(resp: &[u8]) -> &[u8] {
    let text = resp
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    &resp[text + 4..]
}

/// Runs `ticks` decide ticks with inter-tick settling; optional admin
/// requests fire right before their scheduled tick.
fn run(rig: &mut Rig, ticks: u64, admin: &[(u64, &[u8])]) {
    for tick in 0..ticks {
        settle(rig);
        for (at, req) in admin {
            if *at == tick {
                http(rig, req);
            }
        }
        rig.server.tick();
    }
    settle(rig);
}

fn gauge(prom: &str, name: &str) -> f64 {
    parse_prometheus(prom)
        .unwrap()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("missing sample {name}"))
        .value
}

#[test]
fn loopback_exports_are_byte_identical_across_runs_and_poll_batches() {
    let mut exports = Vec::new();
    for batch in [0, 0, 3, 1024] {
        let mut rig = build_rig(8, batch, ServeConfig::default(), &BTreeMap::new());
        run(&mut rig, 30, &[]);
        exports.push((
            rig.server.recorder().export_prometheus(),
            rig.server.recorder().export_jsonl(),
        ));
    }
    assert_eq!(exports[0], exports[1], "repeat run diverged");
    assert_eq!(exports[0], exports[2], "batch=3 diverged from unlimited");
    assert_eq!(exports[0], exports[3], "batch=1024 diverged from unlimited");

    let prom = &exports[0].0;
    validate_prometheus(
        prom,
        &[
            "perq_serve_ticks_total",
            "perq_serve_live_nodes",
            "perq_serve_power_w",
            "perq_serve_budget_w",
        ],
    )
    .unwrap();
    assert_eq!(gauge(prom, "perq_serve_ticks_total"), 30.0);
    assert_eq!(gauge(prom, "perq_serve_live_nodes"), 8.0);
    // FOP at 8 live nodes under an 8-node-TDP budget: everyone at TDP.
    assert_eq!(gauge(prom, "perq_serve_caps_w"), 8.0 * 290.0);
}

#[test]
fn fault_matrix_survives_with_deterministic_writeoffs() {
    let mut faults = BTreeMap::new();
    faults.insert(
        1,
        Faults {
            drop: 0.8,
            ..Faults::default()
        },
    );
    faults.insert(
        2,
        Faults {
            corrupt: 0.4,
            ..Faults::default()
        },
    );
    faults.insert(
        3,
        Faults {
            delay_ms: 1,
            ..Faults::default()
        },
    );
    faults.insert(
        4,
        Faults {
            crash_at: Some(5),
            ..Faults::default()
        },
    );

    let cfg = ServeConfig {
        wp_nodes: 4, // budget 1160 W: shares move visibly on write-offs
        ..ServeConfig::default()
    };

    let mut runs = Vec::new();
    for _ in 0..2 {
        let mut rig = build_rig(8, 0, cfg.clone(), &faults);
        run(&mut rig, 40, &[]);
        let prom = rig.server.recorder().export_prometheus();
        let jsonl = rig.server.recorder().export_jsonl();
        let live = rig.server.live_nodes();
        runs.push((prom, jsonl, live));
    }
    // Write-off ticks, reasons, and every metric are identical run-to-run.
    assert_eq!(runs[0], runs[1], "fault run is not deterministic");

    let (prom, jsonl, live) = &runs[0];
    // The crasher and the corrupter are certainly gone; the delayed and
    // the clean workers certainly survive. The dropper's fate is sealed
    // by its seed either way.
    let writeoffs = gauge(prom, "perq_serve_writeoffs_total") as usize;
    assert!(writeoffs >= 2, "expected >=2 write-offs, got {writeoffs}");
    assert!(
        *live >= 4,
        "clean+delayed workers must survive, live={live}"
    );
    assert_eq!(*live, 8 - writeoffs);
    assert!(
        jsonl.contains("perq_serve_writeoff"),
        "write-off events missing"
    );
    assert!(
        jsonl.contains("corrupt-frame"),
        "corrupt fault not classified"
    );
    assert!(jsonl.contains("peer-gone"), "crash fault not classified");

    // Budget reallocation falls out of the live set: FOP shares over the
    // survivors, clamped to TDP.
    let live_f = *live as f64;
    let expected_share = (1160.0 / live_f).clamp(90.0, 290.0);
    let caps = gauge(prom, "perq_serve_caps_w");
    assert!(
        (caps - expected_share * live_f).abs() < 1e-6,
        "caps {caps} != {live_f} x {expected_share}"
    );
    // The serve loop itself never died: all 40 ticks ran.
    assert_eq!(gauge(prom, "perq_serve_ticks_total"), 40.0);
}

#[test]
fn budget_and_policy_hot_reload_mid_run_without_dropping_a_tick() {
    let mut rig = build_rig(4, 0, ServeConfig::default(), &BTreeMap::new());
    // Default budget: 8 x 290 = 2320 W. Halve it mid-run, then swap the
    // policy to PERQ a little later.
    let budget_req =
        b"POST /admin/budget HTTP/1.1\r\nContent-Length: 10\r\n\r\nwatts=1160" as &[u8];
    let policy_req = b"POST /admin/policy HTTP/1.1\r\nContent-Length: 4\r\n\r\nperq" as &[u8];
    run(&mut rig, 20, &[(10, budget_req), (14, policy_req)]);

    assert_eq!(rig.server.policy_name(), "PERQ");
    assert!((rig.server.budget_w() - 1160.0).abs() < 1e-12);

    let prom = rig.server.recorder().export_prometheus();
    assert_eq!(
        gauge(&prom, "perq_serve_ticks_total"),
        20.0,
        "a hot reload dropped a tick"
    );
    assert_eq!(gauge(&prom, "perq_serve_budget_reloads_total"), 1.0);
    assert_eq!(gauge(&prom, "perq_serve_policy_reloads_total"), 1.0);
    assert_eq!(gauge(&prom, "perq_serve_budget_w"), 1160.0);
    // 4 workers under 1160 W: also within the tightened budget.
    assert!(gauge(&prom, "perq_serve_caps_w") <= 1160.0 + 1e-9);
}

#[test]
fn metrics_endpoint_serves_valid_prometheus_over_http() {
    let mut rig = build_rig(4, 0, ServeConfig::default(), &BTreeMap::new());
    run(&mut rig, 5, &[]);
    let resp = http(&mut rig, b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    let text = String::from_utf8(resp.clone()).unwrap();
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    let body = String::from_utf8(http_body(&resp).to_vec()).unwrap();
    validate_prometheus(&body, &["perq_serve_ticks_total", "perq_serve_live_nodes"]).unwrap();

    let health = http(&mut rig, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert!(health.starts_with(b"HTTP/1.1 200"));
    let missing = http(&mut rig, b"GET /nope HTTP/1.1\r\n\r\n");
    assert!(missing.starts_with(b"HTTP/1.1 404"));
    let bad = http(
        &mut rig,
        b"POST /admin/budget HTTP/1.1\r\nContent-Length: 4\r\n\r\nx=yz",
    );
    assert!(bad.starts_with(b"HTTP/1.1 400"));
}

#[test]
fn workers_shut_down_cleanly_on_request() {
    let mut rig = build_rig(3, 0, ServeConfig::default(), &BTreeMap::new());
    run(&mut rig, 5, &[]);
    rig.server.shutdown();
    settle(&mut rig);
    for w in &rig.workers {
        assert_eq!(w.finished(), Some(SwarmStatus::Shutdown));
    }
}
