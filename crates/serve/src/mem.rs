//! Deterministic in-memory poller backend.
//!
//! [`mem_pair`] creates a bounded duplex pipe whose two ends behave like
//! non-blocking sockets: reads on an empty pipe and writes on a full pipe
//! return [`std::io::ErrorKind::WouldBlock`], and a closed pipe reads as
//! EOF / writes as `BrokenPipe`. [`MemPoller`] reports readiness over
//! registered ends in **token order** with a configurable per-poll batch
//! size, which is exactly what the loopback determinism harness varies to
//! prove the server's telemetry is independent of event-delivery
//! batching.
//!
//! Single-threaded by design (`Rc<RefCell<..>>`): the whole point is a
//! scheduler-free, perfectly reproducible event loop for tests and
//! benches.

use crate::poller::{PollEvent, Poller};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read, Write};
use std::rc::Rc;
use std::time::Duration;

/// Default per-direction pipe capacity, bytes.
pub const DEFAULT_PIPE_CAP: usize = 64 * 1024;

#[derive(Debug)]
struct PipeBuf {
    data: std::collections::VecDeque<u8>,
    cap: usize,
    closed: bool,
}

impl PipeBuf {
    fn new(cap: usize) -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(PipeBuf {
            data: std::collections::VecDeque::new(),
            cap,
            closed: false,
        }))
    }
}

/// One end of a bounded in-memory duplex pipe.
///
/// Clones share the underlying buffers, so a test harness can keep a
/// handle to a worker's end and [`MemIo::close`] it to simulate a crash
/// while the worker state machine still owns its copy.
#[derive(Debug, Clone)]
pub struct MemIo {
    rx: Rc<RefCell<PipeBuf>>,
    tx: Rc<RefCell<PipeBuf>>,
}

/// Creates a connected pair of pipe ends with `cap` bytes of buffer per
/// direction.
pub fn mem_pair(cap: usize) -> (MemIo, MemIo) {
    let a_to_b = PipeBuf::new(cap);
    let b_to_a = PipeBuf::new(cap);
    (
        MemIo {
            rx: Rc::clone(&b_to_a),
            tx: Rc::clone(&a_to_b),
        },
        MemIo {
            rx: a_to_b,
            tx: b_to_a,
        },
    )
}

impl MemIo {
    /// Closes both directions: the peer reads EOF once its inbound data
    /// drains, and further writes from either side fail.
    pub fn close(&self) {
        self.rx.borrow_mut().closed = true;
        self.tx.borrow_mut().closed = true;
    }

    /// Bytes currently buffered toward this end.
    pub fn pending_read(&self) -> usize {
        self.rx.borrow().data.len()
    }

    /// Free space in the outbound direction.
    pub fn write_space(&self) -> usize {
        let b = self.tx.borrow();
        b.cap.saturating_sub(b.data.len())
    }

    /// Whether either direction has been closed.
    pub fn is_closed(&self) -> bool {
        self.rx.borrow().closed || self.tx.borrow().closed
    }

    fn same_pipe(&self, other: &MemIo) -> bool {
        Rc::ptr_eq(&self.rx, &other.rx) && Rc::ptr_eq(&self.tx, &other.tx)
    }
}

impl Read for MemIo {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut rx = self.rx.borrow_mut();
        if rx.data.is_empty() {
            if rx.closed {
                return Ok(0);
            }
            return Err(io::ErrorKind::WouldBlock.into());
        }
        let n = rx.data.len().min(buf.len());
        for slot in buf.iter_mut().take(n) {
            *slot = rx.data.pop_front().expect("len checked");
        }
        Ok(n)
    }
}

impl Write for MemIo {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut tx = self.tx.borrow_mut();
        if tx.closed {
            return Err(io::ErrorKind::BrokenPipe.into());
        }
        let space = tx.cap.saturating_sub(tx.data.len());
        if space == 0 {
            return Err(io::ErrorKind::WouldBlock.into());
        }
        let n = space.min(buf.len());
        tx.data.extend(buf.iter().take(n).copied());
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Deterministic poller over [`MemIo`] ends.
pub struct MemPoller {
    registry: BTreeMap<usize, MemIo>,
    write_interest: BTreeSet<usize>,
    batch: usize,
    cursor: usize,
}

impl MemPoller {
    /// Creates a poller reporting at most `batch` events per [`Poller::poll`]
    /// call (`0` = unlimited). Smaller batches exercise more interleavings
    /// of the server loop without changing its observable behaviour.
    pub fn new(batch: usize) -> Self {
        MemPoller {
            registry: BTreeMap::new(),
            write_interest: BTreeSet::new(),
            batch,
            cursor: 0,
        }
    }

    fn readiness(&self, token: usize, io: &MemIo) -> Option<PollEvent> {
        let rx = io.rx.borrow();
        let tx = io.tx.borrow();
        let readable = !rx.data.is_empty() || rx.closed;
        let writable =
            self.write_interest.contains(&token) && (tx.cap > tx.data.len() || tx.closed);
        let hangup = rx.closed && rx.data.is_empty();
        if readable || writable || hangup {
            Some(PollEvent {
                token,
                readable,
                writable,
                hangup,
            })
        } else {
            None
        }
    }
}

impl Poller for MemPoller {
    type Io = MemIo;

    fn register(&mut self, io: &Self::Io, token: usize) -> io::Result<()> {
        if self.registry.insert(token, io.clone()).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "token already registered",
            ));
        }
        Ok(())
    }

    fn set_write_interest(&mut self, _io: &Self::Io, token: usize, on: bool) -> io::Result<()> {
        if !self.registry.contains_key(&token) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "unregistered token",
            ));
        }
        if on {
            self.write_interest.insert(token);
        } else {
            self.write_interest.remove(&token);
        }
        Ok(())
    }

    fn deregister(&mut self, io: &Self::Io, token: usize) -> io::Result<()> {
        match self.registry.get(&token) {
            Some(reg) if reg.same_pipe(io) => {
                // The server deregisters exactly when it is about to drop
                // the transport; for TCP that closes the socket, so the
                // in-memory pipe closes here to match (the peer drains
                // buffered data, then reads EOF).
                io.close();
                self.registry.remove(&token);
                self.write_interest.remove(&token);
                Ok(())
            }
            _ => Err(io::Error::new(io::ErrorKind::NotFound, "unregistered io")),
        }
    }

    fn poll(&mut self, out: &mut Vec<PollEvent>, _timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let limit = if self.batch == 0 {
            usize::MAX
        } else {
            self.batch
        };
        // Scan in token order starting past the previous batch's cursor so
        // a small batch size cannot starve high-numbered tokens.
        let mut ready: Vec<PollEvent> = Vec::new();
        for (&token, io) in self.registry.range(self.cursor + 1..) {
            if ready.len() >= limit {
                break;
            }
            if let Some(ev) = self.readiness(token, io) {
                ready.push(ev);
            }
        }
        if ready.len() < limit {
            for (&token, io) in self.registry.range(..=self.cursor) {
                if ready.len() >= limit {
                    break;
                }
                if let Some(ev) = self.readiness(token, io) {
                    ready.push(ev);
                }
            }
        }
        if let Some(last) = ready.last() {
            self.cursor = last.token;
        }
        out.extend(ready);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_blocks_when_empty_and_when_full() {
        let (mut a, mut b) = mem_pair(4);
        let mut buf = [0u8; 8];
        assert_eq!(
            a.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        assert_eq!(a.write(b"abcdef").unwrap(), 4); // short write at capacity
        assert_eq!(a.write(b"x").unwrap_err().kind(), io::ErrorKind::WouldBlock);
        assert_eq!(b.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"abcd");
        assert_eq!(a.write(b"ef").unwrap(), 2);
    }

    #[test]
    fn close_reads_as_eof_after_drain_and_breaks_writes() {
        let (mut a, mut b) = mem_pair(16);
        a.write_all(b"last words").unwrap();
        a.close();
        let mut buf = [0u8; 32];
        let n = b.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"last words");
        assert_eq!(b.read(&mut buf).unwrap(), 0); // EOF
        assert_eq!(
            b.write(b"reply").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }

    #[test]
    fn poller_reports_in_token_order_and_honours_batch() {
        let mut p = MemPoller::new(2);
        let mut peers = Vec::new();
        for t in 0..4 {
            let (srv, mut peer) = mem_pair(64);
            p.register(&srv, t).unwrap();
            peer.write_all(b"hi").unwrap();
            peers.push(peer);
        }
        let mut evs = Vec::new();
        p.poll(&mut evs, None).unwrap();
        assert_eq!(evs.iter().map(|e| e.token).collect::<Vec<_>>(), vec![1, 2]);
        p.poll(&mut evs, None).unwrap();
        assert_eq!(evs.iter().map(|e| e.token).collect::<Vec<_>>(), vec![3, 0]);
        // All four got reported across two polls despite batch=2.
    }

    #[test]
    fn write_interest_gates_writable_events() {
        let mut p = MemPoller::new(0);
        let (srv, _peer) = mem_pair(64);
        p.register(&srv, 1).unwrap();
        let mut evs = Vec::new();
        p.poll(&mut evs, None).unwrap();
        assert!(evs.is_empty());
        p.set_write_interest(&srv, 1, true).unwrap();
        p.poll(&mut evs, None).unwrap();
        assert_eq!(evs.len(), 1);
        assert!(evs[0].writable && !evs[0].readable);
    }
}
