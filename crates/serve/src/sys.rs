//! Thin `epoll(7)` FFI shim.
//!
//! The event loop needs exactly four syscalls — `epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `close` — so they are declared directly
//! instead of pulling in the libc crate. Linux-only by construction
//! (`cfg(target_os = "linux")` at the module declaration); every other
//! platform uses the in-memory poller.

use std::io;

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Peer hangup.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// Mirror of `struct epoll_event`. The kernel ABI packs this struct on
/// x86-64 (12 bytes); other architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Requested / reported readiness mask.
    pub events: u32,
    /// Caller-owned cookie; we store the connection token.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// Owned epoll instance. Closes the descriptor on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: i32,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 has no pointer arguments.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: i32, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        let evp = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut EpollEvent
        };
        // SAFETY: `ev` outlives the call; DEL ignores the event pointer.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, evp) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given interest mask.
    pub fn add(&self, fd: i32, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes the interest mask of a registered `fd`.
    pub fn modify(&self, fd: i32, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Removes `fd` from the interest set.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness, filling `events`; `timeout_ms < 0` blocks.
    /// Returns the number of ready entries. `EINTR` is retried.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `events` is a valid mutable slice for the whole call.
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this instance and closed exactly once.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn epoll_reports_readability_on_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 7).unwrap();

        let mut evs = [EpollEvent { events: 0, data: 0 }; 8];
        // Nothing pending yet.
        assert_eq!(ep.wait(&mut evs, 0).unwrap(), 0);

        client.write_all(b"hello").unwrap();
        let n = ep.wait(&mut evs, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = evs[0];
        assert_eq!({ ev.data }, 7);
        assert_ne!({ ev.events } & EPOLLIN, 0);

        ep.delete(server.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut evs, 0).unwrap(), 0);
    }
}
