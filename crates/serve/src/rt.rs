//! TCP runtime: epoll loop with wall-clock tick scheduling.

#![cfg_attr(not(target_os = "linux"), allow(unused))]

use crate::server::{ServeConfig, Server};
use perq_telemetry::Recorder;
use std::io;
use std::time::{Duration, Instant};

/// What a bounded `serve_tcp` run saw.
#[derive(Debug)]
pub struct ServeSummary {
    /// Decide ticks executed.
    pub ticks: u64,
    /// Workers still live at shutdown.
    pub live_nodes: usize,
    /// Workers written off during the run.
    pub writeoffs: u64,
    /// Final deterministic telemetry export (Prometheus text).
    pub metrics: String,
    /// Final wall-clock engine telemetry export (Prometheus text).
    pub engine_metrics: String,
}

const WORKER_LISTENER_TOKEN: usize = 0;
const HTTP_LISTENER_TOKEN: usize = 1;

/// Runs the serve loop over real sockets until `cfg.max_ticks` elapses
/// (forever when `None`). Binds a worker listener on `worker_addr` and,
/// if given, an HTTP listener on `http_addr`.
///
/// Ticks fire on a fixed wall-clock cadence; between ticks the loop
/// sleeps in `epoll_wait`, so worker traffic and metric scrapes are
/// serviced with no busy-waiting. Linux-only (the epoll backend).
#[cfg(target_os = "linux")]
pub fn serve_tcp(
    cfg: ServeConfig,
    policy: Box<dyn perq_sim::PowerPolicy>,
    worker_addr: &str,
    http_addr: Option<&str>,
    rec: Recorder,
    engine: Recorder,
) -> io::Result<ServeSummary> {
    use crate::poller::EpollPoller;
    use std::net::TcpListener;

    let workers = TcpListener::bind(worker_addr)?;
    workers.set_nonblocking(true)?;
    let http = match http_addr {
        Some(addr) => {
            let l = TcpListener::bind(addr)?;
            l.set_nonblocking(true)?;
            Some(l)
        }
        None => None,
    };

    let mut poller = EpollPoller::new()?;
    poller.add_listener(&workers, WORKER_LISTENER_TOKEN)?;
    if let Some(l) = &http {
        poller.add_listener(l, HTTP_LISTENER_TOKEN)?;
    }

    let tick_period = cfg.tick;
    let max_ticks = cfg.max_ticks;
    let mut server = Server::with_recorders(poller, cfg, policy, rec, engine);

    let start = Instant::now();
    let mut next_tick = start + tick_period;
    loop {
        let timeout = next_tick.saturating_duration_since(Instant::now());
        let outcome = server.pump(Some(timeout))?;
        for ev in outcome.unclaimed {
            match ev.token {
                WORKER_LISTENER_TOKEN => accept_all(&workers, &mut server, false)?,
                HTTP_LISTENER_TOKEN => {
                    if let Some(l) = &http {
                        accept_all(l, &mut server, true)?;
                    }
                }
                _ => {}
            }
        }
        if Instant::now() >= next_tick {
            server.tick();
            next_tick += tick_period;
            // If the loop fell behind, tick back-to-back rather than
            // skipping decide instances.
            if let Some(max) = max_ticks {
                if server.ticks() >= max {
                    break;
                }
            }
        }
    }

    // Graceful shutdown: queue Shutdown everywhere and give the sockets a
    // short drain window.
    server.shutdown();
    let drain_deadline = Instant::now() + Duration::from_secs(2);
    while server.has_backlog() && Instant::now() < drain_deadline {
        server.pump(Some(Duration::from_millis(20)))?;
    }

    Ok(ServeSummary {
        ticks: server.ticks(),
        live_nodes: server.live_nodes(),
        writeoffs: server
            .recorder()
            .counter_value("perq_serve_writeoffs_total"),
        metrics: server.recorder().export_prometheus(),
        engine_metrics: server.engine_recorder().export_prometheus(),
    })
}

#[cfg(target_os = "linux")]
fn accept_all(
    listener: &std::net::TcpListener,
    server: &mut Server<crate::poller::EpollPoller>,
    http: bool,
) -> io::Result<()> {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(true)?;
                stream.set_nodelay(true).ok();
                let attached = if http {
                    server.attach_http(stream)
                } else {
                    server.attach_worker(stream)
                };
                // A failed attach only loses that one connection.
                let _ = attached;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Stub for non-Linux hosts: the TCP runtime needs the epoll backend.
#[cfg(not(target_os = "linux"))]
pub fn serve_tcp(
    _cfg: ServeConfig,
    _policy: Box<dyn perq_sim::PowerPolicy>,
    _worker_addr: &str,
    _http_addr: Option<&str>,
    _rec: Recorder,
    _engine: Recorder,
) -> io::Result<ServeSummary> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "perq-serve TCP runtime requires Linux (epoll)",
    ))
}
