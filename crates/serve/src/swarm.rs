//! Swarm workers: many simulated nodes against one serve loop.
//!
//! [`SwarmWorker`] is the sans-io twin of [`perq_proto::NodeWorker::run`]
//! — the same register/command/report protocol, but driven by explicit
//! [`SwarmWorker::step`] calls over any non-blocking transport, so a
//! single thread can advance thousands of workers deterministically
//! (loopback tests, the `serve_scaling` bench). [`run_tcp_swarm`] is the
//! thread-per-worker TCP runner behind the `perq swarm` CLI.

use perq_apps::AppProfile;
use perq_proto::{Command, FrameDecoder, FrameEncoder, NodeWorker, ProtoError, Report};
use std::io::{self, Read, Write};

/// Outcome of a [`SwarmWorker::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwarmStatus {
    /// Nothing to do right now.
    Idle,
    /// Frames moved or a command was processed.
    Progress,
    /// The worker hit its injected crash tick; the harness should close
    /// the transport to make the controller see the node vanish.
    Crashed,
    /// The controller sent `Shutdown`; the session is over.
    Shutdown,
    /// The transport died under the worker.
    Dead,
}

/// A non-blocking worker session around [`NodeWorker`].
pub struct SwarmWorker<Io> {
    worker: NodeWorker,
    io: Io,
    app_names: Vec<String>,
    decoder: FrameDecoder,
    encoder: FrameEncoder,
    out: std::collections::VecDeque<Vec<u8>>,
    out_sent: usize,
    ticks_seen: usize,
    crash_at_tick: Option<usize>,
    registered: bool,
    finished: Option<SwarmStatus>,
}

impl<Io: Read + Write> SwarmWorker<Io> {
    /// Creates a worker session; the registration report goes out on the
    /// first [`SwarmWorker::step`].
    pub fn new(node_id: u32, apps: Vec<AppProfile>, interval_s: f64, seed: u64, io: Io) -> Self {
        let app_names = apps.iter().map(|a| a.name.clone()).collect();
        SwarmWorker {
            worker: NodeWorker::new(node_id, apps, interval_s, seed),
            io,
            app_names,
            decoder: FrameDecoder::new(),
            encoder: FrameEncoder::new(),
            out: std::collections::VecDeque::new(),
            out_sent: 0,
            ticks_seen: 0,
            crash_at_tick: None,
            registered: false,
            finished: None,
        }
    }

    /// Arms an injected crash: the worker vanishes (no report) when it
    /// sees its `tick`-th `Tick` command, mirroring
    /// [`NodeWorker::with_crash_at_tick`].
    pub fn with_crash_at_tick(mut self, tick: usize) -> Self {
        self.crash_at_tick = Some(tick);
        self
    }

    /// The node id.
    pub fn node_id(&self) -> u32 {
        self.worker.node_id()
    }

    /// Whether the session ended, and how.
    pub fn finished(&self) -> Option<SwarmStatus> {
        self.finished
    }

    /// Access to the transport (to close it after a crash).
    pub fn io(&self) -> &Io {
        &self.io
    }

    fn queue<T: serde::Serialize>(&mut self, value: &T) {
        let frame = self.encoder.encode(value).expect("report serialization");
        self.out.push_back(frame);
    }

    /// Writes queued frames one `write` call per frame (the granularity
    /// `FaultyTransport` injects faults at). Returns bytes written.
    fn flush(&mut self) -> io::Result<usize> {
        let mut wrote = 0;
        while let Some(front) = self.out.front() {
            match self.io.write(&front[self.out_sent..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.out_sent += n;
                    wrote += n;
                    if self.out_sent == front.len() {
                        self.out.pop_front();
                        self.out_sent = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(wrote)
    }

    /// Advances the session: registers, drains inbound commands, writes
    /// pending reports. Safe to call after the session finished (returns
    /// the final status).
    pub fn step(&mut self, scratch: &mut [u8]) -> SwarmStatus {
        if let Some(status) = self.finished {
            return status;
        }
        let mut progressed = false;
        if !self.registered {
            self.registered = true;
            progressed = true;
            let report = Report {
                node_id: self.worker.node_id(),
                job_id: None,
                ips: 0.0,
                power_w: perq_apps::IDLE_WATTS,
                job_done: false,
            };
            self.queue(&report);
        }
        match self.flush() {
            Ok(n) => progressed |= n > 0,
            Err(_) => {
                self.finished = Some(SwarmStatus::Dead);
                return SwarmStatus::Dead;
            }
        }
        loop {
            match self.io.read(scratch) {
                Ok(0) => {
                    self.finished = Some(SwarmStatus::Dead);
                    return SwarmStatus::Dead;
                }
                Ok(n) => {
                    progressed = true;
                    self.decoder.feed(&scratch[..n]);
                    loop {
                        let payload = match self.decoder.next_payload() {
                            Ok(Some(p)) => p,
                            Ok(None) => break,
                            Err(_) => {
                                self.finished = Some(SwarmStatus::Dead);
                                return SwarmStatus::Dead;
                            }
                        };
                        let cmd: Command = match serde_json::from_slice(&payload) {
                            Ok(c) => c,
                            Err(_) => {
                                self.finished = Some(SwarmStatus::Dead);
                                return SwarmStatus::Dead;
                            }
                        };
                        match cmd {
                            Command::Shutdown => {
                                self.finished = Some(SwarmStatus::Shutdown);
                                return SwarmStatus::Shutdown;
                            }
                            Command::SetCap { cap_w } => {
                                self.worker.set_cap(cap_w);
                            }
                            Command::Launch {
                                job_id,
                                app,
                                work_intervals,
                            } => {
                                let idx = self
                                    .app_names
                                    .iter()
                                    .position(|n| n == &app)
                                    .unwrap_or_default();
                                self.worker.launch(job_id, idx, work_intervals);
                            }
                            Command::Tick => {
                                if self.crash_at_tick == Some(self.ticks_seen) {
                                    self.finished = Some(SwarmStatus::Crashed);
                                    return SwarmStatus::Crashed;
                                }
                                self.ticks_seen += 1;
                                let report = self.worker.tick();
                                self.queue(&report);
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.finished = Some(SwarmStatus::Dead);
                    return SwarmStatus::Dead;
                }
            }
        }
        match self.flush() {
            Ok(n) => progressed |= n > 0,
            Err(_) => {
                self.finished = Some(SwarmStatus::Dead);
                return SwarmStatus::Dead;
            }
        }
        if progressed {
            SwarmStatus::Progress
        } else {
            SwarmStatus::Idle
        }
    }
}

/// Connects `nodes` blocking TCP workers to a serve loop and runs each on
/// its own thread until shutdown. Returns once every worker exited; the
/// per-worker results preserve node order.
pub fn run_tcp_swarm(
    addr: &str,
    nodes: u32,
    interval_s: f64,
    seed: u64,
) -> Vec<Result<(), ProtoError>> {
    let mut handles = Vec::new();
    for node_id in 0..nodes {
        let addr = addr.to_string();
        handles.push((
            node_id,
            std::thread::spawn(move || {
                let stream = std::net::TcpStream::connect(&addr).map_err(ProtoError::Socket)?;
                stream.set_nodelay(true).ok();
                let worker = NodeWorker::new(
                    node_id,
                    perq_apps::ecp_suite(),
                    interval_s,
                    seed ^ u64::from(node_id),
                );
                worker.run(stream)
            }),
        ));
    }
    handles
        .into_iter()
        .map(|(node_id, h)| h.join().unwrap_or(Err(ProtoError::WorkerPanic { node_id })))
        .collect()
}
