//! Readiness notification behind a backend-agnostic trait.
//!
//! The server core is generic over [`Poller`], so the same tick loop runs
//! on real sockets (epoll, [`EpollPoller`]) and on deterministic
//! in-memory pipes ([`crate::mem::MemPoller`]) without a single `cfg` in
//! the control logic.

use std::io::{self, Read, Write};
use std::time::Duration;

/// One readiness notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollEvent {
    /// Token the I/O source was registered with.
    pub token: usize,
    /// The source can be read without blocking.
    pub readable: bool,
    /// The source can be written without blocking.
    pub writable: bool,
    /// The peer hung up or the source errored; the connection is dead.
    pub hangup: bool,
}

/// Readiness-notification backend for the event loop.
pub trait Poller {
    /// The connection type this backend multiplexes.
    type Io: Read + Write;

    /// Starts watching `io` for readability (and hangup) under `token`.
    fn register(&mut self, io: &Self::Io, token: usize) -> io::Result<()>;

    /// Adds or removes write-readiness interest for a registered source.
    fn set_write_interest(&mut self, io: &Self::Io, token: usize, on: bool) -> io::Result<()>;

    /// Stops watching a registered source.
    fn deregister(&mut self, io: &Self::Io, token: usize) -> io::Result<()>;

    /// Waits up to `timeout` (`None` = block) and appends ready events to
    /// `out`. `out` is cleared first.
    fn poll(&mut self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()>;
}

/// `epoll(7)`-backed poller over non-blocking [`std::net::TcpStream`]s.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    epoll: crate::sys::Epoll,
    buf: Vec<crate::sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    /// Creates the poller.
    pub fn new() -> io::Result<Self> {
        Ok(EpollPoller {
            epoll: crate::sys::Epoll::new()?,
            buf: vec![crate::sys::EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    /// Watches a listening socket for incoming connections under `token`.
    /// Listener tokens surface as `readable` events; the runtime accepts
    /// and attaches the new streams itself.
    pub fn add_listener(
        &mut self,
        listener: &std::net::TcpListener,
        token: usize,
    ) -> io::Result<()> {
        use std::os::unix::io::AsRawFd;
        self.epoll
            .add(listener.as_raw_fd(), crate::sys::EPOLLIN, token as u64)
    }
}

#[cfg(target_os = "linux")]
impl Poller for EpollPoller {
    type Io = std::net::TcpStream;

    fn register(&mut self, io: &Self::Io, token: usize) -> io::Result<()> {
        use std::os::unix::io::AsRawFd;
        self.epoll.add(
            io.as_raw_fd(),
            crate::sys::EPOLLIN | crate::sys::EPOLLRDHUP,
            token as u64,
        )
    }

    fn set_write_interest(&mut self, io: &Self::Io, token: usize, on: bool) -> io::Result<()> {
        use std::os::unix::io::AsRawFd;
        let mut interest = crate::sys::EPOLLIN | crate::sys::EPOLLRDHUP;
        if on {
            interest |= crate::sys::EPOLLOUT;
        }
        self.epoll.modify(io.as_raw_fd(), interest, token as u64)
    }

    fn deregister(&mut self, io: &Self::Io, _token: usize) -> io::Result<()> {
        use std::os::unix::io::AsRawFd;
        self.epoll.delete(io.as_raw_fd())
    }

    fn poll(&mut self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let timeout_ms = match timeout {
            None => -1,
            // Round up so a 0 < t < 1 ms timeout does not spin.
            Some(t) => {
                let mut ms = t.as_millis();
                if t.subsec_nanos() % 1_000_000 != 0 {
                    ms += 1;
                }
                ms.min(i32::MAX as u128) as i32
            }
        };
        let n = self.epoll.wait(&mut self.buf, timeout_ms)?;
        for ev in &self.buf[..n] {
            let bits = { ev.events };
            out.push(PollEvent {
                token: { ev.data } as usize,
                readable: bits & crate::sys::EPOLLIN != 0,
                writable: bits & crate::sys::EPOLLOUT != 0,
                hangup: bits
                    & (crate::sys::EPOLLERR | crate::sys::EPOLLHUP | crate::sys::EPOLLRDHUP)
                    != 0,
            });
        }
        Ok(())
    }
}
