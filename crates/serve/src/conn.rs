//! Per-connection state machines: incremental frame decode and bounded
//! outbound queues with class-aware backpressure.

use perq_proto::{FrameDecoder, FrameEncoder};
use serde::Serialize;
use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// What losing a queued frame would mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameClass {
    /// Must reach the worker (`Tick`, `Launch`, `Shutdown`). Never
    /// dropped: if the queue cannot take one, the connection is written
    /// off instead.
    Decision,
    /// Latest-value telemetry (`SetCap`): an unsent frame with the same
    /// key is replaced in place, so a slow consumer sees the freshest
    /// value instead of a backlog.
    Coalesce {
        /// Replacement key (the node id).
        key: u32,
    },
}

/// Connection-level failure that warrants a write-off.
#[derive(Debug)]
pub enum ConnError {
    /// Transport failed or the peer hung up.
    Io(io::Error),
    /// The byte stream is no longer a valid frame sequence (corruption).
    Frame(perq_proto::FrameError),
    /// A decision frame could not be queued within the outbound bound.
    Overflow,
}

impl std::fmt::Display for ConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnError::Io(e) => write!(f, "transport: {e}"),
            ConnError::Frame(e) => write!(f, "framing: {e}"),
            ConnError::Overflow => write!(f, "decision-frame overflow"),
        }
    }
}

#[derive(Debug)]
struct Outbound {
    bytes: Vec<u8>,
    class: FrameClass,
    sent: usize,
}

/// One worker connection owned by the event loop.
#[derive(Debug)]
pub struct WorkerConn<Io> {
    /// The non-blocking transport.
    pub io: Io,
    /// Poller token.
    pub token: usize,
    /// Node id learned from the registration report.
    pub node_id: Option<u32>,
    /// Server tick at which the connection was adopted (drives the
    /// registration deadline for peers whose first report never arrives).
    pub attached_tick: u64,
    decoder: FrameDecoder,
    encoder: FrameEncoder,
    outq: VecDeque<Outbound>,
    queued_bytes: usize,
    max_queued_bytes: usize,
    /// Whether write interest is currently armed with the poller.
    pub want_write: bool,
    /// Frames replaced in place instead of queued (backpressure signal).
    pub coalesced: u64,
}

impl<Io: Read + Write> WorkerConn<Io> {
    /// Wraps a transport with an outbound bound of `max_queued_bytes`.
    pub fn new(io: Io, token: usize, max_queued_bytes: usize) -> Self {
        WorkerConn {
            io,
            token,
            node_id: None,
            attached_tick: 0,
            decoder: FrameDecoder::new(),
            encoder: FrameEncoder::new(),
            outq: VecDeque::new(),
            queued_bytes: 0,
            max_queued_bytes,
            want_write: false,
            coalesced: 0,
        }
    }

    /// Reads everything currently available and returns the complete
    /// frame payloads. `Ok` with an empty vec means "nothing yet";
    /// errors (including clean EOF, reported as `UnexpectedEof`) mean the
    /// connection is dead.
    pub fn read_ready(&mut self, scratch: &mut [u8]) -> Result<Vec<Vec<u8>>, ConnError> {
        let mut frames = Vec::new();
        loop {
            match self.io.read(scratch) {
                Ok(0) => {
                    // Drain frames completed by earlier iterations before
                    // surfacing the EOF; the caller writes us off either way.
                    return Err(ConnError::Io(io::ErrorKind::UnexpectedEof.into()));
                }
                Ok(n) => {
                    self.decoder.feed(&scratch[..n]);
                    loop {
                        match self.decoder.next_payload() {
                            Ok(Some(p)) => frames.push(p),
                            Ok(None) => break,
                            Err(e) => return Err(ConnError::Frame(e)),
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(frames),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ConnError::Io(e)),
            }
        }
    }

    /// Encodes and queues a frame, then opportunistically flushes.
    ///
    /// Returns `Ok(true)` if the queue fully drained (no write interest
    /// needed). [`ConnError::Overflow`] is only possible for
    /// [`FrameClass::Decision`]; an unqueueable coalescible frame is
    /// silently superseded by whatever is already queued.
    pub fn push<T: Serialize>(&mut self, value: &T, class: FrameClass) -> Result<bool, ConnError> {
        let bytes = self.encoder.encode(value).map_err(ConnError::Frame)?;
        if let FrameClass::Coalesce { key } = class {
            // Replace an unsent frame with the same key in place.
            if let Some(slot) = self.outq.iter_mut().find(|o| {
                o.sent == 0 && matches!(o.class, FrameClass::Coalesce { key: k } if k == key)
            }) {
                self.queued_bytes = self.queued_bytes - slot.bytes.len() + bytes.len();
                slot.bytes = bytes;
                self.coalesced += 1;
                return self.flush().map_err(ConnError::Io);
            }
        }
        if self.queued_bytes + bytes.len() > self.max_queued_bytes {
            return match class {
                FrameClass::Decision => Err(ConnError::Overflow),
                FrameClass::Coalesce { .. } => {
                    // The bound is full of fresher-or-equal traffic; the
                    // next tick re-sends the current value anyway.
                    self.coalesced += 1;
                    Ok(self.outq.is_empty())
                }
            };
        }
        self.queued_bytes += bytes.len();
        self.outq.push_back(Outbound {
            bytes,
            class,
            sent: 0,
        });
        self.flush().map_err(ConnError::Io)
    }

    /// Writes queued frames until the transport blocks. `Ok(true)` when
    /// the queue is empty afterwards.
    pub fn flush(&mut self) -> io::Result<bool> {
        while let Some(front) = self.outq.front_mut() {
            match self.io.write(&front.bytes[front.sent..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    front.sent += n;
                    self.queued_bytes -= n;
                    if front.sent == front.bytes.len() {
                        self.outq.pop_front();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Whether frames are waiting to be written.
    pub fn has_backlog(&self) -> bool {
        !self.outq.is_empty()
    }

    /// Bytes currently queued outbound.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::mem_pair;
    use perq_proto::Command;

    fn decode_all(bytes: &[u8]) -> Vec<Command> {
        let mut dec = FrameDecoder::new();
        dec.feed(bytes);
        let mut out = Vec::new();
        while let Some(p) = dec.next_payload().unwrap() {
            out.push(serde_json::from_slice(&p).unwrap());
        }
        out
    }

    #[test]
    fn coalesce_replaces_unsent_setcap_in_place() {
        // Pipe too small for anything to leave the queue.
        let (srv, mut peer) = mem_pair(1);
        // Fill the single-byte pipe so pushes stay queued.
        let mut conn = WorkerConn::new(srv, 1, 4096);
        conn.push(&Command::Tick, FrameClass::Decision).unwrap();
        assert!(conn.has_backlog());
        conn.push(
            &Command::SetCap { cap_w: 100.0 },
            FrameClass::Coalesce { key: 3 },
        )
        .unwrap();
        conn.push(
            &Command::SetCap { cap_w: 150.0 },
            FrameClass::Coalesce { key: 3 },
        )
        .unwrap();
        assert_eq!(conn.coalesced, 1);

        // Drain: widen the pipe by reading on the peer side as we flush.
        let mut received = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            let drained = conn.flush().unwrap();
            match peer.read(&mut buf) {
                Ok(n) => received.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("{e}"),
            }
            if drained && peer.pending_read() == 0 {
                break;
            }
        }
        let cmds = decode_all(&received);
        assert_eq!(cmds.len(), 2, "second SetCap replaced the first");
        assert_eq!(cmds[0], Command::Tick);
        assert_eq!(cmds[1], Command::SetCap { cap_w: 150.0 });
    }

    #[test]
    fn decision_overflow_is_an_error_but_coalesce_is_not() {
        let (srv, _peer) = mem_pair(1);
        let mut conn = WorkerConn::new(srv, 1, 12); // room for ~1 small frame
        conn.push(&Command::Tick, FrameClass::Decision).unwrap();
        let err = conn.push(&Command::Shutdown, FrameClass::Decision);
        assert!(matches!(err, Err(ConnError::Overflow)));
        // A coalescible frame over the bound is superseded, not fatal.
        conn.push(
            &Command::SetCap { cap_w: 90.0 },
            FrameClass::Coalesce { key: 1 },
        )
        .unwrap();
        assert_eq!(conn.coalesced, 1);
    }

    #[test]
    fn read_ready_surfaces_eof_and_frames() {
        let (srv, mut peer) = mem_pair(4096);
        let mut conn = WorkerConn::new(srv, 1, 4096);
        let enc = FrameEncoder::new();
        peer.write_all(&enc.encode(&Command::Tick).unwrap())
            .unwrap();
        let mut scratch = [0u8; 512];
        let frames = conn.read_ready(&mut scratch).unwrap();
        assert_eq!(frames.len(), 1);
        peer.close();
        let err = conn.read_ready(&mut scratch).unwrap_err();
        assert!(matches!(err, ConnError::Io(_)));
    }
}
