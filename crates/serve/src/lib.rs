//! perq-serve: a non-blocking control-plane service for power-capped
//! clusters.
//!
//! `perq-proto`'s [`perq_proto::ProtoCluster`] drives its workers with
//! blocking reads — one outstanding socket at a time, which is fine for a
//! 16-node Tardis replica but collapses long before the 100,000-client
//! report-collection stress the paper measures (§3). This crate is the
//! production-shaped controller: a single-threaded, readiness-driven
//! event loop that owns every worker socket as a non-blocking
//! per-connection state machine and decides on a *fixed tick* instead of
//! per-message:
//!
//! - **Poller abstraction** ([`poller`]): readiness notification behind a
//!   small trait. On Linux the backend is `epoll(7)` through a thin
//!   hand-rolled FFI shim ([`sys`], no libc crate); tests and benches use
//!   a deterministic in-memory backend ([`mem`]) whose duplex pipes
//!   return `WouldBlock` exactly like real sockets.
//! - **Connection state machines** ([`conn`]): incremental frame decode
//!   on `perq-proto`'s sans-io [`perq_proto::FrameDecoder`], bounded
//!   outbound queues with backpressure. Coalescible frames (`SetCap`)
//!   are replaced in place when unsent; decision frames (`Tick`,
//!   `Shutdown`) are never dropped — if one cannot be queued the
//!   connection is written off.
//! - **Batched decide ticks** ([`server`]): power readings arriving
//!   during an interval are batched (latest per node wins); on the tick
//!   the policy runs *once* under a wall-clock deadline
//!   ([`perq_sim::PowerPolicy::set_decide_deadline`]) and per-node caps
//!   fan out. Dead workers leave the live set, so the budget reallocates
//!   to survivors with no special-case code.
//! - **Live observability** ([`http`]): a hand-rolled HTTP/1.1 responder
//!   on the same loop serves Prometheus text on `GET /metrics` and
//!   accepts budget / policy hot-reload on `POST /admin/budget` and
//!   `POST /admin/policy` without missing a tick.
//! - **Swarm workers** ([`swarm`]): sans-io wrapper around
//!   [`perq_proto::NodeWorker`] for deterministic in-memory swarms, plus
//!   a TCP runner used by the `perq swarm` CLI.
//!
//! Determinism discipline: the main [`perq_telemetry::Recorder`] is
//! driven by logical time (`tick × interval_s`) and carries only
//! poll-order-insensitive metrics, so an in-memory run exports
//! byte-identical telemetry regardless of poll batch size; wall-clock
//! latencies (tick/decide duration) go to a separate engine recorder.

pub mod conn;
pub mod http;
pub mod mem;
pub mod poller;
pub mod rt;
pub mod server;
pub mod swarm;
#[cfg(target_os = "linux")]
pub mod sys;

pub use conn::{ConnError, FrameClass, WorkerConn};
pub use http::{response, BadRequest, HttpParser, HttpRequest};
pub use mem::{mem_pair, MemIo, MemPoller};
#[cfg(target_os = "linux")]
pub use poller::EpollPoller;
pub use poller::{PollEvent, Poller};
pub use rt::{serve_tcp, ServeSummary};
pub use server::{make_policy, make_policy_with_profile, PumpOutcome, ServeConfig, Server};
pub use swarm::{run_tcp_swarm, SwarmStatus, SwarmWorker};
