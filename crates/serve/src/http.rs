//! Hand-rolled, sans-io HTTP/1.1 request parsing and response building —
//! just enough for a metrics scrape and admin POSTs, with zero
//! dependencies. One request per connection (`Connection: close`).

/// Maximum accepted header block, bytes.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;
/// Maximum accepted request body, bytes.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Uppercase method ("GET", "POST", ...).
    pub method: String,
    /// Request target as sent (path + optional query).
    pub path: String,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// The stream is not parseable HTTP: answer 400 and close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadRequest;

impl std::fmt::Display for BadRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed HTTP request")
    }
}

impl std::error::Error for BadRequest {}

/// Incremental request parser. Feed bytes as they arrive; a complete
/// request pops out once, further bytes are ignored.
#[derive(Debug, Default)]
pub struct HttpParser {
    buf: Vec<u8>,
}

impl HttpParser {
    /// Creates an empty parser.
    pub fn new() -> Self {
        HttpParser::default()
    }

    /// Appends newly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Tries to extract a complete request. `Ok(None)` means "need more
    /// bytes"; `Err` means the stream is not parseable HTTP (answer 400
    /// and close).
    pub fn take_request(&mut self) -> Result<Option<HttpRequest>, BadRequest> {
        let header_end = match find_subslice(&self.buf, b"\r\n\r\n") {
            Some(i) => i,
            None => {
                if self.buf.len() > MAX_HEADER_BYTES {
                    return Err(BadRequest);
                }
                return Ok(None);
            }
        };
        let head = std::str::from_utf8(&self.buf[..header_end]).map_err(|_| BadRequest)?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().ok_or(BadRequest)?;
        let mut parts = request_line.split_ascii_whitespace();
        let method = parts.next().ok_or(BadRequest)?.to_ascii_uppercase();
        let path = parts.next().ok_or(BadRequest)?.to_string();
        let version = parts.next().ok_or(BadRequest)?;
        if !version.starts_with("HTTP/1.") {
            return Err(BadRequest);
        }
        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| BadRequest)?;
                }
            }
        }
        if content_length > MAX_BODY_BYTES {
            return Err(BadRequest);
        }
        let body_start = header_end + 4;
        if self.buf.len() < body_start + content_length {
            return Ok(None);
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.clear();
        Ok(Some(HttpRequest { method, path, body }))
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Builds a complete `Connection: close` response.
pub fn response(status: u16, reason: &str, content_type: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Shorthand for a `text/plain` response.
pub fn text_response(status: u16, reason: &str, body: &str) -> Vec<u8> {
    response(status, reason, "text/plain; charset=utf-8", body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_get_split_across_feeds() {
        let mut p = HttpParser::new();
        p.feed(b"GET /metrics HT");
        assert_eq!(p.take_request().unwrap(), None);
        p.feed(b"TP/1.1\r\nHost: x\r\n\r\n");
        let req = p.take_request().unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let mut p = HttpParser::new();
        p.feed(b"POST /admin/budget HTTP/1.1\r\nContent-Length: 11\r\n\r\nwatts=");
        assert_eq!(p.take_request().unwrap(), None);
        p.feed(b"290.5");
        let req = p.take_request().unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"watts=290.5");
    }

    #[test]
    fn garbage_is_rejected() {
        let mut p = HttpParser::new();
        p.feed(b"\x00\x01\x02garbage\r\n\r\n");
        assert!(p.take_request().is_err());
    }

    #[test]
    fn response_has_content_length_and_close() {
        let bytes = text_response(200, "OK", "ok\n");
        let s = String::from_utf8(bytes).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 3\r\n"));
        assert!(s.contains("Connection: close\r\n"));
        assert!(s.ends_with("\r\n\r\nok\n"));
    }
}
