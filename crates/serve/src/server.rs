//! The control-plane server: batched decide ticks over non-blocking
//! connections, with live metrics and hot-reloadable budget/policy.
//!
//! Control semantics are ported from `perq-proto`'s `ClusterController`,
//! specialised to the service shape: every attached worker runs a
//! long-lived size-1 "service job", so the policy context is one
//! [`JobView`] per live node and dead workers fall out of the live set —
//! the next tick's shares are computed over the survivors, which *is* the
//! budget reallocation (no special-case code).

use crate::conn::{ConnError, FrameClass, WorkerConn};
use crate::http::{response, text_response, HttpParser, HttpRequest};
use crate::poller::{PollEvent, Poller};
use perq_apps::{IDLE_WATTS, TDP_WATTS};
use perq_core::{PerqConfig, PerqPolicy};
use perq_proto::{Command, Report};
use perq_sim::{FairPolicy, JobView, PolicyContext, PowerPolicy};
use perq_telemetry::{FieldValue, Recorder};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Lowest admissible per-node cap, watts (mirrors the prototype).
pub const MIN_CAP_WATTS: f64 = 90.0;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worst-case-provisioned node count: the system budget is
    /// `wp_nodes × TDP` until hot-reloaded.
    pub wp_nodes: usize,
    /// Logical control-interval length, seconds (drives telemetry time
    /// and the policy context; unrelated to the wall tick period).
    pub interval_s: f64,
    /// Wall-clock tick period for the TCP runtime.
    pub tick: Duration,
    /// Wall-clock budget for one policy decision within a tick.
    pub decide_budget: Duration,
    /// Consecutive report-less ticks after which a worker is written off.
    pub heartbeat_ticks: u64,
    /// Per-connection outbound queue bound, bytes.
    pub max_queued_bytes: usize,
    /// Application profile launched on every registering worker.
    pub app: String,
    /// Work per service job, in TDP-equivalent intervals. The default is
    /// effectively endless — workers run until shut down or written off.
    pub work_intervals: f64,
    /// Stop after this many ticks (`None` = run forever).
    pub max_ticks: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            wp_nodes: 8,
            interval_s: 1.0,
            tick: Duration::from_millis(50),
            decide_budget: Duration::from_millis(20),
            heartbeat_ticks: 3,
            max_queued_bytes: 64 * 1024,
            app: "STREAM".to_string(),
            work_intervals: 1e18,
            max_ticks: None,
        }
    }
}

/// Builds a policy by its CLI/admin name with the default (`f64_aos`)
/// solver profile.
pub fn make_policy(name: &str) -> Option<Box<dyn PowerPolicy>> {
    make_policy_with_profile(name, perq_qp::SolverProfile::default())
}

/// Builds a policy by its CLI/admin name, running its QP solves under the
/// given precision/layout profile. Closed-form policies (FOP) ignore the
/// profile — they have no solver.
pub fn make_policy_with_profile(
    name: &str,
    profile: perq_qp::SolverProfile,
) -> Option<Box<dyn PowerPolicy>> {
    match name.to_ascii_lowercase().as_str() {
        "fop" | "fair" => Some(Box::new(FairPolicy::new())),
        "perq" => Some(Box::new(PerqPolicy::new(PerqConfig {
            solver_profile: profile,
            ..PerqConfig::default()
        }))),
        _ => None,
    }
}

/// Result of one [`Server::pump`] call.
#[derive(Debug, Default)]
pub struct PumpOutcome {
    /// Ready events serviced on owned connections.
    pub handled: usize,
    /// Ready events for tokens the server does not own (listeners).
    pub unclaimed: Vec<PollEvent>,
}

#[derive(Debug)]
struct NodeState {
    token: usize,
    job_id: u64,
    cap_w: f64,
    last_ips: Option<f64>,
    last_power_w: Option<f64>,
    /// A report arrived since the last tick (the batch flag).
    batched: bool,
    last_report_tick: u64,
    first_tick: u64,
}

struct HttpConn<Io> {
    io: Io,
    parser: HttpParser,
    out: Vec<u8>,
    sent: usize,
    responding: bool,
}

/// The event-loop server, generic over the readiness backend.
pub struct Server<P: Poller> {
    poller: P,
    cfg: ServeConfig,
    policy: Box<dyn PowerPolicy>,
    conns: BTreeMap<usize, WorkerConn<P::Io>>,
    https: BTreeMap<usize, HttpConn<P::Io>>,
    nodes: BTreeMap<u32, NodeState>,
    next_token: usize,
    ticks: u64,
    budget_w: f64,
    /// Deterministic, logical-time telemetry (what `/metrics` serves).
    rec: Recorder,
    /// Wall-clock engine telemetry (tick/decide latency, backpressure).
    engine: Recorder,
    scratch: Vec<u8>,
}

impl<P: Poller> Server<P> {
    /// Creates a server with no telemetry attached.
    pub fn new(poller: P, cfg: ServeConfig, policy: Box<dyn PowerPolicy>) -> Self {
        Server::with_recorders(poller, cfg, policy, Recorder::noop(), Recorder::noop())
    }

    /// Creates a server with explicit recorders. `rec` must be driven by
    /// logical time for deterministic exports; `engine` may use the wall
    /// clock.
    pub fn with_recorders(
        poller: P,
        cfg: ServeConfig,
        mut policy: Box<dyn PowerPolicy>,
        rec: Recorder,
        engine: Recorder,
    ) -> Self {
        // The policy records solver diagnostics and spans with wall-clock
        // timing, so it reports into the engine recorder — the main
        // recorder stays poll-order- and wall-clock-independent.
        policy.set_recorder(engine.clone());
        let budget_w = cfg.wp_nodes as f64 * TDP_WATTS;
        Server {
            poller,
            cfg,
            policy,
            conns: BTreeMap::new(),
            https: BTreeMap::new(),
            nodes: BTreeMap::new(),
            next_token: 16, // low tokens reserved for runtime listeners
            ticks: 0,
            budget_w,
            rec,
            engine,
            scratch: vec![0u8; 16 * 1024],
        }
    }

    /// Completed decide ticks so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Live (registered, not written-off) worker count.
    pub fn live_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Current system power budget, watts.
    pub fn budget_w(&self) -> f64 {
        self.budget_w
    }

    /// The deterministic recorder backing `/metrics`.
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// The wall-clock engine recorder backing `/metrics/engine`.
    pub fn engine_recorder(&self) -> &Recorder {
        &self.engine
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Access to the poller (the TCP runtime registers listeners on it).
    pub fn poller_mut(&mut self) -> &mut P {
        &mut self.poller
    }

    /// Adopts an established worker transport into the event loop.
    pub fn attach_worker(&mut self, io: P::Io) -> io::Result<usize> {
        let token = self.next_token;
        self.next_token += 1;
        self.poller.register(&io, token)?;
        let mut conn = WorkerConn::new(io, token, self.cfg.max_queued_bytes);
        conn.attached_tick = self.ticks;
        self.conns.insert(token, conn);
        Ok(token)
    }

    /// Adopts an established HTTP client transport.
    pub fn attach_http(&mut self, io: P::Io) -> io::Result<usize> {
        let token = self.next_token;
        self.next_token += 1;
        self.poller.register(&io, token)?;
        self.https.insert(
            token,
            HttpConn {
                io,
                parser: HttpParser::new(),
                out: Vec::new(),
                sent: 0,
                responding: false,
            },
        );
        Ok(token)
    }

    /// Polls once and services every ready connection. Events for tokens
    /// the server does not own (runtime listeners) are returned to the
    /// caller; `handled` counts the ones it serviced itself, so harnesses
    /// can pump to quiescence even under a small poll batch.
    pub fn pump(&mut self, timeout: Option<Duration>) -> io::Result<PumpOutcome> {
        let mut events = Vec::new();
        self.poller.poll(&mut events, timeout)?;
        let mut outcome = PumpOutcome {
            handled: 0,
            unclaimed: Vec::new(),
        };
        for ev in events {
            if self.conns.contains_key(&ev.token) {
                self.worker_event(ev);
                outcome.handled += 1;
            } else if self.https.contains_key(&ev.token) {
                self.http_event(ev);
                outcome.handled += 1;
            } else {
                outcome.unclaimed.push(ev);
            }
        }
        Ok(outcome)
    }

    fn worker_event(&mut self, ev: PollEvent) {
        if ev.readable || ev.hangup {
            let frames = {
                let conn = self.conns.get_mut(&ev.token).expect("checked by pump");
                conn.read_ready(&mut self.scratch)
            };
            match frames {
                Ok(frames) => {
                    for payload in frames {
                        if !self.on_worker_frame(ev.token, &payload) {
                            return; // connection written off mid-batch
                        }
                    }
                }
                Err(ConnError::Frame(_)) => {
                    self.write_off(ev.token, "corrupt-frame");
                    return;
                }
                Err(_) => {
                    self.write_off(ev.token, "peer-gone");
                    return;
                }
            }
        }
        if ev.writable {
            self.flush_worker(ev.token);
        }
    }

    /// Handles one inbound frame; returns `false` if the connection died.
    fn on_worker_frame(&mut self, token: usize, payload: &[u8]) -> bool {
        let report: Report = match serde_json::from_slice(payload) {
            Ok(r) => r,
            Err(_) => {
                self.write_off(token, "corrupt-frame");
                return false;
            }
        };
        self.rec.counter_inc("perq_serve_frames_recv_total");
        let registered = self.conns.get(&token).and_then(|c| c.node_id).is_some();
        if !registered {
            return self.register_worker(token, &report);
        }
        let node_id = self.conns[&token].node_id.expect("registered");
        if report.node_id != node_id {
            self.write_off(token, "node-id-mismatch");
            return false;
        }
        let ticks = self.ticks;
        if let Some(n) = self.nodes.get_mut(&node_id) {
            if n.batched {
                // A delayed report from an earlier interval was superseded.
                self.engine
                    .counter_inc("perq_serve_reports_superseded_total");
            }
            n.last_ips = Some(report.ips);
            n.last_power_w = Some(report.power_w);
            n.batched = true;
            n.last_report_tick = ticks;
        }
        self.rec.counter_inc("perq_serve_reports_total");
        true
    }

    fn register_worker(&mut self, token: usize, report: &Report) -> bool {
        let node_id = report.node_id;
        // A reconnecting node supersedes its stale session.
        if let Some(stale) = self.nodes.get(&node_id).map(|n| n.token) {
            self.write_off(stale, "superseded");
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.node_id = Some(node_id);
        }
        self.nodes.insert(
            node_id,
            NodeState {
                token,
                job_id: u64::from(node_id) + 1,
                cap_w: TDP_WATTS,
                last_ips: None,
                last_power_w: None,
                batched: false,
                last_report_tick: self.ticks,
                first_tick: self.ticks,
            },
        );
        self.rec.counter_inc("perq_serve_workers_registered_total");
        self.rec.event(
            "perq_serve_register",
            &[
                ("node", FieldValue::U64(u64::from(node_id))),
                ("tick", FieldValue::U64(self.ticks)),
            ],
        );
        let launch = Command::Launch {
            job_id: u64::from(node_id) + 1,
            app: self.cfg.app.clone(),
            work_intervals: self.cfg.work_intervals,
        };
        self.send_to(token, &launch, FrameClass::Decision)
    }

    /// Queues a frame on a worker connection, arming write interest or
    /// writing the connection off as needed. Returns `false` if the
    /// connection died.
    fn send_to(&mut self, token: usize, cmd: &Command, class: FrameClass) -> bool {
        let result = match self.conns.get_mut(&token) {
            Some(conn) => conn.push(cmd, class),
            None => return false,
        };
        match result {
            Ok(drained) => {
                self.update_write_interest(token, !drained);
                true
            }
            Err(ConnError::Overflow) => {
                self.engine
                    .counter_inc("perq_serve_decision_overflows_total");
                self.write_off(token, "decision-overflow");
                false
            }
            Err(_) => {
                self.write_off(token, "peer-gone");
                false
            }
        }
    }

    fn flush_worker(&mut self, token: usize) {
        let flushed = match self.conns.get_mut(&token) {
            Some(conn) => conn.flush(),
            None => return,
        };
        match flushed {
            Ok(drained) => self.update_write_interest(token, !drained),
            Err(_) => self.write_off(token, "peer-gone"),
        }
    }

    fn update_write_interest(&mut self, token: usize, want: bool) {
        if let Some(conn) = self.conns.get_mut(&token) {
            if conn.want_write != want {
                conn.want_write = want;
                let _ = self.poller.set_write_interest(&conn.io, token, want);
            }
        }
    }

    /// Removes a worker connection and its node state. The freed budget
    /// share flows to the survivors on the next tick automatically.
    fn write_off(&mut self, token: usize, reason: &'static str) {
        let conn = match self.conns.remove(&token) {
            Some(c) => c,
            None => return,
        };
        let _ = self.poller.deregister(&conn.io, token);
        self.engine
            .counter_add("perq_serve_caps_coalesced_total", conn.coalesced);
        if let Some(node_id) = conn.node_id {
            if let Some(n) = self.nodes.get(&node_id) {
                // Only drop state that still belongs to this connection —
                // a reconnect may have already superseded it.
                if n.token == token {
                    let job_id = n.job_id;
                    self.nodes.remove(&node_id);
                    self.policy.job_departed(job_id);
                }
            }
            self.rec.counter_inc("perq_serve_writeoffs_total");
            self.rec.event(
                "perq_serve_writeoff",
                &[
                    ("node", FieldValue::U64(u64::from(node_id))),
                    ("tick", FieldValue::U64(self.ticks)),
                    ("reason", FieldValue::Str(reason)),
                ],
            );
        } else {
            self.rec.counter_inc("perq_serve_unregistered_closes_total");
        }
    }

    /// Runs one decide tick: heartbeat write-offs, batched readings into
    /// a policy call under the decide deadline, cap fan-out.
    pub fn tick(&mut self) {
        let tick_start = Instant::now();
        self.rec.set_time_s(self.ticks as f64 * self.cfg.interval_s);

        // Heartbeat: write off workers silent for too many ticks, and
        // connections that never completed registration (their first
        // report was lost) within the same window.
        let dead: Vec<usize> = self
            .nodes
            .values()
            .filter(|n| self.ticks - n.last_report_tick >= self.cfg.heartbeat_ticks)
            .map(|n| n.token)
            .collect();
        for token in dead {
            self.write_off(token, "heartbeat");
        }
        let unregistered: Vec<usize> = self
            .conns
            .values()
            .filter(|c| {
                c.node_id.is_none() && self.ticks - c.attached_tick >= self.cfg.heartbeat_ticks
            })
            .map(|c| c.token)
            .collect();
        for token in unregistered {
            self.write_off(token, "registration-timeout");
        }

        // Batch the interval's readings into one policy context: one
        // size-1 service job per live node, latest report wins, lost
        // reports surface as `None` measurements.
        let views: Vec<JobView> = self
            .nodes
            .values()
            .map(|n| JobView {
                id: n.job_id,
                size: 1,
                elapsed_s: (self.ticks - n.first_tick) as f64 * self.cfg.interval_s,
                measured_ips: if n.batched { n.last_ips } else { None },
                current_cap_w: n.cap_w,
                measured_power_w: if n.batched { n.last_power_w } else { None },
                remaining_node_hours: 1e9,
                is_new: self.ticks == n.first_tick,
            })
            .collect();

        if !views.is_empty() {
            let ctx = PolicyContext {
                time_s: self.ticks as f64 * self.cfg.interval_s,
                interval_s: self.cfg.interval_s,
                busy_budget_w: self.budget_w,
                cap_min_w: MIN_CAP_WATTS,
                cap_max_w: TDP_WATTS,
                total_nodes: views.len(),
                wp_nodes: self.cfg.wp_nodes,
                // The control plane has no batch queue and does not
                // meter site-level violations; both observations read
                // as "none so far".
                queue_depth: 0,
                violation_s: 0.0,
                jobs: &views,
            };
            let fair = ctx.fair_cap_w();
            self.policy
                .set_decide_deadline(Some(tick_start + self.cfg.decide_budget));
            let decide_start = Instant::now();
            let assignments = self.policy.assign(&ctx);
            let decide_elapsed = decide_start.elapsed();
            self.engine
                .observe("perq_serve_decide_seconds", decide_elapsed.as_secs_f64());
            // Decide latency split by the policy's numeric profile, so an
            // f32/mixed rollout can be compared against the f64 reference
            // from the same scrape (the recorder interns static names, so
            // the label is baked into the metric name).
            let latency_metric = match self.policy.solver_profile_label() {
                "f64_soa" => "perq_serve_decide_latency_ms_f64_soa",
                "f32_soa" => "perq_serve_decide_latency_ms_f32_soa",
                "mixed_soa" => "perq_serve_decide_latency_ms_mixed_soa",
                _ => "perq_serve_decide_latency_ms_f64_aos",
            };
            self.engine
                .observe(latency_metric, decide_elapsed.as_secs_f64() * 1e3);
            self.policy.set_decide_deadline(None);

            let caps: Vec<f64> = if assignments.len() == views.len() {
                assignments
                    .iter()
                    .map(|a| a.cap_w.clamp(MIN_CAP_WATTS, TDP_WATTS))
                    .collect()
            } else {
                // Defensive: a policy that broke its contract falls back
                // to the fair share rather than taking the loop down.
                self.rec.counter_inc("perq_serve_policy_len_mismatch_total");
                vec![fair; views.len()]
            };

            // Fan out. Collect first: pushing borrows the connections.
            let plan: Vec<(u32, usize, f64, bool)> = self
                .nodes
                .iter()
                .zip(caps.iter())
                .map(|((&id, n), &cap)| (id, n.token, cap, (cap - n.cap_w).abs() > 1e-9))
                .collect();
            let mut setcaps = 0u64;
            for &(node_id, token, cap, changed) in &plan {
                if changed {
                    if !self.send_to(
                        token,
                        &Command::SetCap { cap_w: cap },
                        FrameClass::Coalesce { key: node_id },
                    ) {
                        continue;
                    }
                    setcaps += 1;
                }
                if !self.send_to(token, &Command::Tick, FrameClass::Decision) {
                    continue;
                }
                if let Some(n) = self.nodes.get_mut(&node_id) {
                    n.cap_w = cap;
                    n.batched = false;
                }
            }
            self.rec.counter_add("perq_serve_setcaps_total", setcaps);
        }

        let power: f64 = self
            .nodes
            .values()
            .map(|n| n.last_power_w.unwrap_or(IDLE_WATTS))
            .sum();
        let caps_sum: f64 = self.nodes.values().map(|n| n.cap_w).sum();
        self.rec
            .gauge_set("perq_serve_live_nodes", self.nodes.len() as f64);
        self.rec.gauge_set("perq_serve_budget_w", self.budget_w);
        self.rec.gauge_set("perq_serve_power_w", power);
        self.rec.gauge_set("perq_serve_caps_w", caps_sum);
        if power > self.budget_w {
            self.rec.counter_inc("perq_serve_budget_violations_total");
        }
        self.rec.counter_inc("perq_serve_ticks_total");
        self.engine.observe(
            "perq_serve_tick_seconds",
            tick_start.elapsed().as_secs_f64(),
        );
        self.ticks += 1;
    }

    /// Queues `Shutdown` on every worker and flushes best-effort.
    pub fn shutdown(&mut self) {
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            self.send_to(token, &Command::Shutdown, FrameClass::Decision);
        }
    }

    /// Whether any worker still has unflushed outbound frames.
    pub fn has_backlog(&self) -> bool {
        self.conns.values().any(|c| c.has_backlog())
    }

    fn http_event(&mut self, ev: PollEvent) {
        // Read & parse with a narrow borrow; fall out with a verdict.
        enum Verdict {
            Pending,
            Close,
            Request(HttpRequest),
            Bad,
        }
        let mut verdict = Verdict::Pending;
        {
            let conn = self.https.get_mut(&ev.token).expect("checked by pump");
            if ev.readable || ev.hangup {
                loop {
                    match conn.io.read(&mut self.scratch) {
                        Ok(0) => {
                            verdict = Verdict::Close;
                            break;
                        }
                        Ok(n) => {
                            if !conn.responding {
                                conn.parser.feed(&self.scratch[..n]);
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            verdict = Verdict::Close;
                            break;
                        }
                    }
                }
                if matches!(verdict, Verdict::Pending) && !conn.responding {
                    match conn.parser.take_request() {
                        Ok(Some(req)) => verdict = Verdict::Request(req),
                        Ok(None) => {}
                        Err(_) => verdict = Verdict::Bad,
                    }
                }
            }
        }
        match verdict {
            Verdict::Close => {
                self.close_http(ev.token);
                return;
            }
            Verdict::Request(req) => {
                let bytes = self.http_response(&req);
                if let Some(conn) = self.https.get_mut(&ev.token) {
                    conn.out = bytes;
                    conn.sent = 0;
                    conn.responding = true;
                }
            }
            Verdict::Bad => {
                if let Some(conn) = self.https.get_mut(&ev.token) {
                    conn.out = text_response(400, "Bad Request", "bad request\n");
                    conn.sent = 0;
                    conn.responding = true;
                }
            }
            Verdict::Pending => {}
        }
        self.flush_http(ev.token);
    }

    fn flush_http(&mut self, token: usize) {
        let mut done = false;
        let mut dead = false;
        let mut want = false;
        if let Some(conn) = self.https.get_mut(&token) {
            if !conn.responding {
                return;
            }
            while conn.sent < conn.out.len() {
                match conn.io.write(&conn.out[conn.sent..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => conn.sent += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        want = true;
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            done = conn.sent == conn.out.len();
        }
        if dead || done {
            self.close_http(token);
        } else if want {
            if let Some(conn) = self.https.get(&token) {
                let _ = self.poller.set_write_interest(&conn.io, token, true);
            }
        }
    }

    fn close_http(&mut self, token: usize) {
        if let Some(conn) = self.https.remove(&token) {
            let _ = self.poller.deregister(&conn.io, token);
        }
    }

    fn http_response(&mut self, req: &HttpRequest) -> Vec<u8> {
        let path = req.path.split('?').next().unwrap_or("");
        match (req.method.as_str(), path) {
            ("GET", "/metrics") => response(
                200,
                "OK",
                "text/plain; version=0.0.4",
                self.rec.export_prometheus().as_bytes(),
            ),
            ("GET", "/metrics/engine") => response(
                200,
                "OK",
                "text/plain; version=0.0.4",
                self.engine.export_prometheus().as_bytes(),
            ),
            ("GET", "/healthz") => text_response(200, "OK", "ok\n"),
            ("POST", "/admin/budget") => self.admin_budget(&req.body),
            ("POST", "/admin/policy") => self.admin_policy(&req.body),
            _ => text_response(404, "Not Found", "not found\n"),
        }
    }

    /// `watts=<f64>` or `wp_nodes=<usize>` (form-encoded), applied live.
    fn admin_budget(&mut self, body: &[u8]) -> Vec<u8> {
        let body = match std::str::from_utf8(body) {
            Ok(s) => s,
            Err(_) => return text_response(400, "Bad Request", "invalid utf-8\n"),
        };
        let mut new_budget = None;
        for pair in body.split('&') {
            match pair.split_once('=') {
                Some(("watts", v)) => match v.trim().parse::<f64>() {
                    Ok(w) if w.is_finite() && w >= 0.0 => new_budget = Some(w),
                    _ => return text_response(400, "Bad Request", "invalid watts\n"),
                },
                Some(("wp_nodes", v)) => match v.trim().parse::<usize>() {
                    Ok(n) => {
                        self.cfg.wp_nodes = n;
                        new_budget = Some(n as f64 * TDP_WATTS);
                    }
                    Err(_) => return text_response(400, "Bad Request", "invalid wp_nodes\n"),
                },
                _ => return text_response(400, "Bad Request", "expected watts= or wp_nodes=\n"),
            }
        }
        let watts = match new_budget {
            Some(w) => w,
            None => return text_response(400, "Bad Request", "empty body\n"),
        };
        self.budget_w = watts;
        self.rec.counter_inc("perq_serve_budget_reloads_total");
        self.rec.event(
            "perq_serve_budget_reload",
            &[
                ("watts", FieldValue::F64(watts)),
                ("tick", FieldValue::U64(self.ticks)),
            ],
        );
        text_response(200, "OK", &format!("budget_w={watts}\n"))
    }

    /// Swaps the decide policy by name (`fop` / `perq`), effective on the
    /// next tick — the loop never blocks on the swap.
    fn admin_policy(&mut self, body: &[u8]) -> Vec<u8> {
        let name = String::from_utf8_lossy(body);
        let name = name.trim();
        match make_policy(name) {
            Some(mut policy) => {
                policy.set_recorder(self.engine.clone());
                self.policy = policy;
                self.rec.counter_inc("perq_serve_policy_reloads_total");
                self.rec.event(
                    "perq_serve_policy_reload",
                    &[("tick", FieldValue::U64(self.ticks))],
                );
                text_response(200, "OK", &format!("policy={}\n", self.policy.name()))
            }
            None => text_response(400, "Bad Request", "unknown policy\n"),
        }
    }
}
