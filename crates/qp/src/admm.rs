use crate::problem::QpSolution;
use crate::{QpError, Result};
use perq_linalg::{vecops, Cholesky, Matrix};
use perq_telemetry::Recorder;

/// A convex QP with general two-sided linear constraints (OSQP form):
///
/// ```text
/// minimize   ½ xᵀ Q x + cᵀ x
/// subject to l ≤ A x ≤ u
/// ```
///
/// Box constraints are rows of `A` equal to unit vectors; equality
/// constraints set `l == u`.
#[derive(Debug, Clone)]
pub struct InequalityQp {
    /// Symmetric positive-semidefinite Hessian (n × n).
    pub q: Matrix,
    /// Linear cost term (n).
    pub c: Vec<f64>,
    /// Constraint matrix (m × n).
    pub a: Matrix,
    /// Constraint lower bounds (m). Use `f64::NEG_INFINITY` for one-sided.
    pub l: Vec<f64>,
    /// Constraint upper bounds (m). Use `f64::INFINITY` for one-sided.
    pub u: Vec<f64>,
}

impl InequalityQp {
    fn validate(&self) -> Result<()> {
        let n = self.c.len();
        let m = self.l.len();
        if self.q.rows() != n || self.q.cols() != n {
            return Err(QpError::BadProblem("Hessian shape".into()));
        }
        if self.a.rows() != m || self.a.cols() != n || self.u.len() != m {
            return Err(QpError::BadProblem("constraint shape".into()));
        }
        for i in 0..m {
            if self.l[i] > self.u[i] {
                return Err(QpError::Infeasible(format!("l[{i}] > u[{i}]")));
            }
        }
        Ok(())
    }

    fn objective(&self, x: &[f64]) -> f64 {
        let qx = self.q.matvec(x).expect("validated");
        0.5 * vecops::dot(x, &qx) + vecops::dot(&self.c, x)
    }
}

/// Tuning knobs for the ADMM solver.
#[derive(Debug, Clone)]
pub struct AdmmSettings {
    /// Step-size / penalty parameter ρ.
    pub rho: f64,
    /// Proximal regularisation σ (keeps the x-subproblem strictly convex).
    pub sigma: f64,
    /// Over-relaxation parameter α ∈ (0, 2).
    pub alpha: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Convergence tolerance on primal and dual residuals (∞-norm).
    pub tol: f64,
}

impl Default for AdmmSettings {
    fn default() -> Self {
        AdmmSettings {
            rho: 1.0,
            sigma: 1e-6,
            alpha: 1.6,
            max_iters: 4000,
            tol: 1e-7,
        }
    }
}

/// OSQP-style ADMM solver for [`InequalityQp`].
///
/// Splitting: introduce `z = Ax` and alternate between
///
/// 1. `x ← argmin ½xᵀQx + cᵀx + σ/2‖x − x̄‖² + ρ/2‖Ax − z + y/ρ‖²`
///    (a linear solve with the pre-factored matrix `Q + σI + ρAᵀA`),
/// 2. `z ← clamp(αAx + (1−α)z + y/ρ, l, u)`,
/// 3. `y ← y + ρ(αAx + (1−α)z_prev − z)`.
///
/// The factorization is computed once per `solve` call, so repeated
/// iterations are cheap. PERQ uses this solver as an independent
/// cross-check of the projected-gradient solver in tests and benchmarks.
#[derive(Debug, Clone, Default)]
pub struct AdmmSolver {
    /// Solver settings.
    pub settings: AdmmSettings,
    recorder: Recorder,
}

impl AdmmSolver {
    /// Creates a solver with custom settings.
    pub fn new(settings: AdmmSettings) -> Self {
        AdmmSolver {
            settings,
            recorder: Recorder::noop(),
        }
    }

    /// Attaches a telemetry recorder (builder form). Every solve then
    /// reports `perq_qp_admm_*` counters, the iteration histogram, and
    /// the final residual.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a telemetry recorder in place.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Solves the QP, optionally warm starting from `x0`.
    pub fn solve(&self, qp: &InequalityQp, x0: Option<&[f64]>) -> Result<QpSolution> {
        qp.validate()?;
        let n = qp.c.len();
        let m = qp.l.len();
        let s = &self.settings;

        // KKT-ish matrix for the x-update: Q + σI + ρ AᵀA (SPD by σ > 0).
        let mut kmat = qp.a.gram().scale(s.rho);
        kmat.axpy(1.0, &qp.q).expect("validated dims");
        for i in 0..n {
            kmat[(i, i)] += s.sigma;
        }
        let chol = Cholesky::factor(&kmat)?;

        let mut x: Vec<f64> = match x0 {
            Some(v) if v.len() == n => v.to_vec(),
            _ => vec![0.0; n],
        };
        let mut z = qp.a.matvec(&x).expect("validated");
        for (i, zi) in z.iter_mut().enumerate() {
            *zi = zi.max(qp.l[i]).min(qp.u[i]);
        }
        let mut y = vec![0.0; m];
        // All iteration buffers are allocated once up front; the loop body
        // is allocation-free.
        let mut rhs = vec![0.0; n];
        let mut x_next = vec![0.0; n];
        let mut zy = vec![0.0; m];
        let mut ax = vec![0.0; m];
        let mut z_prev = vec![0.0; m];
        let mut dz = vec![0.0; m];
        let mut at_buf = vec![0.0; n];
        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        let mut converged = false;

        for k in 0..s.max_iters {
            iterations = k + 1;
            // x-update: (Q + σI + ρAᵀA) x = σ x̄ − c + Aᵀ(ρ z − y).
            for (r, &xi) in rhs.iter_mut().zip(x.iter()) {
                *r = s.sigma * xi;
            }
            vecops::axpy(-1.0, &qp.c, &mut rhs);
            for ((t, &zi), &yi) in zy.iter_mut().zip(z.iter()).zip(y.iter()) {
                *t = s.rho * zi - yi;
            }
            qp.a.tmatvec_into(&zy, &mut at_buf).expect("validated");
            vecops::axpy(1.0, &at_buf, &mut rhs);
            chol.solve_into(&rhs, &mut x_next)?;
            std::mem::swap(&mut x, &mut x_next);

            // z-update with over-relaxation.
            qp.a.matvec_into(&x, &mut ax).expect("validated");
            z_prev.copy_from_slice(&z);
            for i in 0..m {
                let relaxed = s.alpha * ax[i] + (1.0 - s.alpha) * z_prev[i];
                z[i] = (relaxed + y[i] / s.rho).max(qp.l[i]).min(qp.u[i]);
                y[i] += s.rho * (relaxed - z[i]);
            }

            // Residuals.
            let r_prim = vecops::max_abs_diff(&ax, &z);
            for ((d, &zi), &zp) in dz.iter_mut().zip(z.iter()).zip(z_prev.iter()) {
                *d = zi - zp;
            }
            qp.a.tmatvec_into(&dz, &mut at_buf).expect("validated");
            let r_dual = s.rho * vecops::norm_inf(&at_buf);
            residual = r_prim.max(r_dual);
            if residual < s.tol {
                converged = true;
                break;
            }
        }

        let objective = qp.objective(&x);
        if self.recorder.enabled() {
            self.recorder.counter_inc("perq_qp_admm_solves_total");
            if converged {
                self.recorder.counter_inc("perq_qp_admm_converged_total");
            }
            self.recorder
                .observe("perq_qp_admm_iterations", iterations as f64);
            self.recorder.gauge_set("perq_qp_admm_residual", residual);
        }
        Ok(QpSolution {
            x,
            objective,
            iterations,
            converged,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_equality_qp;

    #[test]
    fn unconstrained_matches_oracle() {
        let q = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let c = vec![-1.0, -2.0];
        let qp = InequalityQp {
            q: q.clone(),
            c: c.clone(),
            a: Matrix::identity(2),
            l: vec![f64::NEG_INFINITY; 2],
            u: vec![f64::INFINITY; 2],
        };
        let s = AdmmSolver::default().solve(&qp, None).unwrap();
        let (x_star, _) = solve_equality_qp(&q, &c, None).unwrap();
        assert!(s.converged);
        assert!(vecops::max_abs_diff(&s.x, &x_star) < 1e-5);
    }

    #[test]
    fn box_constrained_clips() {
        // min ½‖x‖² − 5·1ᵀx in [0,1]² ⇒ x = (1,1).
        let qp = InequalityQp {
            q: Matrix::identity(2),
            c: vec![-5.0, -5.0],
            a: Matrix::identity(2),
            l: vec![0.0; 2],
            u: vec![1.0; 2],
        };
        let s = AdmmSolver::default().solve(&qp, None).unwrap();
        assert!((s.x[0] - 1.0).abs() < 1e-5);
        assert!((s.x[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn equality_via_tight_bounds() {
        // min ½‖x‖² s.t. x₀+x₁ = 2 ⇒ (1,1).
        let qp = InequalityQp {
            q: Matrix::identity(2),
            c: vec![0.0; 2],
            a: Matrix::from_rows(&[&[1.0, 1.0]]).unwrap(),
            l: vec![2.0],
            u: vec![2.0],
        };
        let s = AdmmSolver::default().solve(&qp, None).unwrap();
        assert!((s.x[0] - 1.0).abs() < 1e-5, "{:?}", s.x);
        assert!((s.x[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn mixed_constraints_feasible_and_optimal() {
        // Box + budget, compare against the projected-gradient solver.
        use crate::problem::{BoxBudgetQp, Budget};
        use crate::ProjGradSolver;
        let q = Matrix::from_rows(&[&[2.0, 0.3, 0.0], &[0.3, 1.5, 0.2], &[0.0, 0.2, 3.0]]).unwrap();
        let c = vec![-3.0, -1.0, -4.0];
        let bb = BoxBudgetQp {
            q: q.clone(),
            c: c.clone(),
            lo: vec![0.0; 3],
            hi: vec![2.0; 3],
            budgets: vec![Budget {
                coeffs: vec![1.0, 1.0, 1.0],
                limit: 2.5,
            }],
        };
        // Same problem in OSQP form: 3 box rows + 1 budget row.
        let mut a = Matrix::zeros(4, 3);
        a.set_block(0, 0, &Matrix::identity(3)).unwrap();
        for j in 0..3 {
            a[(3, j)] = 1.0;
        }
        let iq = InequalityQp {
            q,
            c,
            a,
            l: vec![0.0, 0.0, 0.0, f64::NEG_INFINITY],
            u: vec![2.0, 2.0, 2.0, 2.5],
        };
        let s_admm = AdmmSolver::default().solve(&iq, None).unwrap();
        let s_pg = ProjGradSolver::default().solve(&bb, None).unwrap();
        assert!(s_admm.converged);
        assert!(
            vecops::max_abs_diff(&s_admm.x, &s_pg.x) < 1e-4,
            "admm {:?} pg {:?}",
            s_admm.x,
            s_pg.x
        );
    }

    #[test]
    fn crossed_bounds_rejected() {
        let qp = InequalityQp {
            q: Matrix::identity(1),
            c: vec![0.0],
            a: Matrix::identity(1),
            l: vec![1.0],
            u: vec![0.0],
        };
        assert!(AdmmSolver::default().solve(&qp, None).is_err());
    }
}
