//! Structure-of-arrays storage profile for the structured MPC QP.
//!
//! [`crate::StructuredQp`] stores the decision vector job-major
//! (`x[job*m + step]`) and its Hessian as per-job `m×m` blocks, so every
//! inner loop strides by the horizon `m` and each budget's support is a
//! strided comb. This module transposes everything step-major:
//!
//! - variables: `x_t[step*nb + job]` — each horizon step is one
//!   contiguous lane of `nb` jobs;
//! - blocks: `blocks_t[(r*m + s)*nb + job] = B_job[r,s]` — each block
//!   entry becomes a contiguous lane, so the block-diagonal matvec is `m²`
//!   elementwise multiply-accumulates over dense lanes;
//! - budgets and couplings: transposed alongside, which turns the PERQ
//!   budget for horizon step `j` (support `job*m + j` for all jobs) into
//!   the contiguous slice `[j*nb, (j+1)*nb)`.
//!
//! The payoff is in the projection, which dominates the decide cost at
//! large job counts: the bisection's usage evaluation becomes a dense
//! branch-free loop over one contiguous range per budget, which the
//! autovectorizer keeps in vector registers. With the `simd` feature the
//! elementwise kernels additionally run as explicit fixed-width chunks
//! ([`SolverProfile::lanes`](crate::SolverProfile) picks 4- or 8-wide);
//! results are bitwise identical with and without the feature because
//! elementwise operations need no reassociation.
//!
//! Reductions (dots, usage sums) always use fixed 8-lane accumulators
//! that carry `f64` partial sums in every build and at every scalar
//! precision. For `S = f64` this is the identical arithmetic, so the SoA
//! `f64` path keeps its results. For `S = f32` it is the load-bearing
//! half of the mixed-precision design: the *storage* (and hence memory
//! traffic and SIMD width of the elementwise kernels) stays `f32`, but
//! the long dot products — coupling terms and budget-usage sums over
//! tens of thousands of elements with O(10³) magnitudes — would
//! otherwise floor the gradient at ~1e-3 absolute noise, parking the
//! KKT residual three decades above the solver tolerance and defeating
//! the mixed profile's `f64` acceptance check on every solve. Widening
//! only the accumulators drops the reduction error to one final
//! rounding, leaving elementwise `f32` rounding (~1e-7) as the floor.
//! Pinning one summation order also makes a given profile's results
//! bitwise reproducible across builds and thread counts.

use crate::problem::{validate_constraints, Budget, QpOperator};
use crate::projection::ProjectionScratch;
use crate::{Result, StructuredQp};
use perq_linalg::Scalar;

/// Number of accumulator lanes used by every reduction, in every build.
const ACC_LANES: usize = 8;

/// One transposed coupling term of the low-rank Hessian tail.
#[derive(Debug, Clone)]
struct SoaCoupling<S> {
    weight: S,
    s_t: Vec<S>,
}

/// A budget in step-major layout plus its precomputed support range.
#[derive(Debug, Clone)]
struct SoaBudget<S: Scalar> {
    budget: Budget<S>,
    /// `[start, end)` bounding the nonzero coefficients in the transposed
    /// layout (`start == end` for an all-zero budget).
    support: (usize, usize),
}

/// [`crate::StructuredQp`] re-laid-out as structure-of-arrays lanes, at
/// scalar precision `S`.
///
/// Built from a `StructuredQp` via [`SoaQp::from_structured`]; iterates
/// and projects in the transposed step-major layout described in the
/// module docs. Use [`SoaQp::to_soa`] / [`SoaQp::from_soa`] to move
/// vectors between the layouts (and precisions).
#[derive(Debug, Clone)]
pub struct SoaQp<S: Scalar> {
    /// Jobs (diagonal blocks).
    nb: usize,
    /// Horizon (block edge length).
    m: usize,
    /// Transposed blocks: entry `(r,s)` of every job's block, contiguous
    /// per `(r,s)` pair.
    blocks_t: Vec<S>,
    couplings: Vec<SoaCoupling<S>>,
    c_t: Vec<S>,
    lo_t: Vec<S>,
    hi_t: Vec<S>,
    budgets: Vec<SoaBudget<S>>,
    /// Budgets as a plain slice (what [`QpOperator::budgets`] must borrow).
    budgets_plain: Vec<Budget<S>>,
    /// Whether every budget's support range is disjoint from the others,
    /// enabling the specialised contiguous-range projection.
    disjoint_ranges: bool,
    /// Certified λ_max bound inherited from the source problem (layout
    /// and precision of the iterate do not change the spectrum).
    lmax_bound: f64,
    /// Explicit kernel width (4 or 8) used by the `simd`-feature
    /// elementwise kernels; inert (codegen hint only) without the feature.
    lanes: usize,
}

impl<S: Scalar> SoaQp<S> {
    /// Transposes (and precision-casts) a [`StructuredQp`] into SoA form
    /// with the default 8-wide explicit kernels.
    pub fn from_structured(sq: &StructuredQp) -> Self {
        Self::from_structured_with_lanes(sq, 8)
    }

    /// [`SoaQp::from_structured`] with an explicit kernel width. Any value
    /// other than 4 selects the 8-wide kernels; the choice never changes
    /// results (elementwise kernels are bitwise identical at any width),
    /// only code generation under the `simd` feature.
    pub fn from_structured_with_lanes(sq: &StructuredQp, lanes: usize) -> Self {
        let m = sq.block_size();
        let nb = sq.num_blocks();
        let n = sq.dim();

        let mut blocks_t = vec![S::ZERO; nb * m * m];
        for i in 0..nb {
            let b = sq.block(i);
            for r in 0..m {
                for s in 0..m {
                    blocks_t[(r * m + s) * nb + i] = S::from_f64(b[r * m + s]);
                }
            }
        }

        let couplings = sq
            .couplings()
            .iter()
            .map(|cp| SoaCoupling {
                weight: S::from_f64(cp.weight),
                s_t: transpose(&cp.s, m, nb),
            })
            .collect();

        let qp_lo = QpOperator::lo(sq);
        let qp_hi = QpOperator::hi(sq);
        let budgets: Vec<SoaBudget<S>> = QpOperator::budgets(sq)
            .iter()
            .map(|b| {
                let coeffs = transpose(&b.coeffs, m, nb);
                let first = coeffs.iter().position(|&a| a != S::ZERO).unwrap_or(n);
                let last = coeffs
                    .iter()
                    .rposition(|&a| a != S::ZERO)
                    .map_or(n, |i| i + 1);
                SoaBudget {
                    budget: Budget {
                        coeffs,
                        limit: S::from_f64(b.limit.to_f64()),
                    },
                    support: (first.min(last), last),
                }
            })
            .collect();
        let disjoint_ranges = ranges_disjoint(&budgets);
        let budgets_plain = budgets.iter().map(|b| b.budget.clone()).collect();

        SoaQp {
            nb,
            m,
            blocks_t,
            couplings,
            c_t: transpose(sq.c(), m, nb),
            lo_t: transpose(qp_lo, m, nb),
            hi_t: transpose(qp_hi, m, nb),
            budgets,
            budgets_plain,
            disjoint_ranges,
            lmax_bound: sq.lmax_bound(),
            lanes: if lanes == 4 { 4 } else { 8 },
        }
    }

    /// The explicit kernel width this instance was built with.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of decision variables.
    pub fn dim(&self) -> usize {
        self.nb * self.m
    }

    /// Converts a job-major `f64` vector into this problem's step-major
    /// scalar layout.
    pub fn to_soa(&self, x_aos: &[f64]) -> Vec<S> {
        debug_assert_eq!(x_aos.len(), self.dim());
        let (m, nb) = (self.m, self.nb);
        let mut out = vec![S::ZERO; x_aos.len()];
        for i in 0..nb {
            for j in 0..m {
                out[j * nb + i] = S::from_f64(x_aos[i * m + j]);
            }
        }
        out
    }

    /// Converts a step-major scalar vector back to job-major `f64`.
    pub fn from_soa(&self, x_t: &[S]) -> Vec<f64> {
        debug_assert_eq!(x_t.len(), self.dim());
        let (m, nb) = (self.m, self.nb);
        let mut out = vec![0.0; x_t.len()];
        for i in 0..nb {
            for j in 0..m {
                out[i * m + j] = x_t[j * nb + i].to_f64();
            }
        }
        out
    }
}

/// Job-major `f64` → step-major `S` for a full-length vector.
fn transpose<S: Scalar>(v: &[f64], m: usize, nb: usize) -> Vec<S> {
    debug_assert_eq!(v.len(), m * nb);
    let mut out = vec![S::ZERO; v.len()];
    for i in 0..nb {
        for j in 0..m {
            out[j * nb + i] = S::from_f64(v[i * m + j]);
        }
    }
    out
}

/// Pairwise-disjointness of the budgets' support ranges.
fn ranges_disjoint<S: Scalar>(budgets: &[SoaBudget<S>]) -> bool {
    for (k, a) in budgets.iter().enumerate() {
        for b in &budgets[k + 1..] {
            let (a0, a1) = a.support;
            let (b0, b1) = b.support;
            if a0 < b1 && b0 < a1 {
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------------------
// Reduction kernels: fixed 8-lane accumulators in every build (see the
// module docs for why the lane count is not feature-dependent).
// ---------------------------------------------------------------------

/// `Σ x[i]·y[i]` with split `f64` accumulators.
#[inline]
fn lane_dot<S: Scalar>(x: &[S], y: &[S]) -> f64 {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    let mut acc = [0.0_f64; ACC_LANES];
    let mut xc = x.chunks_exact(ACC_LANES);
    let mut yc = y.chunks_exact(ACC_LANES);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        for l in 0..ACC_LANES {
            acc[l] += xs[l].to_f64() * ys[l].to_f64();
        }
    }
    let mut tail = 0.0_f64;
    for (&a, &b) in xc.remainder().iter().zip(yc.remainder()) {
        tail += a.to_f64() * b.to_f64();
    }
    reduce_lanes(acc) + tail
}

/// `Σ x[i]·w[i]·y[i]` with split `f64` accumulators (three-operand form
/// used by the objective's `x_rᵀ B_rs x_s` terms).
#[inline]
fn lane_dot3<S: Scalar>(x: &[S], w: &[S], y: &[S]) -> f64 {
    let n = x.len().min(w.len()).min(y.len());
    let (x, w, y) = (&x[..n], &w[..n], &y[..n]);
    let mut acc = [0.0_f64; ACC_LANES];
    let mut xc = x.chunks_exact(ACC_LANES);
    let mut wc = w.chunks_exact(ACC_LANES);
    let mut yc = y.chunks_exact(ACC_LANES);
    for ((xs, ws), ys) in (&mut xc).zip(&mut wc).zip(&mut yc) {
        for l in 0..ACC_LANES {
            acc[l] += xs[l].to_f64() * ws[l].to_f64() * ys[l].to_f64();
        }
    }
    let mut tail = 0.0_f64;
    for ((&a, &b), &c) in xc
        .remainder()
        .iter()
        .zip(wc.remainder())
        .zip(yc.remainder())
    {
        tail += a.to_f64() * b.to_f64() * c.to_f64();
    }
    reduce_lanes(acc) + tail
}

/// Pairwise tree reduction of the lane accumulators (fixed order).
#[inline]
fn reduce_lanes(acc: [f64; ACC_LANES]) -> f64 {
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
}

// ---------------------------------------------------------------------
// Elementwise kernels. No reassociation happens here, so the explicit
// fixed-width chunking behind `simd` is bitwise identical to the plain
// loops — it only hands the optimizer exact-width register blocks.
// ---------------------------------------------------------------------

/// `out[i] = a[i]·b[i]`.
#[inline]
fn mul_into<S: Scalar>(lanes: usize, out: &mut [S], a: &[S], b: &[S]) {
    #[cfg(feature = "simd")]
    {
        if lanes == 4 {
            chunked::<S, 4>(out, a, b, |o, x, y| *o = x * y);
        } else {
            chunked::<S, 8>(out, a, b, |o, x, y| *o = x * y);
        }
    }
    #[cfg(not(feature = "simd"))]
    {
        let _ = lanes;
        for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
            *o = x * y;
        }
    }
}

/// `out[i] += a[i]·b[i]`.
#[inline]
fn fma_into<S: Scalar>(lanes: usize, out: &mut [S], a: &[S], b: &[S]) {
    #[cfg(feature = "simd")]
    {
        if lanes == 4 {
            chunked::<S, 4>(out, a, b, |o, x, y| *o += x * y);
        } else {
            chunked::<S, 8>(out, a, b, |o, x, y| *o += x * y);
        }
    }
    #[cfg(not(feature = "simd"))]
    {
        let _ = lanes;
        for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
            *o += x * y;
        }
    }
}

/// `out[i] += t·a[i]`.
#[inline]
fn axpy_lanes<S: Scalar>(lanes: usize, t: S, a: &[S], out: &mut [S]) {
    #[cfg(feature = "simd")]
    {
        if lanes == 4 {
            chunked_axpy::<S, 4>(t, a, out);
        } else {
            chunked_axpy::<S, 8>(t, a, out);
        }
    }
    #[cfg(not(feature = "simd"))]
    {
        let _ = lanes;
        for (o, &x) in out.iter_mut().zip(a.iter()) {
            *o += t * x;
        }
    }
}

/// Fixed-width chunked `out += t·a`.
#[cfg(feature = "simd")]
#[inline]
fn chunked_axpy<S: Scalar, const L: usize>(t: S, a: &[S], out: &mut [S]) {
    let chunks = out.len() / L;
    for k in 0..chunks {
        let os = &mut out[k * L..(k + 1) * L];
        let xs = &a[k * L..(k + 1) * L];
        for l in 0..L {
            os[l] += t * xs[l];
        }
    }
    for i in chunks * L..out.len() {
        out[i] += t * a[i];
    }
}

/// Explicit fixed-width chunk driver for the binary elementwise kernels.
#[cfg(feature = "simd")]
#[inline]
fn chunked<S: Scalar, const L: usize>(
    out: &mut [S],
    a: &[S],
    b: &[S],
    f: impl Fn(&mut S, S, S) + Copy,
) {
    debug_assert_eq!(out.len(), a.len());
    debug_assert_eq!(out.len(), b.len());
    let chunks = out.len() / L;
    for k in 0..chunks {
        let os = &mut out[k * L..(k + 1) * L];
        let xs = &a[k * L..(k + 1) * L];
        let ys = &b[k * L..(k + 1) * L];
        for l in 0..L {
            f(&mut os[l], xs[l], ys[l]);
        }
    }
    for i in chunks * L..out.len() {
        f(&mut out[i], a[i], b[i]);
    }
}

impl<S: Scalar> QpOperator<S> for SoaQp<S> {
    fn dim(&self) -> usize {
        SoaQp::dim(self)
    }

    fn lo(&self) -> &[S] {
        &self.lo_t
    }

    fn hi(&self) -> &[S] {
        &self.hi_t
    }

    fn budgets(&self) -> &[Budget<S>] {
        &self.budgets_plain
    }

    fn validate(&self) -> Result<()> {
        validate_constraints(self.dim(), &self.lo_t, &self.hi_t, &self.budgets_plain)
    }

    fn objective(&self, x: &[S]) -> S {
        S::from_f64(self.objective_f64(x))
    }

    /// Full-`f64` objective: every block term, coupling term, and the
    /// linear term accumulate in `f64`, with no intermediate rounding to
    /// `S`. This is what keeps the solver's restart discipline working
    /// at `f32` — successive objectives differ by far less than one
    /// `f32` ulp of the total near convergence.
    fn objective_f64(&self, x: &[S]) -> f64 {
        let (m, nb) = (self.m, self.nb);
        let mut quad = 0.0_f64;
        for r in 0..m {
            let x_r = &x[r * nb..(r + 1) * nb];
            for s in 0..m {
                let brs = &self.blocks_t[(r * m + s) * nb..(r * m + s + 1) * nb];
                let x_s = &x[s * nb..(s + 1) * nb];
                quad += lane_dot3(x_r, brs, x_s);
            }
        }
        for cp in &self.couplings {
            if cp.weight == S::ZERO {
                continue;
            }
            let t = lane_dot(&cp.s_t, x);
            quad += cp.weight.to_f64() * t * t;
        }
        0.5 * quad + lane_dot(&self.c_t, x)
    }

    fn gradient_into(&self, x: &[S], out: &mut [S]) {
        self.hess_matvec_into(x, out);
        axpy_lanes(self.lanes, S::ONE, &self.c_t, out);
    }

    /// Fused explicit gradient step: after the Hessian product lands in
    /// `out`, a single pass computes `yᵢ − step·(outᵢ + cᵢ)` — folding
    /// the linear term and the step transform that would otherwise each
    /// sweep the iterate separately.
    fn gradient_step_into(&self, y: &[S], step: S, out: &mut [S]) {
        self.hess_matvec_into(y, out);
        let n = out.len().min(y.len()).min(self.c_t.len());
        for i in 0..n {
            out[i] = y[i] - step * (out[i] + self.c_t[i]);
        }
    }

    fn hess_matvec_into(&self, x: &[S], out: &mut [S]) {
        let (m, nb) = (self.m, self.nb);
        debug_assert_eq!(x.len(), self.dim());
        debug_assert_eq!(out.len(), self.dim());
        // Block-diagonal part: out_r = Σ_s B[r,s] ∘ x_s, dense lanes.
        for r in 0..m {
            let out_r = &mut out[r * nb..(r + 1) * nb];
            for s in 0..m {
                let brs = &self.blocks_t[(r * m + s) * nb..(r * m + s + 1) * nb];
                let x_s = &x[s * nb..(s + 1) * nb];
                if s == 0 {
                    mul_into(self.lanes, out_r, brs, x_s);
                } else {
                    fma_into(self.lanes, out_r, brs, x_s);
                }
            }
        }
        // Low-rank tail: out += Σ_r w_r (s_rᵀ x) s_r. The scalar weight
        // rounds to S once, after the full-f64 dot.
        for cp in &self.couplings {
            if cp.weight == S::ZERO {
                continue;
            }
            let t = S::from_f64(cp.weight.to_f64() * lane_dot(&cp.s_t, x));
            if t != S::ZERO {
                axpy_lanes(self.lanes, t, &cp.s_t, out);
            }
        }
    }

    fn lmax_upper_bound(&self) -> Option<f64> {
        Some(self.lmax_bound.max(1e-12))
    }

    /// Layout-specialised exact projection onto box ∩ budgets.
    ///
    /// When every budget's nonzero support is a range disjoint from the
    /// others (always true for the PERQ per-step budgets once
    /// transposed), each budget projects independently over its
    /// contiguous slice with a dense branch-free bisection; everything
    /// outside the ranges is a plain clamp. Otherwise falls back to the
    /// generic projection.
    fn project(&self, x: &mut [S], scratch: &mut ProjectionScratch<S>) {
        if !self.disjoint_ranges {
            crate::projection::project_box_budgets_scratch(
                x,
                &self.lo_t,
                &self.hi_t,
                &self.budgets_plain,
                scratch,
            );
            return;
        }
        // Clamp everything; budget ranges are re-projected below from the
        // original coordinates held in the scratch copy.
        scratch.base.clear();
        scratch.base.extend_from_slice(x);
        for i in 0..x.len() {
            x[i] = x[i].max(self.lo_t[i]).min(self.hi_t[i]);
        }
        if scratch.lambda_warm.len() < self.budgets.len() {
            scratch.lambda_warm.resize(self.budgets.len(), 0.0);
        }
        for (bi, sb) in self.budgets.iter().enumerate() {
            let (s0, s1) = sb.support;
            if s0 >= s1 {
                continue;
            }
            project_range(
                &mut x[s0..s1],
                &scratch.base[s0..s1],
                &sb.budget.coeffs[s0..s1],
                &self.lo_t[s0..s1],
                &self.hi_t[s0..s1],
                sb.budget.limit,
                &mut scratch.lambda_warm[bi],
            );
        }
    }
}

/// Exact projection of one contiguous budget range.
///
/// Solves `aᵀ clamp(base − λa, lo, hi) = limit` for the multiplier `λ`
/// with safeguarded Newton on the piecewise-linear usage function: each
/// dense pass evaluates both the usage and its (negated) slope — the
/// active-set `Σ a²` — so a Newton step lands on or near the correct
/// breakpoint in a handful of passes, while a `[l, r]` bisection bracket
/// guarantees progress where the local slope misleads (usage is not
/// globally convex once upper clamps engage). `base` holds the ORIGINAL
/// pre-clamp coordinates, which the KKT form `z = clamp(base − λa)`
/// requires. `warm` carries the multiplier found by the previous call
/// through the same scratch (0 when cold) and receives the new one.
fn project_range<S: Scalar>(
    x: &mut [S],
    base: &[S],
    a: &[S],
    lo: &[S],
    hi: &[S],
    limit: S,
    warm: &mut f64,
) {
    let limit = limit.to_f64();
    let (u0, d0) = range_usage(base, a, S::ZERO, lo, hi);
    if u0 <= limit {
        // λ = 0: the pure clamp (already written by the caller) is exact.
        *warm = 0.0;
        return;
    }
    // Bracket invariant: usage(l) > limit ≥ usage(r). The feasible upper
    // endpoint starts at +∞ and is only resolved to the explicit cap
    // λ_max = max (baseᵢ − loᵢ)/aᵢ — a division-heavy O(n) scan — when a
    // bisection midpoint is actually needed: Newton from the infeasible
    // side converges monotonically upward without ever touching `r`, so
    // the common path (warm seed or clean Newton) skips the scan
    // entirely. λ_max clamps every positive-coefficient element to its
    // lower bound, and feasibility validation guarantees that box
    // minimum fits the budget.
    let mut l = 0.0_f64;
    let mut r = f64::INFINITY;
    // Seed from the previous projection through this scratch when
    // available: solver iterates move slowly, so the old root is usually
    // within a Newton step or two of the new one.
    let mut cand = if *warm > 0.0 {
        *warm
    } else if d0 > 0.0 {
        (u0 - limit) / d0
    } else {
        f64::NAN
    };
    let eps = S::EPSILON.to_f64();
    for _ in 0..S::BISECT_ITERS {
        if !(l < cand && cand < r) {
            if !r.is_finite() {
                r = explicit_lambda_cap(base, a, lo).max(S::MIN_POSITIVE.to_f64());
            }
            cand = 0.5 * (l + r);
        }
        let lam = S::from_f64(cand);
        let (u, d) = range_usage(base, a, lam, lo, hi);
        if u > limit {
            l = cand;
        } else {
            r = cand;
        }
        if r.is_finite() && r - l <= eps * r {
            // The bracket collapsed to one ulp of the scalar type;
            // further passes cannot move it. `r` stays the feasible
            // (usage ≤ limit) endpoint.
            break;
        }
        let step = if d > 0.0 { (u - limit) / d } else { 0.0 };
        if d > 0.0 && step.abs() <= eps * cand {
            // Newton stalled at scalar resolution. The usage is convex
            // decreasing in λ, so tangent steps from the infeasible side
            // land on or short of the root and never tighten `r` on
            // their own; once the step is below one ulp the remaining
            // passes would re-evaluate the same point.
            if u <= limit {
                // Feasible and within resolution of the root: done.
                break;
            }
            // Probe a couple of ulps up; either that point is feasible
            // (collapse `r` onto it) or the bracket floor advances by
            // the same amount and the next pass promotes again.
            cand *= 1.0 + 2.0 * eps;
            if cand >= r {
                break;
            }
            let (up, _) = range_usage(base, a, S::from_f64(cand), lo, hi);
            if up <= limit {
                r = cand;
                break;
            }
            l = cand;
            cand *= 1.0 + 2.0 * eps;
            continue;
        }
        cand = if d > 0.0 {
            cand + step
        } else if r.is_finite() {
            0.5 * (l + r)
        } else {
            f64::NAN
        };
    }
    if !r.is_finite() {
        // Iteration budget exhausted before Newton ever crossed to the
        // feasible side (pathological); fall back to the explicit cap,
        // which is feasible by validation.
        r = explicit_lambda_cap(base, a, lo).max(S::MIN_POSITIVE.to_f64());
    }
    let lambda = S::from_f64(r);
    *warm = r;
    for i in 0..x.len() {
        x[i] = (base[i] - lambda * a[i]).max(lo[i]).min(hi[i]);
    }
}

/// Explicit upper bound on the budget multiplier: the λ at which every
/// positive-coefficient element clamps to its lower bound. Only computed
/// when the Newton search actually needs a finite bisection bracket (the
/// scan is one division per element, which the common path avoids).
fn explicit_lambda_cap<S: Scalar>(base: &[S], a: &[S], lo: &[S]) -> f64 {
    let mut cap = S::ZERO;
    for i in 0..base.len() {
        if a[i] > S::ZERO {
            cap = cap.max((base[i] - lo[i]) / a[i]);
        }
    }
    cap.to_f64()
}

/// One dense pass over a budget range: returns
/// `(aᵀ clamp(base − λa, lo, hi), Σ_{i active} a_i²)` split-accumulated
/// in `f64`, where "active" means the clamp is strictly between its
/// bounds (the negated local slope of the usage in λ). Zero coefficients
/// contribute zero to both sums without a branch.
#[inline]
fn range_usage<S: Scalar>(base: &[S], a: &[S], lambda: S, lo: &[S], hi: &[S]) -> (f64, f64) {
    let n = base.len().min(a.len()).min(lo.len()).min(hi.len());
    let (base, a, lo, hi) = (&base[..n], &a[..n], &lo[..n], &hi[..n]);
    let mut acc = [0.0_f64; ACC_LANES];
    let mut slope = [0.0_f64; ACC_LANES];
    let mut bc = base.chunks_exact(ACC_LANES);
    let mut ac = a.chunks_exact(ACC_LANES);
    let mut lc = lo.chunks_exact(ACC_LANES);
    let mut hc = hi.chunks_exact(ACC_LANES);
    for (((bs, as_), ls), hs) in (&mut bc).zip(&mut ac).zip(&mut lc).zip(&mut hc) {
        for l in 0..ACC_LANES {
            let raw = bs[l] - lambda * as_[l];
            let z = raw.max(ls[l]).min(hs[l]);
            let av = as_[l].to_f64();
            let active = ((raw > ls[l]) & (raw < hs[l])) as u8 as f64;
            acc[l] += av * z.to_f64();
            slope[l] += active * av * av;
        }
    }
    let mut usage = 0.0_f64;
    let mut d = 0.0_f64;
    for (((&b, &av), &lv), &hv) in bc
        .remainder()
        .iter()
        .zip(ac.remainder())
        .zip(lc.remainder())
        .zip(hc.remainder())
    {
        let raw = b - lambda * av;
        let z = raw.max(lv).min(hv);
        let a64 = av.to_f64();
        let active = ((raw > lv) & (raw < hv)) as u8 as f64;
        usage += a64 * z.to_f64();
        d += active * a64 * a64;
    }
    (reduce_lanes(acc) + usage, reduce_lanes(slope) + d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProjGradSettings, ProjGradSolver};
    use perq_linalg::vecops;

    /// Deterministic pseudo-random stream (no external crates needed).
    struct Lcg(u64);

    impl Lcg {
        fn next_f64(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }

        fn range(&mut self, lo: f64, hi: f64) -> f64 {
            lo + (hi - lo) * self.next_f64()
        }
    }

    /// Mirrors `structured::tests::random_structured` (PERQ-shaped:
    /// per-step budgets with disjoint strided supports).
    fn random_structured(k: usize, m: usize, seed: u64) -> StructuredQp {
        let mut rng = Lcg(seed);
        let n = k * m;
        let mut blocks = vec![0.0; k * m * m];
        for b in blocks.chunks_exact_mut(m * m) {
            let g: Vec<f64> = (0..m * m).map(|_| rng.range(-1.0, 1.0)).collect();
            for r in 0..m {
                for s in 0..m {
                    let mut dot = 0.0;
                    for t in 0..m {
                        dot += g[t * m + r] * g[t * m + s];
                    }
                    b[r * m + s] = dot + if r == s { 0.5 } else { 0.0 };
                }
            }
        }
        let couplings: Vec<crate::Coupling> = (0..m)
            .map(|j| crate::Coupling {
                weight: rng.range(0.0, 2.0),
                s: (0..n)
                    .map(|a| {
                        if a % m <= j {
                            rng.range(-1.0, 1.0)
                        } else {
                            0.0
                        }
                    })
                    .collect(),
            })
            .collect();
        let c: Vec<f64> = (0..n).map(|_| rng.range(-2.0, 2.0)).collect();
        let lo = vec![0.0; n];
        let hi: Vec<f64> = (0..n).map(|_| rng.range(0.5, 1.5)).collect();
        let budgets: Vec<Budget> = (0..m)
            .map(|j| Budget {
                coeffs: (0..n)
                    .map(|a| if a % m == j { rng.range(0.5, 4.0) } else { 0.0 })
                    .collect(),
                limit: 0.4 * n as f64,
            })
            .collect();
        StructuredQp::new(m, blocks, couplings, c, lo, hi, budgets).expect("well-formed")
    }

    #[test]
    fn transpose_round_trips() {
        let sq = random_structured(5, 3, 7);
        let soa: SoaQp<f64> = SoaQp::from_structured(&sq);
        let x: Vec<f64> = (0..sq.dim()).map(|i| i as f64 * 0.1).collect();
        assert_eq!(soa.from_soa(&soa.to_soa(&x)), x);
    }

    #[test]
    fn per_step_budgets_become_contiguous_disjoint_ranges() {
        let sq = random_structured(6, 4, 11);
        let soa: SoaQp<f64> = SoaQp::from_structured(&sq);
        assert!(soa.disjoint_ranges);
        let nb = 6;
        for (j, sb) in soa.budgets.iter().enumerate() {
            assert_eq!(sb.support, (j * nb, (j + 1) * nb));
        }
    }

    #[test]
    fn soa_f64_matches_structured_operator() {
        for seed in 1..6 {
            let sq = random_structured(7, 4, seed);
            let soa: SoaQp<f64> = SoaQp::from_structured(&sq);
            let n = sq.dim();
            let mut rng = Lcg(seed ^ 0xabcdef);
            let x: Vec<f64> = (0..n).map(|_| rng.range(-1.5, 1.5)).collect();
            let x_t = soa.to_soa(&x);

            let o_ref = StructuredQp::objective(&sq, &x);
            let o_soa = QpOperator::objective(&soa, &x_t);
            assert!(
                (o_ref - o_soa).abs() < 1e-9 * (1.0 + o_ref.abs()),
                "objective {o_ref} vs {o_soa}"
            );

            let mut g_ref = vec![0.0; n];
            StructuredQp::gradient_into(&sq, &x, &mut g_ref);
            let mut g_soa_t = vec![0.0; n];
            QpOperator::gradient_into(&soa, &x_t, &mut g_soa_t);
            let g_soa = soa.from_soa(&g_soa_t);
            assert!(
                vecops::max_abs_diff(&g_ref, &g_soa) < 1e-9,
                "gradient mismatch"
            );
        }
    }

    #[test]
    fn soa_projection_matches_generic_projection() {
        for seed in [2u64, 9, 31] {
            let sq = random_structured(9, 3, seed);
            let soa: SoaQp<f64> = SoaQp::from_structured(&sq);
            let n = sq.dim();
            let mut rng = Lcg(seed ^ 0x51);
            let x: Vec<f64> = (0..n).map(|_| rng.range(-0.5, 3.0)).collect();

            // Generic path on the transposed problem.
            let mut generic = soa.to_soa(&x);
            crate::projection::project_box_budgets(
                &mut generic,
                &soa.lo_t,
                &soa.hi_t,
                &soa.budgets_plain,
            );
            // Specialised path.
            let mut fast = soa.to_soa(&x);
            let mut scratch = ProjectionScratch::default();
            soa.project(&mut fast, &mut scratch);

            assert!(
                vecops::max_abs_diff(&generic, &fast) < 1e-12,
                "projection mismatch at seed {seed}"
            );
        }
    }

    #[test]
    fn f64_soa_solve_agrees_with_aos_solve() {
        for seed in [3u64, 17, 99] {
            let sq = random_structured(5, 3, seed);
            let soa: SoaQp<f64> = SoaQp::from_structured(&sq);
            let solver = ProjGradSolver::new(ProjGradSettings {
                max_iters: 200_000,
                tol: 1e-12,
                power_iters: 60,
            });
            let aos = solver.solve(&sq, None).unwrap();
            let soa_sol = solver.solve(&soa, None).unwrap();
            let x_soa = soa.from_soa(&soa_sol.x);
            assert!(aos.converged && soa_sol.converged);
            assert!(
                vecops::max_abs_diff(&aos.x, &x_soa) < 1e-8,
                "seed {seed}: AoS {:?} vs SoA {:?}",
                aos.x,
                x_soa
            );
        }
    }

    #[test]
    fn f32_soa_solve_tracks_f64_solution() {
        for seed in [5u64, 23] {
            let sq = random_structured(8, 4, seed);
            let soa32: SoaQp<f32> = SoaQp::from_structured(&sq);
            let solver = ProjGradSolver::new(ProjGradSettings {
                max_iters: 20_000,
                tol: 1e-6,
                power_iters: 30,
            });
            let aos = solver.solve(&sq, None).unwrap();
            let sol32 = solver.solve(&soa32, None).unwrap();
            let x32 = soa32.from_soa(&sol32.x);
            let f_ref = StructuredQp::objective(&sq, &aos.x);
            let f_32 = StructuredQp::objective(&sq, &x32);
            let rel = (f_32 - f_ref).abs() / (1.0 + f_ref.abs());
            assert!(rel < 1e-3, "seed {seed}: objective rel err {rel}");
        }
    }

    #[test]
    fn f32_soa_solve_is_bitwise_deterministic() {
        let sq = random_structured(6, 4, 41);
        let solve_once = || {
            let soa32: SoaQp<f32> = SoaQp::from_structured(&sq);
            let solver = ProjGradSolver::default();
            solver.solve(&soa32, None).unwrap().x
        };
        let a = solve_once();
        let b = solve_once();
        assert!(a
            .iter()
            .zip(b.iter())
            .all(|(p, q)| p.to_bits() == q.to_bits()));
    }
}
