use crate::problem::{BoxBudgetQp, QpSolution};
use crate::projection::project_box_budgets;
use crate::Result;
use perq_linalg::vecops;

/// Tuning knobs for the accelerated projected-gradient solver.
#[derive(Debug, Clone)]
pub struct ProjGradSettings {
    /// Maximum FISTA iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the fixed-point residual
    /// `‖x − proj(x − ∇f(x)/L)‖∞` scaled by `L`.
    pub tol: f64,
    /// Power-iteration steps used to estimate the Lipschitz constant
    /// (largest eigenvalue of `Q`).
    pub power_iters: usize,
}

impl Default for ProjGradSettings {
    fn default() -> Self {
        ProjGradSettings {
            max_iters: 2000,
            tol: 1e-7,
            power_iters: 30,
        }
    }
}

/// Accelerated projected-gradient (FISTA) solver for [`BoxBudgetQp`].
///
/// This is the solver PERQ's MPC controller runs every decision interval.
/// The feasible set (box ∩ per-step power budgets) admits an exact O(n)
/// projection, so each iteration costs one Hessian-vector product plus one
/// projection. With warm starting from the previous interval's power-caps
/// the solver typically converges in a few dozen iterations.
///
/// Gradient-mapping monotonicity is enforced with an adaptive restart: if
/// the objective increases, the momentum sequence is reset, restoring the
/// plain projected-gradient descent guarantee.
#[derive(Debug, Clone, Default)]
pub struct ProjGradSolver {
    /// Solver settings.
    pub settings: ProjGradSettings,
}

impl ProjGradSolver {
    /// Creates a solver with custom settings.
    pub fn new(settings: ProjGradSettings) -> Self {
        ProjGradSolver { settings }
    }

    /// Solves the QP, optionally warm starting from `x0`.
    ///
    /// `x0` is projected onto the feasible set before use, so any previous
    /// solution is a valid warm start even after the constraint set moved.
    pub fn solve(&self, qp: &BoxBudgetQp, x0: Option<&[f64]>) -> Result<QpSolution> {
        qp.validate()?;
        let n = qp.dim();

        // Lipschitz constant of the gradient = λ_max(Q), estimated by power
        // iteration (Q is symmetric PSD).
        let lipschitz = estimate_lmax(qp, self.settings.power_iters).max(1e-12);
        let step = 1.0 / lipschitz;

        let mut x: Vec<f64> = match x0 {
            Some(v) if v.len() == n => v.to_vec(),
            _ => qp
                .lo
                .iter()
                .zip(qp.hi.iter())
                .map(|(&l, &h)| 0.5 * (l + h))
                .collect(),
        };
        project_box_budgets(&mut x, &qp.lo, &qp.hi, &qp.budgets);

        let mut y = x.clone();
        let mut t = 1.0_f64;
        let mut f_prev = qp.objective(&x);
        let mut residual = f64::INFINITY;
        let mut iterations = 0;

        for k in 0..self.settings.max_iters {
            iterations = k + 1;
            // Gradient step from the extrapolated point, then project.
            let grad = qp.gradient(&y);
            let mut x_next = y.clone();
            vecops::axpy(-step, &grad, &mut x_next);
            project_box_budgets(&mut x_next, &qp.lo, &qp.hi, &qp.budgets);

            // Fixed-point residual scaled back to gradient units.
            residual = vecops::max_abs_diff(&x_next, &y) * lipschitz;

            let f_next = qp.objective(&x_next);
            if f_next > f_prev + 1e-12 {
                // Adaptive restart: drop momentum, retry from the best point.
                t = 1.0;
                y = x.clone();
                f_prev = qp.objective(&x);
                continue;
            }

            let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
            let beta = (t - 1.0) / t_next;
            y = x_next
                .iter()
                .zip(x.iter())
                .map(|(&xn, &xo)| xn + beta * (xn - xo))
                .collect();
            x = x_next;
            f_prev = f_next;
            t = t_next;

            if residual < self.settings.tol * lipschitz.max(1.0) {
                break;
            }
        }

        // Final safety projection (momentum extrapolation never leaves x
        // infeasible, but guard against accumulated round-off).
        project_box_budgets(&mut x, &qp.lo, &qp.hi, &qp.budgets);
        let objective = qp.objective(&x);
        let converged = residual < self.settings.tol * lipschitz.max(1.0);
        Ok(QpSolution {
            x,
            objective,
            iterations,
            converged,
            residual,
        })
    }
}

/// Estimates `λ_max(Q)` by power iteration.
fn estimate_lmax(qp: &BoxBudgetQp, iters: usize) -> f64 {
    let n = qp.dim();
    if n == 0 {
        return 1.0;
    }
    // Deterministic pseudo-random start vector avoids adversarial alignment
    // with a null eigenvector while keeping runs reproducible.
    let mut v: Vec<f64> = (0..n)
        .map(|i| ((i as f64 * 0.754_877_666 + 0.1).sin() + 1.5) / 2.0)
        .collect();
    let mut lmax = 1.0;
    for _ in 0..iters {
        let w = qp.q.matvec(&v).expect("validated dims");
        let norm = vecops::norm2(&w);
        if norm < 1e-300 {
            return 1.0;
        }
        lmax = norm / vecops::norm2(&v).max(1e-300);
        v = vecops::scale(1.0 / norm, &w);
    }
    // Rayleigh quotient for a tighter final estimate.
    let qv = qp.q.matvec(&v).expect("validated dims");
    let rq = vecops::dot(&v, &qv) / vecops::dot(&v, &v).max(1e-300);
    // Small inflation guards against underestimation from finite iterations.
    (rq.max(lmax) * 1.01).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Budget;
    use crate::solve_equality_qp;
    use perq_linalg::Matrix;

    fn solve(qp: &BoxBudgetQp) -> QpSolution {
        ProjGradSolver::default().solve(qp, None).unwrap()
    }

    #[test]
    fn unconstrained_interior_minimum() {
        // Minimum at (1,2), box is wide, no budget.
        let qp = BoxBudgetQp {
            q: Matrix::diag(&[2.0, 4.0]),
            c: vec![-2.0, -8.0],
            lo: vec![-10.0; 2],
            hi: vec![10.0; 2],
            budgets: vec![],
        };
        let s = solve(&qp);
        assert!(s.converged);
        assert!((s.x[0] - 1.0).abs() < 1e-5, "{:?}", s.x);
        assert!((s.x[1] - 2.0).abs() < 1e-5, "{:?}", s.x);
    }

    #[test]
    fn box_active_at_solution() {
        // Unconstrained min at (5,5) but hi = 1 ⇒ solution at (1,1).
        let qp = BoxBudgetQp {
            q: Matrix::identity(2),
            c: vec![-5.0, -5.0],
            lo: vec![0.0; 2],
            hi: vec![1.0; 2],
            budgets: vec![],
        };
        let s = solve(&qp);
        assert!((s.x[0] - 1.0).abs() < 1e-6);
        assert!((s.x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn budget_active_matches_kkt_oracle() {
        // With the budget active and no box activity, the solution matches
        // the equality-constrained QP with aᵀx = limit.
        let q = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]).unwrap();
        let c = vec![-4.0, -3.0];
        let qp = BoxBudgetQp {
            q: q.clone(),
            c: c.clone(),
            lo: vec![0.0; 2],
            hi: vec![10.0; 2],
            budgets: vec![Budget {
                coeffs: vec![1.0, 1.0],
                limit: 2.0,
            }],
        };
        let s = solve(&qp);
        let e = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        let (x_eq, _) = solve_equality_qp(&q, &c, Some((&e, &[2.0]))).unwrap();
        assert!(vecops::max_abs_diff(&s.x, &x_eq) < 1e-4, "{:?} vs {x_eq:?}", s.x);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let n = 40;
        let q = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                4.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let qp = BoxBudgetQp {
            q,
            c: (0..n).map(|i| -((i % 7) as f64)).collect(),
            lo: vec![0.0; n],
            hi: vec![3.0; n],
            budgets: vec![Budget {
                coeffs: vec![1.0; n],
                limit: 30.0,
            }],
        };
        let cold = solve(&qp);
        let warm = ProjGradSolver::default().solve(&qp, Some(&cold.x)).unwrap();
        assert!(warm.converged);
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} > cold {}",
            warm.iterations,
            cold.iterations
        );
        assert!(warm.objective <= cold.objective + 1e-6);
    }

    #[test]
    fn solution_is_feasible_and_kkt_stationary() {
        // Random-ish QP; verify no feasible descent direction exists by
        // checking the projected gradient vanishes.
        let q = Matrix::from_rows(&[
            &[3.0, 0.2, 0.1],
            &[0.2, 2.0, 0.0],
            &[0.1, 0.0, 1.5],
        ])
        .unwrap();
        let qp = BoxBudgetQp {
            q,
            c: vec![-10.0, 1.0, -2.0],
            lo: vec![0.0; 3],
            hi: vec![2.0; 3],
            budgets: vec![Budget {
                coeffs: vec![1.0, 1.0, 1.0],
                limit: 3.5,
            }],
        };
        let s = solve(&qp);
        assert!(qp.is_feasible(&s.x, 1e-7));
        // Projected-gradient stationarity: proj(x − t∇f(x)) == x.
        let grad = qp.gradient(&s.x);
        let mut probe = s.x.clone();
        vecops::axpy(-1e-3, &grad, &mut probe);
        crate::projection::project_box_budgets(&mut probe, &qp.lo, &qp.hi, &qp.budgets);
        assert!(vecops::max_abs_diff(&probe, &s.x) < 1e-5);
    }

    #[test]
    fn infeasible_problem_rejected() {
        let qp = BoxBudgetQp {
            q: Matrix::identity(2),
            c: vec![0.0; 2],
            lo: vec![1.0; 2],
            hi: vec![2.0; 2],
            budgets: vec![Budget {
                coeffs: vec![1.0; 2],
                limit: 1.0,
            }],
        };
        assert!(ProjGradSolver::default().solve(&qp, None).is_err());
    }
}
