use crate::problem::{QpOperator, QpSolution};
use crate::Result;
use perq_linalg::{vecops, Scalar};
use perq_telemetry::Recorder;
use std::time::Instant;

/// How many FISTA iterations run between deadline checks. `Instant::now`
/// costs a vdso call — cheap, but not free next to an O(jobs)
/// Hessian-vector product at small job counts.
const DEADLINE_STRIDE: usize = 16;

/// Tuning knobs for the accelerated projected-gradient solver.
#[derive(Debug, Clone)]
pub struct ProjGradSettings {
    /// Maximum FISTA iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the fixed-point residual
    /// `‖x − proj(x − ∇f(x)/L)‖∞` scaled by `L`.
    pub tol: f64,
    /// Power-iteration steps used to estimate the Lipschitz constant
    /// (largest eigenvalue of `Q`) when the operator does not provide a
    /// cheap upper bound.
    pub power_iters: usize,
}

impl Default for ProjGradSettings {
    fn default() -> Self {
        ProjGradSettings {
            max_iters: 2000,
            tol: 1e-7,
            power_iters: 30,
        }
    }
}

/// Reusable solver buffers: one per long-lived solver owner.
///
/// Holds every vector the FISTA iteration touches (`y`, gradient,
/// candidate iterate, power-iteration vectors, projection scratch), so a
/// solve performs no per-iteration allocation and repeated solves with
/// the same workspace perform no allocation at all beyond the returned
/// solution vector.
///
/// Generic over the iterate [`Scalar`]; the default `S = f64` keeps every
/// existing owner unchanged.
#[derive(Debug, Clone, Default)]
pub struct Workspace<S: Scalar = f64> {
    y: Vec<S>,
    grad: Vec<S>,
    x_next: Vec<S>,
    pow: Vec<S>,
    pow_next: Vec<S>,
    proj: crate::projection::ProjectionScratch<S>,
}

impl<S: Scalar> Workspace<S> {
    fn resize(&mut self, n: usize) {
        self.y.resize(n, S::ZERO);
        self.grad.resize(n, S::ZERO);
        self.x_next.resize(n, S::ZERO);
    }
}

/// Cached spectral information carried across solves.
///
/// PERQ solves one QP per control interval and the job set changes
/// slowly, so the dominant eigenvector of the previous instance's Hessian
/// is an excellent power-iteration seed: the re-estimate converges in a
/// couple of matrix-vector products instead of `power_iters`. The cached
/// `λ_max` also rides along for diagnostics.
#[derive(Debug, Clone, Default)]
pub struct LmaxCache<S: Scalar = f64> {
    /// Last Lipschitz estimate.
    lmax: Option<f64>,
    /// Last dominant-eigenvector estimate (empty until the first solve).
    eigvec: Vec<S>,
}

impl<S: Scalar> LmaxCache<S> {
    /// The last cached `λ_max` estimate, if any solve has populated it.
    pub fn lmax(&self) -> Option<f64> {
        self.lmax
    }
}

/// Accelerated projected-gradient (FISTA) solver for any [`QpOperator`]
/// (dense [`crate::BoxBudgetQp`], matrix-free [`crate::StructuredQp`], or
/// the SoA profile [`crate::SoaQp`] at either scalar precision).
///
/// This is the solver PERQ's MPC controller runs every decision interval.
/// The feasible set (box ∩ per-step power budgets) admits an exact O(n)
/// projection, so each iteration costs one Hessian-vector product plus one
/// projection. With warm starting from the previous interval's power-caps
/// the solver typically converges in a few dozen iterations.
///
/// Gradient-mapping monotonicity is enforced with an adaptive restart: if
/// the objective increases, the momentum sequence is reset, restoring the
/// plain projected-gradient descent guarantee.
///
/// The solver itself holds no scalar state: the iterate precision is the
/// `S` of the operator/workspace it is handed, and at `S = f64` every
/// operation is bit-identical to the pre-generic implementation.
#[derive(Debug, Clone, Default)]
pub struct ProjGradSolver {
    /// Solver settings.
    pub settings: ProjGradSettings,
    recorder: Recorder,
    /// Anytime-mode deadline: when set, the FISTA loop stops at the
    /// first stride boundary past this instant and returns its best
    /// iterate so far (monotone by the restart discipline), instead of
    /// running to `max_iters` or tolerance.
    deadline: Option<Instant>,
}

impl ProjGradSolver {
    /// Creates a solver with custom settings.
    pub fn new(settings: ProjGradSettings) -> Self {
        ProjGradSolver {
            settings,
            recorder: Recorder::noop(),
            deadline: None,
        }
    }

    /// Arms (or clears) the anytime deadline for subsequent solves.
    ///
    /// The deadline is a wall-clock instant, not a duration: the caller
    /// owning the control tick computes `tick_start + decide_budget`
    /// once and every solve in that tick shares the remaining time.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// The currently armed anytime deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Attaches a telemetry recorder (builder form). Every solve then
    /// reports `perq_qp_*` metrics: solve/restart/convergence counters,
    /// an iteration histogram, the final residual, and `LmaxCache`
    /// hit/miss counters.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a telemetry recorder in place.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Solves the QP, optionally warm starting from `x0`.
    ///
    /// `x0` is projected onto the feasible set before use, so any previous
    /// solution is a valid warm start even after the constraint set moved.
    pub fn solve<S: Scalar, Q: QpOperator<S> + ?Sized>(
        &self,
        qp: &Q,
        x0: Option<&[S]>,
    ) -> Result<QpSolution<S>> {
        let mut ws: Workspace<S> = Workspace::default();
        self.solve_with(qp, x0, &mut ws, None)
    }

    /// [`ProjGradSolver::solve`] with caller-owned buffers and an optional
    /// spectral cache.
    ///
    /// The iteration loop allocates nothing: all working vectors live in
    /// `ws`. When `lmax_cache` is provided, the Lipschitz constant is
    /// re-estimated by a power iteration seeded with the cached dominant
    /// eigenvector (a few matrix-vector products once warm); without it,
    /// the operator's [`QpOperator::lmax_upper_bound`] is used when
    /// available and a cold power iteration otherwise.
    pub fn solve_with<S: Scalar, Q: QpOperator<S> + ?Sized>(
        &self,
        qp: &Q,
        x0: Option<&[S]>,
        ws: &mut Workspace<S>,
        lmax_cache: Option<&mut LmaxCache<S>>,
    ) -> Result<QpSolution<S>> {
        qp.validate()?;
        let n = qp.dim();
        ws.resize(n);

        let lipschitz = self.lipschitz(qp, ws, lmax_cache).max(1e-12);
        let step = S::from_f64(1.0 / lipschitz);

        let mut x: Vec<S> = match x0 {
            Some(v) if v.len() == n => v.to_vec(),
            _ => {
                let half = S::from_f64(0.5);
                qp.lo()
                    .iter()
                    .zip(qp.hi().iter())
                    .map(|(&l, &h)| half * (l + h))
                    .collect()
            }
        };
        qp.project(&mut x, &mut ws.proj);

        ws.y.copy_from_slice(&x);
        // Restart discipline is precision-gated (see
        // [`Scalar::OBJECTIVE_RESTART`]): the reference `f64` path
        // compares objective values in f64 — byte-identical to the
        // pre-generic solver — while reduced-precision iterates use the
        // gradient-mapping sign test, which fuses into the residual pass
        // and costs no objective evaluation per iteration.
        let ascent_eps = 1e-12_f64;
        let mut t = 1.0_f64;
        let mut f_prev = if S::OBJECTIVE_RESTART {
            qp.objective_f64(&x)
        } else {
            0.0
        };
        let mut residual = f64::INFINITY;
        let mut iterations = 0;
        let mut restarts = 0u64;
        let mut deadline_hit = false;

        for k in 0..self.settings.max_iters {
            // Anytime mode: past the deadline, stop and return the best
            // iterate found so far. Checked on a stride so the common
            // (no-deadline or fast-converging) path pays nothing per
            // iteration beyond a branch.
            if k % DEADLINE_STRIDE == 0 {
                if let Some(dl) = self.deadline {
                    if Instant::now() >= dl {
                        deadline_hit = true;
                        break;
                    }
                }
            }
            iterations = k + 1;
            if S::OBJECTIVE_RESTART {
                // Gradient step from the extrapolated point, then project.
                qp.gradient_into(&ws.y, &mut ws.grad);
                for ((xn, &yi), &gi) in ws.x_next.iter_mut().zip(ws.y.iter()).zip(ws.grad.iter()) {
                    *xn = yi - step * gi;
                }
                qp.project(&mut ws.x_next, &mut ws.proj);

                // Fixed-point residual scaled back to gradient units.
                residual = vecops::max_abs_diff(&ws.x_next, &ws.y).to_f64() * lipschitz;

                let f_next = qp.objective_f64(&ws.x_next);
                if f_next > f_prev + ascent_eps {
                    // Adaptive restart: drop momentum, retry from the best
                    // point.
                    restarts += 1;
                    t = 1.0;
                    ws.y.copy_from_slice(&x);
                    f_prev = qp.objective_f64(&x);
                    continue;
                }

                let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
                let beta = S::from_f64((t - 1.0) / t_next);
                for ((yi, &xn), &xo) in ws.y.iter_mut().zip(ws.x_next.iter()).zip(x.iter()) {
                    *yi = xn + beta * (xn - xo);
                }
                std::mem::swap(&mut x, &mut ws.x_next);
                f_prev = f_next;
                t = t_next;
            } else {
                // Reduced precision: fused gradient step, then one fused
                // pass for the residual and the gradient-mapping restart
                // test `(y − x₊)·(x₊ − x) > 0` (O'Donoghue-Candès).
                qp.gradient_step_into(&ws.y, step, &mut ws.x_next);
                qp.project(&mut ws.x_next, &mut ws.proj);

                let (diff, ascent) = diff_and_restart_dot(&ws.x_next, &ws.y, &x);
                residual = diff * lipschitz;
                if ascent > 0.0 {
                    restarts += 1;
                    t = 1.0;
                    ws.y.copy_from_slice(&x);
                    continue;
                }

                let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
                let beta = S::from_f64((t - 1.0) / t_next);
                for ((yi, &xn), &xo) in ws.y.iter_mut().zip(ws.x_next.iter()).zip(x.iter()) {
                    *yi = xn + beta * (xn - xo);
                }
                std::mem::swap(&mut x, &mut ws.x_next);
                t = t_next;
            }

            if residual < self.settings.tol * lipschitz.max(1.0) {
                break;
            }
        }

        // Final safety projection (momentum extrapolation never leaves x
        // infeasible, but guard against accumulated round-off).
        qp.project(&mut x, &mut ws.proj);
        let objective = qp.objective_f64(&x);
        let converged = residual < self.settings.tol * lipschitz.max(1.0);
        if self.recorder.enabled() {
            self.recorder.counter_inc("perq_qp_solves_total");
            if converged {
                self.recorder.counter_inc("perq_qp_converged_total");
            }
            if deadline_hit {
                self.recorder.counter_inc("perq_qp_deadline_hits_total");
            }
            self.recorder
                .counter_add("perq_qp_restarts_total", restarts);
            self.recorder
                .observe("perq_qp_iterations", iterations as f64);
            self.recorder.gauge_set("perq_qp_residual", residual);
        }
        Ok(QpSolution {
            x,
            objective,
            iterations,
            converged,
            residual,
        })
    }

    /// Picks the Lipschitz constant for the gradient step.
    ///
    /// - With a cache: power-iterate, seeded from the cached eigenvector
    ///   when the dimension matches (early-exits once the estimate
    ///   stabilises, so a warm re-estimate costs ~2-3 products), and clamp
    ///   to the operator's certified upper bound if one exists (the bound
    ///   is always a valid — if looser — Lipschitz constant).
    /// - Without a cache: trust the certified bound when available, fall
    ///   back to a cold power iteration otherwise.
    fn lipschitz<S: Scalar, Q: QpOperator<S> + ?Sized>(
        &self,
        qp: &Q,
        ws: &mut Workspace<S>,
        cache: Option<&mut LmaxCache<S>>,
    ) -> f64 {
        let bound = qp.lmax_upper_bound();
        match cache {
            None => bound.unwrap_or_else(|| power_iterate(qp, self.settings.power_iters, ws, None)),
            Some(cache) => {
                let n = qp.dim();
                let seed = if cache.eigvec.len() == n {
                    Some(cache.eigvec.as_slice())
                } else {
                    None
                };
                if self.recorder.enabled() {
                    self.recorder.counter_inc(if seed.is_some() {
                        "perq_qp_lmax_cache_hits_total"
                    } else {
                        "perq_qp_lmax_cache_misses_total"
                    });
                }
                let mut est = power_iterate(qp, self.settings.power_iters, ws, seed);
                if let Some(b) = bound {
                    est = est.min(b);
                }
                cache.lmax = Some(est);
                cache.eigvec.clear();
                cache.eigvec.extend_from_slice(&ws.pow);
                est
            }
        }
    }
}

/// Estimates `λ_max(Q)` by power iteration from a cold deterministic
/// start (exposed so tests can compare certified bounds against it).
pub fn estimate_lmax<S: Scalar, Q: QpOperator<S> + ?Sized>(qp: &Q, iters: usize) -> f64 {
    let mut ws: Workspace<S> = Workspace::default();
    power_iterate(qp, iters, &mut ws, None)
}

/// Power iteration on `Q` using the workspace's `pow`/`pow_next` buffers;
/// the final iterate is left in `ws.pow` so callers can cache it as a
/// seed. Early-exits once successive estimates agree to 0.1% (with a
/// good seed that happens after a couple of products).
fn power_iterate<S: Scalar, Q: QpOperator<S> + ?Sized>(
    qp: &Q,
    iters: usize,
    ws: &mut Workspace<S>,
    seed: Option<&[S]>,
) -> f64 {
    let n = qp.dim();
    if n == 0 {
        return 1.0;
    }
    ws.pow.clear();
    match seed {
        Some(v) if v.len() == n && vecops::norm2(v) > S::NORM_FLOOR => {
            ws.pow.extend_from_slice(v);
        }
        _ => {
            // Deterministic pseudo-random start vector avoids adversarial
            // alignment with a null eigenvector while keeping runs
            // reproducible.
            ws.pow.extend(
                (0..n).map(|i| S::from_f64(((i as f64 * 0.754_877_666 + 0.1).sin() + 1.5) / 2.0)),
            );
        }
    }
    ws.pow_next.resize(n, S::ZERO);

    let mut lmax = 1.0_f64;
    let mut lmax_prev = f64::NAN;
    for _ in 0..iters {
        qp.hess_matvec_into(&ws.pow, &mut ws.pow_next);
        let norm = vecops::norm2(&ws.pow_next);
        if norm < S::NORM_FLOOR {
            return 1.0;
        }
        lmax = norm.to_f64() / vecops::norm2(&ws.pow).to_f64().max(S::NORM_FLOOR.to_f64());
        let inv = S::ONE / norm;
        for (p, &w) in ws.pow.iter_mut().zip(ws.pow_next.iter()) {
            *p = w * inv;
        }
        if (lmax - lmax_prev).abs() <= 1e-3 * lmax {
            break;
        }
        lmax_prev = lmax;
    }
    // Rayleigh quotient for a tighter final estimate.
    qp.hess_matvec_into(&ws.pow, &mut ws.pow_next);
    let rq = vecops::dot(&ws.pow, &ws.pow_next).to_f64()
        / vecops::dot(&ws.pow, &ws.pow)
            .to_f64()
            .max(S::NORM_FLOOR.to_f64());
    // Small inflation guards against underestimation from finite iterations.
    (rq.max(lmax) * 1.01).max(1e-12)
}

/// One fused pass over the iterate triple computing `‖x₊ − y‖∞` and the
/// gradient-mapping restart indicator `(y − x₊)·(x₊ − x)`, both in `f64`.
///
/// The dot uses 8 split accumulators reduced in a fixed order, so
/// reduced-precision solves stay bitwise deterministic across runs and
/// thread counts while long sums do not lose the sub-ulp increments the
/// restart sign test depends on.
fn diff_and_restart_dot<S: Scalar>(xn: &[S], y: &[S], x: &[S]) -> (f64, f64) {
    const LANES: usize = 8;
    let n = xn.len().min(y.len()).min(x.len());
    let (xn, y, x) = (&xn[..n], &y[..n], &x[..n]);
    // Both reductions carry per-lane accumulators: the dot so long sums
    // keep f64 increments, the max so the loop has no serial dependency
    // chain (max is order-independent, so lane-splitting is exact).
    let mut dmax = [S::ZERO; LANES];
    let mut acc = [0.0_f64; LANES];
    let mut nc = xn.chunks_exact(LANES);
    let mut yc = y.chunks_exact(LANES);
    let mut oc = x.chunks_exact(LANES);
    for ((ns, ys), os) in (&mut nc).zip(&mut yc).zip(&mut oc) {
        for l in 0..LANES {
            let d = ns[l] - ys[l];
            dmax[l] = dmax[l].max(d.abs());
            acc[l] += (-d).to_f64() * (ns[l] - os[l]).to_f64();
        }
    }
    let mut diff = S::ZERO;
    for &m in &dmax {
        diff = diff.max(m);
    }
    let mut tail = 0.0_f64;
    for ((&ni, &yi), &oi) in nc
        .remainder()
        .iter()
        .zip(yc.remainder())
        .zip(oc.remainder())
    {
        let d = ni - yi;
        diff = diff.max(d.abs());
        tail += (-d).to_f64() * (ni - oi).to_f64();
    }
    let dot = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    (diff.to_f64(), dot + tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{BoxBudgetQp, Budget};
    use crate::solve_equality_qp;
    use perq_linalg::Matrix;

    fn solve(qp: &BoxBudgetQp) -> QpSolution {
        ProjGradSolver::default().solve(qp, None).unwrap()
    }

    #[test]
    fn past_deadline_returns_a_feasible_iterate_immediately() {
        let qp = BoxBudgetQp {
            q: Matrix::diag(&[2.0, 4.0]),
            c: vec![-2.0, -8.0],
            lo: vec![0.0; 2],
            hi: vec![1.0; 2],
            budgets: vec![Budget {
                coeffs: vec![1.0, 1.0],
                limit: 1.5,
            }],
        };
        let mut solver = ProjGradSolver::default();
        solver.set_deadline(Some(Instant::now() - std::time::Duration::from_secs(1)));
        // Warm start far outside the feasible set: anytime mode must
        // still hand back a projected (feasible) point.
        let s = solver.solve(&qp, Some(&[50.0, 50.0])).unwrap();
        assert_eq!(s.iterations, 0, "no iteration budget past the deadline");
        assert!(!s.converged);
        for &xi in &s.x {
            assert!((0.0..=1.0).contains(&xi), "box violated: {:?}", s.x);
        }
        assert!(s.x.iter().sum::<f64>() <= 1.5 + 1e-9, "budget violated");
    }

    #[test]
    fn future_deadline_does_not_perturb_convergence() {
        let qp = BoxBudgetQp {
            q: Matrix::diag(&[2.0, 4.0]),
            c: vec![-2.0, -8.0],
            lo: vec![-10.0; 2],
            hi: vec![10.0; 2],
            budgets: vec![],
        };
        let mut solver = ProjGradSolver::default();
        solver.set_deadline(Some(Instant::now() + std::time::Duration::from_secs(3600)));
        let s = solver.solve(&qp, None).unwrap();
        let reference = solve(&qp);
        assert!(s.converged);
        assert_eq!(s.iterations, reference.iterations);
        assert_eq!(s.x, reference.x);
    }

    #[test]
    fn unconstrained_interior_minimum() {
        // Minimum at (1,2), box is wide, no budget.
        let qp = BoxBudgetQp {
            q: Matrix::diag(&[2.0, 4.0]),
            c: vec![-2.0, -8.0],
            lo: vec![-10.0; 2],
            hi: vec![10.0; 2],
            budgets: vec![],
        };
        let s = solve(&qp);
        assert!(s.converged);
        assert!((s.x[0] - 1.0).abs() < 1e-5, "{:?}", s.x);
        assert!((s.x[1] - 2.0).abs() < 1e-5, "{:?}", s.x);
    }

    #[test]
    fn box_active_at_solution() {
        // Unconstrained min at (5,5) but hi = 1 ⇒ solution at (1,1).
        let qp = BoxBudgetQp {
            q: Matrix::identity(2),
            c: vec![-5.0, -5.0],
            lo: vec![0.0; 2],
            hi: vec![1.0; 2],
            budgets: vec![],
        };
        let s = solve(&qp);
        assert!((s.x[0] - 1.0).abs() < 1e-6);
        assert!((s.x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn budget_active_matches_kkt_oracle() {
        // With the budget active and no box activity, the solution matches
        // the equality-constrained QP with aᵀx = limit.
        let q = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]).unwrap();
        let c = vec![-4.0, -3.0];
        let qp = BoxBudgetQp {
            q: q.clone(),
            c: c.clone(),
            lo: vec![0.0; 2],
            hi: vec![10.0; 2],
            budgets: vec![Budget {
                coeffs: vec![1.0, 1.0],
                limit: 2.0,
            }],
        };
        let s = solve(&qp);
        let e = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        let (x_eq, _) = solve_equality_qp(&q, &c, Some((&e, &[2.0]))).unwrap();
        assert!(
            vecops::max_abs_diff(&s.x, &x_eq) < 1e-4,
            "{:?} vs {x_eq:?}",
            s.x
        );
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let n = 40;
        let q = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                4.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let qp = BoxBudgetQp {
            q,
            c: (0..n).map(|i| -((i % 7) as f64)).collect(),
            lo: vec![0.0; n],
            hi: vec![3.0; n],
            budgets: vec![Budget {
                coeffs: vec![1.0; n],
                limit: 30.0,
            }],
        };
        let cold = solve(&qp);
        let warm = ProjGradSolver::default().solve(&qp, Some(&cold.x)).unwrap();
        assert!(warm.converged);
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} > cold {}",
            warm.iterations,
            cold.iterations
        );
        assert!(warm.objective <= cold.objective + 1e-6);
    }

    #[test]
    fn solution_is_feasible_and_kkt_stationary() {
        // Random-ish QP; verify no feasible descent direction exists by
        // checking the projected gradient vanishes.
        let q = Matrix::from_rows(&[&[3.0, 0.2, 0.1], &[0.2, 2.0, 0.0], &[0.1, 0.0, 1.5]]).unwrap();
        let qp = BoxBudgetQp {
            q,
            c: vec![-10.0, 1.0, -2.0],
            lo: vec![0.0; 3],
            hi: vec![2.0; 3],
            budgets: vec![Budget {
                coeffs: vec![1.0, 1.0, 1.0],
                limit: 3.5,
            }],
        };
        let s = solve(&qp);
        assert!(qp.is_feasible(&s.x, 1e-7));
        // Projected-gradient stationarity: proj(x − t∇f(x)) == x.
        let grad = qp.gradient(&s.x);
        let mut probe = s.x.clone();
        vecops::axpy(-1e-3, &grad, &mut probe);
        crate::projection::project_box_budgets(&mut probe, &qp.lo, &qp.hi, &qp.budgets);
        assert!(vecops::max_abs_diff(&probe, &s.x) < 1e-5);
    }

    #[test]
    fn infeasible_problem_rejected() {
        let qp = BoxBudgetQp {
            q: Matrix::identity(2),
            c: vec![0.0; 2],
            lo: vec![1.0; 2],
            hi: vec![2.0; 2],
            budgets: vec![Budget {
                coeffs: vec![1.0; 2],
                limit: 1.0,
            }],
        };
        assert!(ProjGradSolver::default().solve(&qp, None).is_err());
    }

    #[test]
    fn workspace_and_cache_reuse_matches_plain_solve() {
        let q = Matrix::from_rows(&[&[3.0, 0.4], &[0.4, 2.0]]).unwrap();
        let qp = BoxBudgetQp {
            q,
            c: vec![-2.0, -3.0],
            lo: vec![0.0; 2],
            hi: vec![1.5; 2],
            budgets: vec![Budget {
                coeffs: vec![1.0, 1.0],
                limit: 2.0,
            }],
        };
        let solver = ProjGradSolver::default();
        let plain = solver.solve(&qp, None).unwrap();

        let mut ws = Workspace::default();
        let mut cache = LmaxCache::default();
        let first = solver
            .solve_with(&qp, None, &mut ws, Some(&mut cache))
            .unwrap();
        assert!(cache.lmax().is_some());
        // Re-solving with the warm cache and workspace converges to the
        // same point.
        let second = solver
            .solve_with(&qp, Some(&first.x), &mut ws, Some(&mut cache))
            .unwrap();
        assert!(vecops::max_abs_diff(&plain.x, &second.x) < 1e-6);
        assert!(second.iterations <= first.iterations);
    }
}
