//! Convex quadratic programming for PERQ's model-predictive controller.
//!
//! The paper solves Eq. 4 — `min ½ PᵀQP + cᵀP` subject to per-node
//! power-cap bounds and the system power budget — with the Python CVXOPT
//! package every decision instance. This crate is the from-scratch Rust
//! substitute. It provides three solvers with different generality/speed
//! trade-offs:
//!
//! - [`solve_equality_qp`]: direct KKT solve for equality-constrained QPs
//!   (used as a building block and in tests as a ground-truth oracle).
//! - [`ProjGradSolver`]: accelerated projected gradient (FISTA) specialised
//!   to the feasible set PERQ actually has — a box `[lo, hi]` intersected
//!   with budget half-spaces `aᵀx ≤ b` with non-negative coefficients. The
//!   projection onto that set is computed exactly by bisection on the
//!   budget's dual multiplier ([`project_box_budget`]). This is the solver
//!   the PERQ controller uses at every decision interval; it supports warm
//!   starting from the previous interval's solution.
//! - [`AdmmSolver`]: an OSQP-style ADMM solver for general linear
//!   inequality constraints `l ≤ Ax ≤ u`, used for cross-validation and for
//!   problem shapes the projected-gradient solver does not cover.
//!
//! The solvers access the QP through the [`QpOperator`] trait, which only
//! exposes matrix-vector products. [`BoxBudgetQp`] materialises the dense
//! Hessian (O(n²) memory and per-iteration cost); [`StructuredQp`] stores
//! the block-diagonal + low-rank factorisation PERQ's MPC produces and
//! costs O(jobs · horizon²) per iteration — the representation that makes
//! the per-decision cost linear instead of quadratic in the job count.
//! Long-lived callers reuse a [`Workspace`] (and optionally an
//! [`LmaxCache`] of the previous Hessian's dominant eigenvector) to make
//! repeated solves allocation-free and the Lipschitz estimate nearly free.
//!
//! With the `parallel` cargo feature the structured operator's
//! block-diagonal matrix-vector product fans out across jobs with rayon.
//!
//! The projected-gradient path is generic over the iterate scalar
//! ([`perq_linalg::Scalar`], `f64` or `f32`). [`SoaQp`] transposes a
//! [`StructuredQp`] into structure-of-arrays lanes whose matvec, gradient
//! step, and budget projection are straight-line chunked loops — the
//! autovectorizer's favourite diet, with explicit 4/8-wide kernels behind
//! the `simd` cargo feature (identical results; the feature only changes
//! code generation). [`SolverProfile`] names a precision × layout choice
//! and [`solve_profiled`] runs it, including the `mixed` mode that
//! iterates in `f32` and accepts only after an `f64` KKT residual check
//! (falling back to an `f64` polish otherwise).
//!
//! All solvers report convergence diagnostics in [`QpSolution`], and the
//! test suite checks their answers against each other and against the KKT
//! optimality conditions.
//!
//! # Example
//!
//! ```
//! use perq_qp::{BoxBudgetQp, Budget, ProjGradSolver};
//! use perq_linalg::Matrix;
//!
//! // min ½‖x‖² − [3,3]ᵀx  s.t. 0 ≤ x ≤ 2, x₀ + x₁ ≤ 3.
//! let qp = BoxBudgetQp {
//!     q: Matrix::identity(2),
//!     c: vec![-3.0, -3.0],
//!     lo: vec![0.0, 0.0],
//!     hi: vec![2.0, 2.0],
//!     budgets: vec![Budget { coeffs: vec![1.0, 1.0], limit: 3.0 }],
//! };
//! let sol = ProjGradSolver::default().solve(&qp, None).unwrap();
//! assert!((sol.x[0] - 1.5).abs() < 1e-5);
//! assert!((sol.x[1] - 1.5).abs() < 1e-5);
//! ```

mod admm;
mod error;
mod kkt;
mod problem;
mod profile;
mod projection;
mod projgrad;
mod soa;
mod structured;

pub use admm::{AdmmSettings, AdmmSolver, InequalityQp};
pub use error::QpError;
pub use kkt::solve_equality_qp;
pub use problem::{BoxBudgetQp, Budget, QpOperator, QpSolution};
pub use profile::{
    f64_kkt_residual, solve_profiled, Layout, Precision, ProfiledQpState, ProfiledSolution,
    SolverProfile, MIXED_ACCEPT_FACTOR,
};
pub use projection::{
    project_box_budget, project_box_budgets, project_box_budgets_scratch, ProjectionScratch,
};
pub use projgrad::{estimate_lmax, LmaxCache, ProjGradSettings, ProjGradSolver, Workspace};
pub use soa::SoaQp;
pub use structured::{Coupling, StructuredQp};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, QpError>;
