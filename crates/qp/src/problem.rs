use crate::projection::ProjectionScratch;
use crate::{QpError, Result};
use perq_linalg::{vecops, Matrix, Scalar};

/// One coupling budget constraint `coeffsᵀ x ≤ limit` with `coeffs ≥ 0`.
///
/// In PERQ this encodes the system power budget at one prediction-horizon
/// step: the weighted sum of job power-caps (weights = node counts) must
/// stay below the worst-case-provisioned budget.
///
/// Generic over the solver [`Scalar`] so the f32 SoA profile can carry its
/// constraint set natively; the default `S = f64` keeps every existing
/// call site unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct Budget<S: Scalar = f64> {
    /// Non-negative coefficients, one per decision variable. Zero entries
    /// exclude a variable from this budget (e.g. caps belonging to a
    /// different horizon step).
    pub coeffs: Vec<S>,
    /// Right-hand side of the constraint.
    pub limit: S,
}

impl<S: Scalar> Budget<S> {
    /// Evaluates `coeffsᵀ x`.
    pub fn usage(&self, x: &[S]) -> S {
        vecops::dot(&self.coeffs, x)
    }

    /// Returns `true` if `x` satisfies the budget to within `tol`.
    pub fn satisfied(&self, x: &[S], tol: S) -> bool {
        self.usage(x) <= self.limit + tol
    }

    /// Converts the budget to another scalar precision (rounding on
    /// narrowing).
    pub fn cast<T: Scalar>(&self) -> Budget<T> {
        Budget {
            coeffs: self
                .coeffs
                .iter()
                .map(|&a| T::from_f64(a.to_f64()))
                .collect(),
            limit: T::from_f64(self.limit.to_f64()),
        }
    }
}

/// Abstract interface to a box-and-budget-constrained convex QP
/// `min ½xᵀQx + cᵀx  s.t.  lo ≤ x ≤ hi, budgets`.
///
/// The iterative solvers only ever touch the Hessian through
/// matrix-vector products, so a problem does not need to materialise `Q`
/// as a dense matrix: [`BoxBudgetQp`] stores it densely (O(n²)), while
/// [`crate::StructuredQp`] stores the block-diagonal + low-rank
/// factorisation PERQ's MPC actually produces (O(n)). Generalising
/// [`crate::ProjGradSolver`] over this trait is what turns the
/// per-decision cost from O(jobs²) into O(jobs).
///
/// The trait is generic over the solver [`Scalar`]: the default `S = f64`
/// is the reference precision, while `S = f32` powers the reduced-precision
/// SoA profile ([`crate::SoaQp`]).
pub trait QpOperator<S: Scalar = f64> {
    /// Number of decision variables.
    fn dim(&self) -> usize;

    /// Component-wise lower bounds.
    fn lo(&self) -> &[S];

    /// Component-wise upper bounds.
    fn hi(&self) -> &[S];

    /// Coupling budget constraints (may be empty).
    fn budgets(&self) -> &[Budget<S>];

    /// Validates dimensions and feasibility of the constraint set.
    fn validate(&self) -> Result<()>;

    /// Evaluates the objective `½ xᵀQx + cᵀx`.
    fn objective(&self, x: &[S]) -> S;

    /// Evaluates the objective in `f64` regardless of the iterate's
    /// scalar type.
    ///
    /// The solver's adaptive-restart discipline compares successive
    /// objective values whose difference is far below one `f32` ulp of
    /// the objective's magnitude; comparing rounded `f32` values there
    /// turns the restart test into a coin flip and stalls the iteration.
    /// Reduced-precision operators should override this with a
    /// full-`f64` accumulation. The default is exact for `f64`
    /// operators, where it is a no-op conversion.
    fn objective_f64(&self, x: &[S]) -> f64 {
        self.objective(x).to_f64()
    }

    /// Writes the gradient `Qx + c` into `out`.
    fn gradient_into(&self, x: &[S], out: &mut [S]);

    /// Writes the explicit gradient step `y − step·∇f(y)` into `out`.
    ///
    /// The default evaluates the gradient into `out` and then applies the
    /// step in place — element-wise the same `yᵢ − step·gᵢ` the solver
    /// would compute itself. Layout-aware operators override it to fuse
    /// the step into the gradient pass and save one sweep over the
    /// iterate. Only the reduced-precision solver path calls this; the
    /// `f64` reference path keeps its own two-step loop verbatim.
    fn gradient_step_into(&self, y: &[S], step: S, out: &mut [S]) {
        self.gradient_into(y, out);
        for (o, &yi) in out.iter_mut().zip(y.iter()) {
            *o = yi - step * *o;
        }
    }

    /// Writes the Hessian-vector product `Qx` into `out` (used by the
    /// power iteration that estimates the Lipschitz constant).
    fn hess_matvec_into(&self, x: &[S], out: &mut [S]);

    /// A cheap guaranteed upper bound on `λ_max(Q)`, when the problem's
    /// structure admits one. Solvers use it in place of (or as a clamp
    /// on) the power-iteration estimate.
    fn lmax_upper_bound(&self) -> Option<f64> {
        None
    }

    /// Euclidean projection of `x` onto the feasible set, in place.
    ///
    /// The default delegates to the generic box∩budget projection;
    /// layout-aware operators ([`crate::SoaQp`]) override it with a
    /// projection specialised to their storage order.
    fn project(&self, x: &mut [S], scratch: &mut ProjectionScratch<S>) {
        crate::projection::project_box_budgets_scratch(
            x,
            self.lo(),
            self.hi(),
            self.budgets(),
            scratch,
        );
    }
}

/// Validates a box-and-budget constraint set of dimension `n` (shared by
/// every [`QpOperator`] implementation).
pub(crate) fn validate_constraints<S: Scalar>(
    n: usize,
    lo: &[S],
    hi: &[S],
    budgets: &[Budget<S>],
) -> Result<()> {
    if lo.len() != n || hi.len() != n {
        return Err(QpError::BadProblem(format!(
            "bounds have lengths {}/{}, expected {n}",
            lo.len(),
            hi.len()
        )));
    }
    for i in 0..n {
        if lo[i] > hi[i] {
            return Err(QpError::Infeasible(format!(
                "lo[{i}]={} > hi[{i}]={}",
                lo[i], hi[i]
            )));
        }
        if !lo[i].is_finite() || !hi[i].is_finite() {
            return Err(QpError::BadProblem(format!("non-finite bound at {i}")));
        }
    }
    for (k, b) in budgets.iter().enumerate() {
        if b.coeffs.len() != n {
            return Err(QpError::BadProblem(format!(
                "budget {k} has {} coefficients, expected {n}",
                b.coeffs.len()
            )));
        }
        if b.coeffs.iter().any(|&a| a < S::ZERO) {
            return Err(QpError::BadProblem(format!(
                "budget {k} has negative coefficients"
            )));
        }
        // Feasibility against the box: the least possible usage is at lo.
        let min_usage = vecops::dot(&b.coeffs, lo);
        if min_usage.to_f64() > b.limit.to_f64() + 1e-9 {
            return Err(QpError::Infeasible(format!(
                "budget {k}: minimum usage {:.3} exceeds limit {:.3}",
                min_usage.to_f64(),
                b.limit.to_f64()
            )));
        }
    }
    Ok(())
}

/// A box-and-budget-constrained convex QP:
///
/// ```text
/// minimize   ½ xᵀ Q x + cᵀ x
/// subject to lo ≤ x ≤ hi
///            budgets[k].coeffs ᵀ x ≤ budgets[k].limit   (coeffs ≥ 0)
/// ```
///
/// This is exactly the shape of PERQ's Eq. 4: `Q = HᵀW_TH + DᵀW_ΔPD` is
/// symmetric positive definite (the ΔP weight regularises it), the box is
/// the per-node power-cap range `[P_min, TDP]`, and each budget is the
/// system power constraint at one horizon step.
#[derive(Debug, Clone)]
pub struct BoxBudgetQp {
    /// Symmetric positive-semidefinite Hessian.
    pub q: Matrix,
    /// Linear cost term.
    pub c: Vec<f64>,
    /// Component-wise lower bounds.
    pub lo: Vec<f64>,
    /// Component-wise upper bounds.
    pub hi: Vec<f64>,
    /// Coupling budget constraints (may be empty).
    pub budgets: Vec<Budget>,
}

impl BoxBudgetQp {
    /// Number of decision variables.
    pub fn dim(&self) -> usize {
        self.c.len()
    }

    /// Validates dimensions and feasibility of the constraint set.
    pub fn validate(&self) -> Result<()> {
        let n = self.c.len();
        if self.q.rows() != n || self.q.cols() != n {
            return Err(QpError::BadProblem(format!(
                "Q is {}x{}, expected {n}x{n}",
                self.q.rows(),
                self.q.cols()
            )));
        }
        validate_constraints(n, &self.lo, &self.hi, &self.budgets)
    }

    /// Evaluates the objective `½ xᵀQx + cᵀx`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        let qx = self.q.matvec(x).expect("dimension validated");
        0.5 * vecops::dot(x, &qx) + vecops::dot(&self.c, x)
    }

    /// Evaluates the gradient `Qx + c`.
    pub fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let mut g = vec![0.0; self.c.len()];
        self.gradient_into(x, &mut g);
        g
    }

    /// Writes the gradient `Qx + c` into `out` without allocating.
    pub fn gradient_into(&self, x: &[f64], out: &mut [f64]) {
        self.q.matvec_into(x, out).expect("dimension validated");
        vecops::axpy(1.0, &self.c, out);
    }

    /// Returns `true` if `x` is feasible to within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        x.iter()
            .zip(self.lo.iter())
            .zip(self.hi.iter())
            .all(|((&xi, &l), &h)| xi >= l - tol && xi <= h + tol)
            && self.budgets.iter().all(|b| b.satisfied(x, tol))
    }
}

impl QpOperator for BoxBudgetQp {
    fn dim(&self) -> usize {
        BoxBudgetQp::dim(self)
    }

    fn lo(&self) -> &[f64] {
        &self.lo
    }

    fn hi(&self) -> &[f64] {
        &self.hi
    }

    fn budgets(&self) -> &[Budget] {
        &self.budgets
    }

    fn validate(&self) -> Result<()> {
        BoxBudgetQp::validate(self)
    }

    fn objective(&self, x: &[f64]) -> f64 {
        BoxBudgetQp::objective(self, x)
    }

    fn gradient_into(&self, x: &[f64], out: &mut [f64]) {
        BoxBudgetQp::gradient_into(self, x, out)
    }

    fn hess_matvec_into(&self, x: &[f64], out: &mut [f64]) {
        self.q.matvec_into(x, out).expect("dimension validated");
    }
}

/// Solution and diagnostics returned by the QP solvers.
///
/// Diagnostics (`objective`, `residual`) are reported in `f64` regardless
/// of the iterate precision so profiles can be compared directly.
#[derive(Debug, Clone)]
pub struct QpSolution<S: Scalar = f64> {
    /// The minimizer (or best iterate at termination).
    pub x: Vec<S>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the convergence tolerance was met before the iteration cap.
    pub converged: bool,
    /// Final optimality residual (fixed-point residual for projected
    /// gradient, max primal/dual residual for ADMM).
    pub residual: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_qp() -> BoxBudgetQp {
        BoxBudgetQp {
            q: Matrix::identity(3),
            c: vec![0.0; 3],
            lo: vec![0.0; 3],
            hi: vec![1.0; 3],
            budgets: vec![Budget {
                coeffs: vec![1.0; 3],
                limit: 2.0,
            }],
        }
    }

    #[test]
    fn validate_accepts_wellformed() {
        simple_qp().validate().unwrap();
    }

    #[test]
    fn validate_rejects_crossed_bounds() {
        let mut qp = simple_qp();
        qp.lo[1] = 2.0;
        assert!(matches!(qp.validate(), Err(QpError::Infeasible(_))));
    }

    #[test]
    fn validate_rejects_wrong_hessian_shape() {
        let mut qp = simple_qp();
        qp.q = Matrix::identity(2);
        assert!(matches!(qp.validate(), Err(QpError::BadProblem(_))));
    }

    #[test]
    fn validate_rejects_budget_below_box_minimum() {
        let mut qp = simple_qp();
        qp.lo = vec![1.0; 3];
        qp.budgets[0].limit = 2.0; // min usage is 3
        assert!(matches!(qp.validate(), Err(QpError::Infeasible(_))));
    }

    #[test]
    fn validate_rejects_negative_budget_coeff() {
        let mut qp = simple_qp();
        qp.budgets[0].coeffs[0] = -1.0;
        assert!(matches!(qp.validate(), Err(QpError::BadProblem(_))));
    }

    #[test]
    fn objective_and_gradient() {
        let qp = simple_qp();
        let x = [1.0, 1.0, 0.0];
        assert!((qp.objective(&x) - 1.0).abs() < 1e-12);
        assert_eq!(qp.gradient(&x), vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn feasibility_checks() {
        let qp = simple_qp();
        assert!(qp.is_feasible(&[0.5, 0.5, 0.5], 1e-9));
        assert!(!qp.is_feasible(&[1.0, 1.0, 1.0], 1e-9)); // budget
        assert!(!qp.is_feasible(&[-0.1, 0.0, 0.0], 1e-9)); // box
    }

    #[test]
    fn budget_casts_between_precisions() {
        let b = Budget {
            coeffs: vec![1.0, 2.0, 0.0],
            limit: 1.5,
        };
        let b32: Budget<f32> = b.cast();
        assert_eq!(b32.coeffs, vec![1.0_f32, 2.0, 0.0]);
        assert_eq!(b32.limit, 1.5_f32);
        assert!(b32.satisfied(&[0.5, 0.5, 9.0], 1e-6));
    }
}
