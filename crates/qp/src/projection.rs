use crate::problem::Budget;
use perq_linalg::Scalar;

/// Reusable buffers for the projection routines.
///
/// The projections need a copy of the pre-projection point (the bisection
/// on the budget multiplier must always restart from the original
/// coordinates); callers that project once per solver iteration pass a
/// scratch so that copy does not allocate every time.
#[derive(Debug, Clone, Default)]
pub struct ProjectionScratch<S: Scalar = f64> {
    pub(crate) base: Vec<S>,
    orig: Vec<S>,
    sub: Vec<S>,
    /// Per-budget multiplier from the previous projection through this
    /// scratch; the SoA fast path seeds its Newton search from it
    /// (solver iterates move slowly, so the previous λ is usually within
    /// a step or two of the new root). Zero means cold.
    pub(crate) lambda_warm: Vec<f64>,
}

/// Euclidean projection of `x` onto `{ lo ≤ z ≤ hi, aᵀz ≤ limit }` with
/// `a ≥ 0`, in place.
///
/// By the KKT conditions of the projection problem, the projection has the
/// closed form `z = clamp(x − λ a, lo, hi)` where `λ ≥ 0` is the budget
/// constraint's multiplier: `λ = 0` if the clamped point already satisfies
/// the budget, otherwise the unique root of the continuous, non-increasing
/// function `g(λ) = aᵀ clamp(x − λa, lo, hi) − limit`. The root is found by
/// bisection; `g` is piecewise linear so [`Scalar::BISECT_ITERS`] halvings
/// resolve the multiplier past the precision's round-off floor at O(n) per
/// iteration.
///
/// # Panics
///
/// Debug-panics if dimensions disagree. The feasibility pre-condition
/// `aᵀ lo ≤ limit` must hold (checked by [`crate::BoxBudgetQp::validate`]);
/// if it does not, the result is the box projection of the most-constrained
/// point rather than a feasible point.
pub fn project_box_budget<S: Scalar>(x: &mut [S], lo: &[S], hi: &[S], budget: &Budget<S>) {
    let mut base = Vec::new();
    project_box_budget_in(x, lo, hi, budget, &mut base);
}

/// [`project_box_budget`] with a caller-provided copy buffer (grown on
/// demand, never shrunk), so per-iteration callers do not allocate.
fn project_box_budget_in<S: Scalar>(
    x: &mut [S],
    lo: &[S],
    hi: &[S],
    budget: &Budget<S>,
    base: &mut Vec<S>,
) {
    debug_assert_eq!(x.len(), lo.len());
    debug_assert_eq!(x.len(), hi.len());
    debug_assert_eq!(x.len(), budget.coeffs.len());

    let a = &budget.coeffs;
    // KKT form: z = clamp(x_original − λa). λ = 0 (pure box projection)
    // if that already satisfies the budget. The bisection must use the
    // ORIGINAL x, not a pre-clamped copy, or components outside the box
    // would stop responding to λ.
    base.clear();
    base.extend_from_slice(x);
    if usage_at(base, a, S::ZERO, lo, hi) <= budget.limit {
        for i in 0..x.len() {
            x[i] = x[i].max(lo[i]).min(hi[i]);
        }
        return;
    }

    // Bisection on λ over [0, λ_max]. At λ_max every component with a
    // positive coefficient has been pushed to its lower bound, so the usage
    // equals aᵀlo ≤ limit (feasibility precondition).
    let mut lambda_max = S::ZERO;
    for i in 0..base.len() {
        if a[i] > S::ZERO {
            lambda_max = lambda_max.max((base[i] - lo[i]) / a[i]);
        }
    }
    let half = S::from_f64(0.5);
    let (mut l, mut r) = (S::ZERO, lambda_max.max(S::MIN_POSITIVE));
    for _ in 0..S::BISECT_ITERS {
        let mid = half * (l + r);
        if usage_at(base, a, mid, lo, hi) > budget.limit {
            l = mid;
        } else {
            r = mid;
        }
    }
    let lambda = r;
    for i in 0..x.len() {
        x[i] = (base[i] - lambda * a[i]).max(lo[i]).min(hi[i]);
    }
}

/// Usage `aᵀ clamp(base − λ a, lo, hi)`.
#[inline]
fn usage_at<S: Scalar>(base: &[S], a: &[S], lambda: S, lo: &[S], hi: &[S]) -> S {
    let mut s = S::ZERO;
    for i in 0..base.len() {
        if a[i] == S::ZERO {
            continue;
        }
        let z = (base[i] - lambda * a[i]).max(lo[i]).min(hi[i]);
        s += a[i] * z;
    }
    s
}

/// Projects onto the intersection of a box and several budgets.
///
/// When the budgets have pairwise-disjoint supports (the PERQ case: one
/// budget per prediction-horizon step, each covering only that step's
/// variables) the projections are independent and a single pass is exact.
/// For overlapping budgets this falls back to Dykstra's alternating
/// projection algorithm, which converges to the exact projection onto the
/// intersection of convex sets.
pub fn project_box_budgets<S: Scalar>(x: &mut [S], lo: &[S], hi: &[S], budgets: &[Budget<S>]) {
    let mut scratch = ProjectionScratch::default();
    project_box_budgets_scratch(x, lo, hi, budgets, &mut scratch);
}

/// [`project_box_budgets`] with caller-provided scratch buffers.
///
/// The solvers call this once per iteration; routing the two internal
/// working copies through [`ProjectionScratch`] keeps the iteration loop
/// allocation-free. (The rarely-taken Dykstra fallback for overlapping
/// budgets still allocates its per-budget increments.)
pub fn project_box_budgets_scratch<S: Scalar>(
    x: &mut [S],
    lo: &[S],
    hi: &[S],
    budgets: &[Budget<S>],
    scratch: &mut ProjectionScratch<S>,
) {
    match budgets {
        [] => {
            for i in 0..x.len() {
                x[i] = x[i].max(lo[i]).min(hi[i]);
            }
        }
        [b] => project_box_budget_in(x, lo, hi, b, &mut scratch.base),
        _ if disjoint_supports(budgets) => {
            // The projection decomposes over the disjoint supports, but each
            // budget's sub-projection must start from the ORIGINAL point.
            scratch.orig.clear();
            scratch.orig.extend_from_slice(x);
            for i in 0..x.len() {
                x[i] = scratch.orig[i].max(lo[i]).min(hi[i]);
            }
            for b in budgets {
                scratch.sub.clear();
                scratch.sub.extend_from_slice(&scratch.orig);
                project_box_budget_in(&mut scratch.sub, lo, hi, b, &mut scratch.base);
                for (i, &a) in b.coeffs.iter().enumerate() {
                    if a > S::ZERO {
                        x[i] = scratch.sub[i];
                    }
                }
            }
        }
        _ => dykstra(x, lo, hi, budgets),
    }
}

/// Returns `true` if no variable has a positive coefficient in two budgets.
fn disjoint_supports<S: Scalar>(budgets: &[Budget<S>]) -> bool {
    let n = budgets[0].coeffs.len();
    let mut seen = vec![false; n];
    for b in budgets {
        for (i, &a) in b.coeffs.iter().enumerate() {
            if a > S::ZERO {
                if seen[i] {
                    return false;
                }
                seen[i] = true;
            }
        }
    }
    true
}

/// Dykstra's algorithm over the sets `{box ∩ budget_k}`.
fn dykstra<S: Scalar>(x: &mut [S], lo: &[S], hi: &[S], budgets: &[Budget<S>]) {
    const SWEEPS: usize = 60;
    let n = x.len();
    let m = budgets.len();
    let tol = S::from_f64(1e-12);
    let mut increments = vec![vec![S::ZERO; n]; m];
    for _ in 0..SWEEPS {
        let mut moved = S::ZERO;
        for (k, b) in budgets.iter().enumerate() {
            let mut y: Vec<S> = (0..n).map(|i| x[i] + increments[k][i]).collect();
            project_box_budget(&mut y, lo, hi, b);
            for i in 0..n {
                let new_inc = x[i] + increments[k][i] - y[i];
                moved = moved.max((y[i] - x[i]).abs());
                increments[k][i] = new_inc;
                x[i] = y[i];
            }
        }
        if moved < tol {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(coeffs: Vec<f64>, limit: f64) -> Budget {
        Budget { coeffs, limit }
    }

    #[test]
    fn inactive_budget_is_pure_clamp() {
        let mut x = vec![-1.0, 0.5, 2.0];
        project_box_budget(&mut x, &[0.0; 3], &[1.0; 3], &budget(vec![1.0; 3], 10.0));
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn symmetric_overflow_split_evenly() {
        // Projecting (1,1) onto {0≤x≤1, x₀+x₁ ≤ 1} gives (0.5, 0.5).
        let mut x = vec![1.0, 1.0];
        project_box_budget(&mut x, &[0.0; 2], &[1.0; 2], &budget(vec![1.0; 2], 1.0));
        assert!((x[0] - 0.5).abs() < 1e-9);
        assert!((x[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lower_bounds_respected_under_budget_pressure() {
        // Budget forces reduction but lo stops one component.
        let mut x = vec![1.0, 1.0];
        let lo = [0.8, 0.0];
        project_box_budget(&mut x, &lo, &[1.0; 2], &budget(vec![1.0; 2], 1.0));
        assert!(x[0] >= 0.8 - 1e-12);
        assert!((x[0] + x[1] - 1.0).abs() < 1e-8, "{x:?}");
    }

    #[test]
    fn zero_coefficient_components_untouched_by_budget() {
        let mut x = vec![5.0, 5.0];
        let lo = [0.0, 0.0];
        let hi = [10.0, 10.0];
        project_box_budget(&mut x, &lo, &hi, &budget(vec![1.0, 0.0], 2.0));
        assert!((x[0] - 2.0).abs() < 1e-8);
        assert_eq!(x[1], 5.0);
    }

    #[test]
    fn weighted_budget() {
        // min ‖z − (4,4)‖ s.t. 2 z₀ + z₁ ≤ 6, 0 ≤ z ≤ 10.
        // Solution: z = (4,4) − λ(2,1) with 2z₀+z₁ = 6 → λ = 6/5 ⇒ z = (1.6, 2.8).
        let mut x = vec![4.0, 4.0];
        project_box_budget(&mut x, &[0.0; 2], &[10.0; 2], &budget(vec![2.0, 1.0], 6.0));
        assert!((x[0] - 1.6).abs() < 1e-8, "{x:?}");
        assert!((x[1] - 2.8).abs() < 1e-8, "{x:?}");
    }

    #[test]
    fn disjoint_budgets_single_pass() {
        let mut x = vec![1.0, 1.0, 1.0, 1.0];
        let budgets = vec![
            budget(vec![1.0, 1.0, 0.0, 0.0], 1.0),
            budget(vec![0.0, 0.0, 1.0, 1.0], 1.0),
        ];
        project_box_budgets(&mut x, &[0.0; 4], &[1.0; 4], &budgets);
        for pair in [(0, 1), (2, 3)] {
            assert!((x[pair.0] + x[pair.1] - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn overlapping_budgets_dykstra_feasible() {
        let mut x = vec![2.0, 2.0, 2.0];
        let budgets = vec![
            budget(vec![1.0, 1.0, 0.0], 1.0),
            budget(vec![0.0, 1.0, 1.0], 1.0),
        ];
        project_box_budgets(&mut x, &[0.0; 3], &[2.0; 3], &budgets);
        for b in &budgets {
            assert!(b.satisfied(&x, 1e-6), "violated: {x:?}");
        }
    }

    #[test]
    fn projection_is_idempotent() {
        let lo = [0.0; 3];
        let hi = [1.0; 3];
        let b = budget(vec![1.0, 2.0, 0.5], 1.2);
        let mut x = vec![0.9, 0.8, 0.7];
        project_box_budget(&mut x, &lo, &hi, &b);
        let once = x.clone();
        project_box_budget(&mut x, &lo, &hi, &b);
        for (a, c) in x.iter().zip(once.iter()) {
            assert!((a - c).abs() < 1e-9);
        }
    }

    #[test]
    fn f32_projection_matches_f64_within_tolerance() {
        let b64 = budget(vec![2.0, 1.0], 6.0);
        let b32: Budget<f32> = b64.cast();
        let mut x64 = vec![4.0, 4.0];
        let mut x32 = vec![4.0_f32, 4.0];
        project_box_budget(&mut x64, &[0.0; 2], &[10.0; 2], &b64);
        project_box_budget(&mut x32, &[0.0_f32; 2], &[10.0_f32; 2], &b32);
        for (a, c) in x64.iter().zip(x32.iter()) {
            assert!((a - *c as f64).abs() < 1e-5, "{x64:?} vs {x32:?}");
        }
    }
}
