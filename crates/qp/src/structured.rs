//! Matrix-free representation of PERQ's MPC decision QP.
//!
//! The Hessian of the paper's Eq. 4 over `n = jobs × M` variables is
//!
//! ```text
//! Q = blockdiag(B_1, …, B_jobs)  +  Σ_{j<M} w_j s_j s_jᵀ
//! ```
//!
//! where each `B_i` is the job's `M×M` tracking + ΔP-smoothing block and
//! the rank-`M` tail couples the jobs through the system-throughput rows
//! `s_j`. Materialising `Q` densely costs O(jobs²·M²) memory and the same
//! per matrix-vector product; this module stores the factored form —
//! O(jobs·M²) memory — and evaluates `objective`/`gradient` in
//! O(jobs·M²) time, which is what keeps the per-instance MPC decision
//! cost linear in the job count (§2.4.2 of the paper).

use crate::problem::{validate_constraints, Budget, QpOperator};
use crate::{QpError, Result};
use perq_linalg::vecops;

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// One rank-1 coupling term `weight · s sᵀ` of the Hessian's low-rank
/// tail.
#[derive(Debug, Clone, PartialEq)]
pub struct Coupling {
    /// Non-negative weight `w` of the term.
    pub weight: f64,
    /// The coupling vector `s` (length = problem dimension).
    pub s: Vec<f64>,
}

/// A box-and-budget QP whose Hessian is block-diagonal plus low-rank:
/// `Q = blockdiag(B_1..B_k) + Σ_r w_r s_r s_rᵀ` with every `B_i` a dense
/// symmetric PSD `m×m` block.
///
/// Stores O(k·m² + rank·k·m) floats instead of the dense `(k·m)²` and
/// performs Hessian-vector products in the same order, so both assembly
/// and every solver iteration are linear in the number of blocks (= jobs
/// in the PERQ MPC).
#[derive(Debug, Clone)]
pub struct StructuredQp {
    /// Number of diagonal blocks (jobs).
    nblocks: usize,
    /// Block edge length (the MPC horizon `M`).
    block: usize,
    /// The diagonal blocks, concatenated row-major: block `i` occupies
    /// `blocks[i·m²..(i+1)·m²]`.
    blocks: Vec<f64>,
    /// Low-rank coupling terms.
    couplings: Vec<Coupling>,
    /// Linear cost term.
    c: Vec<f64>,
    /// Component-wise lower bounds.
    lo: Vec<f64>,
    /// Component-wise upper bounds.
    hi: Vec<f64>,
    /// Coupling budget constraints (may be empty).
    budgets: Vec<Budget>,
    /// Precomputed Gershgorin + coupling-trace upper bound on `λ_max(Q)`.
    lmax_bound: f64,
}

impl StructuredQp {
    /// Builds a structured QP from its parts.
    ///
    /// `blocks` holds `c.len() / block` dense `block×block` matrices
    /// concatenated row-major; each must be symmetric (checked to 1e-9).
    /// Coupling weights must be non-negative. Bounds and budgets are
    /// validated exactly like [`crate::BoxBudgetQp::validate`].
    pub fn new(
        block: usize,
        blocks: Vec<f64>,
        couplings: Vec<Coupling>,
        c: Vec<f64>,
        lo: Vec<f64>,
        hi: Vec<f64>,
        budgets: Vec<Budget>,
    ) -> Result<Self> {
        if block == 0 {
            return Err(QpError::BadProblem("block size must be positive".into()));
        }
        let n = c.len();
        if !n.is_multiple_of(block) {
            return Err(QpError::BadProblem(format!(
                "dimension {n} is not a multiple of block size {block}"
            )));
        }
        let nblocks = n / block;
        if blocks.len() != nblocks * block * block {
            return Err(QpError::BadProblem(format!(
                "expected {nblocks}×{block}×{block} block storage, got {}",
                blocks.len()
            )));
        }
        for (i, b) in blocks.chunks_exact(block * block).enumerate() {
            for r in 0..block {
                for s in (r + 1)..block {
                    if (b[r * block + s] - b[s * block + r]).abs() > 1e-9 {
                        return Err(QpError::BadProblem(format!(
                            "diagonal block {i} is not symmetric at ({r},{s})"
                        )));
                    }
                }
            }
        }
        for (r, cp) in couplings.iter().enumerate() {
            if cp.s.len() != n {
                return Err(QpError::BadProblem(format!(
                    "coupling {r} has length {}, expected {n}",
                    cp.s.len()
                )));
            }
            if cp.weight < 0.0 || cp.weight.is_nan() {
                return Err(QpError::BadProblem(format!(
                    "coupling {r} has negative or NaN weight {}",
                    cp.weight
                )));
            }
        }
        validate_constraints(n, &lo, &hi, &budgets)?;
        let lmax_bound = lmax_bound(block, &blocks, &couplings);
        Ok(StructuredQp {
            nblocks,
            block,
            blocks,
            couplings,
            c,
            lo,
            hi,
            budgets,
            lmax_bound,
        })
    }

    /// Number of decision variables.
    pub fn dim(&self) -> usize {
        self.c.len()
    }

    /// Block edge length (the MPC horizon).
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Number of diagonal blocks (jobs).
    pub fn num_blocks(&self) -> usize {
        self.nblocks
    }

    /// Borrows diagonal block `i` as a row-major `block×block` slice.
    pub fn block(&self, i: usize) -> &[f64] {
        let mm = self.block * self.block;
        &self.blocks[i * mm..(i + 1) * mm]
    }

    /// The low-rank coupling terms.
    pub fn couplings(&self) -> &[Coupling] {
        &self.couplings
    }

    /// The linear cost term.
    pub fn c(&self) -> &[f64] {
        &self.c
    }

    /// Total `f64`s held by the Hessian representation (blocks +
    /// couplings). This is the quantity the scaling tests pin down: it
    /// grows as O(jobs·M²), not O(jobs²·M²).
    pub fn hessian_stored_floats(&self) -> usize {
        self.blocks.len() + self.couplings.iter().map(|cp| cp.s.len()).sum::<usize>()
    }

    /// Cheap guaranteed upper bound on `λ_max(Q)`:
    /// `max_i gershgorin(B_i) + Σ_r w_r‖s_r‖²`. The first term bounds the
    /// block-diagonal part (Gershgorin circles of a symmetric matrix);
    /// the second bounds the low-rank tail by its trace, since each
    /// `w s sᵀ` is PSD with the single nonzero eigenvalue `w‖s‖²`.
    pub fn lmax_bound(&self) -> f64 {
        self.lmax_bound
    }

    /// Densifies into a [`crate::BoxBudgetQp`] (test oracle; O(n²)).
    pub fn to_dense(&self) -> crate::BoxBudgetQp {
        let n = self.dim();
        let m = self.block;
        let mut q = perq_linalg::Matrix::zeros(n, n);
        for i in 0..self.nblocks {
            let b = self.block(i);
            for r in 0..m {
                for s in 0..m {
                    q[(i * m + r, i * m + s)] = b[r * m + s];
                }
            }
        }
        for cp in &self.couplings {
            for a in 0..n {
                if cp.s[a] == 0.0 {
                    continue;
                }
                for b in 0..n {
                    q[(a, b)] += cp.weight * cp.s[a] * cp.s[b];
                }
            }
        }
        crate::BoxBudgetQp {
            q,
            c: self.c.clone(),
            lo: self.lo.clone(),
            hi: self.hi.clone(),
            budgets: self.budgets.clone(),
        }
    }

    /// Writes `Qx` into `out` in O(blocks·m² + rank·n) time.
    pub fn hess_matvec_into(&self, x: &[f64], out: &mut [f64]) {
        let m = self.block;
        debug_assert_eq!(x.len(), self.dim());
        debug_assert_eq!(out.len(), self.dim());

        // Block-diagonal part: out_i = B_i x_i, independent per block.
        let mm = m * m;
        #[cfg(feature = "parallel")]
        {
            out.par_chunks_mut(m)
                .zip(x.par_chunks(m))
                .zip(self.blocks.par_chunks(mm))
                .for_each(|((out_i, x_i), b)| block_matvec(m, b, x_i, out_i));
        }
        #[cfg(not(feature = "parallel"))]
        {
            for ((out_i, x_i), b) in out
                .chunks_mut(m)
                .zip(x.chunks(m))
                .zip(self.blocks.chunks(mm))
            {
                block_matvec(m, b, x_i, out_i);
            }
        }

        // Low-rank tail: out += Σ_r w_r (s_rᵀx) s_r.
        for cp in &self.couplings {
            if cp.weight == 0.0 {
                continue;
            }
            let t = cp.weight * vecops::dot(&cp.s, x);
            if t != 0.0 {
                vecops::axpy(t, &cp.s, out);
            }
        }
    }

    /// Evaluates `½xᵀQx + cᵀx` without allocating.
    pub fn objective(&self, x: &[f64]) -> f64 {
        let m = self.block;
        let mm = m * m;
        let mut quad = 0.0;
        for (x_i, b) in x.chunks(m).zip(self.blocks.chunks(mm)) {
            for (r, &xr) in x_i.iter().enumerate() {
                if xr == 0.0 {
                    continue;
                }
                quad += xr * vecops::dot(&b[r * m..(r + 1) * m], x_i);
            }
        }
        for cp in &self.couplings {
            if cp.weight == 0.0 {
                continue;
            }
            let t = vecops::dot(&cp.s, x);
            quad += cp.weight * t * t;
        }
        0.5 * quad + vecops::dot(&self.c, x)
    }

    /// Writes the gradient `Qx + c` into `out` without allocating.
    pub fn gradient_into(&self, x: &[f64], out: &mut [f64]) {
        self.hess_matvec_into(x, out);
        vecops::axpy(1.0, &self.c, out);
    }
}

/// `out = B x` for a row-major `m×m` block.
#[inline]
fn block_matvec(m: usize, b: &[f64], x: &[f64], out: &mut [f64]) {
    for (r, o) in out.iter_mut().enumerate() {
        *o = vecops::dot(&b[r * m..(r + 1) * m], x);
    }
}

/// See [`StructuredQp::lmax_bound`].
fn lmax_bound(block: usize, blocks: &[f64], couplings: &[Coupling]) -> f64 {
    let mm = block * block;
    let mut block_bound = 0.0_f64;
    for b in blocks.chunks_exact(mm) {
        for r in 0..block {
            let radius: f64 = b[r * block..(r + 1) * block].iter().map(|v| v.abs()).sum();
            block_bound = block_bound.max(radius);
        }
    }
    let tail: f64 = couplings
        .iter()
        .map(|cp| cp.weight * vecops::dot(&cp.s, &cp.s))
        .sum();
    block_bound + tail
}

impl QpOperator for StructuredQp {
    fn dim(&self) -> usize {
        StructuredQp::dim(self)
    }

    fn lo(&self) -> &[f64] {
        &self.lo
    }

    fn hi(&self) -> &[f64] {
        &self.hi
    }

    fn budgets(&self) -> &[Budget] {
        &self.budgets
    }

    fn validate(&self) -> Result<()> {
        // Structural invariants were checked in `new`; bounds/budgets may
        // have been rebuilt by the caller, so re-check the cheap parts.
        validate_constraints(self.dim(), &self.lo, &self.hi, &self.budgets)
    }

    fn objective(&self, x: &[f64]) -> f64 {
        StructuredQp::objective(self, x)
    }

    fn gradient_into(&self, x: &[f64], out: &mut [f64]) {
        StructuredQp::gradient_into(self, x, out)
    }

    fn hess_matvec_into(&self, x: &[f64], out: &mut [f64]) {
        StructuredQp::hess_matvec_into(self, x, out)
    }

    fn lmax_upper_bound(&self) -> Option<f64> {
        Some(self.lmax_bound.max(1e-12))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projgrad::estimate_lmax;
    use crate::ProjGradSolver;

    /// Deterministic pseudo-random stream (no external crates needed).
    struct Lcg(u64);

    impl Lcg {
        fn next_f64(&mut self) -> f64 {
            // Numerical Recipes LCG; top bits → [0, 1).
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }

        fn range(&mut self, lo: f64, hi: f64) -> f64 {
            lo + (hi - lo) * self.next_f64()
        }
    }

    /// Random structured QP with `k` blocks of size `m` and `m` coupling
    /// terms; blocks are Gram matrices plus ridge so they are SPD.
    fn random_structured(k: usize, m: usize, seed: u64) -> StructuredQp {
        let mut rng = Lcg(seed);
        let n = k * m;
        let mut blocks = vec![0.0; k * m * m];
        for b in blocks.chunks_exact_mut(m * m) {
            let g: Vec<f64> = (0..m * m).map(|_| rng.range(-1.0, 1.0)).collect();
            for r in 0..m {
                for s in 0..m {
                    let mut dot = 0.0;
                    for t in 0..m {
                        dot += g[t * m + r] * g[t * m + s];
                    }
                    b[r * m + s] = dot + if r == s { 0.5 } else { 0.0 };
                }
            }
        }
        let couplings: Vec<Coupling> = (0..m)
            .map(|j| Coupling {
                weight: rng.range(0.0, 2.0),
                s: (0..n)
                    .map(|a| {
                        if a % m <= j {
                            rng.range(-1.0, 1.0)
                        } else {
                            0.0
                        }
                    })
                    .collect(),
            })
            .collect();
        let c: Vec<f64> = (0..n).map(|_| rng.range(-2.0, 2.0)).collect();
        let lo = vec![0.0; n];
        let hi: Vec<f64> = (0..n).map(|_| rng.range(0.5, 1.5)).collect();
        let budgets: Vec<Budget> = (0..m)
            .map(|j| Budget {
                coeffs: (0..n)
                    .map(|a| if a % m == j { rng.range(0.5, 4.0) } else { 0.0 })
                    .collect(),
                limit: 0.4 * n as f64,
            })
            .collect();
        StructuredQp::new(m, blocks, couplings, c, lo, hi, budgets).expect("well-formed")
    }

    #[test]
    fn matches_dense_objective_gradient_and_matvec() {
        for seed in 1..6 {
            let sq = random_structured(7, 4, seed);
            let dense = sq.to_dense();
            let n = sq.dim();
            let mut rng = Lcg(seed ^ 0xabcdef);
            let x: Vec<f64> = (0..n).map(|_| rng.range(-1.5, 1.5)).collect();
            assert!(
                (sq.objective(&x) - dense.objective(&x)).abs()
                    < 1e-9 * (1.0 + dense.objective(&x).abs()),
                "objective mismatch"
            );
            let mut gs = vec![0.0; n];
            sq.gradient_into(&x, &mut gs);
            let gd = dense.gradient(&x);
            assert!(vecops::max_abs_diff(&gs, &gd) < 1e-9, "gradient mismatch");
            let mut hs = vec![0.0; n];
            sq.hess_matvec_into(&x, &mut hs);
            let hd = dense.q.matvec(&x).unwrap();
            assert!(vecops::max_abs_diff(&hs, &hd) < 1e-9, "matvec mismatch");
        }
    }

    #[test]
    fn lmax_bound_dominates_power_iteration_estimate() {
        for seed in 1..8 {
            let sq = random_structured(6, 3, seed);
            let dense = sq.to_dense();
            // The power iteration converges to λ_max from below (modulo its
            // 1% final inflation), so the certified bound must dominate it
            // up to that slack.
            let est = estimate_lmax(&dense, 200);
            assert!(
                sq.lmax_bound() >= est / 1.02,
                "bound {} < estimate {est}",
                sq.lmax_bound()
            );
        }
    }

    #[test]
    fn solver_agrees_with_dense_path() {
        for seed in [3u64, 17, 99] {
            let sq = random_structured(5, 3, seed);
            let dense = sq.to_dense();
            let solver = ProjGradSolver::new(crate::ProjGradSettings {
                max_iters: 200_000,
                tol: 1e-12,
                power_iters: 60,
            });
            let xs = solver.solve(&sq, None).unwrap();
            let xd = solver.solve(&dense, None).unwrap();
            assert!(xs.converged && xd.converged);
            assert!(
                vecops::max_abs_diff(&xs.x, &xd.x) < 1e-8,
                "structured {:?} vs dense {:?}",
                xs.x,
                xd.x
            );
        }
    }

    #[test]
    fn hessian_storage_is_linear_in_blocks() {
        let m = 4;
        let small = random_structured(16, m, 1);
        let large = random_structured(256, m, 1);
        // 16× the blocks must cost ~16× the floats (exactly linear here),
        // far below the dense nv² footprint.
        assert_eq!(
            large.hessian_stored_floats(),
            16 * small.hessian_stored_floats()
        );
        let nv = large.dim();
        assert!(large.hessian_stored_floats() < nv * nv / 64);
    }

    #[test]
    fn rejects_malformed_inputs() {
        let ok = random_structured(3, 2, 5);
        // Non-symmetric block.
        let mut blocks = ok.blocks.clone();
        blocks[1] += 1.0;
        assert!(StructuredQp::new(
            2,
            blocks,
            ok.couplings.clone(),
            ok.c.clone(),
            ok.lo.clone(),
            ok.hi.clone(),
            ok.budgets.clone(),
        )
        .is_err());
        // Wrong coupling length.
        let mut couplings = ok.couplings.clone();
        couplings[0].s.pop();
        assert!(StructuredQp::new(
            2,
            ok.blocks.clone(),
            couplings,
            ok.c.clone(),
            ok.lo.clone(),
            ok.hi.clone(),
            ok.budgets.clone(),
        )
        .is_err());
        // Dimension not a multiple of the block size.
        assert!(StructuredQp::new(
            4,
            ok.blocks.clone(),
            vec![],
            ok.c.clone(),
            ok.lo.clone(),
            ok.hi.clone(),
            vec![],
        )
        .is_err());
    }
}
