//! Solver precision/layout profiles and the mixed-precision driver.
//!
//! A [`SolverProfile`] names how one MPC decision QP is iterated:
//!
//! | profile     | iterates | layout | accuracy contract                    |
//! |-------------|----------|--------|--------------------------------------|
//! | `f64_aos`   | `f64`    | AoS    | reference; byte-reproducible exports |
//! | `f64_soa`   | `f64`    | SoA    | ≈ reference to solver tolerance      |
//! | `f32_soa`   | `f32`    | SoA    | objective ≤ 1e-3 relative of oracle  |
//! | `mixed_soa` | `f32`+`f64` | SoA | f64-checked: falls back on residual  |
//!
//! The mixed profile is the speed/accuracy sweet spot: it iterates in
//! `f32` over [`crate::SoaQp`] lanes, then measures the **f64** KKT
//! fixed-point residual of the result on the original
//! [`crate::StructuredQp`]. If the measured residual is within
//! [`MIXED_ACCEPT_FACTOR`]× the solver's own convergence threshold the
//! f32 answer is accepted; otherwise the driver re-solves in `f64`
//! warm-started from the f32 iterate (a short polish — the f32 point is
//! already near-optimal) and reports the fallback so callers can count it
//! in telemetry. Every f32-derived answer is re-projected in `f64` before
//! being returned, so feasibility is always at reference precision.

use crate::problem::{QpOperator, QpSolution};
use crate::projection::{project_box_budgets_scratch, ProjectionScratch};
use crate::projgrad::{LmaxCache, ProjGradSolver, Workspace};
use crate::soa::SoaQp;
use crate::{Result, StructuredQp};
use perq_linalg::vecops;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Iterate precision of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Precision {
    /// Reference double precision.
    #[default]
    F64,
    /// Single precision throughout (fastest, loosest).
    F32,
    /// Iterate in `f32`, accept only after an `f64` residual check, fall
    /// back to an `f64` polish otherwise.
    Mixed,
}

/// Memory layout the iteration runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Layout {
    /// Job-major array-of-structures ([`StructuredQp`]'s native layout).
    #[default]
    Aos,
    /// Step-major structure-of-arrays lanes ([`SoaQp`]).
    Soa,
}

/// How the MPC decision QP is iterated: precision × layout × explicit
/// kernel width. The default (`f64`/AoS) is the pre-profile behaviour and
/// keeps every existing export byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct SolverProfile {
    /// Iterate precision.
    pub precision: Precision,
    /// Storage layout (`f32`/`mixed` always run SoA — there is no f32
    /// AoS operator — so `layout` is only meaningful at `f64`).
    pub layout: Layout,
    /// Explicit SIMD kernel width (4 or 8) under the `simd` feature;
    /// never changes results, only code generation.
    pub lanes: usize,
}

impl Default for SolverProfile {
    fn default() -> Self {
        SolverProfile {
            precision: Precision::F64,
            layout: Layout::Aos,
            lanes: 8,
        }
    }
}

impl SolverProfile {
    /// The reference profile (`f64`/AoS).
    pub fn f64_aos() -> Self {
        SolverProfile::default()
    }

    /// `f64` iterates over SoA lanes.
    pub fn f64_soa() -> Self {
        SolverProfile {
            precision: Precision::F64,
            layout: Layout::Soa,
            lanes: 8,
        }
    }

    /// `f32` iterates over SoA lanes.
    pub fn f32_soa() -> Self {
        SolverProfile {
            precision: Precision::F32,
            layout: Layout::Soa,
            lanes: 8,
        }
    }

    /// Mixed `f32`-iterate / `f64`-check profile over SoA lanes.
    pub fn mixed_soa() -> Self {
        SolverProfile {
            precision: Precision::Mixed,
            layout: Layout::Soa,
            lanes: 8,
        }
    }

    /// Stable label used in metric names, bench rows, and reports.
    pub fn label(&self) -> &'static str {
        match (self.precision, self.layout) {
            (Precision::F64, Layout::Aos) => "f64_aos",
            (Precision::F64, Layout::Soa) => "f64_soa",
            (Precision::F32, _) => "f32_soa",
            (Precision::Mixed, _) => "mixed_soa",
        }
    }

    /// Per-profile iteration-counter metric name (static, since the
    /// telemetry recorder interns `&'static str` names only).
    pub fn iterations_metric(&self) -> &'static str {
        match (self.precision, self.layout) {
            (Precision::F64, Layout::Aos) => "perq_qp_iterations_f64_aos_total",
            (Precision::F64, Layout::Soa) => "perq_qp_iterations_f64_soa_total",
            (Precision::F32, _) => "perq_qp_iterations_f32_soa_total",
            (Precision::Mixed, _) => "perq_qp_iterations_mixed_soa_total",
        }
    }
}

impl fmt::Display for SolverProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for SolverProfile {
    type Err = String;

    /// Parses the CLI `precision=` spellings (`f64`, `f32`, `mixed`) plus
    /// the explicit profile labels (`f64_aos`, `f64_soa`, `f32_soa`,
    /// `mixed_soa`).
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "f64" | "f64_aos" => Ok(SolverProfile::f64_aos()),
            "f64_soa" => Ok(SolverProfile::f64_soa()),
            "f32" | "f32_soa" => Ok(SolverProfile::f32_soa()),
            "mixed" | "mixed_soa" => Ok(SolverProfile::mixed_soa()),
            other => Err(format!(
                "unknown precision profile {other:?} (expected f64, f32, mixed, \
                 f64_aos, f64_soa, f32_soa, or mixed_soa)"
            )),
        }
    }
}

/// Accepted slack of the mixed profile's f64 residual check, as a
/// multiple of the solver's own convergence threshold `tol·max(L,1)`.
///
/// The f32 iterate resolves the solution to roughly `f32::EPSILON`-level
/// coordinates, which lands the measured f64 residual near (not below)
/// the f64 threshold for well-conditioned instances; accepting within
/// 10× keeps the fallback an exception (ill-conditioned or budget-tight
/// instances) instead of the common case, while still bounding the
/// objective gap at ~1e-5 relative — two orders of magnitude inside the
/// 1e-3 accuracy contract.
pub const MIXED_ACCEPT_FACTOR: f64 = 10.0;

/// Reusable buffers for [`solve_profiled`]: per-precision solver
/// workspaces and spectral caches (SoA and AoS eigenvector seeds live in
/// different layouts, so each profile keeps its own cache), plus the f64
/// residual-check scratch.
#[derive(Debug, Clone, Default)]
pub struct ProfiledQpState {
    ws64: Workspace<f64>,
    lmax64: LmaxCache<f64>,
    ws_soa64: Workspace<f64>,
    lmax_soa64: LmaxCache<f64>,
    ws32: Workspace<f32>,
    lmax32: LmaxCache<f32>,
    grad: Vec<f64>,
    probe: Vec<f64>,
    proj: ProjectionScratch<f64>,
}

impl ProfiledQpState {
    /// The cached `f64` AoS Lipschitz estimate, if a reference-profile
    /// solve has warmed it (diagnostics and tests).
    pub fn f64_lmax(&self) -> Option<f64> {
        self.lmax64.lmax()
    }
}

/// Result of a profiled solve: the solution in the canonical job-major
/// `f64` layout, plus mixed-profile accounting.
#[derive(Debug, Clone)]
pub struct ProfiledSolution {
    /// Solution and diagnostics (x is job-major `f64` for every profile).
    pub solution: QpSolution,
    /// Whether the mixed profile's f64 check rejected the f32 iterate and
    /// an f64 polish ran (always `false` for non-mixed profiles).
    pub fell_back: bool,
}

/// Solves a [`StructuredQp`] under the given [`SolverProfile`].
///
/// - `f64_aos` performs *exactly* the same operations as calling
///   [`ProjGradSolver::solve_with`] directly (byte-identity anchor).
/// - SoA profiles transpose the warm start into lane layout, solve, and
///   transpose back.
/// - Every f32-derived answer is re-projected in `f64` so the returned
///   point is feasible at reference precision, and its reported
///   `objective`/`residual` are measured in `f64` on the original
///   problem.
pub fn solve_profiled(
    solver: &ProjGradSolver,
    sq: &StructuredQp,
    warm: Option<&[f64]>,
    profile: SolverProfile,
    state: &mut ProfiledQpState,
) -> Result<ProfiledSolution> {
    match (profile.precision, profile.layout) {
        (Precision::F64, Layout::Aos) => {
            let solution = solver.solve_with(sq, warm, &mut state.ws64, Some(&mut state.lmax64))?;
            Ok(ProfiledSolution {
                solution,
                fell_back: false,
            })
        }
        (Precision::F64, Layout::Soa) => {
            let soa: SoaQp<f64> = SoaQp::from_structured_with_lanes(sq, profile.lanes);
            let warm_t = warm.map(|w| soa.to_soa(w));
            let sol = solver.solve_with(
                &soa,
                warm_t.as_deref(),
                &mut state.ws_soa64,
                Some(&mut state.lmax_soa64),
            )?;
            let x = soa.from_soa(&sol.x);
            Ok(ProfiledSolution {
                solution: finish_f64(sq, x, sol.iterations, sol.converged, state),
                fell_back: false,
            })
        }
        (Precision::F32, _) => {
            let (x, iterations, converged) = solve_f32(solver, sq, warm, profile.lanes, state)?;
            Ok(ProfiledSolution {
                solution: finish_f64(sq, x, iterations, converged, state),
                fell_back: false,
            })
        }
        (Precision::Mixed, _) => {
            let (x, iterations, converged) = solve_f32(solver, sq, warm, profile.lanes, state)?;
            let mut solution = finish_f64(sq, x, iterations, converged, state);
            let lipschitz = sq.lmax_bound().max(1e-12);
            let threshold = solver.settings.tol * lipschitz.max(1.0) * MIXED_ACCEPT_FACTOR;
            if solution.residual <= threshold {
                return Ok(ProfiledSolution {
                    solution,
                    fell_back: false,
                });
            }
            // The f32 iterate missed the contract: polish in f64,
            // warm-started from it (typically a handful of iterations).
            let polish = solver.solve_with(
                sq,
                Some(&solution.x),
                &mut state.ws64,
                Some(&mut state.lmax64),
            )?;
            solution = QpSolution {
                iterations: solution.iterations + polish.iterations,
                ..polish
            };
            Ok(ProfiledSolution {
                solution,
                fell_back: true,
            })
        }
    }
}

/// Floor on the single-precision stop tolerance: `f32` cannot resolve
/// iterate differences much below its machine epsilon (~1.2e-7 on
/// unit-scale caps), so a tighter request would spin to `max_iters`
/// chasing digits the format does not have. ~40× `f32::EPSILON` is
/// reliably reachable; anything the floor leaves on the table is caught
/// by the mixed profile's f64 residual check.
const F32_TOL_FLOOR: f64 = 5e-6;

/// Runs the f32 SoA solve and returns the job-major `f64` iterate.
fn solve_f32(
    solver: &ProjGradSolver,
    sq: &StructuredQp,
    warm: Option<&[f64]>,
    lanes: usize,
    state: &mut ProfiledQpState,
) -> Result<(Vec<f64>, usize, bool)> {
    let soa: SoaQp<f32> = SoaQp::from_structured_with_lanes(sq, lanes);
    let warm_t = warm.map(|w| soa.to_soa(w));
    let solver = if solver.settings.tol < F32_TOL_FLOOR {
        let mut floored = solver.clone();
        floored.settings.tol = F32_TOL_FLOOR;
        std::borrow::Cow::Owned(floored)
    } else {
        std::borrow::Cow::Borrowed(solver)
    };
    let sol = solver.solve_with(
        &soa,
        warm_t.as_deref(),
        &mut state.ws32,
        Some(&mut state.lmax32),
    )?;
    Ok((soa.from_soa(&sol.x), sol.iterations, sol.converged))
}

/// Re-projects an iterate in `f64` on the original problem and measures
/// its `f64` objective and KKT fixed-point residual.
fn finish_f64(
    sq: &StructuredQp,
    mut x: Vec<f64>,
    iterations: usize,
    converged: bool,
    state: &mut ProfiledQpState,
) -> QpSolution {
    project_box_budgets_scratch(
        &mut x,
        QpOperator::lo(sq),
        QpOperator::hi(sq),
        QpOperator::budgets(sq),
        &mut state.proj,
    );
    let residual = f64_kkt_residual(sq, &x, state);
    QpSolution {
        objective: StructuredQp::objective(sq, &x),
        iterations,
        converged,
        residual,
        x,
    }
}

/// Measures the `f64` KKT fixed-point residual `‖x − Π(x − ∇f(x)/L)‖∞·L`
/// of a point on the original problem — the same optimality measure the
/// f64 solver converges on, so mixed-profile acceptance is apples to
/// apples with the reference path.
pub fn f64_kkt_residual(sq: &StructuredQp, x: &[f64], state: &mut ProfiledQpState) -> f64 {
    let lipschitz = sq.lmax_bound().max(1e-12);
    let step = 1.0 / lipschitz;
    state.grad.resize(x.len(), 0.0);
    state.probe.clear();
    state.probe.extend_from_slice(x);
    StructuredQp::gradient_into(sq, x, &mut state.grad);
    for (p, &g) in state.probe.iter_mut().zip(state.grad.iter()) {
        *p -= step * g;
    }
    project_box_budgets_scratch(
        &mut state.probe,
        QpOperator::lo(sq),
        QpOperator::hi(sq),
        QpOperator::budgets(sq),
        &mut state.proj,
    );
    vecops::max_abs_diff(&state.probe, x) * lipschitz
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Budget, Coupling, ProjGradSettings};

    fn tiny_structured(seed: u64) -> StructuredQp {
        // Small PERQ-shaped instance: 6 jobs, horizon 3, per-step budgets.
        let (k, m) = (6usize, 3usize);
        let n = k * m;
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut blocks = vec![0.0; k * m * m];
        for b in blocks.chunks_exact_mut(m * m) {
            let g: Vec<f64> = (0..m * m).map(|_| next() * 2.0 - 1.0).collect();
            for r in 0..m {
                for s in 0..m {
                    let mut dot = 0.0;
                    for t in 0..m {
                        dot += g[t * m + r] * g[t * m + s];
                    }
                    b[r * m + s] = dot + if r == s { 0.5 } else { 0.0 };
                }
            }
        }
        let couplings = vec![Coupling {
            weight: 0.5,
            s: (0..n).map(|_| next()).collect(),
        }];
        let c: Vec<f64> = (0..n).map(|_| next() * 4.0 - 2.0).collect();
        let budgets: Vec<Budget> = (0..m)
            .map(|j| Budget {
                coeffs: (0..n)
                    .map(|a| if a % m == j { 1.0 + next() } else { 0.0 })
                    .collect(),
                limit: 0.4 * n as f64,
            })
            .collect();
        StructuredQp::new(m, blocks, couplings, c, vec![0.0; n], vec![1.0; n], budgets).unwrap()
    }

    #[test]
    fn labels_and_parsing_round_trip() {
        for (spec, label) in [
            ("f64", "f64_aos"),
            ("f64_soa", "f64_soa"),
            ("f32", "f32_soa"),
            ("mixed", "mixed_soa"),
        ] {
            let p: SolverProfile = spec.parse().unwrap();
            assert_eq!(p.label(), label);
            assert_eq!(p.label().parse::<SolverProfile>().unwrap(), p);
        }
        assert!("quad".parse::<SolverProfile>().is_err());
        assert_eq!(SolverProfile::default().label(), "f64_aos");
    }

    #[test]
    fn f64_aos_profile_is_bitwise_identical_to_direct_solve() {
        let sq = tiny_structured(3);
        let solver = ProjGradSolver::default();
        let mut ws = Workspace::default();
        let mut cache = LmaxCache::default();
        let direct = solver
            .solve_with(&sq, None, &mut ws, Some(&mut cache))
            .unwrap();

        let mut state = ProfiledQpState::default();
        let profiled =
            solve_profiled(&solver, &sq, None, SolverProfile::f64_aos(), &mut state).unwrap();
        assert!(!profiled.fell_back);
        assert_eq!(direct.iterations, profiled.solution.iterations);
        assert!(direct
            .x
            .iter()
            .zip(profiled.solution.x.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn every_profile_meets_the_objective_contract() {
        let solver = ProjGradSolver::new(ProjGradSettings {
            max_iters: 10_000,
            tol: 1e-7,
            power_iters: 30,
        });
        for seed in [1u64, 7, 19] {
            let sq = tiny_structured(seed);
            let mut state = ProfiledQpState::default();
            let reference =
                solve_profiled(&solver, &sq, None, SolverProfile::f64_aos(), &mut state)
                    .unwrap()
                    .solution;
            for profile in [
                SolverProfile::f64_soa(),
                SolverProfile::f32_soa(),
                SolverProfile::mixed_soa(),
            ] {
                let got = solve_profiled(&solver, &sq, None, profile, &mut state).unwrap();
                let rel = (got.solution.objective - reference.objective).abs()
                    / (1.0 + reference.objective.abs());
                assert!(
                    rel <= 1e-3,
                    "{} objective off by {rel} at seed {seed}",
                    profile.label()
                );
            }
        }
    }

    #[test]
    fn mixed_profile_counts_fallbacks_when_tolerance_is_unreachable() {
        // A tolerance far below f32 resolution forces the f64 check to
        // reject the f32 iterate and polish.
        let solver = ProjGradSolver::new(ProjGradSettings {
            max_iters: 50_000,
            tol: 1e-12,
            power_iters: 30,
        });
        let sq = tiny_structured(5);
        let mut state = ProfiledQpState::default();
        let got =
            solve_profiled(&solver, &sq, None, SolverProfile::mixed_soa(), &mut state).unwrap();
        assert!(got.fell_back, "1e-12 tol must defeat the f32 iterate");
        // And the polish must actually deliver f64-grade optimality.
        let reference = solve_profiled(&solver, &sq, None, SolverProfile::f64_aos(), &mut state)
            .unwrap()
            .solution;
        assert!((got.solution.objective - reference.objective).abs() < 1e-9);
    }
}
