use perq_linalg::LinalgError;
use std::fmt;

/// Errors produced by the QP solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum QpError {
    /// Problem fields have inconsistent dimensions.
    BadProblem(String),
    /// The feasible set is empty (e.g. `lo > hi`, or the budget limit is
    /// below the sum of lower bounds).
    Infeasible(String),
    /// An underlying linear-algebra kernel failed (e.g. the Hessian was not
    /// positive definite where required).
    Linalg(LinalgError),
}

impl fmt::Display for QpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QpError::BadProblem(msg) => write!(f, "malformed QP: {msg}"),
            QpError::Infeasible(msg) => write!(f, "infeasible QP: {msg}"),
            QpError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for QpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QpError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for QpError {
    fn from(e: LinalgError) -> Self {
        QpError::Linalg(e)
    }
}
