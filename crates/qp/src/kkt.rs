use crate::Result;
use perq_linalg::{Lu, Matrix};

/// Solves the equality-constrained convex QP
///
/// ```text
/// minimize   ½ xᵀ Q x + cᵀ x
/// subject to E x = d
/// ```
///
/// by a direct solve of the KKT system
///
/// ```text
/// [ Q  Eᵀ ] [ x ]   [ −c ]
/// [ E  0  ] [ ν ] = [  d ]
/// ```
///
/// Returns `(x, nu)` — the primal minimizer and the equality multipliers.
/// Pass an `E` with zero rows (`Matrix::zeros(0, n)` is not representable;
/// use `None`) to solve the unconstrained problem `Qx = −c`.
///
/// This is the ground-truth oracle the test suites use to validate the
/// iterative solvers, and the building block for active-set style
/// refinement of MPC solutions.
pub fn solve_equality_qp(
    q: &Matrix,
    c: &[f64],
    eq: Option<(&Matrix, &[f64])>,
) -> Result<(Vec<f64>, Vec<f64>)> {
    let n = c.len();
    match eq {
        None => {
            let lu = Lu::factor(q)?;
            let neg_c: Vec<f64> = c.iter().map(|&v| -v).collect();
            Ok((lu.solve(&neg_c)?, Vec::new()))
        }
        Some((e, d)) => {
            let m = e.rows();
            let mut kkt = Matrix::zeros(n + m, n + m);
            kkt.set_block(0, 0, q)?;
            kkt.set_block(0, n, &e.transpose())?;
            kkt.set_block(n, 0, e)?;
            let mut rhs = vec![0.0; n + m];
            for i in 0..n {
                rhs[i] = -c[i];
            }
            rhs[n..].copy_from_slice(d);
            let sol = Lu::factor(&kkt)?.solve(&rhs)?;
            Ok((sol[..n].to_vec(), sol[n..].to_vec()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perq_linalg::vecops;

    #[test]
    fn unconstrained_minimum() {
        // min ½xᵀQx + cᵀx with Q = diag(2,4), c = (−2,−8) ⇒ x = (1, 2).
        let q = Matrix::diag(&[2.0, 4.0]);
        let c = [-2.0, -8.0];
        let (x, nu) = solve_equality_qp(&q, &c, None).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!(nu.is_empty());
    }

    #[test]
    fn equality_constrained_known_solution() {
        // min ½‖x‖² s.t. x₀ + x₁ = 2 ⇒ x = (1,1), ν = −1.
        let q = Matrix::identity(2);
        let c = [0.0, 0.0];
        let e = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        let d = [2.0];
        let (x, nu) = solve_equality_qp(&q, &c, Some((&e, &d))).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert!((nu[0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kkt_conditions_hold() {
        let q = Matrix::from_rows(&[&[3.0, 1.0, 0.0], &[1.0, 2.0, 0.5], &[0.0, 0.5, 4.0]]).unwrap();
        let c = [1.0, -2.0, 0.5];
        let e = Matrix::from_rows(&[&[1.0, 1.0, 1.0], &[1.0, 0.0, -1.0]]).unwrap();
        let d = [1.0, 0.0];
        let (x, nu) = solve_equality_qp(&q, &c, Some((&e, &d))).unwrap();
        // Stationarity: Qx + c + Eᵀν = 0.
        let mut grad = q.matvec(&x).unwrap();
        vecops::axpy(1.0, &c, &mut grad);
        let etnu = e.tmatvec(&nu).unwrap();
        vecops::axpy(1.0, &etnu, &mut grad);
        assert!(vecops::norm_inf(&grad) < 1e-10, "stationarity {grad:?}");
        // Primal feasibility.
        let ex = e.matvec(&x).unwrap();
        assert!(vecops::max_abs_diff(&ex, &d) < 1e-10);
    }
}
