//! Property-based tests: the iterative QP solvers must always return
//! feasible points, satisfy optimality conditions, and agree with each
//! other on random problems.

use perq_linalg::{vecops, Matrix};
use perq_qp::{
    estimate_lmax, project_box_budget, AdmmSolver, BoxBudgetQp, Budget, Coupling, InequalityQp,
    ProjGradSettings, ProjGradSolver, QpOperator, StructuredQp,
};
use proptest::prelude::*;

/// Random SPD Hessian of size n: Gram of a random matrix plus ridge.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |d| {
        let b = Matrix::from_vec(n, n, d).unwrap();
        let mut g = b.gram();
        for i in 0..n {
            g[(i, i)] += 1.0;
        }
        g
    })
}

fn random_qp(n: usize) -> impl Strategy<Value = BoxBudgetQp> {
    (
        spd(n),
        prop::collection::vec(-5.0f64..5.0, n),
        prop::collection::vec(0.1f64..2.0, n),
        0.3f64..0.9,
    )
        .prop_map(move |(q, c, widths, budget_frac)| {
            let lo: Vec<f64> = vec![0.0; n];
            let hi: Vec<f64> = widths;
            let max_usage: f64 = hi.iter().sum();
            BoxBudgetQp {
                q,
                c,
                lo,
                hi,
                budgets: vec![Budget {
                    coeffs: vec![1.0; n],
                    limit: budget_frac * max_usage,
                }],
            }
        })
}

/// Random structured QP: `k` SPD `m × m` blocks plus `m` rank-one
/// couplings, with per-step budgets (the PERQ shape).
fn random_structured(k: usize, m: usize) -> impl Strategy<Value = StructuredQp> {
    let n = k * m;
    (
        prop::collection::vec(-1.0f64..1.0, k * m * m),
        prop::collection::vec(0.0f64..1.5, m),
        prop::collection::vec(-1.0f64..1.0, m * n),
        prop::collection::vec(-2.0f64..2.0, n),
        0.3f64..0.9,
    )
        .prop_map(move |(raw, weights, svals, c, budget_frac)| {
            // Each block: Gram of a random m×m matrix plus ridge (SPD and
            // exactly symmetric).
            let mut blocks = vec![0.0; k * m * m];
            for b in 0..k {
                let a = &raw[b * m * m..(b + 1) * m * m];
                let blk = &mut blocks[b * m * m..(b + 1) * m * m];
                for r in 0..m {
                    for cidx in 0..m {
                        let mut s = if r == cidx { 1.0 } else { 0.0 };
                        for t in 0..m {
                            s += a[t * m + r] * a[t * m + cidx];
                        }
                        blk[r * m + cidx] = s;
                    }
                }
            }
            let couplings: Vec<Coupling> = (0..m)
                .map(|j| Coupling {
                    weight: weights[j],
                    s: svals[j * n..(j + 1) * n].to_vec(),
                })
                .collect();
            // One budget per horizon step, PERQ-style disjoint supports.
            let budgets: Vec<Budget> = (0..m)
                .map(|j| {
                    let mut coeffs = vec![0.0; n];
                    for i in 0..k {
                        coeffs[i * m + j] = 1.0;
                    }
                    Budget {
                        coeffs,
                        limit: budget_frac * k as f64,
                    }
                })
                .collect();
            StructuredQp::new(m, blocks, couplings, c, vec![0.0; n], vec![1.0; n], budgets)
                .expect("generated operator is well-formed")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn projection_feasible_and_idempotent(
        x in prop::collection::vec(-5.0f64..5.0, 6),
        limit in 0.5f64..4.0,
    ) {
        let lo = vec![0.0; 6];
        let hi = vec![1.0; 6];
        let b = Budget { coeffs: vec![1.0; 6], limit };
        let mut p = x.clone();
        project_box_budget(&mut p, &lo, &hi, &b);
        // Feasible.
        prop_assert!(b.satisfied(&p, 1e-7));
        for (i, &v) in p.iter().enumerate() {
            prop_assert!(v >= lo[i] - 1e-9 && v <= hi[i] + 1e-9);
        }
        // Idempotent.
        let mut p2 = p.clone();
        project_box_budget(&mut p2, &lo, &hi, &b);
        prop_assert!(vecops::max_abs_diff(&p, &p2) < 1e-7);
    }

    #[test]
    fn projection_is_nearest_feasible_point(
        x in prop::collection::vec(-3.0f64..3.0, 4),
        probe in prop::collection::vec(0.0f64..1.0, 4),
        limit in 0.5f64..3.0,
    ) {
        // The projection must be at least as close to x as any feasible probe.
        let lo = vec![0.0; 4];
        let hi = vec![1.0; 4];
        let b = Budget { coeffs: vec![1.0; 4], limit };
        let mut p = x.clone();
        project_box_budget(&mut p, &lo, &hi, &b);
        // Make the probe feasible by projecting it too (any feasible point works).
        let mut q = probe.clone();
        project_box_budget(&mut q, &lo, &hi, &b);
        let d_p = vecops::norm2(&vecops::sub(&p, &x));
        let d_q = vecops::norm2(&vecops::sub(&q, &x));
        prop_assert!(d_p <= d_q + 1e-6, "projection {d_p} farther than probe {d_q}");
    }

    #[test]
    fn projgrad_solution_feasible_and_stationary(qp in random_qp(5)) {
        let s = ProjGradSolver::default().solve(&qp, None).unwrap();
        prop_assert!(qp.is_feasible(&s.x, 1e-6));
        // No feasible descent: a small projected gradient step must not
        // improve the objective by more than numerical noise.
        let grad = qp.gradient(&s.x);
        let mut probe = s.x.clone();
        vecops::axpy(-1e-4, &grad, &mut probe);
        let b = &qp.budgets[0];
        project_box_budget(&mut probe, &qp.lo, &qp.hi, b);
        prop_assert!(qp.objective(&probe) >= s.objective - 1e-5);
    }

    #[test]
    fn projgrad_and_admm_agree(qp in random_qp(4)) {
        let s_pg = ProjGradSolver::default().solve(&qp, None).unwrap();
        let n = qp.dim();
        let mut a = Matrix::zeros(n + 1, n);
        a.set_block(0, 0, &Matrix::identity(n)).unwrap();
        for j in 0..n {
            a[(n, j)] = qp.budgets[0].coeffs[j];
        }
        let mut l = qp.lo.clone();
        l.push(f64::NEG_INFINITY);
        let mut u = qp.hi.clone();
        u.push(qp.budgets[0].limit);
        let iq = InequalityQp { q: qp.q.clone(), c: qp.c.clone(), a, l, u };
        let s_admm = AdmmSolver::default().solve(&iq, None).unwrap();
        // Objectives must agree tightly even if argmins drift along flat
        // directions.
        prop_assert!(
            (s_pg.objective - s_admm.objective).abs() < 1e-3 * (1.0 + s_pg.objective.abs()),
            "pg {} vs admm {}", s_pg.objective, s_admm.objective
        );
    }

    #[test]
    fn warm_start_never_worse(qp in random_qp(5)) {
        let solver = ProjGradSolver::default();
        let cold = solver.solve(&qp, None).unwrap();
        let warm = solver.solve(&qp, Some(&cold.x)).unwrap();
        prop_assert!(warm.objective <= cold.objective + 1e-6);
        prop_assert!(qp.is_feasible(&warm.x, 1e-6));
    }

    #[test]
    fn structured_matches_dense_operator(
        sqp in random_structured(4, 3),
        xraw in prop::collection::vec(-2.0f64..2.0, 12),
    ) {
        let dense = sqp.to_dense();
        let n = QpOperator::dim(&sqp);
        let x = &xraw[..n];
        let fo = dense.objective(x);
        let fs = QpOperator::objective(&sqp, x);
        prop_assert!((fo - fs).abs() <= 1e-9 * (1.0 + fo.abs()), "{fo} vs {fs}");
        let mut gd = vec![0.0; n];
        let mut gs = vec![0.0; n];
        dense.gradient_into(x, &mut gd);
        sqp.gradient_into(x, &mut gs);
        let mut hd = vec![0.0; n];
        let mut hs = vec![0.0; n];
        QpOperator::hess_matvec_into(&dense, x, &mut hd);
        sqp.hess_matvec_into(x, &mut hs);
        for i in 0..n {
            prop_assert!((gd[i] - gs[i]).abs() <= 1e-9 * (1.0 + gd[i].abs()));
            prop_assert!((hd[i] - hs[i]).abs() <= 1e-9 * (1.0 + hd[i].abs()));
        }
    }

    #[test]
    fn structured_lmax_bound_dominates(sqp in random_structured(3, 3)) {
        // The certified Gershgorin + coupling-trace bound must dominate
        // the power-iteration estimate (up to its 1% inflation).
        let est = estimate_lmax(&sqp, 200);
        prop_assert!(
            sqp.lmax_bound() >= est / 1.02,
            "bound {} below estimate {est}", sqp.lmax_bound()
        );
    }

    #[test]
    fn structured_and_dense_solves_agree(sqp in random_structured(3, 3)) {
        let dense = sqp.to_dense();
        let solver = ProjGradSolver::new(ProjGradSettings {
            max_iters: 200_000,
            tol: 1e-12,
            power_iters: 60,
        });
        let ss = solver.solve(&sqp, None).unwrap();
        let sd = solver.solve(&dense, None).unwrap();
        prop_assert!(
            vecops::max_abs_diff(&ss.x, &sd.x) < 1e-8,
            "structured {:?} vs dense {:?}", ss.x, sd.x
        );
    }
}
