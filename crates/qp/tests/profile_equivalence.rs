//! Property-based equivalence of the precision/layout profiles against
//! the `f64` dense-oracle path on random PERQ-shaped structured QPs:
//!
//! - every profile's objective lands within 1e-3 relative of the
//!   `f64_aos` reference (the mixed profile's accuracy contract);
//! - no profile violates the box/budget constraints by more than the
//!   `f64` path plus tolerance (f32-derived answers are re-projected in
//!   `f64`, so they should be *exactly* feasible);
//! - a fixed profile is bitwise deterministic: re-solving the same
//!   instance — in this thread or any spawned thread — reproduces the
//!   identical bit pattern, because the SoA kernels pin one summation
//!   order regardless of build flags or host parallelism.

use perq_qp::{
    solve_profiled, Budget, Coupling, ProfiledQpState, ProjGradSettings, ProjGradSolver,
    QpOperator, QpSolution, SolverProfile, StructuredQp,
};
use proptest::prelude::*;

/// Random structured QP: `k` SPD `m × m` blocks plus `m` rank-one
/// couplings, with per-step budgets (the PERQ shape).
fn random_structured(k: usize, m: usize) -> impl Strategy<Value = StructuredQp> {
    let n = k * m;
    (
        prop::collection::vec(-1.0f64..1.0, k * m * m),
        prop::collection::vec(0.0f64..2.0, m),
        prop::collection::vec(-1.0f64..1.0, m * n),
        prop::collection::vec(-2.0f64..2.0, n),
        prop::collection::vec(0.5f64..1.5, n),
        prop::collection::vec(0.5f64..4.0, n * m),
    )
        .prop_map(move |(raw, weights, dirs, c, hi, coeffs)| {
            let mut blocks = vec![0.0; k * m * m];
            for (b, g) in blocks.chunks_exact_mut(m * m).zip(raw.chunks_exact(m * m)) {
                for r in 0..m {
                    for s in 0..m {
                        let mut dot = 0.0;
                        for t in 0..m {
                            dot += g[t * m + r] * g[t * m + s];
                        }
                        b[r * m + s] = dot + if r == s { 0.5 } else { 0.0 };
                    }
                }
            }
            let couplings: Vec<Coupling> = (0..m)
                .map(|j| Coupling {
                    weight: weights[j],
                    s: (0..n)
                        .map(|a| if a % m <= j { dirs[j * n + a] } else { 0.0 })
                        .collect(),
                })
                .collect();
            // Per-step budgets with disjoint supports — the shape the SoA
            // projection fast path specialises.
            let budgets: Vec<Budget> = (0..m)
                .map(|j| Budget {
                    coeffs: (0..n)
                        .map(|a| if a % m == j { coeffs[j * n + a] } else { 0.0 })
                        .collect(),
                    limit: 0.4 * n as f64,
                })
                .collect();
            StructuredQp::new(m, blocks, couplings, c, vec![0.0; n], hi, budgets).unwrap()
        })
}

fn solver() -> ProjGradSolver {
    ProjGradSolver::new(ProjGradSettings {
        max_iters: 4000,
        tol: 1e-8,
        power_iters: 25,
    })
}

/// Worst budget overshoot of a point, in budget units (≤ 0 = feasible).
fn budget_violation(sq: &StructuredQp, x: &[f64]) -> f64 {
    QpOperator::budgets(sq)
        .iter()
        .map(|b| {
            let usage: f64 = b.coeffs.iter().zip(x.iter()).map(|(&a, &v)| a * v).sum();
            usage - b.limit
        })
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Worst box overshoot of a point (≤ 0 = inside the box).
fn box_violation(sq: &StructuredQp, x: &[f64]) -> f64 {
    let lo = QpOperator::lo(sq);
    let hi = QpOperator::hi(sq);
    x.iter()
        .enumerate()
        .map(|(i, &v)| (lo[i] - v).max(v - hi[i]))
        .fold(f64::NEG_INFINITY, f64::max)
}

fn solve(sq: &StructuredQp, profile: SolverProfile) -> QpSolution {
    let mut state = ProfiledQpState::default();
    solve_profiled(&solver(), sq, None, profile, &mut state)
        .expect("profiled solve succeeds on validated problems")
        .solution
}

const NON_REFERENCE: [SolverProfile; 3] = [
    SolverProfile {
        precision: perq_qp::Precision::F64,
        layout: perq_qp::Layout::Soa,
        lanes: 8,
    },
    SolverProfile {
        precision: perq_qp::Precision::F32,
        layout: perq_qp::Layout::Soa,
        lanes: 8,
    },
    SolverProfile {
        precision: perq_qp::Precision::Mixed,
        layout: perq_qp::Layout::Soa,
        lanes: 8,
    },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Objective agreement: every profile within 1e-3 relative of the
    /// f64 oracle (SoA f64 should be far tighter; asserted at 1e-6).
    #[test]
    fn profiles_agree_with_f64_oracle(sq in random_structured(7, 3)) {
        let oracle = solve(&sq, SolverProfile::f64_aos());
        for profile in NON_REFERENCE {
            let got = solve(&sq, profile);
            let rel = (got.objective - oracle.objective).abs()
                / (1.0 + oracle.objective.abs());
            let bound = if profile.precision == perq_qp::Precision::F64 { 1e-6 } else { 1e-3 };
            prop_assert!(
                rel <= bound,
                "{} objective {} vs oracle {} (rel {rel:.3e} > {bound:.0e})",
                profile.label(), got.objective, oracle.objective
            );
        }
    }

    /// Feasibility: no profile exceeds the f64 path's constraint
    /// violation by more than tolerance. The f64 reference itself can
    /// carry a hair of bisection slack, so profiles are compared against
    /// it rather than against exact zero.
    #[test]
    fn profiles_do_not_violate_more_than_f64(sq in random_structured(6, 4)) {
        const TOL: f64 = 1e-9;
        let oracle = solve(&sq, SolverProfile::f64_aos());
        let oracle_budget = budget_violation(&sq, &oracle.x).max(0.0);
        let oracle_box = box_violation(&sq, &oracle.x).max(0.0);
        for profile in NON_REFERENCE {
            let got = solve(&sq, profile);
            let budget = budget_violation(&sq, &got.x).max(0.0);
            let boxv = box_violation(&sq, &got.x).max(0.0);
            prop_assert!(
                budget <= oracle_budget + TOL,
                "{} budget violation {budget:.3e} > f64's {oracle_budget:.3e} + {TOL:.0e}",
                profile.label()
            );
            prop_assert!(
                boxv <= oracle_box + TOL,
                "{} box violation {boxv:.3e} > f64's {oracle_box:.3e} + {TOL:.0e}",
                profile.label()
            );
        }
    }

    /// Bitwise determinism: for a fixed profile the solve is a pure
    /// function of the instance — identical bits across repeat solves in
    /// this thread and across spawned threads (thread count must never
    /// leak into the answer).
    #[test]
    fn fixed_profile_is_bitwise_deterministic(sq in random_structured(5, 3)) {
        for profile in [
            SolverProfile::f64_aos(),
            SolverProfile::f64_soa(),
            SolverProfile::f32_soa(),
            SolverProfile::mixed_soa(),
        ] {
            let reference = solve(&sq, profile);
            let repeat = solve(&sq, profile);
            prop_assert_eq!(reference.iterations, repeat.iterations);
            let threaded: Vec<QpSolution> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..4)
                    .map(|_| scope.spawn(|| solve(&sq, profile)))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for got in std::iter::once(&repeat).chain(threaded.iter()) {
                prop_assert_eq!(reference.x.len(), got.x.len());
                for (a, b) in reference.x.iter().zip(got.x.iter()) {
                    prop_assert!(
                        a.to_bits() == b.to_bits(),
                        "{} drifted: {a} vs {b}",
                        profile.label()
                    );
                }
            }
        }
    }
}
