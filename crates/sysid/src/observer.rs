use crate::ss::StateSpaceModel;
use perq_linalg::{vecops, Matrix};

/// Steady-state Kalman observer for a [`StateSpaceModel`].
///
/// The paper's node model (Fig. 5) includes a disturbance signal `D(k)`
/// that "accounts for system noise and uncertainties"; the observer is the
/// component that absorbs it: every decision interval the measured IPS is
/// compared with the model prediction and the internal state estimate is
/// corrected with the steady-state Kalman gain. This is what lets a single
/// identified node model track jobs with different behaviour — the state
/// drifts to whatever makes the model's output match the job at hand.
///
/// The gain is computed once at construction by iterating the discrete
/// Riccati difference equation to a fixed point, with scalar measurement
/// noise `r` and process noise `q·I`.
#[derive(Debug, Clone)]
pub struct KalmanObserver {
    model: StateSpaceModel,
    /// Steady-state Kalman gain (n × 1).
    gain: Vec<f64>,
    /// Current state estimate.
    x_hat: Vec<f64>,
}

impl KalmanObserver {
    /// Builds an observer for `model` with process-noise intensity `q` and
    /// measurement-noise variance `r` (both must be positive; `r` sets how
    /// much the observer trusts IPS samples).
    pub fn new(model: StateSpaceModel, q: f64, r: f64) -> Self {
        let gain = steady_state_gain(&model, q.max(1e-12), r.max(1e-12));
        let n = model.order();
        KalmanObserver {
            model,
            gain,
            x_hat: vec![0.0; n],
        }
    }

    /// Borrows the underlying model.
    pub fn model(&self) -> &StateSpaceModel {
        &self.model
    }

    /// Current state estimate.
    pub fn state(&self) -> &[f64] {
        &self.x_hat
    }

    /// Resets the state estimate (e.g. when a new job phase is detected).
    pub fn reset(&mut self) {
        self.x_hat.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Seeds the state estimate so the model output matches `y` at
    /// steady state for input `u` — used when a job first appears so the
    /// controller does not start from a wild transient.
    pub fn seed_steady_state(&mut self, u: f64, y: f64) {
        // Equilibrium state for constant input: (I − A) x = B (u + u₀),
        // then scale the state part so the full output (including the
        // feedthrough and offsets) matches the observation.
        let n = self.model.order();
        let mut ima = Matrix::identity(n);
        ima.axpy(-1.0, self.model.a()).expect("square");
        if let Ok(lu) = perq_linalg::Lu::factor(&ima) {
            let drive: Vec<f64> = self
                .model
                .b()
                .iter()
                .map(|&bi| bi * (u + self.model.input_offset()))
                .collect();
            if let Ok(xeq) = lu.solve(&drive) {
                let state_part = vecops::dot(self.model.c(), &xeq);
                let want_state = y
                    - self.model.feedthrough() * (u + self.model.input_offset())
                    - self.model.output_offset();
                let scale = if state_part.abs() > 1e-9 {
                    want_state / state_part
                } else {
                    1.0
                };
                self.x_hat = vecops::scale(scale, &xeq);
                return;
            }
        }
        self.reset();
    }

    /// Predicted output for the *current* state estimate under input `u`.
    pub fn predicted_output(&self, u: f64) -> f64 {
        self.model.output(&self.x_hat, u)
    }

    /// Processes one decision interval: the input `u` that was applied and
    /// the output `y` that was measured. Returns the innovation
    /// (measurement minus prediction) before the correction.
    pub fn update(&mut self, u: f64, y: f64) -> f64 {
        let innovation = y - self.model.output(&self.x_hat, u);
        // Correct, then predict forward.
        let mut corrected = self.x_hat.clone();
        vecops::axpy(innovation, &self.gain, &mut corrected);
        self.x_hat = self.model.step_state(&corrected, u);
        innovation
    }
}

/// Iterates the Riccati difference equation
/// `P⁺ = A P Aᵀ + qI − A P Cᵀ (C P Cᵀ + r)⁻¹ C P Aᵀ`
/// to a fixed point and returns the filter gain `K = P Cᵀ / (C P Cᵀ + r)`.
fn steady_state_gain(model: &StateSpaceModel, q: f64, r: f64) -> Vec<f64> {
    let n = model.order();
    let a = model.a();
    let c = model.c();
    let mut p = Matrix::identity(n);
    for _ in 0..500 {
        // s = C P Cᵀ + r  (scalar), k = P Cᵀ / s.
        let pct = p.matvec(c).expect("dims");
        let s = vecops::dot(c, &pct) + r;
        let k = vecops::scale(1.0 / s, &pct);
        // P⁺ = A (P − k (C P)) Aᵀ + qI.
        let cp = p.tmatvec(c).expect("dims"); // row vector C P
        let mut inner = p.clone();
        for i in 0..n {
            for j in 0..n {
                inner[(i, j)] -= k[i] * cp[j];
            }
        }
        let ap = a.matmul(&inner).expect("dims");
        let mut p_next = ap.matmul(&a.transpose()).expect("dims");
        for i in 0..n {
            p_next[(i, i)] += q;
        }
        let diff = p_next.sub(&p).expect("dims").max_abs();
        p = p_next;
        if diff < 1e-12 {
            break;
        }
    }
    let pct = p.matvec(c).expect("dims");
    let s = vecops::dot(c, &pct) + r;
    vecops::scale(1.0 / s, &pct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perq_linalg::Matrix;

    fn plant() -> StateSpaceModel {
        StateSpaceModel::new(
            Matrix::from_rows(&[&[0.7, 0.1], &[1.0, 0.0]]).unwrap(),
            vec![1.0, 0.0],
            vec![0.4, 0.2],
            0.3,
            0.0,
        )
    }

    #[test]
    fn observer_tracks_noiseless_plant() {
        let model = plant();
        let mut obs = KalmanObserver::new(model.clone(), 1e-4, 1e-2);
        let mut x = vec![0.3, -0.2]; // true state unknown to the observer
        let mut last_err = f64::INFINITY;
        for k in 0..200 {
            let u = ((k as f64) * 0.3).sin();
            let y = model.output(&x, u);
            obs.update(u, y);
            x = model.step_state(&x, u);
            let u_next = ((k as f64 + 1.0) * 0.3).sin();
            last_err = (model.output(&x, u_next) - obs.predicted_output(u_next)).abs();
        }
        assert!(last_err < 1e-6, "tracking error {last_err}");
    }

    #[test]
    fn innovation_shrinks_over_time() {
        let model = plant();
        let mut obs = KalmanObserver::new(model.clone(), 1e-4, 1e-2);
        let mut x = vec![1.0, 1.0];
        let mut first = 0.0;
        let mut last = 0.0;
        for k in 0..100 {
            let u = if k % 11 < 5 { 1.0 } else { -1.0 };
            let y = model.output(&x, u);
            let innov = obs.update(u, y).abs();
            if k == 0 {
                first = innov;
            }
            last = innov;
            x = model.step_state(&x, u);
        }
        assert!(last < first * 0.01 + 1e-9, "first {first}, last {last}");
    }

    #[test]
    fn observer_absorbs_constant_disturbance_bias() {
        // The plant output is offset by a constant the model doesn't know.
        // A steady-state Kalman filter has no integral action, so it cannot
        // reject the bias completely (that is the job of the per-job RLS
        // layer in the controller), but with a high process-noise setting
        // the state drifts to absorb most of it.
        let model = plant();
        let mut obs = KalmanObserver::new(model.clone(), 1.0, 1e-3);
        let mut x = vec![0.0, 0.0];
        let bias = 0.5;
        let mut err = f64::INFINITY;
        for k in 0..500 {
            let u = ((k as f64) * 0.17).cos();
            let y = model.output(&x, u) + bias;
            obs.update(u, y);
            x = model.step_state(&x, u);
            let u_next = ((k as f64 + 1.0) * 0.17).cos();
            err = (model.output(&x, u_next) + bias - obs.predicted_output(u_next)).abs();
        }
        assert!(err < 0.75 * bias, "residual bias {err}");
    }

    #[test]
    fn seed_steady_state_matches_observation() {
        let model = plant();
        let mut obs = KalmanObserver::new(model, 1e-4, 1e-2);
        obs.seed_steady_state(1.0, 3.0);
        assert!((obs.predicted_output(1.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn reset_zeroes_state() {
        let model = plant();
        let mut obs = KalmanObserver::new(model, 1e-4, 1e-2);
        obs.update(1.0, 1.0);
        obs.reset();
        assert!(obs.state().iter().all(|&v| v == 0.0));
    }
}
