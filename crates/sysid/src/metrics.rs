//! Model-quality metrics.

/// Root-mean-square error between a prediction and a reference series.
///
/// Panics in debug builds if lengths differ; returns 0.0 for empty input.
pub fn rmse(predicted: &[f64], reference: &[f64]) -> f64 {
    debug_assert_eq!(predicted.len(), reference.len());
    if predicted.is_empty() {
        return 0.0;
    }
    let sse: f64 = predicted
        .iter()
        .zip(reference.iter())
        .map(|(&p, &r)| (p - r) * (p - r))
        .sum();
    (sse / predicted.len() as f64).sqrt()
}

/// MATLAB-style NRMSE fit percentage:
/// `100 · (1 − ‖y − ŷ‖ / ‖y − mean(y)‖)`.
///
/// 100% is a perfect fit; 0% means no better than predicting the mean;
/// negative values mean worse than the mean. This is the acceptance metric
/// for identified node models.
pub fn fit_percent(predicted: &[f64], reference: &[f64]) -> f64 {
    debug_assert_eq!(predicted.len(), reference.len());
    if reference.is_empty() {
        return 0.0;
    }
    let mean = reference.iter().sum::<f64>() / reference.len() as f64;
    let err: f64 = predicted
        .iter()
        .zip(reference.iter())
        .map(|(&p, &r)| (p - r) * (p - r))
        .sum::<f64>()
        .sqrt();
    let spread: f64 = reference
        .iter()
        .map(|&r| (r - mean) * (r - mean))
        .sum::<f64>()
        .sqrt();
    if spread < 1e-300 {
        return if err < 1e-300 { 100.0 } else { 0.0 };
    }
    100.0 * (1.0 - err / spread)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_basics() {
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn perfect_fit_is_100() {
        let y = [1.0, 2.0, 3.0];
        assert!((fit_percent(&y, &y) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn mean_prediction_is_0() {
        let y = [1.0, 2.0, 3.0];
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(fit_percent(&mean_pred, &y).abs() < 1e-12);
    }

    #[test]
    fn bad_fit_is_negative() {
        let y = [1.0, 2.0, 3.0];
        let bad = [10.0, -10.0, 10.0];
        assert!(fit_percent(&bad, &y) < 0.0);
    }

    #[test]
    fn constant_reference_edge_case() {
        let y = [5.0, 5.0];
        assert_eq!(fit_percent(&[5.0, 5.0], &y), 100.0);
        assert_eq!(fit_percent(&[4.0, 5.0], &y), 0.0);
    }
}
