use crate::Rls;

/// Online demand forecaster: a confidence-gated [`Rls`] affine map from
/// an applied power-cap fraction to the demand fraction a job actually
/// draws at it.
///
/// The gym's hybrid policy (perq-gym) trains one of these on every
/// `(cap, measured power)` pair the fleet produces and uses the
/// prediction to seed PERQ's MPC warm start for *newly arrived* jobs —
/// the one decision where PERQ has no job-specific feedback yet. The
/// regressor is `φ = [1, u]` with `u` the cap fraction and the output
/// the consumed-power fraction, i.e. an affine demand curve: most HPC
/// codes draw a roughly cap-independent base plus a cap-proportional
/// dynamic share (the same structure `perq-apps` power profiles are
/// built from), so two parameters capture the fleet-typical shape
/// without waiting for per-job identification.
///
/// Predictions are clamped to the physical `[0, 1]` demand window, and
/// [`DemandForecaster::confident`] gates them on both sample count and
/// the RLS covariance trace, so a consumer can fall back to its
/// uninformed default until the estimate has actually left the prior.
/// Everything is deterministic: same observation sequence, same
/// forecasts.
#[derive(Debug, Clone)]
pub struct DemandForecaster {
    rls: Rls,
    min_updates: usize,
    max_cov_trace: f64,
}

impl DemandForecaster {
    /// Creates a forecaster with exponential forgetting `lambda`
    /// (follow workload drift) and the default confidence gate
    /// (8 samples and a covariance trace below 1.0).
    pub fn new(lambda: f64) -> Self {
        DemandForecaster {
            // p0 = 10: informative enough to move within a few samples,
            // small enough that one outlier cannot swing the estimate.
            rls: Rls::new(2, lambda, 10.0),
            min_updates: 8,
            max_cov_trace: 1.0,
        }
    }

    /// Overrides the confidence gate: predictions are only trusted after
    /// `min_updates` samples once the covariance trace is below
    /// `max_cov_trace`.
    pub fn with_gate(mut self, min_updates: usize, max_cov_trace: f64) -> Self {
        self.min_updates = min_updates;
        self.max_cov_trace = max_cov_trace;
        self
    }

    /// Feeds one observation: a job ran at cap fraction `cap_frac` and
    /// drew `demand_frac` of the cap window. Returns the a-priori
    /// prediction error. Non-finite or out-of-window samples (corrupted
    /// telemetry) are discarded without touching the estimate.
    pub fn observe(&mut self, cap_frac: f64, demand_frac: f64) -> f64 {
        if !cap_frac.is_finite()
            || !demand_frac.is_finite()
            || !(0.0..=1.0).contains(&cap_frac)
            || !(0.0..=1.5).contains(&demand_frac)
        {
            return 0.0;
        }
        self.rls.update(&[1.0, cap_frac], demand_frac)
    }

    /// Predicted demand fraction at cap fraction `cap_frac`, clamped to
    /// the physical window.
    pub fn predict_frac(&self, cap_frac: f64) -> f64 {
        self.rls.predict(&[1.0, cap_frac]).clamp(0.0, 1.0)
    }

    /// True once the estimate has seen enough data to trust.
    pub fn confident(&self) -> bool {
        self.rls.updates() >= self.min_updates && self.rls.covariance_trace() <= self.max_cov_trace
    }

    /// Observations absorbed so far.
    pub fn updates(&self) -> usize {
        self.rls.updates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_an_affine_demand_curve() {
        let mut f = DemandForecaster::new(1.0);
        // demand = 0.2 + 0.6 · cap.
        for k in 0..100 {
            let u = ((k * 7) % 13) as f64 / 13.0;
            f.observe(u, 0.2 + 0.6 * u);
        }
        // The p0 = 10 ridge prior leaves a small shrinkage bias.
        assert!(f.confident());
        assert!((f.predict_frac(0.5) - 0.5).abs() < 1e-2);
        assert!((f.predict_frac(1.0) - 0.8).abs() < 1e-2);
    }

    #[test]
    fn not_confident_before_enough_samples() {
        let mut f = DemandForecaster::new(1.0);
        assert!(!f.confident());
        for _ in 0..3 {
            f.observe(0.5, 0.4);
        }
        assert!(!f.confident(), "3 samples on one operating point is prior");
    }

    #[test]
    fn rejects_corrupted_telemetry() {
        let mut f = DemandForecaster::new(1.0);
        for k in 0..50 {
            let u = ((k * 5) % 11) as f64 / 11.0;
            f.observe(u, 0.3 + 0.4 * u);
        }
        let before = f.predict_frac(0.5);
        // A RAPL meter gone insane must be a no-op.
        assert_eq!(f.observe(0.5, 40.0), 0.0);
        assert_eq!(f.observe(f64::NAN, 0.5), 0.0);
        assert_eq!(f.observe(-2.0, 0.5), 0.0);
        assert_eq!(f.predict_frac(0.5), before);
    }

    #[test]
    fn predictions_clamped_to_physical_window() {
        let mut f = DemandForecaster::new(1.0);
        for _ in 0..20 {
            f.observe(0.1, 1.4); // extrapolates above 1 at high caps
        }
        assert!(f.predict_frac(1.0) <= 1.0);
        assert!(f.predict_frac(0.0) >= 0.0);
    }

    #[test]
    fn deterministic_under_replay() {
        let run = || {
            let mut f = DemandForecaster::new(0.98);
            for k in 0..200u64 {
                let u = ((k * 7) % 13) as f64 / 13.0;
                f.observe(u, 0.25 + 0.5 * u);
            }
            f.predict_frac(0.62).to_bits()
        };
        assert_eq!(run(), run());
    }
}
