use perq_linalg::{vecops, Matrix};

/// Recursive least squares with exponential forgetting.
///
/// Estimates `θ` in `y ≈ θᵀ φ` online. The PERQ controller runs one RLS
/// instance per job to adapt the shared node model to the job at hand:
///
/// - gain/offset adaptation: `φ = [y_model, 1]`, so `θ` scales and shifts
///   the base model's prediction to the job's observed IPS;
/// - local sensitivity: `φ = [p, 1]`, estimating the slope `∂IPS/∂cap`
///   around the operating point for the successive-linearisation MPC.
///
/// The forgetting factor `λ ∈ (0, 1]` discounts old samples with weight
/// `λ^age`, which is what lets the estimate follow phase changes
/// (Observation 2 of the paper) without re-identifying the whole model.
#[derive(Debug, Clone)]
pub struct Rls {
    theta: Vec<f64>,
    /// Inverse covariance (information) matrix `P`.
    p: Matrix,
    lambda: f64,
    updates: usize,
}

impl Rls {
    /// Creates an estimator with `dim` parameters, forgetting factor
    /// `lambda`, and initial covariance `p0·I` (larger `p0` = faster
    /// initial adaptation).
    pub fn new(dim: usize, lambda: f64, p0: f64) -> Self {
        assert!(dim > 0, "RLS needs at least one parameter");
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "forgetting factor must be in (0, 1]"
        );
        Rls {
            theta: vec![0.0; dim],
            p: Matrix::identity(dim).scale(p0),
            lambda,
            updates: 0,
        }
    }

    /// Creates an estimator with an initial parameter guess.
    pub fn with_initial(theta0: Vec<f64>, lambda: f64, p0: f64) -> Self {
        let mut rls = Self::new(theta0.len(), lambda, p0);
        rls.theta = theta0;
        rls
    }

    /// Current parameter estimate.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Number of updates processed.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Predicted output for a regressor.
    pub fn predict(&self, phi: &[f64]) -> f64 {
        vecops::dot(&self.theta, phi)
    }

    /// Processes one sample; returns the a-priori prediction error.
    pub fn update(&mut self, phi: &[f64], y: f64) -> f64 {
        debug_assert_eq!(phi.len(), self.theta.len());
        let err = y - self.predict(phi);
        // k = P φ / (λ + φᵀ P φ)
        let p_phi = self.p.matvec(phi).expect("dims");
        let denom = self.lambda + vecops::dot(phi, &p_phi);
        let k = vecops::scale(1.0 / denom, &p_phi);
        // θ ← θ + k e
        vecops::axpy(err, &k, &mut self.theta);
        // P ← (P − k φᵀ P) / λ
        let phi_p = self.p.tmatvec(phi).expect("dims");
        for (i, &ki) in k.iter().enumerate() {
            for (j, &pj) in phi_p.iter().enumerate() {
                self.p[(i, j)] = (self.p[(i, j)] - ki * pj) / self.lambda;
            }
        }
        self.updates += 1;
        err
    }

    /// Estimate confidence proxy: trace of the covariance. Large values
    /// mean the estimate is still mostly prior.
    pub fn covariance_trace(&self) -> f64 {
        (0..self.theta.len()).map(|i| self.p[(i, i)]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_static_linear_map() {
        let mut rls = Rls::new(2, 1.0, 1e6);
        // y = 3 x + 2. The residual error is the ridge-prior bias
        // ~ θ/(p0 · N), so a large p0 gives a near-exact fit.
        for k in 0..200 {
            let x = ((k * 7) % 13) as f64 / 13.0;
            rls.update(&[x, 1.0], 3.0 * x + 2.0);
        }
        assert!((rls.theta()[0] - 3.0).abs() < 1e-4, "{:?}", rls.theta());
        assert!((rls.theta()[1] - 2.0).abs() < 1e-4, "{:?}", rls.theta());
    }

    #[test]
    fn tracks_parameter_jump_with_forgetting() {
        let mut rls = Rls::new(2, 0.9, 100.0);
        for k in 0..100 {
            let x = ((k * 5) % 11) as f64 / 11.0;
            rls.update(&[x, 1.0], 1.0 * x);
        }
        // Phase change: slope becomes 4.
        for k in 0..100 {
            let x = ((k * 5) % 11) as f64 / 11.0;
            rls.update(&[x, 1.0], 4.0 * x);
        }
        assert!((rls.theta()[0] - 4.0).abs() < 0.05, "{:?}", rls.theta());
    }

    #[test]
    fn without_forgetting_converges_slower_after_jump() {
        let mut fast = Rls::new(1, 0.8, 100.0);
        let mut slow = Rls::new(1, 1.0, 100.0);
        for _ in 0..50 {
            fast.update(&[1.0], 1.0);
            slow.update(&[1.0], 1.0);
        }
        for _ in 0..20 {
            fast.update(&[1.0], 5.0);
            slow.update(&[1.0], 5.0);
        }
        let fast_err = (fast.theta()[0] - 5.0).abs();
        let slow_err = (slow.theta()[0] - 5.0).abs();
        assert!(fast_err < slow_err, "fast {fast_err} vs slow {slow_err}");
    }

    #[test]
    fn prediction_error_returned_is_a_priori() {
        let mut rls = Rls::new(1, 1.0, 10.0);
        let e1 = rls.update(&[1.0], 2.0);
        assert!((e1 - 2.0).abs() < 1e-12); // θ started at 0
        let e2 = rls.update(&[1.0], 2.0).abs();
        assert!(e2 < e1.abs());
    }

    #[test]
    fn covariance_shrinks_with_data() {
        let mut rls = Rls::new(2, 1.0, 100.0);
        let before = rls.covariance_trace();
        for k in 0..50 {
            let x = (k % 7) as f64;
            rls.update(&[x, 1.0], x);
        }
        assert!(rls.covariance_trace() < before * 0.01);
    }

    #[test]
    fn with_initial_starts_from_guess() {
        let rls = Rls::with_initial(vec![2.0, -1.0], 0.95, 1.0);
        assert_eq!(rls.predict(&[1.0, 1.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "forgetting factor")]
    fn invalid_lambda_panics() {
        Rls::new(1, 0.0, 1.0);
    }
}
