use crate::ss::StateSpaceModel;
use crate::{Result, SysIdError};
use perq_linalg::{lstsq, Matrix};

/// An identified ARX (AutoRegressive with eXogenous input) model with a
/// direct (same-interval) input term:
///
/// ```text
/// y(k) = a₁ y(k−1) + … + a_na y(k−na)
///      + b₀ u(k) + b₁ u(k−1) + … + b_{nb−1} u(k−nb+1) + offset
/// ```
///
/// The `b₀ u(k)` term exists because a power cap applied at the start of
/// a control interval already shapes the IPS measured at the end of that
/// interval (RAPL actuates in milliseconds; intervals are seconds).
/// PERQ uses `na = 3, nb = 3`, matching the paper's 3rd-order model.
#[derive(Debug, Clone, PartialEq)]
pub struct ArxModel {
    /// Autoregressive coefficients `a₁ … a_na` (most recent lag first).
    pub a: Vec<f64>,
    /// Input coefficients `b₀ … b_{nb−1}`; `b[0]` is the same-interval
    /// (direct) term.
    pub b: Vec<f64>,
    /// Constant offset (captures the non-zero operating point).
    pub offset: f64,
}

impl ArxModel {
    /// Model order `max(na, nb − 1)` (the state dimension of the
    /// realization).
    pub fn order(&self) -> usize {
        self.a.len().max(self.b.len().saturating_sub(1)).max(1)
    }

    /// Simulates the model over an input sequence, starting from zero
    /// initial conditions. Returns the predicted output sequence.
    pub fn simulate(&self, u: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; u.len()];
        for k in 0..u.len() {
            let mut v = self.offset;
            for (i, &ai) in self.a.iter().enumerate() {
                if k > i {
                    v += ai * y[k - 1 - i];
                }
            }
            for (j, &bj) in self.b.iter().enumerate() {
                if k >= j {
                    v += bj * u[k - j];
                }
            }
            y[k] = v;
        }
        y
    }

    /// One-step prediction of `y(k)`: `y_hist` holds outputs up to
    /// `y(k−1)` and `u_hist` holds inputs up to **`u(k)` (the current
    /// input, last element)**, both ordered oldest-first.
    pub fn predict_one(&self, y_hist: &[f64], u_hist: &[f64]) -> f64 {
        let mut v = self.offset;
        for (i, &ai) in self.a.iter().enumerate() {
            if let Some(&yl) = y_hist.get(y_hist.len().wrapping_sub(1 + i)) {
                v += ai * yl;
            }
        }
        for (j, &bj) in self.b.iter().enumerate() {
            if let Some(&ul) = u_hist.get(u_hist.len().wrapping_sub(1 + j)) {
                v += bj * ul;
            }
        }
        v
    }

    /// Steady-state gain `ΣB / (1 − ΣA)` of the input→output path.
    ///
    /// Returns `None` when the denominator is (numerically) zero, i.e. the
    /// model has an integrator and no finite DC gain.
    pub fn dc_gain(&self) -> Option<f64> {
        let denom = 1.0 - self.a.iter().sum::<f64>();
        if denom.abs() < 1e-9 {
            None
        } else {
            Some(self.b.iter().sum::<f64>() / denom)
        }
    }

    /// Steady-state output for a constant input `u` (includes the offset).
    pub fn dc_output(&self, u: f64) -> Option<f64> {
        let denom = 1.0 - self.a.iter().sum::<f64>();
        if denom.abs() < 1e-9 {
            None
        } else {
            Some((self.b.iter().sum::<f64>() * u + self.offset) / denom)
        }
    }

    /// Converts the ARX polynomial into a controllable-canonical
    /// state-space realization of the same order, with feedthrough
    /// `D = b₀` (polynomial division `B/A = b₀ + (B − b₀A)z⁻¹/A`).
    ///
    /// The ARX offset enters the recursion at every step, which is the
    /// behaviour of an input offset `u₀ = offset / Σbⱼ` on the
    /// state-space side (exact at steady state and after the first `nb`
    /// steps of any transient). When `Σbⱼ ≈ 0` the steady-state
    /// contribution is placed on the output instead.
    pub fn to_state_space(&self) -> StateSpaceModel {
        let n = self.order();
        let b0 = self.b.first().copied().unwrap_or(0.0);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(0, i)] = self.a.get(i).copied().unwrap_or(0.0);
        }
        for i in 1..n {
            a[(i, i - 1)] = 1.0;
        }
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        // C_i = b_i + b₀ a_i for i = 1..n (with b_i = 0 beyond nb−1).
        let mut c = vec![0.0; n];
        for (i, ci) in c.iter_mut().enumerate() {
            *ci = self.b.get(i + 1).copied().unwrap_or(0.0)
                + b0 * self.a.get(i).copied().unwrap_or(0.0);
        }
        let b_sum: f64 = self.b.iter().sum();
        if b_sum.abs() > 1e-9 {
            StateSpaceModel::new(a, b, c, b0, self.offset / b_sum)
        } else {
            let denom = 1.0 - self.a.iter().sum::<f64>();
            let y0 = if denom.abs() > 1e-9 {
                self.offset / denom
            } else {
                self.offset
            };
            StateSpaceModel::with_offsets(a, b, c, b0, 0.0, y0)
        }
    }
}

/// Fits an ARX model with orders `(na, nb)` — `nb` input taps starting at
/// the direct term `b₀` — to an input/output record by linear least
/// squares (Householder QR).
pub fn fit_arx(u: &[f64], y: &[f64], na: usize, nb: usize) -> Result<ArxModel> {
    fit_arx_segments(&[(u, y)], na, nb)
}

/// Fits one ARX model over several independent records (e.g. separate
/// benchmark runs): regressor rows never straddle a segment boundary, so
/// the lagged values of one run cannot pollute the next — this is how the
/// single node model is trained over the whole NPB-like suite.
pub fn fit_arx_segments(segments: &[(&[f64], &[f64])], na: usize, nb: usize) -> Result<ArxModel> {
    assert!(nb >= 1, "need at least the direct input tap");
    let lag = na.max(nb.saturating_sub(1));
    let cols = na + nb + 1;
    let mut rows = 0usize;
    for (u, y) in segments {
        if u.len() != y.len() {
            return Err(SysIdError::LengthMismatch {
                input: u.len(),
                output: y.len(),
            });
        }
        rows += y.len().saturating_sub(lag);
    }
    if rows < cols + 1 {
        let have = segments.iter().map(|(_, y)| y.len()).sum();
        return Err(SysIdError::NotEnoughData {
            have,
            need: lag + cols + 1,
        });
    }
    let mut phi = Matrix::zeros(rows, cols);
    let mut target = vec![0.0; rows];
    let mut r = 0usize;
    for (u, y) in segments {
        for k in lag..y.len() {
            for i in 0..na {
                phi[(r, i)] = y[k - 1 - i];
            }
            for j in 0..nb {
                phi[(r, na + j)] = u[k - j];
            }
            phi[(r, na + nb)] = 1.0;
            target[r] = y[k];
            r += 1;
        }
    }
    debug_assert_eq!(r, rows);
    let theta = lstsq(&phi, &target).map_err(|e| match e {
        perq_linalg::LinalgError::Singular { .. } => SysIdError::Degenerate(
            "regressor matrix is rank deficient (input not persistently exciting)".into(),
        ),
        other => SysIdError::Linalg(other),
    })?;
    Ok(ArxModel {
        a: theta[..na].to_vec(),
        b: theta[na..na + nb].to_vec(),
        offset: theta[na + nb],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn true_model() -> ArxModel {
        ArxModel {
            a: vec![0.6, -0.08],
            b: vec![0.7, 0.5, 0.2],
            offset: 1.0,
        }
    }

    /// Generates a PRBS-ish deterministic excitation.
    fn excitation(n: usize) -> Vec<f64> {
        (0..n)
            .map(|k| if (k / 7 + k / 13) % 2 == 0 { 1.0 } else { -1.0 })
            .collect()
    }

    #[test]
    fn recovers_known_coefficients_noiseless() {
        let u = excitation(400);
        let y = true_model().simulate(&u);
        let fitted = fit_arx(&u, &y, 2, 3).unwrap();
        for (f, t) in fitted.a.iter().zip(true_model().a.iter()) {
            assert!((f - t).abs() < 1e-8, "a: {fitted:?}");
        }
        for (f, t) in fitted.b.iter().zip(true_model().b.iter()) {
            assert!((f - t).abs() < 1e-8, "b: {fitted:?}");
        }
        assert!((fitted.offset - 1.0).abs() < 1e-7);
    }

    #[test]
    fn recovers_direct_term_of_nearly_static_map() {
        // Almost-static system y(k) = 0.1 y(k−1) + 2 u(k): the response
        // must land in the direct term b0, not the delayed taps. (A purely
        // static map would make the regressors collinear and is correctly
        // rejected as degenerate.)
        let truth = ArxModel {
            a: vec![0.1],
            b: vec![2.0],
            offset: 0.0,
        };
        // A binary excitation plus extra lags would be collinear, so use a
        // richer input and the exact model order.
        let u: Vec<f64> = (0..200)
            .map(|k| ((k as f64) * 1.7).sin() + 0.3 * ((k as f64) * 0.37).cos())
            .collect();
        let y = truth.simulate(&u);
        let fitted = fit_arx(&u, &y, 1, 1).unwrap();
        assert!((fitted.b[0] - 2.0).abs() < 1e-6, "{fitted:?}");
        assert!((fitted.a[0] - 0.1).abs() < 1e-6, "{fitted:?}");
        assert!((fitted.dc_gain().unwrap() - 2.0 / 0.9).abs() < 1e-6);
    }

    #[test]
    fn noisy_fit_is_close() {
        let u = excitation(3000);
        let mut y = true_model().simulate(&u);
        // Deterministic pseudo-noise.
        for (k, v) in y.iter_mut().enumerate() {
            *v += 0.01 * ((k as f64) * 1.618).sin();
        }
        let fitted = fit_arx(&u, &y, 2, 3).unwrap();
        for (f, t) in fitted.a.iter().zip(true_model().a.iter()) {
            assert!((f - t).abs() < 0.05, "a: {fitted:?}");
        }
    }

    #[test]
    fn dc_gain_matches_definition() {
        let m = true_model();
        // gain = (0.7+0.5+0.2)/(1-0.6+0.08) = 1.4/0.48
        assert!((m.dc_gain().unwrap() - 1.4 / 0.48).abs() < 1e-12);
        assert!((m.dc_output(2.0).unwrap() - (2.8 + 1.0) / 0.48).abs() < 1e-12);
    }

    #[test]
    fn integrator_has_no_dc_gain() {
        let m = ArxModel {
            a: vec![1.0],
            b: vec![1.0],
            offset: 0.0,
        };
        assert!(m.dc_gain().is_none());
    }

    #[test]
    fn state_space_realization_matches_deviation_dynamics() {
        // With zero offset the realization must reproduce the ARX
        // simulation exactly (same transfer function, same timing).
        let mut m = true_model();
        m.offset = 0.0;
        let u = excitation(100);
        let y_arx = m.simulate(&u);
        let y_ss = m.to_state_space().simulate(&u);
        for (a, b) in y_arx.iter().zip(y_ss.iter()) {
            assert!((a - b).abs() < 1e-9, "arx {a} vs ss {b}");
        }
    }

    #[test]
    fn state_space_realization_matches_steady_state_with_offset() {
        // With a non-zero offset the transient differs (the observer
        // handles that in deployment) but the steady-state map must agree.
        let m = true_model();
        let ss = m.to_state_space();
        for u in [0.0, 1.0, 2.5] {
            let want = m.dc_output(u).unwrap();
            let got = ss.dc_output(u).unwrap();
            assert!((want - got).abs() < 1e-9, "u={u}: {want} vs {got}");
            let y = ss.simulate(&vec![u; 400]);
            assert!((y[399] - want).abs() < 1e-6);
        }
    }

    #[test]
    fn realization_feedthrough_is_b0() {
        let ss = true_model().to_state_space();
        assert!((ss.feedthrough() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn simulate_steady_state_reaches_dc_output() {
        let m = true_model();
        let u = vec![1.5; 500];
        let y = m.simulate(&u);
        let expect = m.dc_output(1.5).unwrap();
        assert!((y[499] - expect).abs() < 1e-6);
    }

    #[test]
    fn rejects_short_data() {
        assert!(matches!(
            fit_arx(&[1.0; 5], &[1.0; 5], 3, 3),
            Err(SysIdError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn rejects_length_mismatch() {
        assert!(matches!(
            fit_arx(&[1.0; 10], &[1.0; 9], 1, 1),
            Err(SysIdError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn constant_input_is_degenerate() {
        // Constant input and output make the regressors collinear with the
        // offset column.
        let u = vec![1.0; 100];
        let y = vec![2.0; 100];
        assert!(matches!(
            fit_arx(&u, &y, 2, 2),
            Err(SysIdError::Degenerate(_))
        ));
    }

    #[test]
    fn segments_recover_coefficients_across_records() {
        // Two independent records of the same system; rows must not
        // straddle the boundary, so the recovered model is exact.
        let m = true_model();
        let u1 = excitation(200);
        let u2: Vec<f64> = excitation(200).iter().map(|v| -v * 0.7).collect();
        let y1 = m.simulate(&u1);
        let y2 = m.simulate(&u2);
        let fitted = fit_arx_segments(&[(&u1, &y1), (&u2, &y2)], 2, 3).unwrap();
        for (f, t) in fitted.a.iter().zip(m.a.iter()) {
            assert!((f - t).abs() < 1e-8);
        }
        for (f, t) in fitted.b.iter().zip(m.b.iter()) {
            assert!((f - t).abs() < 1e-8);
        }
    }

    #[test]
    fn predict_one_matches_simulation_step() {
        let m = true_model();
        let u = excitation(50);
        let y = m.simulate(&u);
        // Predict y[20] from outputs up to 19 and inputs up to 20.
        let pred = m.predict_one(&y[..20], &u[..21]);
        assert!((pred - y[20]).abs() < 1e-12);
    }
}
