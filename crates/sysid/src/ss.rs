use perq_linalg::{vecops, Lu, Matrix};

/// A discrete-time, single-input single-output, affine state-space model
/// with direct feedthrough:
///
/// ```text
/// x(k+1) = A x(k) + B (u(k) + u₀)
/// y(k)   = C x(k) + D (u(k) + u₀) + y₀
/// ```
///
/// This mirrors Fig. 5 of the paper (the node model `X(k+1) = AX(k) +
/// BP(k) + VD(k)`, `Y(k+1) = CX(k) + D(k)`), with the disturbance path
/// absorbed into the affine offsets `u₀`/`y₀` identified from data, and a
/// direct term `D` because a power cap applied during a control interval
/// already affects the IPS measured at the end of that same interval
/// (RAPL actuates in milliseconds; intervals are seconds). The
/// uncertainty signal of the paper is handled one level up by the Kalman
/// observer, which corrects the state with the measured IPS innovation.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSpaceModel {
    a: Matrix,
    b: Vec<f64>,
    c: Vec<f64>,
    d: f64,
    input_offset: f64,
    output_offset: f64,
}

impl StateSpaceModel {
    /// Creates a model with an input offset (and zero output offset).
    ///
    /// `a` must be `n×n`, `b` and `c` length `n`.
    pub fn new(a: Matrix, b: Vec<f64>, c: Vec<f64>, d: f64, input_offset: f64) -> Self {
        assert!(a.is_square(), "A must be square");
        assert_eq!(a.rows(), b.len(), "B length must match state dimension");
        assert_eq!(a.rows(), c.len(), "C length must match state dimension");
        StateSpaceModel {
            a,
            b,
            c,
            d,
            input_offset,
            output_offset: 0.0,
        }
    }

    /// Creates a model with explicit input and output offsets.
    pub fn with_offsets(
        a: Matrix,
        b: Vec<f64>,
        c: Vec<f64>,
        d: f64,
        input_offset: f64,
        output_offset: f64,
    ) -> Self {
        let mut m = Self::new(a, b, c, d, input_offset);
        m.output_offset = output_offset;
        m
    }

    /// State dimension `n`.
    pub fn order(&self) -> usize {
        self.b.len()
    }

    /// Borrows the state matrix `A`.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// Borrows the input vector `B`.
    pub fn b(&self) -> &[f64] {
        &self.b
    }

    /// Borrows the output vector `C`.
    pub fn c(&self) -> &[f64] {
        &self.c
    }

    /// The direct feedthrough `D`.
    pub fn feedthrough(&self) -> f64 {
        self.d
    }

    /// The identified input offset `u₀`.
    pub fn input_offset(&self) -> f64 {
        self.input_offset
    }

    /// The identified output offset `y₀`.
    pub fn output_offset(&self) -> f64 {
        self.output_offset
    }

    /// Advances the state one step for input `u`; returns the new state.
    pub fn step_state(&self, x: &[f64], u: f64) -> Vec<f64> {
        let mut next = self.a.matvec(x).expect("state dimension");
        vecops::axpy(u + self.input_offset, &self.b, &mut next);
        next
    }

    /// Output `y = Cx + D(u + u₀) + y₀` for a given state and the input
    /// applied over the current interval.
    pub fn output(&self, x: &[f64], u: f64) -> f64 {
        vecops::dot(&self.c, x) + self.d * (u + self.input_offset) + self.output_offset
    }

    /// Simulates from zero initial state: `y[k]` is the output at the end
    /// of interval `k`, during which input `u[k]` was applied.
    pub fn simulate(&self, u: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.order()];
        let mut y = Vec::with_capacity(u.len());
        for &uk in u {
            y.push(self.output(&x, uk));
            x = self.step_state(&x, uk);
        }
        y
    }

    /// Markov parameters `h_j = C A^{j−1} B` for `j = 1..=count` — the
    /// delayed impulse-response coefficients. The same-interval response
    /// is [`StateSpaceModel::feedthrough`].
    pub fn markov_parameters(&self, count: usize) -> Vec<f64> {
        let mut h = Vec::with_capacity(count);
        let mut v = self.b.clone();
        for _ in 0..count {
            h.push(vecops::dot(&self.c, &v));
            v = self.a.matvec(&v).expect("state dimension");
        }
        h
    }

    /// Output-response rows `C Aʲ` for `j = 0..count`, as rows.
    ///
    /// Row `j` maps the current state to the zero-input output at the end
    /// of interval `j` from now (`j = 0` is the upcoming interval); this
    /// is the `G` matrix of Eq. 4.
    pub fn output_response_rows(&self, count: usize) -> Matrix {
        let mut rows = Matrix::zeros(count, self.order());
        let mut v = self.c.clone();
        for j in 0..count {
            rows.row_mut(j).copy_from_slice(&v);
            v = self.a.tmatvec(&v).expect("state dimension");
        }
        rows
    }

    /// DC gain `C (I − A)⁻¹ B + D` of the input→output path.
    ///
    /// Returns `None` if `(I − A)` is singular (integrating model).
    pub fn dc_gain(&self) -> Option<f64> {
        let n = self.order();
        let mut ima = Matrix::identity(n);
        ima.axpy(-1.0, &self.a).expect("square");
        let lu = Lu::factor(&ima).ok()?;
        let w = lu.solve(&self.b).ok()?;
        Some(vecops::dot(&self.c, &w) + self.d)
    }

    /// Steady-state output for a constant input `u`.
    pub fn dc_output(&self, u: f64) -> Option<f64> {
        Some(self.dc_gain()? * (u + self.input_offset) + self.output_offset)
    }

    /// Spectral radius estimate of `A` via power iteration; the model is
    /// asymptotically stable iff this is `< 1`.
    pub fn spectral_radius(&self, iters: usize) -> f64 {
        let n = self.order();
        let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.37).collect();
        let mut radius = 0.0;
        for _ in 0..iters {
            let w = self.a.matvec(&v).expect("square");
            let norm = vecops::norm2(&w);
            if norm < 1e-300 {
                return 0.0;
            }
            radius = norm / vecops::norm2(&v).max(1e-300);
            v = vecops::scale(1.0 / norm, &w);
        }
        radius
    }

    /// Returns `true` if the model is (estimated to be) asymptotically
    /// stable.
    pub fn is_stable(&self) -> bool {
        self.spectral_radius(200) < 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First-order lag: x' = 0.5x + u, y = x. DC gain = 1/(1−0.5) = 2.
    fn lag() -> StateSpaceModel {
        StateSpaceModel::new(
            Matrix::from_rows(&[&[0.5]]).unwrap(),
            vec![1.0],
            vec![1.0],
            0.0,
            0.0,
        )
    }

    /// Same lag plus unit feedthrough: DC gain 3.
    fn lag_with_d() -> StateSpaceModel {
        StateSpaceModel::new(
            Matrix::from_rows(&[&[0.5]]).unwrap(),
            vec![1.0],
            vec![1.0],
            1.0,
            0.0,
        )
    }

    #[test]
    fn dc_gain_first_order() {
        assert!((lag().dc_gain().unwrap() - 2.0).abs() < 1e-12);
        assert!((lag().dc_output(3.0).unwrap() - 6.0).abs() < 1e-12);
        assert!((lag_with_d().dc_gain().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn simulate_converges_to_dc() {
        let y = lag_with_d().simulate(&vec![1.0; 200]);
        assert!((y[199] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn markov_parameters_match_impulse_response() {
        let m = lag_with_d();
        let mut impulse = vec![0.0; 6];
        impulse[0] = 1.0;
        let y = m.simulate(&impulse);
        // y[0] = D, y[j] = h_j afterwards.
        assert!((y[0] - 1.0).abs() < 1e-12);
        let h = m.markov_parameters(5);
        for j in 0..5 {
            assert!((y[j + 1] - h[j]).abs() < 1e-12, "j={j}");
        }
        assert!((h[0] - 1.0).abs() < 1e-12);
        assert!((h[1] - 0.5).abs() < 1e-12);
        assert!((h[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn output_response_rows_match_powers() {
        let m = lag();
        let g = m.output_response_rows(3);
        assert!((g[(0, 0)] - 1.0).abs() < 1e-12); // C A^0
        assert!((g[(1, 0)] - 0.5).abs() < 1e-12);
        assert!((g[(2, 0)] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn stability_detection() {
        assert!(lag().is_stable());
        let unstable = StateSpaceModel::new(
            Matrix::from_rows(&[&[1.1]]).unwrap(),
            vec![1.0],
            vec![1.0],
            0.0,
            0.0,
        );
        assert!(!unstable.is_stable());
    }

    #[test]
    fn input_offset_shifts_dc() {
        let m = StateSpaceModel::new(
            Matrix::from_rows(&[&[0.5]]).unwrap(),
            vec![1.0],
            vec![1.0],
            0.0,
            1.0,
        );
        // Steady output for u=0 is gain * (0 + 1) = 2.
        assert!((m.dc_output(0.0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn feedthrough_appears_immediately_in_output() {
        let m = lag_with_d();
        // Zero state, input 2: y = D·2 = 2 before any state has built up.
        assert!((m.output(&[0.0], 2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "B length")]
    fn dimension_mismatch_panics() {
        StateSpaceModel::new(Matrix::identity(2), vec![1.0], vec![1.0, 0.0], 0.0, 0.0);
    }
}
