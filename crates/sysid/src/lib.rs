//! System identification for PERQ's power-cap ↔ performance model.
//!
//! The paper builds a 3rd-order state-space model of a compute node's
//! power-cap → IPS relationship with MATLAB's System Identification
//! Toolbox, trained on NAS Parallel Benchmark runs under randomly switched
//! power-caps. This crate is the from-scratch Rust substitute:
//!
//! - [`ArxModel`] / [`fit_arx`]: least-squares ARX identification
//!   `y(k) = Σ aᵢ y(k−i) + Σ bⱼ u(k−j) + offset` via Householder QR.
//! - [`StateSpaceModel`]: the controllable-canonical realization
//!   `x(k+1) = A x(k) + B u(k)`, `y(k) = C x(k) + d`, with step simulation,
//!   DC gain, Markov parameters (the impulse response the MPC prediction
//!   matrices are built from), and a spectral-radius stability check.
//! - [`KalmanObserver`]: steady-state Kalman filter (Riccati iteration)
//!   that tracks the node's internal state from noisy IPS measurements;
//!   this is how "the internal state X(k) of the node gets updated every
//!   decision instance based on the active input-output relationship of
//!   the currently running job" (paper §2.4.2).
//! - [`Rls`]: recursive least squares with exponential forgetting, used by
//!   the controller for per-job gain/offset adaptation and local
//!   sensitivity (slope) estimation.
//! - [`DemandForecaster`]: confidence-gated RLS demand curve
//!   (cap fraction → drawn-power fraction) that perq-gym's hybrid policy
//!   trains online and feeds into MPC warm starts for new jobs.
//! - [`MonotoneCurve`] / [`fit_monotone_curve`]: Hammerstein-style static
//!   nonlinearity fitted with least squares followed by an isotonic
//!   (pool-adjacent-violators) projection — the saturating power→perf
//!   curve the target generator evaluates at TDP and at the fair power.
//! - [`excite`]: PRBS and uniform random power-cap switching signals, the
//!   paper's training excitation ("switching the power-cap frequently
//!   using a uniform distribution").
//! - [`fit_percent`] / [`rmse`]: the model-quality metrics used to accept
//!   or reject an identified model.

mod arx;
pub mod excite;
mod forecast;
mod hammerstein;
mod metrics;
mod observer;
mod rls;
mod ss;

pub use arx::{fit_arx, fit_arx_segments, ArxModel};
pub use forecast::DemandForecaster;
pub use hammerstein::{fit_monotone_curve, MonotoneCurve};
pub use metrics::{fit_percent, rmse};
pub use observer::KalmanObserver;
pub use rls::Rls;
pub use ss::StateSpaceModel;

/// Errors produced by the identification routines.
#[derive(Debug, Clone, PartialEq)]
pub enum SysIdError {
    /// Not enough data points for the requested model order.
    NotEnoughData {
        /// Samples provided.
        have: usize,
        /// Samples required.
        need: usize,
    },
    /// Input and output series have different lengths.
    LengthMismatch {
        /// Input series length.
        input: usize,
        /// Output series length.
        output: usize,
    },
    /// The regression problem was singular (e.g. constant input).
    Degenerate(String),
    /// An underlying linear-algebra kernel failed.
    Linalg(perq_linalg::LinalgError),
}

impl std::fmt::Display for SysIdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SysIdError::NotEnoughData { have, need } => {
                write!(f, "not enough data: have {have}, need {need}")
            }
            SysIdError::LengthMismatch { input, output } => {
                write!(f, "length mismatch: input {input}, output {output}")
            }
            SysIdError::Degenerate(msg) => write!(f, "degenerate identification problem: {msg}"),
            SysIdError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for SysIdError {}

impl From<perq_linalg::LinalgError> for SysIdError {
    fn from(e: perq_linalg::LinalgError) -> Self {
        SysIdError::Linalg(e)
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SysIdError>;
