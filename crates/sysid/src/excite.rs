//! Excitation signals for identification experiments.
//!
//! The paper's training protocol runs each benchmark "one hundred times
//! and switching the power-cap frequently using a uniform distribution, to
//! emulate a real switching environment". [`uniform_switching`] reproduces
//! that protocol; [`prbs`] is the classic maximally informative binary
//! alternative used in the identification tests.

use rand::Rng;

/// A pseudo-random binary sequence alternating between `lo` and `hi`,
/// holding each level for a random 1..=`max_hold` steps.
pub fn prbs<R: Rng>(rng: &mut R, len: usize, lo: f64, hi: f64, max_hold: usize) -> Vec<f64> {
    assert!(max_hold >= 1, "hold time must be at least 1");
    let mut out = Vec::with_capacity(len);
    let mut level = if rng.gen_bool(0.5) { hi } else { lo };
    while out.len() < len {
        let hold = rng.gen_range(1..=max_hold);
        for _ in 0..hold {
            if out.len() == len {
                break;
            }
            out.push(level);
        }
        level = if level == hi { lo } else { hi };
    }
    out
}

/// Uniformly distributed random power-cap levels in `[lo, hi]`, held for a
/// random 1..=`max_hold` steps each — the paper's training excitation.
pub fn uniform_switching<R: Rng>(
    rng: &mut R,
    len: usize,
    lo: f64,
    hi: f64,
    max_hold: usize,
) -> Vec<f64> {
    assert!(max_hold >= 1, "hold time must be at least 1");
    assert!(hi >= lo, "hi must be >= lo");
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let level = rng.gen_range(lo..=hi);
        let hold = rng.gen_range(1..=max_hold);
        for _ in 0..hold {
            if out.len() == len {
                break;
            }
            out.push(level);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prbs_levels_and_length() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = prbs(&mut rng, 500, 90.0, 290.0, 5);
        assert_eq!(s.len(), 500);
        assert!(s.iter().all(|&v| v == 90.0 || v == 290.0));
        // Both levels appear.
        assert!(s.contains(&90.0));
        assert!(s.contains(&290.0));
    }

    #[test]
    fn uniform_switching_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = uniform_switching(&mut rng, 1000, 90.0, 290.0, 8);
        assert_eq!(s.len(), 1000);
        assert!(s.iter().all(|&v| (90.0..=290.0).contains(&v)));
        // Should actually switch (more than a handful of distinct levels).
        let mut distinct: Vec<f64> = s.clone();
        distinct.sort_by(|a, b| a.partial_cmp(b).unwrap());
        distinct.dedup();
        assert!(distinct.len() > 50);
    }

    #[test]
    fn sequences_are_reproducible_from_seed() {
        let a = uniform_switching(&mut StdRng::seed_from_u64(3), 100, 0.0, 1.0, 3);
        let b = uniform_switching(&mut StdRng::seed_from_u64(3), 100, 0.0, 1.0, 3);
        assert_eq!(a, b);
    }
}
