use crate::{Result, SysIdError};

/// A monotone non-decreasing piecewise-linear curve `y = φ(u)` on a knot
/// grid.
///
/// This is the static nonlinearity of a Hammerstein model of the node: the
/// saturating power-cap → performance map (Fig. 3 of the paper) composed
/// with the linear dynamics captured by the state-space model. The target
/// generator evaluates this curve at TDP and at the fair power level
/// `P_fair = TDP·N_WP/N_OP` to produce the system- and job-level
/// performance targets.
#[derive(Debug, Clone, PartialEq)]
pub struct MonotoneCurve {
    knots: Vec<f64>,
    values: Vec<f64>,
}

impl MonotoneCurve {
    /// Creates a curve from knot positions (strictly increasing) and
    /// values (will be clamped to non-decreasing order).
    pub fn new(knots: Vec<f64>, mut values: Vec<f64>) -> Result<Self> {
        if knots.len() < 2 || knots.len() != values.len() {
            return Err(SysIdError::Degenerate(format!(
                "curve needs ≥2 matching knots/values, got {}/{}",
                knots.len(),
                values.len()
            )));
        }
        for w in knots.windows(2) {
            if w[1] <= w[0] {
                return Err(SysIdError::Degenerate(
                    "knots must be strictly increasing".into(),
                ));
            }
        }
        // Enforce monotonicity defensively.
        for i in 1..values.len() {
            if values[i] < values[i - 1] {
                values[i] = values[i - 1];
            }
        }
        Ok(MonotoneCurve { knots, values })
    }

    /// Evaluates the curve with linear interpolation; extrapolation is
    /// clamped to the end values (a power cap above the highest training
    /// cap cannot make the job faster than its saturation performance).
    pub fn eval(&self, u: f64) -> f64 {
        let n = self.knots.len();
        if u <= self.knots[0] {
            return self.values[0];
        }
        if u >= self.knots[n - 1] {
            return self.values[n - 1];
        }
        // Binary search for the bracketing interval.
        let mut lo = 0;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.knots[mid] <= u {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t = (u - self.knots[lo]) / (self.knots[hi] - self.knots[lo]);
        self.values[lo] + t * (self.values[hi] - self.values[lo])
    }

    /// Local slope `dφ/du` at `u` (one-sided at the ends).
    pub fn slope(&self, u: f64) -> f64 {
        let n = self.knots.len();
        let (i, j) = if u <= self.knots[0] {
            (0, 1)
        } else if u >= self.knots[n - 1] {
            (n - 2, n - 1)
        } else {
            let mut lo = 0;
            let mut hi = n - 1;
            while hi - lo > 1 {
                let mid = (lo + hi) / 2;
                if self.knots[mid] <= u {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            (lo, hi)
        };
        (self.values[j] - self.values[i]) / (self.knots[j] - self.knots[i])
    }

    /// Secant slope over `[u − halfwidth, u + halfwidth]` — a smoothed
    /// alternative to [`MonotoneCurve::slope`] for controllers doing
    /// successive linearisation: isotonic fits contain locally flat
    /// blocks whose pointwise slope is exactly zero, which would tell a
    /// controller that power has no effect at that operating point.
    pub fn secant_slope(&self, u: f64, halfwidth: f64) -> f64 {
        let h = halfwidth.max(1e-9);
        let n = self.knots.len();
        // Clamp the secant window into the knot domain *before* dividing,
        // otherwise the flat extrapolation region would dilute the slope
        // exactly at the domain edges (e.g. at the minimum power cap).
        let mut lo = (u - h).max(self.knots[0]);
        let mut hi = (u + h).min(self.knots[n - 1]);
        if hi - lo < h {
            // Window collapsed against an edge: take a window of width h
            // anchored at that edge.
            if lo <= self.knots[0] + 1e-12 {
                hi = (lo + h).min(self.knots[n - 1]);
            } else {
                lo = (hi - h).max(self.knots[0]);
            }
        }
        if hi - lo < 1e-12 {
            return 0.0;
        }
        (self.eval(hi) - self.eval(lo)) / (hi - lo)
    }

    /// Knot positions.
    pub fn knots(&self) -> &[f64] {
        &self.knots
    }

    /// Knot values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Inverse evaluation: the smallest `u` with `φ(u) ≥ y`, or `None`
    /// when `y` exceeds the curve's maximum. Used to translate a
    /// performance target back into a power-cap.
    pub fn inverse(&self, y: f64) -> Option<f64> {
        let n = self.knots.len();
        if y <= self.values[0] {
            return Some(self.knots[0]);
        }
        if y > self.values[n - 1] {
            return None;
        }
        for i in 1..n {
            if self.values[i] >= y {
                let dv = self.values[i] - self.values[i - 1];
                if dv <= 0.0 {
                    return Some(self.knots[i - 1]);
                }
                let t = (y - self.values[i - 1]) / dv;
                return Some(self.knots[i - 1] + t * (self.knots[i] - self.knots[i - 1]));
            }
        }
        Some(self.knots[n - 1])
    }
}

/// Fits a [`MonotoneCurve`] to scattered `(u, y)` samples.
///
/// Samples are bucketed onto `num_knots` equally spaced knots spanning the
/// data range, bucket means are computed, and the means are projected onto
/// the monotone cone with the pool-adjacent-violators algorithm (weighted
/// isotonic regression — the L2-optimal monotone fit given the bucketing).
pub fn fit_monotone_curve(u: &[f64], y: &[f64], num_knots: usize) -> Result<MonotoneCurve> {
    if u.len() != y.len() {
        return Err(SysIdError::LengthMismatch {
            input: u.len(),
            output: y.len(),
        });
    }
    if u.len() < num_knots || num_knots < 2 {
        return Err(SysIdError::NotEnoughData {
            have: u.len(),
            need: num_knots.max(2),
        });
    }
    let (umin, umax) = u
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    if !(umax - umin).is_finite() || umax - umin < 1e-12 {
        return Err(SysIdError::Degenerate(
            "input samples span a single point".into(),
        ));
    }
    let knots: Vec<f64> = (0..num_knots)
        .map(|i| umin + (umax - umin) * i as f64 / (num_knots - 1) as f64)
        .collect();
    // Bucket means with inverse-distance assignment to the nearest knot.
    let mut sums = vec![0.0; num_knots];
    let mut weights = vec![0.0; num_knots];
    let width = (umax - umin) / (num_knots - 1) as f64;
    for (&ui, &yi) in u.iter().zip(y.iter()) {
        let idx = (((ui - umin) / width).round() as usize).min(num_knots - 1);
        sums[idx] += yi;
        weights[idx] += 1.0;
    }
    // Fill empty buckets by linear interpolation between populated ones.
    let mut means = vec![0.0; num_knots];
    for i in 0..num_knots {
        if weights[i] > 0.0 {
            means[i] = sums[i] / weights[i];
        } else {
            means[i] = f64::NAN;
        }
    }
    fill_gaps(&mut means);
    for (i, w) in weights.iter_mut().enumerate() {
        if *w == 0.0 {
            *w = 1e-6; // interpolated entries get negligible weight
        }
        let _ = i;
    }
    let fitted = pava(&means, &weights);
    MonotoneCurve::new(knots, fitted)
}

/// Replaces NaN entries by linear interpolation between neighbours.
fn fill_gaps(v: &mut [f64]) {
    let n = v.len();
    // Leading/trailing NaNs take the nearest defined value.
    if let Some(first) = v.iter().position(|x| !x.is_nan()) {
        for i in 0..first {
            v[i] = v[first];
        }
    } else {
        v.iter_mut().for_each(|x| *x = 0.0);
        return;
    }
    if let Some(last) = v.iter().rposition(|x| !x.is_nan()) {
        for i in (last + 1)..n {
            v[i] = v[last];
        }
    }
    let mut i = 0;
    while i < n {
        if v[i].is_nan() {
            let start = i - 1; // v[start] is defined
            let mut end = i;
            while v[end].is_nan() {
                end += 1;
            }
            let span = (end - start) as f64;
            for j in (start + 1)..end {
                let t = (j - start) as f64 / span;
                v[j] = v[start] * (1.0 - t) + v[end] * t;
            }
            i = end;
        } else {
            i += 1;
        }
    }
}

/// Weighted pool-adjacent-violators: L2 projection onto non-decreasing
/// sequences.
fn pava(y: &[f64], w: &[f64]) -> Vec<f64> {
    #[derive(Clone, Copy)]
    struct Block {
        value: f64,
        weight: f64,
        len: usize,
    }
    let mut blocks: Vec<Block> = Vec::with_capacity(y.len());
    for (&yi, &wi) in y.iter().zip(w.iter()) {
        blocks.push(Block {
            value: yi,
            weight: wi,
            len: 1,
        });
        while blocks.len() >= 2 {
            let b = blocks[blocks.len() - 1];
            let a = blocks[blocks.len() - 2];
            if a.value <= b.value {
                break;
            }
            let merged = Block {
                value: (a.value * a.weight + b.value * b.weight) / (a.weight + b.weight),
                weight: a.weight + b.weight,
                len: a.len + b.len,
            };
            blocks.pop();
            blocks.pop();
            blocks.push(merged);
        }
    }
    let mut out = Vec::with_capacity(y.len());
    for b in blocks {
        out.extend(std::iter::repeat_n(b.value, b.len));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_interpolates_and_clamps() {
        let c = MonotoneCurve::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 10.0]).unwrap();
        assert_eq!(c.eval(-1.0), 0.0);
        assert_eq!(c.eval(0.5), 5.0);
        assert_eq!(c.eval(1.5), 10.0);
        assert_eq!(c.eval(3.0), 10.0);
    }

    #[test]
    fn slope_reflects_segments() {
        let c = MonotoneCurve::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 10.0]).unwrap();
        assert_eq!(c.slope(0.5), 10.0);
        assert_eq!(c.slope(1.5), 0.0);
    }

    #[test]
    fn secant_slope_bridges_flat_blocks() {
        let c = MonotoneCurve::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 10.0]).unwrap();
        // Pointwise slope in the flat block is 0, but a secant spanning
        // the rising segment reports a positive slope.
        assert_eq!(c.slope(1.2), 0.0);
        assert!(c.secant_slope(1.2, 0.5) > 0.0);
        // In a uniform region the secant matches the pointwise slope.
        assert!((c.secant_slope(0.5, 0.2) - 10.0).abs() < 1e-9);
        // Clamped extrapolation keeps it finite and non-negative.
        assert!(c.secant_slope(5.0, 0.5) >= 0.0);
    }

    #[test]
    fn inverse_round_trips() {
        let c = MonotoneCurve::new(vec![0.0, 1.0, 2.0], vec![1.0, 5.0, 9.0]).unwrap();
        for y in [1.0, 2.0, 5.0, 7.0, 9.0] {
            let u = c.inverse(y).unwrap();
            assert!((c.eval(u) - y).abs() < 1e-9, "y={y}");
        }
        assert!(c.inverse(9.5).is_none());
        assert_eq!(c.inverse(0.5), Some(0.0));
    }

    #[test]
    fn fit_recovers_saturating_curve() {
        // y = min(u, 5) with noise-free samples.
        let u: Vec<f64> = (0..200).map(|i| i as f64 / 20.0).collect();
        let y: Vec<f64> = u.iter().map(|&v| v.min(5.0)).collect();
        let c = fit_monotone_curve(&u, &y, 11).unwrap();
        assert!((c.eval(2.0) - 2.0).abs() < 0.3);
        assert!((c.eval(8.0) - 5.0).abs() < 0.3);
        // Monotone by construction.
        for w in c.values().windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn fit_projects_noisy_nonmonotone_data() {
        let u: Vec<f64> = (0..300).map(|i| i as f64 / 30.0).collect();
        let y: Vec<f64> = u
            .iter()
            .enumerate()
            .map(|(i, &v)| v.min(5.0) + 0.4 * ((i as f64) * 2.3).sin())
            .collect();
        let c = fit_monotone_curve(&u, &y, 15).unwrap();
        for w in c.values().windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!((c.eval(9.0) - 5.0).abs() < 0.6);
    }

    #[test]
    fn pava_known_example() {
        let y = [1.0, 3.0, 2.0, 4.0];
        let w = [1.0; 4];
        let p = pava(&y, &w);
        assert_eq!(p, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(MonotoneCurve::new(vec![0.0], vec![1.0]).is_err());
        assert!(MonotoneCurve::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(fit_monotone_curve(&[1.0; 5], &[1.0; 5], 3).is_err()); // zero span
        assert!(fit_monotone_curve(&[1.0, 2.0], &[1.0], 2).is_err());
    }
}
