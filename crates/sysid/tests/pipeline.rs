//! End-to-end identification pipeline tests: excite a synthetic
//! Hammerstein plant, fit curve + ARX, realize state-space, observe, and
//! verify the identified chain predicts the plant.

use perq_sysid::{excite, fit_arx, fit_monotone_curve, fit_percent, KalmanObserver, Rls};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Ground-truth plant: static saturation followed by a first-order lag.
struct Plant {
    state: f64,
    pole: f64,
}

impl Plant {
    fn staticmap(u: f64) -> f64 {
        (1.6 * u).min(1.0)
    }

    fn step(&mut self, u: f64) -> f64 {
        // y(k) responds to u(k) through the lag's direct path.
        let target = Self::staticmap(u);
        self.state += (1.0 - self.pole) * (target - self.state);
        self.state
    }
}

#[test]
fn full_pipeline_identifies_hammerstein_plant() {
    let mut rng = StdRng::seed_from_u64(99);
    let caps = excite::uniform_switching(&mut rng, 3000, 0.3, 1.0, 5);
    let mut plant = Plant {
        state: 0.0,
        pole: 0.3,
    };
    let y: Vec<f64> = caps.iter().map(|&c| plant.step(c)).collect();

    // 1. Static curve recovers the saturation shape.
    let curve = fit_monotone_curve(&caps, &y, 15).expect("curve fits");
    assert!((curve.eval(0.4) - 0.64).abs() < 0.08, "{}", curve.eval(0.4));
    assert!((curve.eval(0.9) - 1.0).abs() < 0.05, "{}", curve.eval(0.9));

    // 2. ARX on the curve-transformed input captures the lag dynamics.
    let u: Vec<f64> = caps.iter().map(|&c| curve.eval(c)).collect();
    let arx = fit_arx(&u, &y, 2, 2).expect("arx fits");
    // One-step prediction fit must be excellent.
    let mut preds = Vec::new();
    let mut refs = Vec::new();
    for k in 3..y.len() {
        preds.push(arx.predict_one(&y[..k], &u[..=k]));
        refs.push(y[k]);
    }
    let fit = fit_percent(&preds, &refs);
    assert!(fit > 90.0, "one-step fit {fit:.1}%");

    // 3. DC gain of the identified chain is ~1 (the curve carries the
    //    static map, so the dynamics are unit-gain up to the smoothing
    //    the knot bucketing applies around the saturation kink).
    let gain = arx.dc_gain().expect("finite gain");
    assert!((gain - 1.0).abs() < 0.25, "dc gain {gain}");

    // 4. The observer on the realization tracks the plant through a step.
    let ss = arx.to_state_space();
    assert!(ss.is_stable());
    let mut obs = KalmanObserver::new(ss, 0.05, 1e-3);
    let mut plant = Plant {
        state: 0.0,
        pole: 0.3,
    };
    let mut last_err = f64::INFINITY;
    for k in 0..200 {
        let cap = if k < 100 { 0.5 } else { 0.8 };
        let yt = plant.step(cap);
        let ut = curve.eval(cap);
        obs.update(ut, yt);
        last_err = (obs.predicted_output(ut) - yt).abs();
    }
    assert!(last_err < 0.05, "observer residual {last_err}");
}

#[test]
fn rls_tracks_slowly_varying_sensitivity() {
    // The per-job adaptation scenario: slope drifts mid-run (phase
    // change); RLS with forgetting follows it.
    let mut rls = Rls::new(1, 0.95, 10.0);
    for k in 0..400 {
        let slope = if k < 200 { 0.5 } else { 2.0 };
        let dphi = if k % 2 == 0 { 0.05 } else { -0.05 };
        rls.update(&[dphi], slope * dphi);
    }
    let g = rls.theta()[0];
    assert!((g - 2.0).abs() < 0.1, "tracked slope {g}");
}

#[test]
fn identification_errors_are_reported_not_panicked() {
    // Degenerate data paths must return errors.
    assert!(fit_monotone_curve(&[0.5; 100], &[1.0; 100], 5).is_err());
    assert!(fit_arx(&[1.0; 200], &[1.0; 200], 3, 4).is_err());
}
