//! Property tests for the log-linear histogram: structural invariants
//! of the bucket grid, conservation under observation and merge, and
//! quantile sanity.

use perq_telemetry::Histogram;
use proptest::prelude::*;

/// Observation values spanning the interesting range: subnormals up to
/// huge magnitudes, plus the non-positive bucket.
fn values() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e12..1e12f64,
        1e-15..1e-9f64,
        Just(0.0),
        Just(-0.0),
        Just(f64::MIN_POSITIVE),
    ]
}

proptest! {
    /// Bucket upper bounds are strictly increasing across the finite
    /// part of the grid, so buckets partition the positive reals.
    #[test]
    fn bucket_bounds_are_monotone(idx in 0usize..Histogram::NUM_BUCKETS - 2) {
        let lo = Histogram::bucket_upper(idx);
        let hi = Histogram::bucket_upper(idx + 1);
        prop_assert!(lo < hi, "upper({idx}) = {lo} >= upper({}) = {hi}", idx + 1);
    }

    /// Every value maps to a bucket whose bounds bracket it:
    /// `upper(i-1) <= v < upper(i)` for positive in-range values.
    #[test]
    fn observation_lands_inside_its_bucket(v in 1e-11..1e11f64) {
        let idx = Histogram::bucket_index(v);
        prop_assert!(idx < Histogram::NUM_BUCKETS);
        prop_assert!(v < Histogram::bucket_upper(idx), "v={v} idx={idx}");
        if idx > 0 {
            prop_assert!(
                v >= Histogram::bucket_upper(idx - 1),
                "v={v} below bucket {idx}'s lower bound"
            );
        }
    }

    /// Observing n values yields count n, an exact sum, and exact
    /// min/max — the bucketing approximates only the distribution.
    #[test]
    fn count_sum_min_max_are_conserved(vs in prop::collection::vec(values(), 1..200)) {
        let mut h = Histogram::new();
        for &v in &vs {
            h.observe(v);
        }
        prop_assert_eq!(h.count(), vs.len() as u64);
        let bucket_total: u64 = h.bucket_counts().iter().sum();
        prop_assert_eq!(bucket_total, vs.len() as u64, "bucket counts must conserve mass");
        let exact_sum: f64 = vs.iter().sum();
        prop_assert!((h.sum() - exact_sum).abs() <= 1e-9 * (1.0 + exact_sum.abs()));
        let exact_min = vs.iter().cloned().fold(f64::INFINITY, f64::min);
        let exact_max = vs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.min(), Some(exact_min));
        prop_assert_eq!(h.max(), Some(exact_max));
    }

    /// Quantiles are clamped into the observed range and ordered.
    #[test]
    fn quantiles_stay_within_min_max(vs in prop::collection::vec(values(), 1..200)) {
        let mut h = Histogram::new();
        for &v in &vs {
            h.observe(v);
        }
        let (min, max) = (h.min().unwrap(), h.max().unwrap());
        let p50 = h.quantile(0.5).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        for q in [p50, p95, p99] {
            prop_assert!(q >= min && q <= max, "quantile {q} outside [{min}, {max}]");
        }
        prop_assert!(p50 <= p95 && p95 <= p99, "quantiles must be ordered");
    }

    /// Merge is associative and equivalent to observing the union:
    /// (a ∪ b) ∪ c and a ∪ (b ∪ c) agree exactly on bucket counts,
    /// count, min, max, and quantiles (sum approximately).
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(values(), 0..60),
        b in prop::collection::vec(values(), 0..60),
        c in prop::collection::vec(values(), 0..60),
    ) {
        let fill = |vs: &[f64]| {
            let mut h = Histogram::new();
            for &v in vs {
                h.observe(v);
            }
            h
        };
        let (ha, hb, hc) = (fill(&a), fill(&b), fill(&c));

        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        prop_assert_eq!(left.bucket_counts(), right.bucket_counts());
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
        prop_assert!((left.sum() - right.sum()).abs() <= 1e-9 * (1.0 + left.sum().abs()));
        for q in [0.5, 0.95, 0.99] {
            prop_assert_eq!(left.quantile(q), right.quantile(q));
        }

        // Merge must also match direct observation of the union.
        let union: Vec<f64> = a.iter().chain(&b).chain(&c).cloned().collect();
        let direct = fill(&union);
        prop_assert_eq!(left.bucket_counts(), direct.bucket_counts());
        prop_assert_eq!(left.count(), direct.count());
        prop_assert_eq!(left.min(), direct.min());
        prop_assert_eq!(left.max(), direct.max());
    }
}
