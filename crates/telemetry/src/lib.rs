//! Deterministic metrics, tracing, and event-journal subsystem for PERQ.
//!
//! Control-theoretic power managers are judged by their *transient*
//! behaviour — iteration counts, residual decay, per-interval budget
//! headroom, retry activity — not just end-state throughput. This crate
//! makes those internals observable without giving up the repo's core
//! guarantee: **seeded runs replay bit-for-bit**, including their
//! exported telemetry.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Time comes from an injectable [`Clock`]. The
//!    simulator drives a [`ManualClock`] from simulated seconds, so two
//!    runs with the same seed produce byte-identical JSONL exports. Wall
//!    time is opt-in ([`WallClock`]) and never the default.
//! 2. **Cheap enough to leave on.** The default [`Recorder`] is a no-op
//!    (one `Option` check per call, no allocation, no locking). The
//!    `telemetry_overhead` bench in `perq-bench` holds the live recorder
//!    to <5% slowdown on the `qp_scaling` workload.
//! 3. **Zero heavy dependencies.** Counters and gauges are atomics;
//!    histograms are fixed-size log-linear bucket arrays behind a
//!    mutex; exporters are hand-rolled Prometheus text exposition and
//!    JSONL.
//!
//! Metric naming follows `perq_<crate>_<name>` (e.g.
//! `perq_qp_iterations`, `perq_sim_power_w`,
//! `perq_proto_retries_total`). Counters end in `_total`; histogram
//! time series end in `_seconds` when they come from spans.
//!
//! ```
//! use perq_telemetry::{ManualClock, Recorder};
//!
//! let rec = Recorder::with_clock(Box::new(ManualClock::new()));
//! rec.counter_add("perq_doc_events_total", 3);
//! rec.observe("perq_doc_latency", 0.25);
//! let text = rec.export_prometheus();
//! assert!(text.contains("perq_doc_events_total 3"));
//!
//! let noop = Recorder::noop();
//! noop.counter_add("ignored", 1); // no-op: no state, no cost
//! assert!(noop.export_prometheus().is_empty());
//! ```

mod clock;
mod export;
mod journal;
mod metrics;
mod recorder;

pub use clock::{Clock, ManualClock, WallClock};
pub use export::{parse_prometheus, validate_prometheus, ExpositionError, ParsedSample};
pub use journal::{Event, FieldValue, Journal};
pub use metrics::{Histogram, HistogramSnapshot, MetricKind, MetricSnapshot};
pub use recorder::{Recorder, Span};
