//! Injectable time sources.
//!
//! Everything in the telemetry subsystem that needs "now" asks a
//! [`Clock`]. Production code may use [`WallClock`]; deterministic
//! harnesses (the simulator, the fault suite, the replay tests) use a
//! [`ManualClock`] advanced from simulated time, so exported telemetry
//! is a pure function of the seed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock.
///
/// Implementations must be monotone: successive `now_ns` calls never go
/// backwards.
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds from an arbitrary epoch.
    fn now_ns(&self) -> u64;

    /// Advances the clock to at least `t_ns`. No-op for real clocks;
    /// manual clocks ratchet forward (never backwards).
    fn advance_to_ns(&self, _t_ns: u64) {}
}

/// A [`Clock`] driven explicitly by the harness.
///
/// `advance_to_ns` ratchets: the clock only moves forward, so replayed
/// runs that set time from simulated seconds stay monotone even if the
/// caller repeats a timestamp.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ns: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at t = 0.
    pub fn new() -> Self {
        ManualClock::default()
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }

    fn advance_to_ns(&self, t_ns: u64) {
        self.now_ns.fetch_max(t_ns, Ordering::Relaxed);
    }
}

/// A [`Clock`] backed by [`std::time::Instant`].
///
/// Only for interactive / production use: runs recorded against a wall
/// clock are *not* byte-replayable.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is the moment of construction.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        let d = self.epoch.elapsed();
        d.as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(d.subsec_nanos()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_ratchets_forward() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance_to_ns(50);
        assert_eq!(c.now_ns(), 50);
        c.advance_to_ns(10); // never backwards
        assert_eq!(c.now_ns(), 50);
        c.advance_to_ns(51);
        assert_eq!(c.now_ns(), 51);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
