//! Bounded ring-buffer event journal.
//!
//! Discrete happenings — fault injections, worker write-offs, span
//! completions — are appended here with their clock timestamp. The
//! buffer is bounded: when full, the *oldest* events are dropped and a
//! drop counter keeps the loss visible in exports.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A typed event field value. Keeping this an enum (rather than
/// stringifying at record time) defers formatting cost to export.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer field.
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Floating-point field.
    F64(f64),
    /// Static string field.
    Str(&'static str),
    /// Boolean field.
    Bool(bool),
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Clock timestamp in nanoseconds.
    pub t_ns: u64,
    /// Event name (`perq_<crate>_<name>` convention).
    pub name: &'static str,
    /// Ordered key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// Bounded FIFO of [`Event`]s.
#[derive(Debug)]
pub struct Journal {
    inner: Mutex<JournalInner>,
}

#[derive(Debug)]
struct JournalInner {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Journal {
    /// A journal holding at most `capacity` events. Capacity 0 keeps
    /// nothing (every push counts as dropped).
    pub fn new(capacity: usize) -> Self {
        Journal {
            inner: Mutex::new(JournalInner {
                events: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                dropped: 0,
            }),
        }
    }

    /// Appends an event, evicting the oldest if full.
    pub fn push(&self, event: Event) {
        let mut g = self.inner.lock().unwrap();
        if g.capacity == 0 {
            g.dropped += 1;
            return;
        }
        if g.events.len() == g.capacity {
            g.events.pop_front();
            g.dropped += 1;
        }
        g.events.push_back(event);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted or refused since creation.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Copies out the buffered events in arrival order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner.lock().unwrap().events.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> Event {
        Event {
            t_ns: t,
            name: "test_event",
            fields: vec![("i", FieldValue::U64(t))],
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let j = Journal::new(3);
        for t in 0..5 {
            j.push(ev(t));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        let ts: Vec<u64> = j.snapshot().iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_refuses_everything() {
        let j = Journal::new(0);
        j.push(ev(1));
        assert!(j.is_empty());
        assert_eq!(j.dropped(), 1);
    }
}
