//! Exporters: Prometheus text exposition and JSONL, plus a small
//! exposition parser used by the CI smoke check.
//!
//! Both exporters are deterministic: metric order comes from the
//! registry's sorted keys, journal order is arrival order, and floats
//! are rendered with Rust's shortest-round-trip formatting. Two runs
//! with identical recorded state therefore produce identical bytes.

use crate::journal::{Event, FieldValue};
use crate::metrics::{MetricKind, MetricSnapshot};
use std::fmt::Write as _;

/// Formats a float for Prometheus (which permits `NaN`/`+Inf`/`-Inf`).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Formats a float for JSON (which forbids non-finite values → null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for a JSON literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_field(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(x) => x.to_string(),
        FieldValue::I64(x) => x.to_string(),
        FieldValue::F64(x) => json_f64(*x),
        FieldValue::Str(s) => json_str(s),
        FieldValue::Bool(b) => b.to_string(),
    }
}

/// Renders metric snapshots as Prometheus text exposition (version
/// 0.0.4). Histograms are rendered summary-style with fixed quantiles.
pub(crate) fn to_prometheus(snaps: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for m in snaps {
        match &m.kind {
            MetricKind::Counter(v) => {
                let _ = writeln!(out, "# TYPE {} counter", m.name);
                let _ = writeln!(out, "{} {}", m.name, v);
            }
            MetricKind::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {} gauge", m.name);
                let _ = writeln!(out, "{} {}", m.name, prom_f64(*v));
            }
            MetricKind::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {} summary", m.name);
                let _ = writeln!(out, "{}{{quantile=\"0.5\"}} {}", m.name, prom_f64(h.p50));
                let _ = writeln!(out, "{}{{quantile=\"0.95\"}} {}", m.name, prom_f64(h.p95));
                let _ = writeln!(out, "{}{{quantile=\"0.99\"}} {}", m.name, prom_f64(h.p99));
                let _ = writeln!(out, "{}_sum {}", m.name, prom_f64(h.sum));
                let _ = writeln!(out, "{}_count {}", m.name, h.count);
            }
        }
    }
    out
}

/// Renders the journal (one line per event, arrival order) followed by
/// one line per metric, as JSON Lines.
pub(crate) fn to_jsonl(events: &[Event], snaps: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = write!(out, "{{\"t_ns\":{},\"event\":{}", e.t_ns, json_str(e.name));
        if !e.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in e.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_str(k), json_field(v));
            }
            out.push('}');
        }
        out.push_str("}\n");
    }
    for m in snaps {
        match &m.kind {
            MetricKind::Counter(v) => {
                let _ = writeln!(
                    out,
                    "{{\"metric\":{},\"type\":\"counter\",\"value\":{}}}",
                    json_str(m.name),
                    v
                );
            }
            MetricKind::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{{\"metric\":{},\"type\":\"gauge\",\"value\":{}}}",
                    json_str(m.name),
                    json_f64(*v)
                );
            }
            MetricKind::Histogram(h) => {
                let _ = writeln!(
                    out,
                    "{{\"metric\":{},\"type\":\"histogram\",\"count\":{},\"sum\":{},\
                     \"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                    json_str(m.name),
                    h.count,
                    json_f64(h.sum),
                    json_f64(h.min),
                    json_f64(h.max),
                    json_f64(h.p50),
                    json_f64(h.p95),
                    json_f64(h.p99),
                );
            }
        }
    }
    out
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Sample name (including any `_sum`/`_count` suffix).
    pub name: String,
    /// Raw label block without braces, empty if none.
    pub labels: String,
    /// Sample value.
    pub value: f64,
}

/// Error from [`parse_prometheus`] / [`validate_prometheus`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExpositionError {
    /// A line that is neither a comment nor a valid sample.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A required metric name was absent.
    MissingMetric(String),
}

impl std::fmt::Display for ExpositionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpositionError::Malformed { line, reason } => {
                write!(f, "malformed exposition at line {line}: {reason}")
            }
            ExpositionError::MissingMetric(name) => {
                write!(f, "required metric {name} missing from exposition")
            }
        }
    }
}

impl std::error::Error for ExpositionError {}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses Prometheus text exposition into samples. Comment (`#`) and
/// blank lines are skipped; anything else must be
/// `name[{labels}] value`.
pub fn parse_prometheus(text: &str) -> Result<Vec<ParsedSample>, ExpositionError> {
    let mut samples = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let malformed = |reason: &str| ExpositionError::Malformed {
            line: i + 1,
            reason: reason.to_string(),
        };
        let (name_part, value_part) = match line.find('}') {
            Some(close) => {
                let (head, tail) = line.split_at(close + 1);
                (head, tail.trim())
            }
            None => match line.split_once(char::is_whitespace) {
                Some((n, v)) => (n, v.trim()),
                None => return Err(malformed("no value")),
            },
        };
        let (name, labels) = match name_part.split_once('{') {
            Some((n, l)) => {
                let l = l
                    .strip_suffix('}')
                    .ok_or_else(|| malformed("unclosed label block"))?;
                (n, l.to_string())
            }
            None => (name_part, String::new()),
        };
        if !valid_metric_name(name) {
            return Err(malformed(&format!("invalid metric name {name:?}")));
        }
        let value = match value_part {
            "NaN" => f64::NAN,
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v
                .parse::<f64>()
                .map_err(|_| malformed(&format!("invalid value {v:?}")))?,
        };
        samples.push(ParsedSample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Parses an exposition and checks every required metric family is
/// present. A requirement `r` is met by a sample named `r`, `r_sum`,
/// or `r_count` (so summary families satisfy their base name).
pub fn validate_prometheus(text: &str, required: &[&str]) -> Result<(), ExpositionError> {
    let samples = parse_prometheus(text)?;
    for &req in required {
        let found = samples.iter().any(|s| {
            s.name == req
                || s.name
                    .strip_prefix(req)
                    .is_some_and(|rest| rest == "_sum" || rest == "_count")
        });
        if !found {
            return Err(ExpositionError::MissingMetric(req.to_string()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FieldValue, ManualClock, Recorder};

    fn sample_recorder() -> Recorder {
        let rec = Recorder::with_clock(Box::new(ManualClock::new()));
        rec.set_time_s(1.0);
        rec.counter_add("perq_test_steps_total", 7);
        rec.gauge_set("perq_test_power_w", 512.25);
        rec.observe("perq_test_latency", 0.004);
        rec.observe("perq_test_latency", 0.006);
        rec.event("perq_test_fault", &[("node", FieldValue::U64(3))]);
        rec
    }

    #[test]
    fn prometheus_roundtrips_through_parser() {
        let text = sample_recorder().export_prometheus();
        let samples = parse_prometheus(&text).expect("parses");
        assert!(samples
            .iter()
            .any(|s| s.name == "perq_test_steps_total" && s.value == 7.0));
        assert!(samples
            .iter()
            .any(|s| s.name == "perq_test_latency_count" && s.value == 2.0));
        validate_prometheus(
            &text,
            &[
                "perq_test_steps_total",
                "perq_test_power_w",
                "perq_test_latency",
            ],
        )
        .expect("all required present");
        assert_eq!(
            validate_prometheus(&text, &["perq_test_absent"]),
            Err(ExpositionError::MissingMetric("perq_test_absent".into()))
        );
    }

    #[test]
    fn jsonl_is_deterministic_and_wellformed() {
        let a = sample_recorder().export_jsonl();
        let b = sample_recorder().export_jsonl();
        assert_eq!(a, b, "identical state must export identical bytes");
        assert!(a.contains("\"event\":\"perq_test_fault\""));
        assert!(a.contains("\"t_ns\":1000000000"));
        assert!(a.contains("\"metric\":\"perq_test_power_w\""));
        for line in a.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "line {line:?}"
            );
        }
    }

    #[test]
    fn non_finite_values_never_break_json() {
        let rec = Recorder::manual();
        rec.gauge_set("perq_test_bad", f64::NAN);
        let jsonl = rec.export_jsonl();
        assert!(jsonl.contains("\"value\":null"));
        let prom = rec.export_prometheus();
        assert!(prom.contains("perq_test_bad NaN"));
        assert!(parse_prometheus(&prom).is_ok());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_prometheus("ok_metric 1\nbad metric name 2.0.0").is_err());
        assert!(parse_prometheus("1leading_digit 4").is_err());
        assert!(parse_prometheus("no_value").is_err());
    }
}
