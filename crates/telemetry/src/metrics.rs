//! Metric primitives: counters, gauges, and log-linear histograms,
//! held in a name-keyed registry with deterministic (sorted) iteration
//! order.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Sub-buckets per power of two. 8 gives ≤12.5% relative quantile
/// error, plenty for latency/iteration distributions.
const GRID: usize = 8;
/// Smallest tracked exponent: values below 2⁻⁴⁰ (≈ 1e-12) land in the
/// underflow bucket together with zero and negatives.
const E_MIN: i32 = -40;
/// Largest tracked exponent: values at or above 2⁴⁰ (≈ 1e12) land in
/// the overflow bucket.
const E_MAX: i32 = 40;
const NBUCKETS: usize = (E_MAX - E_MIN) as usize * GRID + 2;

/// A fixed-footprint log-linear histogram.
///
/// The value axis is split into powers of two, each subdivided into
/// `GRID` equal-width sub-buckets — the classic HDR layout. Bucket 0
/// catches non-positive and sub-`2^E_MIN` values; the last bucket
/// catches overflow. Alongside the buckets the histogram tracks exact
/// `count`, `sum`, `min`, and `max`, so quantile estimates can be
/// clamped to the true observed range.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Number of buckets, exposed for invariant tests.
    pub const NUM_BUCKETS: usize = NBUCKETS;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NBUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index for a value. NaN counts as underflow so recording
    /// never panics.
    pub fn bucket_index(v: f64) -> usize {
        if v <= 0.0 || v.is_nan() {
            return 0;
        }
        let e = v.log2().floor() as i32;
        if e < E_MIN {
            return 0;
        }
        if e >= E_MAX {
            return NBUCKETS - 1;
        }
        let lo = (e as f64).exp2();
        let frac = v / lo - 1.0; // in [0, 1)
        let sub = ((frac * GRID as f64) as usize).min(GRID - 1);
        1 + (e - E_MIN) as usize * GRID + sub
    }

    /// Upper bound of a bucket: bucket `i` covers
    /// `[bucket_upper(i-1), bucket_upper(i))`. Strictly increasing in
    /// the index; the overflow bucket's bound is `+inf`.
    pub fn bucket_upper(idx: usize) -> f64 {
        if idx == 0 {
            return (E_MIN as f64).exp2();
        }
        if idx >= NBUCKETS - 1 {
            return f64::INFINITY;
        }
        let i = idx - 1;
        let e = E_MIN + (i / GRID) as i32;
        let sub = i % GRID;
        (e as f64).exp2() * (1.0 + (sub + 1) as f64 / GRID as f64)
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        if v.is_nan() {
            return;
        }
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Element-wise merge: the result is as if both histograms'
    /// observations had been recorded into one. Bucket counts, `count`,
    /// `min`, and `max` merge exactly (and associatively); `sum` is
    /// associative only up to floating-point rounding.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all (non-NaN) observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation, or `None` while empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0 && self.min.is_finite()).then_some(self.min)
    }

    /// Largest observation, or `None` while empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0 && self.max.is_finite()).then_some(self.max)
    }

    /// Raw bucket counts, exposed for invariant tests.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), clamped to the
    /// observed `[min, max]` range. `None` while empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based: the smallest k such
        // that at least ceil(q * count) observations are ≤ the answer.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let rep = Self::bucket_upper(idx);
                let lo = if self.min.is_finite() {
                    self.min
                } else {
                    f64::NEG_INFINITY
                };
                let hi = if self.max.is_finite() {
                    self.max
                } else {
                    f64::INFINITY
                };
                return Some(rep.clamp(lo, hi));
            }
        }
        self.max()
    }

    /// Fixed-quantile snapshot for the exporters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
            p50: self.quantile(0.50).unwrap_or(0.0),
            p95: self.quantile(0.95).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
        }
    }
}

/// A point-in-time summary of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// The value of one exported metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricKind {
    /// Monotone event count.
    Counter(u64),
    /// Last-write-wins measurement.
    Gauge(f64),
    /// Distribution summary.
    Histogram(HistogramSnapshot),
}

/// One named metric in an export snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name (`perq_<crate>_<name>` convention).
    pub name: &'static str,
    /// Current value.
    pub kind: MetricKind,
}

/// Name-keyed metric storage. `BTreeMap` keys give every export a
/// deterministic order regardless of registration order.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    pub(crate) fn counter_add(&self, name: &'static str, delta: u64) {
        let mut g = self.inner.lock().unwrap();
        *g.counters.entry(name).or_insert(0) += delta;
    }

    pub(crate) fn gauge_set(&self, name: &'static str, value: f64) {
        let mut g = self.inner.lock().unwrap();
        g.gauges.insert(name, value);
    }

    pub(crate) fn observe(&self, name: &'static str, value: f64) {
        let mut g = self.inner.lock().unwrap();
        g.histograms.entry(name).or_default().observe(value);
    }

    pub(crate) fn counter_value(&self, name: &str) -> u64 {
        let g = self.inner.lock().unwrap();
        g.counters.get(name).copied().unwrap_or(0)
    }

    /// Merges another registry into this one: counters add, histograms
    /// merge bucket-wise (see [`Histogram::merge`]), and gauges take the
    /// other registry's value (last-write-wins in merge order). Merging
    /// registries in a fixed order therefore yields a deterministic
    /// result regardless of how their contents were produced.
    pub(crate) fn merge_from(&self, other: &Registry) {
        if std::ptr::eq(self, other) {
            return;
        }
        let theirs = other.inner.lock().unwrap();
        let mut ours = self.inner.lock().unwrap();
        for (&name, &v) in &theirs.counters {
            *ours.counters.entry(name).or_insert(0) += v;
        }
        for (&name, &v) in &theirs.gauges {
            ours.gauges.insert(name, v);
        }
        for (&name, h) in &theirs.histograms {
            ours.histograms.entry(name).or_default().merge(h);
        }
    }

    pub(crate) fn snapshot(&self) -> Vec<MetricSnapshot> {
        let g = self.inner.lock().unwrap();
        let mut out = Vec::with_capacity(g.counters.len() + g.gauges.len() + g.histograms.len());
        for (&name, &v) in &g.counters {
            out.push(MetricSnapshot {
                name,
                kind: MetricKind::Counter(v),
            });
        }
        for (&name, &v) in &g.gauges {
            out.push(MetricSnapshot {
                name,
                kind: MetricKind::Gauge(v),
            });
        }
        for (&name, h) in &g.histograms {
            out.push(MetricSnapshot {
                name,
                kind: MetricKind::Histogram(h.snapshot()),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_strictly_increasing() {
        for i in 1..NBUCKETS {
            assert!(
                Histogram::bucket_upper(i) > Histogram::bucket_upper(i - 1),
                "bound not increasing at {i}"
            );
        }
    }

    #[test]
    fn values_fall_at_or_below_their_bucket_bound() {
        for &v in &[1e-13, 0.5, 1.0, 1.1, 3.7, 1024.0, 9.9e11, 3.3e12] {
            let idx = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_upper(idx), "v={v} idx={idx}");
            if idx > 0 {
                assert!(
                    v >= Histogram::bucket_upper(idx - 1),
                    "v={v} below previous bound"
                );
            }
        }
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.observe(i as f64 / 100.0); // 0.01 .. 10.0
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((4.0..=6.0).contains(&p50), "p50 = {p50}");
        assert!((9.0..=10.0).contains(&p99), "p99 = {p99}");
        assert!(h.quantile(0.0).unwrap() >= h.min().unwrap());
        assert!(h.quantile(1.0).unwrap() <= h.max().unwrap());
    }

    #[test]
    fn nonpositive_and_nan_observations_are_safe() {
        let mut h = Histogram::new();
        h.observe(-3.0);
        h.observe(0.0);
        h.observe(f64::NAN);
        h.observe(2.0);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(-3.0));
        assert_eq!(h.max(), Some(2.0));
        let q = h.quantile(0.5).unwrap();
        assert!((-3.0..=2.0).contains(&q));
    }

    #[test]
    fn merge_matches_single_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for i in 0..50 {
            let v = (i as f64).mul_add(0.37, 0.1);
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.bucket_counts(), all.bucket_counts());
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert!((a.sum() - all.sum()).abs() < 1e-9);
    }

    #[test]
    fn registry_merge_is_deterministic_in_merge_order() {
        let mk = |c: u64, g: f64, obs: &[f64]| {
            let r = Registry::default();
            r.counter_add("c_total", c);
            r.gauge_set("g", g);
            for &v in obs {
                r.observe("h", v);
            }
            r
        };
        let a = mk(2, 1.0, &[0.5, 4.0]);
        let b = mk(3, 7.5, &[2.0]);
        a.merge_from(&b);
        let snap = a.snapshot();
        assert_eq!(snap[0].kind, MetricKind::Counter(5));
        assert_eq!(
            snap[1].kind,
            MetricKind::Gauge(7.5),
            "gauge: last write wins"
        );
        match &snap[2].kind {
            MetricKind::Histogram(h) => {
                assert_eq!(h.count, 3);
                assert_eq!(h.min, 0.5);
                assert_eq!(h.max, 4.0);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        // Self-merge is a no-op, not a deadlock or a double-count.
        a.merge_from(&a);
        assert_eq!(a.counter_value("c_total"), 5);
    }

    #[test]
    fn registry_snapshot_is_sorted_by_name() {
        let r = Registry::default();
        r.counter_add("z_total", 1);
        r.counter_add("a_total", 2);
        r.gauge_set("m_gauge", 3.5);
        let snap = r.snapshot();
        assert_eq!(snap[0].name, "a_total");
        assert_eq!(snap[1].name, "z_total");
        assert_eq!(snap[2].name, "m_gauge");
    }
}
