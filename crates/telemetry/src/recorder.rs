//! The [`Recorder`] handle: the one type instrumented code holds.
//!
//! A `Recorder` is a cheaply clonable handle that is either *live*
//! (shared registry + journal + clock) or a *no-op*. The no-op path is
//! a single `Option` discriminant check per call — no locks, no
//! allocation — so instrumentation can stay compiled-in and enabled by
//! configuration, not by feature flags.

use crate::clock::{Clock, ManualClock};
use crate::export;
use crate::journal::{Event, FieldValue, Journal};
use crate::metrics::{MetricSnapshot, Registry};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Default journal capacity: generous for hour-long simulations while
/// bounding memory at a few MB.
const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

struct Inner {
    clock: Box<dyn Clock>,
    registry: Registry,
    journal: Journal,
}

/// Handle to a telemetry sink, or a no-op.
///
/// Clones share the same underlying registry/journal, so a recorder
/// can be fanned out across the solver, simulator, and transport and
/// still export one coherent snapshot.
#[derive(Clone, Default)]
pub struct Recorder(Option<Arc<Inner>>);

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Recorder {
    /// The no-op recorder: every call returns immediately.
    pub fn noop() -> Self {
        Recorder(None)
    }

    /// A live recorder with the given clock and the default journal
    /// capacity.
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        Recorder::with_clock_and_capacity(clock, DEFAULT_JOURNAL_CAPACITY)
    }

    /// A live recorder with an explicit journal capacity.
    pub fn with_clock_and_capacity(clock: Box<dyn Clock>, journal_capacity: usize) -> Self {
        Recorder(Some(Arc::new(Inner {
            clock,
            registry: Registry::default(),
            journal: Journal::new(journal_capacity),
        })))
    }

    /// A live recorder on a [`ManualClock`] starting at t = 0 — the
    /// standard deterministic configuration.
    pub fn manual() -> Self {
        Recorder::with_clock(Box::new(ManualClock::new()))
    }

    /// True when this handle records anywhere.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Current clock reading in nanoseconds (0 for a no-op recorder).
    pub fn now_ns(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.clock.now_ns())
    }

    /// Advances the clock to the given simulated time. The simulator
    /// calls this once per step so journal timestamps and span
    /// durations are functions of simulated — not wall — time.
    pub fn set_time_s(&self, t_s: f64) {
        if let Some(i) = &self.0 {
            let ns = (t_s.max(0.0) * 1e9) as u64;
            i.clock.advance_to_ns(ns);
        }
    }

    /// Adds `delta` to a counter.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(i) = &self.0 {
            i.registry.counter_add(name, delta);
        }
    }

    /// Increments a counter by one.
    pub fn counter_inc(&self, name: &'static str) {
        self.counter_add(name, 1);
    }

    /// Reads a counter back (0 if absent or no-op). Intended for tests
    /// and the overhead bench, not for control logic.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |i| i.registry.counter_value(name))
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        if let Some(i) = &self.0 {
            i.registry.gauge_set(name, value);
        }
    }

    /// Records one histogram observation.
    pub fn observe(&self, name: &'static str, value: f64) {
        if let Some(i) = &self.0 {
            i.registry.observe(name, value);
        }
    }

    /// Appends a journal event stamped with the current clock reading.
    pub fn event(&self, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        if let Some(i) = &self.0 {
            i.journal.push(Event {
                t_ns: i.clock.now_ns(),
                name,
                fields: fields.to_vec(),
            });
        }
    }

    /// Opens a span. On drop the span observes its duration (seconds)
    /// into the `<name>_seconds` histogram. Under a [`ManualClock`]
    /// driven purely by `set_time_s` the duration is whatever simulated
    /// time elapsed — typically zero — keeping exports replayable.
    pub fn span(&self, name: &'static str) -> Span {
        Span(
            self.0
                .as_ref()
                .map(|i| (Arc::clone(i), name, i.clock.now_ns())),
        )
    }

    /// Merges another recorder's state into this one: counters add,
    /// histograms merge bucket-wise, gauges take the other recorder's
    /// value (last-write-wins in merge order), journal events append in
    /// the other recorder's arrival order with their original
    /// timestamps, and the clock ratchets to the later of the two.
    ///
    /// The merge is deterministic in merge order: folding per-worker
    /// recorders into one in a *fixed* order (the campaign engine uses
    /// scenario index order) yields byte-identical exports regardless of
    /// thread count or completion order. No-op when either side is a
    /// no-op recorder or both handles share the same state.
    pub fn merge_from(&self, other: &Recorder) {
        let (Some(ours), Some(theirs)) = (&self.0, &other.0) else {
            return;
        };
        if Arc::ptr_eq(ours, theirs) {
            return;
        }
        ours.registry.merge_from(&theirs.registry);
        for event in theirs.journal.snapshot() {
            ours.journal.push(event);
        }
        ours.clock.advance_to_ns(theirs.clock.now_ns());
    }

    /// Snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        self.0
            .as_ref()
            .map_or_else(Vec::new, |i| i.registry.snapshot())
    }

    /// Snapshot of the journal in arrival order.
    pub fn journal_events(&self) -> Vec<Event> {
        self.0
            .as_ref()
            .map_or_else(Vec::new, |i| i.journal.snapshot())
    }

    /// Number of journal events evicted so far.
    pub fn journal_dropped(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.journal.dropped())
    }

    /// Renders the current metrics as Prometheus text exposition.
    /// Empty string for a no-op recorder.
    pub fn export_prometheus(&self) -> String {
        match &self.0 {
            None => String::new(),
            Some(_) => export::to_prometheus(&self.snapshot()),
        }
    }

    /// Renders the journal followed by a metric snapshot as JSONL.
    /// Empty string for a no-op recorder.
    pub fn export_jsonl(&self) -> String {
        match &self.0 {
            None => String::new(),
            Some(_) => export::to_jsonl(&self.journal_events(), &self.snapshot()),
        }
    }
}

/// RAII span guard returned by [`Recorder::span`].
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span(Option<(Arc<Inner>, &'static str, u64)>);

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((inner, name, start_ns)) = self.0.take() {
            let end_ns = inner.clock.now_ns();
            let secs = end_ns.saturating_sub(start_ns) as f64 / 1e9;
            inner.registry.observe(seconds_name(name), secs);
        }
    }
}

/// Maps a span name to its leaked `<name>_seconds` histogram key.
/// Leaking is bounded by the number of distinct span names (a handful
/// of static call sites), and buys `&'static str` keys on the hot path.
fn seconds_name(name: &'static str) -> &'static str {
    static CACHE: OnceLock<Mutex<BTreeMap<&'static str, &'static str>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut g = cache.lock().unwrap();
    g.entry(name)
        .or_insert_with(|| Box::leak(format!("{name}_seconds").into_boxed_str()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricKind;

    #[test]
    fn noop_recorder_discards_everything() {
        let r = Recorder::noop();
        r.counter_inc("c_total");
        r.gauge_set("g", 1.0);
        r.observe("h", 2.0);
        r.event("e", &[]);
        drop(r.span("s"));
        assert!(!r.enabled());
        assert!(r.snapshot().is_empty());
        assert!(r.journal_events().is_empty());
        assert!(r.export_prometheus().is_empty());
        assert!(r.export_jsonl().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let r = Recorder::manual();
        let r2 = r.clone();
        r.counter_add("shared_total", 2);
        r2.counter_add("shared_total", 3);
        assert_eq!(r.counter_value("shared_total"), 5);
    }

    #[test]
    fn span_observes_elapsed_simulated_time() {
        let r = Recorder::manual();
        r.set_time_s(10.0);
        let span = r.span("perq_test_work");
        r.set_time_s(12.5);
        drop(span);
        let snap = r.snapshot();
        let h = snap
            .iter()
            .find(|m| m.name == "perq_test_work_seconds")
            .expect("span histogram");
        match &h.kind {
            MetricKind::Histogram(s) => {
                assert_eq!(s.count, 1);
                assert!((s.sum - 2.5).abs() < 1e-9, "sum = {}", s.sum);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn merge_folds_metrics_journal_and_clock() {
        let worker = |t: f64, c: u64| {
            let r = Recorder::manual();
            r.set_time_s(t);
            r.counter_add("perq_test_steps_total", c);
            r.gauge_set("perq_test_power_w", t * 100.0);
            r.observe("perq_test_latency", t);
            r.event("perq_test_done", &[("n", FieldValue::U64(c))]);
            r
        };
        let merged = Recorder::manual();
        merged.merge_from(&worker(1.0, 2));
        merged.merge_from(&worker(3.0, 5));
        assert_eq!(merged.counter_value("perq_test_steps_total"), 7);
        let evs = merged.journal_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].t_ns, 1_000_000_000);
        assert_eq!(evs[1].t_ns, 3_000_000_000);
        assert_eq!(merged.now_ns(), 3_000_000_000, "clock ratchets to max");

        // Merging in a fixed order is deterministic byte-for-byte.
        let again = Recorder::manual();
        again.merge_from(&worker(1.0, 2));
        again.merge_from(&worker(3.0, 5));
        assert_eq!(merged.export_prometheus(), again.export_prometheus());
        assert_eq!(merged.export_jsonl(), again.export_jsonl());

        // No-op endpoints and self-merges change nothing.
        merged.merge_from(&Recorder::noop());
        Recorder::noop().merge_from(&merged);
        merged.merge_from(&merged.clone());
        assert_eq!(merged.counter_value("perq_test_steps_total"), 7);
    }

    #[test]
    fn events_are_stamped_with_manual_time() {
        let r = Recorder::manual();
        r.set_time_s(3.0);
        r.event("perq_test_fault", &[("node", FieldValue::U64(2))]);
        let evs = r.journal_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].t_ns, 3_000_000_000);
        assert_eq!(evs[0].name, "perq_test_fault");
    }
}
