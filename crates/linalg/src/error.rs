use std::fmt;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand dimensions are incompatible for the requested operation.
    DimMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Dimensions of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Actual dimensions as `(rows, cols)`.
        dims: (usize, usize),
    },
    /// Cholesky factorization encountered a non-positive pivot: the matrix
    /// is not (numerically) symmetric positive definite.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// Value of the failing pivot.
        value: f64,
    },
    /// LU or QR factorization encountered a (numerically) singular matrix.
    Singular {
        /// Index of the failing pivot/column.
        pivot: usize,
    },
    /// A least-squares problem had fewer rows than columns.
    Underdetermined {
        /// Number of rows (observations).
        rows: usize,
        /// Number of columns (unknowns).
        cols: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { dims } => {
                write!(f, "matrix must be square, got {}x{}", dims.0, dims.1)
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} has value {value:.3e}"
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is numerically singular at pivot {pivot}")
            }
            LinalgError::Underdetermined { rows, cols } => write!(
                f,
                "least-squares problem is underdetermined: {rows} rows < {cols} cols"
            ),
        }
    }
}

impl std::error::Error for LinalgError {}
