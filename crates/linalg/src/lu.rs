use crate::{LinalgError, Matrix, Result};

/// LU factorization with partial pivoting, `P A = L U`.
///
/// Used for general (possibly non-symmetric) square systems: converting an
/// identified ARX polynomial to a state-space DC gain requires solving with
/// `(I - A)`, which is square but not SPD.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined storage: `U` on and above the diagonal, unit-lower `L` below.
    lu: Matrix,
    /// Row permutation: row `i` of the factored matrix is row `perm[i]` of
    /// the original.
    perm: Vec<usize>,
    /// +1.0 or -1.0 depending on permutation parity (for determinants).
    sign: f64,
}

/// Pivot threshold below which a matrix is declared numerically singular.
const SINGULAR_TOL: f64 = 1e-13;

impl Lu {
    /// Factors a square matrix with partial (row) pivoting.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                dims: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Find pivot row.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < SINGULAR_TOL {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let ukj = lu[(k, j)];
                        lu[(i, j)] -= m * ukj;
                    }
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimMismatch {
                op: "lu solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then forward substitution with unit-lower L.
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let row = self.lu.row(i);
            let mut sum = y[i];
            for k in 0..i {
                sum -= row[k] * y[k];
            }
            y[i] = sum;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= row[k] * y[k];
            }
            y[i] = sum / row[i];
        }
        Ok(y)
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.lu.rows();
        if b.rows() != n {
            return Err(LinalgError::DimMismatch {
                op: "lu solve_matrix",
                lhs: (n, n),
                rhs: (b.rows(), b.cols()),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        let mut rhs = vec![0.0; n];
        for j in 0..b.cols() {
            for (r, v) in rhs.iter_mut().zip(b.col_iter(j)) {
                *r = v;
            }
            let col = self.solve(&rhs)?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Computes `A⁻¹`.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.lu.rows()))
    }

    /// Determinant of `A`.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.lu.rows() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_needs_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]).unwrap();
        let x = Lu::factor(&a).unwrap().solve(&[2.0, 3.0]).unwrap();
        // x = [2, 1].
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_random_round_trip() {
        let a = Matrix::from_rows(&[
            &[2.0, -1.0, 0.0, 3.0],
            &[1.0, 5.0, -2.0, 1.0],
            &[0.0, 2.0, 4.0, -1.0],
            &[3.0, 1.0, 1.0, 6.0],
        ])
        .unwrap();
        let x_true = [1.0, 2.0, -3.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = Lu::factor(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-9, "{x:?}");
        }
    }

    #[test]
    fn det_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!((Lu::factor(&a).unwrap().det() + 2.0).abs() < 1e-12);
        let i = Matrix::identity(5);
        assert!((Lu::factor(&i).unwrap().det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_round_trip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let id = a.matmul(&inv).unwrap();
        assert!(id.sub(&Matrix::identity(2)).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        assert!(matches!(
            Lu::factor(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
