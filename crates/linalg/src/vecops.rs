//! Free functions over `&[f64]` slices.
//!
//! The iterative QP solvers (projected gradient, ADMM) spend their time in
//! these primitives; they are written as simple tight loops the compiler
//! auto-vectorizes.

/// Dot product `xᵀ y`. Panics in debug builds on length mismatch.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y.iter()).map(|(&a, &b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm `‖x‖∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// In-place `y += a * x`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

/// Elementwise difference `x − y` into a new vector.
#[inline]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y.iter()).map(|(&a, &b)| a - b).collect()
}

/// Elementwise sum `x + y` into a new vector.
#[inline]
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y.iter()).map(|(&a, &b)| a + b).collect()
}

/// Scales a vector by `a` into a new vector.
#[inline]
pub fn scale(a: f64, x: &[f64]) -> Vec<f64> {
    x.iter().map(|&v| a * v).collect()
}

/// Clamps every component into `[lo[i], hi[i]]`.
#[inline]
pub fn clamp_box(x: &mut [f64], lo: &[f64], hi: &[f64]) {
    debug_assert_eq!(x.len(), lo.len());
    debug_assert_eq!(x.len(), hi.len());
    for ((xi, &l), &h) in x.iter_mut().zip(lo.iter()).zip(hi.iter()) {
        *xi = xi.max(l).min(h);
    }
}

/// Maximum absolute componentwise difference between two vectors.
#[inline]
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y.iter())
        .fold(0.0_f64, |m, (&a, &b)| m.max((a - b).abs()))
}

/// Arithmetic mean; 0.0 for an empty slice.
#[inline]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn axpy_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn clamp_box_projects() {
        let mut x = vec![-1.0, 0.5, 3.0];
        clamp_box(&mut x, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn add_sub_scale() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(scale(2.0, &[1.0, -1.0]), vec![2.0, -2.0]);
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 5.0]), 1.0);
    }
}
