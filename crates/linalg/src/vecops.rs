//! Free functions over scalar slices.
//!
//! The iterative QP solvers (projected gradient, ADMM) spend their time in
//! these primitives; they are written as simple tight loops the compiler
//! auto-vectorizes. All functions are generic over [`crate::Scalar`]
//! (`f64`/`f32`); at `S = f64` they perform exactly the operations — in
//! exactly the order — of the original `f64`-only implementations, so
//! existing callers see bit-identical results.

use crate::scalar::Scalar;

/// Dot product `xᵀ y`. Panics in debug builds on length mismatch.
#[inline]
pub fn dot<S: Scalar>(x: &[S], y: &[S]) -> S {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y.iter())
        .fold(S::ZERO, |acc, (&a, &b)| acc + a * b)
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2<S: Scalar>(x: &[S]) -> S {
    dot(x, x).sqrt()
}

/// Infinity norm `‖x‖∞`.
#[inline]
pub fn norm_inf<S: Scalar>(x: &[S]) -> S {
    x.iter().fold(S::ZERO, |m, &v| m.max(v.abs()))
}

/// In-place `y += a * x`.
#[inline]
pub fn axpy<S: Scalar>(a: S, x: &[S], y: &mut [S]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

/// Elementwise difference `x − y` into a new vector.
#[inline]
pub fn sub<S: Scalar>(x: &[S], y: &[S]) -> Vec<S> {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y.iter()).map(|(&a, &b)| a - b).collect()
}

/// Elementwise sum `x + y` into a new vector.
#[inline]
pub fn add<S: Scalar>(x: &[S], y: &[S]) -> Vec<S> {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y.iter()).map(|(&a, &b)| a + b).collect()
}

/// Scales a vector by `a` into a new vector.
#[inline]
pub fn scale<S: Scalar>(a: S, x: &[S]) -> Vec<S> {
    x.iter().map(|&v| a * v).collect()
}

/// Clamps every component into `[lo[i], hi[i]]`.
#[inline]
pub fn clamp_box<S: Scalar>(x: &mut [S], lo: &[S], hi: &[S]) {
    debug_assert_eq!(x.len(), lo.len());
    debug_assert_eq!(x.len(), hi.len());
    for ((xi, &l), &h) in x.iter_mut().zip(lo.iter()).zip(hi.iter()) {
        *xi = (*xi).max(l).min(h);
    }
}

/// Maximum absolute componentwise difference between two vectors.
#[inline]
pub fn max_abs_diff<S: Scalar>(x: &[S], y: &[S]) -> S {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y.iter())
        .fold(S::ZERO, |m, (&a, &b)| m.max((a - b).abs()))
}

/// Arithmetic mean; 0.0 for an empty slice.
#[inline]
pub fn mean<S: Scalar>(x: &[S]) -> S {
    if x.is_empty() {
        S::ZERO
    } else {
        x.iter().fold(S::ZERO, |acc, &v| acc + v) / S::from_f64(x.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn axpy_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn clamp_box_projects() {
        let mut x = vec![-1.0, 0.5, 3.0];
        clamp_box(&mut x, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean::<f64>(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn add_sub_scale() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(scale(2.0, &[1.0, -1.0]), vec![2.0, -2.0]);
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 5.0]), 1.0);
    }

    #[test]
    fn f32_instantiation_matches_f64_semantics() {
        let x = [3.0_f32, 4.0];
        assert_eq!(dot(&x, &x), 25.0_f32);
        assert_eq!(norm2(&x), 5.0_f32);
        let mut y = vec![1.0_f32, 1.0];
        axpy(2.0_f32, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0_f32, -1.0]);
    }
}
