use crate::{LinalgError, Matrix, Result};

/// Householder QR factorization `A = Q R` for `m ≥ n` matrices.
///
/// QR is the numerically robust way to solve the (often ill-conditioned)
/// least-squares problems that arise when fitting ARX models to noisy
/// power-cap/IPS measurements: the regressor columns (lagged outputs and
/// inputs) can be strongly correlated, and forming the normal equations
/// would square the condition number.
#[derive(Debug, Clone)]
pub struct Qr {
    /// `R` in the upper triangle; Householder vectors below the diagonal.
    qr: Matrix,
    /// Householder scalar coefficients (`beta` values).
    betas: Vec<f64>,
}

/// Diagonal threshold below which `R` is declared rank deficient.
const RANK_TOL: f64 = 1e-12;

impl Qr {
    /// Factors an `m`-by-`n` matrix with `m ≥ n`.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(LinalgError::Underdetermined { rows: m, cols: n });
        }
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];

        for k in 0..n {
            // Build the Householder reflector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // Normalize so the first component of v is 1; store the tail in
            // the subdiagonal of column k.
            for i in (k + 1)..m {
                let v = qr[(i, k)] / v0;
                qr[(i, k)] = v;
            }
            betas[k] = -v0 / alpha;
            qr[(k, k)] = alpha;

            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut dot = qr[(k, j)];
                for i in (k + 1)..m {
                    dot += qr[(i, k)] * qr[(i, j)];
                }
                let scaled = betas[k] * dot;
                qr[(k, j)] -= scaled;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= scaled * vik;
                }
            }
        }
        Ok(Qr { qr, betas })
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// Returns [`LinalgError::Singular`] when `A` is (numerically) rank
    /// deficient.
    pub fn solve_lstsq(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        if b.len() != m {
            return Err(LinalgError::DimMismatch {
                op: "qr solve_lstsq",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply Qᵀ to b.
        let mut y = b.to_vec();
        for k in 0..n {
            if self.betas[k] == 0.0 {
                continue;
            }
            let mut dot = y[k];
            for (i, &yi) in y.iter().enumerate().skip(k + 1) {
                dot += self.qr[(i, k)] * yi;
            }
            let scaled = self.betas[k] * dot;
            y[k] -= scaled;
            for (i, yi) in y.iter_mut().enumerate().skip(k + 1) {
                *yi -= scaled * self.qr[(i, k)];
            }
        }
        // Back substitution with R.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let rii = self.qr[(i, i)];
            if rii.abs() < RANK_TOL {
                return Err(LinalgError::Singular { pivot: i });
            }
            let mut sum = y[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                sum -= self.qr[(i, j)] * xj;
            }
            x[i] = sum / rii;
        }
        Ok(x)
    }

    /// Returns the upper-triangular factor `R` (n-by-n).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }
}

/// One-shot least squares: `argmin_x ‖A x − b‖₂` via Householder QR.
///
/// This is the routine the sysid crate calls to fit ARX coefficients.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::factor(a)?.solve_lstsq(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_system_recovered() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let x_true = [2.0, -1.0];
        let b = a.matvec(&x_true).unwrap();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        // Overdetermined inconsistent system: the optimality condition is
        // Aᵀ(Ax − b) = 0.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0], &[1.0, 4.0]]).unwrap();
        let b = [6.0, 5.0, 7.0, 10.0];
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = ax.iter().zip(b.iter()).map(|(p, q)| p - q).collect();
        let grad = a.tmatvec(&r).unwrap();
        for g in grad {
            assert!(g.abs() < 1e-9, "gradient not zero: {g}");
        }
    }

    #[test]
    fn known_regression_line() {
        // y = 1 + 2 t fitted through exact points.
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |i, j| if j == 0 { 1.0 } else { ts[i] });
        let b: Vec<f64> = ts.iter().map(|t| 1.0 + 2.0 * t).collect();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn r_factor_reproduces_gram() {
        // RᵀR must equal AᵀA.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let r = Qr::factor(&a).unwrap().r();
        let rtr = r.transpose().matmul(&r).unwrap();
        let gram = a.gram();
        assert!(rtr.sub(&gram).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn underdetermined_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Qr::factor(&a),
            Err(LinalgError::Underdetermined { .. })
        ));
    }

    #[test]
    fn rank_deficient_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert!(matches!(
            qr.solve_lstsq(&[1.0, 2.0, 3.0]),
            Err(LinalgError::Singular { .. })
        ));
    }
}
