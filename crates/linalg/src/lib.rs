//! Dense linear algebra kernels for the PERQ power-management stack.
//!
//! PERQ's model-predictive controller, system-identification pipeline, and
//! quadratic-programming solvers all operate on small-to-medium dense
//! matrices (state dimension 3, horizon ≤ 8, a few hundred concurrent jobs).
//! This crate provides exactly the kernels those layers need, implemented
//! from scratch with no external dependencies:
//!
//! - [`Matrix`]: a row-major dense matrix with the usual arithmetic.
//! - [`Cholesky`]: factorization of symmetric positive-definite systems,
//!   used to solve the MPC KKT systems.
//! - [`Lu`]: LU with partial pivoting for general square systems,
//!   determinants and inverses.
//! - [`Qr`]: Householder QR for least-squares problems, the workhorse of
//!   ARX system identification.
//! - [`lstsq`]: convenience least-squares driver.
//! - [`vecops`]: free functions over scalar slices (dot products, norms,
//!   scaled additions) used by the iterative QP solvers — generic over
//!   [`Scalar`] (`f64`/`f32`) for the precision-profiled solve paths.
//!
//! # Example
//!
//! ```
//! use perq_linalg::{Matrix, Cholesky};
//!
//! // Solve the SPD system A x = b.
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
//! let chol = Cholesky::factor(&a).unwrap();
//! let x = chol.solve(&[1.0, 2.0]).unwrap();
//! let r = a.matvec(&x).unwrap();
//! assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
//! ```

mod chol;
mod error;
mod lu;
mod matrix;
mod qr;
pub mod scalar;
pub mod vecops;

pub use chol::Cholesky;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::{lstsq, Qr};
pub use scalar::Scalar;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
