use crate::{LinalgError, Matrix, Result};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
///
/// The MPC controller's Hessian `Q = Hᵀ W_T H + Dᵀ W_ΔP D` is symmetric
/// positive definite whenever the ΔP weight is strictly positive, so
/// Cholesky is the natural solver for both the unconstrained Newton step of
/// the QP solvers and the equality-constrained KKT systems.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (entries above the diagonal are zero).
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the input is the
    /// caller's responsibility (the PERQ stack always builds its SPD
    /// matrices as Gram products, which are exactly symmetric).
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if a pivot is not
    /// strictly positive.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                dims: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite {
                            pivot: i,
                            value: sum,
                        });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the stored factorization.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = vec![0.0; b.len()];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` into a caller-provided buffer (no allocation).
    ///
    /// `b` and `out` must both have length `n`; the substitution runs
    /// entirely in `out`, so repeated solves (e.g. one per ADMM iteration)
    /// reuse the same buffer.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) -> Result<()> {
        let n = self.l.rows();
        if b.len() != n || out.len() != n {
            return Err(LinalgError::DimMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        out.copy_from_slice(b);
        // Forward substitution: L y = b.
        for i in 0..n {
            let row = self.l.row(i);
            let mut sum = out[i];
            for k in 0..i {
                sum -= row[k] * out[k];
            }
            out[i] = sum / row[i];
        }
        // Back substitution: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut sum = out[i];
            for (k, &outk) in out.iter().enumerate().skip(i + 1) {
                sum -= self.l[(k, i)] * outk;
            }
            out[i] = sum / self.l[(i, i)];
        }
        Ok(())
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.l.rows();
        if b.rows() != n {
            return Err(LinalgError::DimMismatch {
                op: "cholesky solve_matrix",
                lhs: (n, n),
                rhs: (b.rows(), b.cols()),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        let mut rhs = vec![0.0; n];
        let mut col = vec![0.0; n];
        for j in 0..b.cols() {
            for (r, v) in rhs.iter_mut().zip(b.col_iter(j)) {
                *r = v;
            }
            self.solve_into(&rhs, &mut col)?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Computes `A⁻¹` (use sparingly; prefer [`Cholesky::solve`]).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.l.rows()))
    }

    /// Determinant of `A`, computed as the squared product of the diagonal
    /// of `L`.
    pub fn det(&self) -> f64 {
        let mut d = 1.0;
        for i in 0..self.l.rows() {
            d *= self.l[(i, i)];
        }
        d * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
        .unwrap()
    }

    #[test]
    fn factor_known_matrix() {
        // Classic example with exact factor L = [[2,0,0],[6,1,0],[-8,5,3]].
        let c = Cholesky::factor(&spd3()).unwrap();
        let l = c.l();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 1.0).abs() < 1e-12);
        assert!((l[(2, 0)] + 8.0).abs() < 1e-12);
        assert!((l[(2, 1)] - 5.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_round_trip() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let rebuilt = c.l().matmul(&c.l().transpose()).unwrap();
        assert!(rebuilt.sub(&a).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn solve_recovers_solution() {
        let a = spd3();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn det_matches_known_value() {
        // det = (2*1*3)^2 = 36.
        let c = Cholesky::factor(&spd3()).unwrap();
        assert!((c.det() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let id = a.matmul(&inv).unwrap();
        assert!(id.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
