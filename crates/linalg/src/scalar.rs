//! Floating-point scalar abstraction for the precision-profiled solvers.
//!
//! The QP stack iterates in either `f64` (the reference precision) or
//! `f32` (the bandwidth-halving profile used by the SoA SIMD kernels).
//! This trait captures exactly the operations those loops need, plus the
//! handful of precision-dependent tuning constants that cannot be shared
//! verbatim: the norm underflow floor (`1e-300` would flush to zero in
//! `f32`) and the projection bisection depth (80 halvings resolve far
//! below `f32`'s 24-bit mantissa; 40 reach its round-off floor with
//! margin).
//!
//! The `f64` implementation is a transparent passthrough: generic code
//! instantiated at `S = f64` performs bit-identical operations to the
//! pre-generic scalar code, which is what keeps the default solver
//! profile byte-reproducible.

use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating-point scalar the iterative solvers can run on.
pub trait Scalar:
    Copy
    + PartialOrd
    + PartialEq
    + Default
    + Debug
    + Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Smallest positive normal value.
    const MIN_POSITIVE: Self;
    /// Machine epsilon.
    const EPSILON: Self;
    /// Positive infinity.
    const INFINITY: Self;
    /// Norm floor below which power iterations treat a vector as zero
    /// (precision-dependent: `1e-300` underflows in `f32`).
    const NORM_FLOOR: Self;
    /// Bisection depth for the exact box∩budget projection. Each halving
    /// adds one bit of the budget multiplier; the depth is chosen so the
    /// multiplier is resolved past the precision's round-off floor.
    const BISECT_ITERS: usize;
    /// Whether FISTA's adaptive restart compares objective values
    /// (`true`, the reference `f64` discipline — kept byte-identical) or
    /// uses the gradient-mapping sign test (`false`, the reduced-precision
    /// discipline: one fused O(n) pass instead of a full objective
    /// evaluation per iteration, and no dependence on objective increments
    /// that sit below one ulp of the narrow type).
    const OBJECTIVE_RESTART: bool;
    /// Short lowercase name ("f64" / "f32") for labels and reports.
    const NAME: &'static str;

    /// Converts from `f64` (rounding for narrower scalars).
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64` (exact for `f64` and `f32`).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// IEEE maximum (propagates the other operand on NaN, like
    /// `f64::max`).
    fn max(self, other: Self) -> Self;
    /// IEEE minimum.
    fn min(self, other: Self) -> Self;
    /// Whether the value is finite.
    fn is_finite(self) -> bool;
    /// Whether the value is NaN.
    fn is_nan(self) -> bool;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const MIN_POSITIVE: Self = f64::MIN_POSITIVE;
    const EPSILON: Self = f64::EPSILON;
    const INFINITY: Self = f64::INFINITY;
    const NORM_FLOOR: Self = 1e-300;
    const BISECT_ITERS: usize = 80;
    const OBJECTIVE_RESTART: bool = true;
    const NAME: &'static str = "f64";

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline(always)]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const MIN_POSITIVE: Self = f32::MIN_POSITIVE;
    const EPSILON: Self = f32::EPSILON;
    const INFINITY: Self = f32::INFINITY;
    const NORM_FLOOR: Self = 1e-30;
    const BISECT_ITERS: usize = 40;
    const OBJECTIVE_RESTART: bool = false;
    const NAME: &'static str = "f32";

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline(always)]
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<S: Scalar>() {
        assert_eq!(S::ZERO.to_f64(), 0.0);
        assert_eq!(S::ONE.to_f64(), 1.0);
        assert_eq!(S::from_f64(2.0) * S::from_f64(3.0), S::from_f64(6.0));
        assert!(S::from_f64(-4.0).abs() == S::from_f64(4.0));
        assert!(S::from_f64(9.0).sqrt() == S::from_f64(3.0));
        assert!(S::NORM_FLOOR > S::ZERO, "norm floor must not underflow");
        assert!(S::BISECT_ITERS >= 32);
    }

    #[test]
    fn both_scalars_roundtrip() {
        roundtrip::<f64>();
        roundtrip::<f32>();
    }

    #[test]
    fn f32_floor_is_representable() {
        // The whole point of the per-scalar floor: 1e-300 would flush to
        // zero in f32 and break every `max(floor)` guard.
        assert_eq!(f64::NORM_FLOOR, 1e-300);
        assert!(f32::NORM_FLOOR > 0.0_f32);
        assert!(f32::NORM_FLOOR.is_normal());
    }
}
