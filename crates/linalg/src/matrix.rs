use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64`.
///
/// This is the shared currency of the PERQ stack: MPC prediction matrices,
/// ARX regressor matrices, and QP Hessians are all `Matrix` values. The
/// representation is a flat `Vec<f64>` in row-major order, so row traversal
/// is cache-friendly, which matches the access pattern of every kernel in
/// this crate.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given dimensions.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// Returns an error if the rows have inconsistent lengths or the input
    /// is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        if r == 0 || c == 0 {
            return Err(LinalgError::DimMismatch {
                op: "from_rows (empty)",
                lhs: (r, c),
                rhs: (0, 0),
            });
        }
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(LinalgError::DimMismatch {
                    op: "from_rows (ragged)",
                    lhs: (r, c),
                    rhs: (1, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a diagonal matrix from a slice of diagonal entries.
    pub fn diag(d: &[f64]) -> Self {
        let mut m = Matrix::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Creates a column vector (n-by-1 matrix) from a slice.
    pub fn col_vec(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Borrows row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// Allocates; hot loops should iterate with [`Matrix::col_iter`]
    /// instead.
    pub fn col(&self, j: usize) -> Vec<f64> {
        self.col_iter(j).collect()
    }

    /// Iterates over column `j` without allocating.
    #[inline]
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = f64> + '_ {
        debug_assert!(j < self.cols);
        self.data[j..].iter().step_by(self.cols).copied()
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            // Row j of the transpose is column j of self; writing the
            // destination contiguously keeps the output access row-major.
            for (dst, v) in t.row_mut(j).iter_mut().zip(self.col_iter(j)) {
                *dst = v;
            }
        }
        t
    }

    /// Matrix-matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps all three accesses row-major.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out)?;
        Ok(out)
    }

    /// Matrix-vector product `self * x` written into a caller-provided
    /// buffer, so hot loops (QP iterations, power iterations) do not
    /// allocate.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if self.cols != x.len() || self.rows != out.len() {
            return Err(LinalgError::DimMismatch {
                op: "matvec_into",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), out.len()),
            });
        }
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.row(i).iter().zip(x.iter()).map(|(&a, &b)| a * b).sum();
        }
        Ok(())
    }

    /// Transposed matrix-vector product `selfᵀ * x`.
    pub fn tmatvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.cols];
        self.tmatvec_into(x, &mut out)?;
        Ok(out)
    }

    /// Transposed matrix-vector product `selfᵀ * x` into a caller-provided
    /// buffer (see [`Matrix::matvec_into`]).
    pub fn tmatvec_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if self.rows != x.len() || self.cols != out.len() {
            return Err(LinalgError::DimMismatch {
                op: "tmatvec_into",
                lhs: (self.rows, self.cols),
                rhs: (x.len(), out.len()),
            });
        }
        out.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i).iter()) {
                *o += a * xi;
            }
        }
        Ok(())
    }

    /// Elementwise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v * s).collect(),
        }
    }

    /// In-place `self += s * other`.
    pub fn axpy(&mut self, s: f64, other: &Matrix) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimMismatch {
                op: "axpy",
                lhs: (self.rows, self.cols),
                rhs: (other.rows, other.cols),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += s * b;
        }
        Ok(())
    }

    /// Computes `selfᵀ * self`, the Gram matrix (always symmetric PSD).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let r = self.row(i);
            for j in 0..self.cols {
                let rj = r[j];
                if rj == 0.0 {
                    continue;
                }
                let grow = g.row_mut(j);
                for (gk, &rk) in grow.iter_mut().zip(r.iter()) {
                    *gk += rj * rk;
                }
            }
        }
        g
    }

    /// Writes `other` into `self` starting at position `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, other: &Matrix) -> Result<()> {
        if r0 + other.rows > self.rows || c0 + other.cols > self.cols {
            return Err(LinalgError::DimMismatch {
                op: "set_block",
                lhs: (self.rows, self.cols),
                rhs: (r0 + other.rows, c0 + other.cols),
            });
        }
        for i in 0..other.rows {
            let dst = &mut self.row_mut(r0 + i)[c0..c0 + other.cols];
            dst.copy_from_slice(other.row(i));
        }
        Ok(())
    }

    /// Frobenius norm, `sqrt(Σ aᵢⱼ²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Returns `true` if the matrix is symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimMismatch {
                op,
                lhs: (self.rows, self.cols),
                rhs: (other.rows, other.cols),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.5e}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]).unwrap();
        assert_eq!(c, expected);
    }

    #[test]
    fn matmul_dim_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(LinalgError::DimMismatch { .. })));
    }

    #[test]
    fn matvec_and_tmatvec_agree_with_transpose() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[3.0, 4.0, -1.0]]).unwrap();
        let x = [2.0, -1.0];
        let via_t = a.transpose().matvec(&x).unwrap();
        let direct = a.tmatvec(&x).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!((g.sub(&explicit).unwrap()).max_abs() < 1e-12);
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn set_block_places_submatrix() {
        let mut m = Matrix::zeros(4, 4);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        m.set_block(1, 2, &b).unwrap();
        assert_eq!(m[(1, 2)], 1.0);
        assert_eq!(m[(2, 3)], 4.0);
        assert_eq!(m[(0, 0)], 0.0);
        assert!(m.set_block(3, 3, &b).is_err());
    }

    #[test]
    fn diag_and_col_vec() {
        let d = Matrix::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        let v = Matrix::col_vec(&[5.0, 6.0]);
        assert_eq!((v.rows(), v.cols()), (2, 1));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let r: std::result::Result<_, _> = Matrix::from_rows(&[&[1.0, 2.0], &[3.0][..]]);
        assert!(r.is_err());
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(0, 1)], 2.0);
    }
}
