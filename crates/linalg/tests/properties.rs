//! Property-based tests for the linear-algebra kernels.

use perq_linalg::{lstsq, Cholesky, Lu, Matrix};
use proptest::prelude::*;

/// Strategy: a random well-conditioned square matrix built as `R + n·I`,
/// which is diagonally dominated and therefore invertible.
fn invertible_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data).unwrap();
        for i in 0..n {
            m[(i, i)] += n as f64 + 1.0;
        }
        m
    })
}

/// Strategy: a random SPD matrix built as `BᵀB + εI`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let b = Matrix::from_vec(n, n, data).unwrap();
        let mut g = b.gram();
        for i in 0..n {
            g[(i, i)] += 0.5;
        }
        g
    })
}

proptest! {
    #[test]
    fn cholesky_solve_round_trip(a in spd_matrix(5), x in prop::collection::vec(-10.0f64..10.0, 5)) {
        let b = a.matvec(&x).unwrap();
        let x_hat = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x_hat.iter().zip(x.iter()) {
            prop_assert!((xi - ti).abs() < 1e-6, "got {xi}, want {ti}");
        }
    }

    #[test]
    fn cholesky_factor_reconstructs(a in spd_matrix(4)) {
        let c = Cholesky::factor(&a).unwrap();
        let rebuilt = c.l().matmul(&c.l().transpose()).unwrap();
        prop_assert!(rebuilt.sub(&a).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn lu_solve_round_trip(a in invertible_matrix(6), x in prop::collection::vec(-10.0f64..10.0, 6)) {
        let b = a.matvec(&x).unwrap();
        let x_hat = Lu::factor(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x_hat.iter().zip(x.iter()) {
            prop_assert!((xi - ti).abs() < 1e-6);
        }
    }

    #[test]
    fn lu_det_of_product_is_product_of_dets(a in invertible_matrix(4), b in invertible_matrix(4)) {
        let da = Lu::factor(&a).unwrap().det();
        let db = Lu::factor(&b).unwrap().det();
        let dab = Lu::factor(&a.matmul(&b).unwrap()).unwrap().det();
        let scale = da.abs().max(db.abs()).max(1.0);
        prop_assert!((dab - da * db).abs() / (scale * scale) < 1e-6);
    }

    #[test]
    fn lstsq_gradient_vanishes(
        data in prop::collection::vec(-1.0f64..1.0, 8 * 3),
        b in prop::collection::vec(-5.0f64..5.0, 8),
    ) {
        let mut a = Matrix::from_vec(8, 3, data).unwrap();
        // Ensure full column rank by salting the top 3x3 block.
        for i in 0..3 {
            a[(i, i)] += 4.0;
        }
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = ax.iter().zip(b.iter()).map(|(p, q)| p - q).collect();
        let grad = a.tmatvec(&r).unwrap();
        for g in grad {
            prop_assert!(g.abs() < 1e-7, "KKT residual {g}");
        }
    }

    #[test]
    fn transpose_preserves_frobenius(data in prop::collection::vec(-10.0f64..10.0, 12)) {
        let a = Matrix::from_vec(3, 4, data).unwrap();
        let t = a.transpose();
        prop_assert!((a.frobenius_norm() - t.frobenius_norm()).abs() < 1e-12);
    }

    #[test]
    fn matmul_associative(
        d1 in prop::collection::vec(-1.0f64..1.0, 6),
        d2 in prop::collection::vec(-1.0f64..1.0, 6),
        d3 in prop::collection::vec(-1.0f64..1.0, 6),
    ) {
        let a = Matrix::from_vec(2, 3, d1).unwrap();
        let b = Matrix::from_vec(3, 2, d2).unwrap();
        let c = Matrix::from_vec(2, 3, d3).unwrap();
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.sub(&right).unwrap().max_abs() < 1e-10);
    }
}
