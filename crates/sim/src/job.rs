use serde::{Deserialize, Serialize};

/// A job as it appears in the workload trace, before execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique job id (trace order).
    pub id: u64,
    /// Index into the application-profile suite assigned to this job.
    pub app_index: usize,
    /// Number of nodes the job occupies.
    pub size: usize,
    /// Runtime if every node ran at TDP for the whole job, in seconds.
    pub runtime_tdp_s: f64,
    /// User-provided runtime estimate used by the backfilling scheduler,
    /// in seconds ("users typically overestimate runtime", §3).
    pub runtime_estimate_s: f64,
    /// Submission time, in simulation seconds. The default `0.0`
    /// reproduces the paper's saturated queue (every job ready at
    /// `t = 0`); SWF replays with arrivals enabled carry the logged
    /// submit times, rebased so the first job arrives at `t = 0`. Only
    /// honoured when [`crate::ClusterConfig::honor_arrivals`] is set.
    #[serde(default)]
    pub submit_s: f64,
}

impl JobSpec {
    /// Total work in node-seconds at TDP.
    pub fn work_node_seconds(&self) -> f64 {
        self.runtime_tdp_s * self.size as f64
    }
}

/// Why a job left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// Ran to completion.
    Completed,
    /// Crashed mid-run (failure injection).
    Crashed,
    /// Killed by an injected fault (an explicit job-kill event, or a node
    /// loss that took one of the job's nodes away).
    Killed,
    /// Still running when the simulation window closed.
    Unfinished,
}

/// Execution record of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The job's trace entry.
    pub spec: JobSpec,
    /// Application name the job executed.
    pub app_name: String,
    /// Simulation time at which the job started, in seconds.
    pub start_s: f64,
    /// Simulation time at which the job finished (or crashed / window
    /// closed), in seconds.
    pub end_s: f64,
    /// Progress accumulated, in TDP-equivalent seconds.
    pub progress_s: f64,
    /// How the job ended.
    pub outcome: JobOutcome,
}

impl JobRecord {
    /// Wall-clock runtime (start to end), in seconds.
    pub fn runtime_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Slowdown relative to the job's TDP runtime (1.0 = ran as fast as
    /// uncapped hardware would).
    pub fn slowdown(&self) -> f64 {
        self.runtime_s() / self.spec.runtime_tdp_s
    }
}

/// One sampled point of a per-job trace (Fig. 8 / Fig. 12 material).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Simulation time, seconds.
    pub t_s: f64,
    /// Per-node power cap applied during the interval, watts.
    pub cap_w: f64,
    /// Measured job IPS (aggregate over all the job's nodes).
    pub ips: f64,
    /// Average per-node power consumed during the interval, watts.
    pub power_w: f64,
    /// The policy's job-level IPS target, when the policy publishes one
    /// (PERQ does; ad-hoc baselines do not).
    pub target_ips: Option<f64>,
}

/// Full per-interval trace of one job.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JobTrace {
    /// Sampled points in time order.
    pub points: Vec<TracePoint>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            id: 7,
            app_index: 2,
            size: 128,
            runtime_tdp_s: 3600.0,
            runtime_estimate_s: 4800.0,
            submit_s: 0.0,
        }
    }

    #[test]
    fn work_is_runtime_times_size() {
        assert_eq!(spec().work_node_seconds(), 3600.0 * 128.0);
    }

    #[test]
    fn record_runtime_and_slowdown() {
        let r = JobRecord {
            spec: spec(),
            app_name: "CoMD".into(),
            start_s: 100.0,
            end_s: 100.0 + 7200.0,
            progress_s: 3600.0,
            outcome: JobOutcome::Completed,
        };
        assert_eq!(r.runtime_s(), 7200.0);
        assert_eq!(r.slowdown(), 2.0);
    }
}
