use crate::job::{JobOutcome, JobRecord, JobSpec, JobTrace, TracePoint};
use crate::policy::{JobView, PolicyContext, PowerPolicy};
use crate::scheduler::{RunningFootprint, Scheduler};
use crate::trace::SystemModel;
use perq_apps::{AppProfile, BASE_NODE_IPS, IDLE_WATTS, MIN_CAP_WATTS, TDP_WATTS};
use perq_rapl::{CapLimits, PowerCapDevice, SimulatedRapl};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// Static configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Nodes in the over-provisioned system (`N_OP = f · N_WP`).
    pub nodes: usize,
    /// Nodes in the worst-case-provisioned system (`N_WP`); the power
    /// budget is `wp_nodes · tdp_w`.
    pub wp_nodes: usize,
    /// Control decision interval, seconds (paper default: 10 s).
    pub interval_s: f64,
    /// Simulated duration, seconds (paper: one day).
    pub duration_s: f64,
    /// Node TDP, watts.
    pub tdp_w: f64,
    /// Minimum per-node cap, watts.
    pub cap_min_w: f64,
    /// Idle node draw, watts.
    pub idle_w: f64,
    /// Relative standard deviation of IPS measurements.
    pub ips_noise_rel: f64,
    /// Probability that a job's IPS report is lost in a given interval
    /// (failure injection; the policy sees `None`).
    pub ips_dropout_prob: f64,
    /// Per-interval probability that a running job crashes (failure
    /// injection).
    pub crash_prob: f64,
    /// Job ids whose full power/IPS trace should be recorded; `None`
    /// records nothing, and an empty set with `trace_all` records all.
    pub trace_jobs: Vec<u64>,
    /// Record traces for every job (memory heavy; for small runs).
    pub trace_all: bool,
}

impl ClusterConfig {
    /// Standard configuration for a system model at over-provisioning
    /// factor `f`, running for `duration_s` seconds.
    pub fn for_system(system: &SystemModel, f: f64, duration_s: f64) -> Self {
        assert!(f >= 1.0, "over-provisioning factor must be >= 1");
        ClusterConfig {
            nodes: (system.wp_nodes as f64 * f).round() as usize,
            wp_nodes: system.wp_nodes,
            interval_s: 10.0,
            duration_s,
            tdp_w: TDP_WATTS,
            cap_min_w: MIN_CAP_WATTS,
            idle_w: IDLE_WATTS,
            ips_noise_rel: 0.01,
            ips_dropout_prob: 0.0,
            crash_prob: 0.0,
            trace_jobs: Vec::new(),
            trace_all: false,
        }
    }

    /// Total system power budget, watts.
    pub fn budget_w(&self) -> f64 {
        self.wp_nodes as f64 * self.tdp_w
    }

    /// Over-provisioning factor `f = N_OP / N_WP`.
    pub fn over_provisioning_factor(&self) -> f64 {
        self.nodes as f64 / self.wp_nodes as f64
    }

    fn validate(&self) {
        assert!(self.nodes >= 1 && self.wp_nodes >= 1, "need nodes");
        assert!(self.interval_s > 0.0, "interval must be positive");
        assert!(self.duration_s > 0.0, "duration must be positive");
        assert!(
            self.cap_min_w > 0.0 && self.cap_min_w <= self.tdp_w,
            "cap window invalid"
        );
        assert!(
            self.nodes as f64 * self.idle_w <= self.budget_w(),
            "budget cannot even idle the machine: {} nodes x {} W idle > {} W budget",
            self.nodes,
            self.idle_w,
            self.budget_w()
        );
    }
}

/// Per-interval system telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalLog {
    /// Interval start time, seconds.
    pub t_s: f64,
    /// Nodes occupied by running jobs.
    pub busy_nodes: usize,
    /// Running job count.
    pub running_jobs: usize,
    /// Total power drawn (busy consumption + idle draw), watts.
    pub total_power_w: f64,
    /// Sum of assigned caps (busy nodes) + idle draw, watts — the
    /// worst-case draw the caps admit (may exceed the budget when the
    /// policy deliberately over-commits caps on low-draw jobs).
    pub committed_power_w: f64,
    /// Whether *consumed* power exceeded the system budget this interval
    /// — the quantity the paper's constraint bounds.
    pub violation: bool,
}

/// Outcome of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Name of the policy that ran.
    pub policy: String,
    /// Over-provisioning factor of the run.
    pub f: f64,
    /// All job records (completed, crashed, unfinished).
    pub records: Vec<JobRecord>,
    /// Per-interval telemetry.
    pub intervals: Vec<IntervalLog>,
    /// Traces of the requested jobs.
    pub traces: HashMap<u64, JobTrace>,
    /// Number of intervals in which the policy requested more power than
    /// the budget (the simulator scaled the request down).
    pub budget_violations: usize,
    /// Wall-clock time of each policy decision, seconds (Fig. 13 data).
    pub decision_times_s: Vec<f64>,
}

impl SimResult {
    /// Completed-job count — the paper's system-throughput metric.
    pub fn throughput(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome == JobOutcome::Completed)
            .count()
    }

    /// Records of completed jobs only.
    pub fn completed(&self) -> impl Iterator<Item = &JobRecord> {
        self.records
            .iter()
            .filter(|r| r.outcome == JobOutcome::Completed)
    }
}

/// A running job's live state.
struct RunningJob {
    spec: JobSpec,
    app: AppProfile,
    start_s: f64,
    progress_s: f64,
    cap_w: f64,
    rapl: SimulatedRapl,
    last_ips: Option<f64>,
    last_power_w: Option<f64>,
    is_new: bool,
}

/// The cluster simulator. See the crate docs for the model.
pub struct Cluster {
    config: ClusterConfig,
    apps: Vec<AppProfile>,
    scheduler: Scheduler,
    running: Vec<RunningJob>,
    records: Vec<JobRecord>,
    traces: HashMap<u64, JobTrace>,
    time_s: f64,
    rng: StdRng,
    ips_noise: Option<Normal<f64>>,
}

impl Cluster {
    /// Creates a simulator over a job trace, using the ECP application
    /// suite as the ground-truth behaviours.
    pub fn new(config: ClusterConfig, jobs: Vec<JobSpec>, seed: u64) -> Self {
        Self::with_apps(config, jobs, perq_apps::ecp_suite(), seed)
    }

    /// Creates a simulator with a custom application suite (the sysid
    /// training pipeline uses this with the NPB-like suite).
    pub fn with_apps(
        config: ClusterConfig,
        jobs: Vec<JobSpec>,
        apps: Vec<AppProfile>,
        seed: u64,
    ) -> Self {
        config.validate();
        assert!(!apps.is_empty(), "need at least one application profile");
        for job in &jobs {
            assert!(
                job.app_index < apps.len(),
                "job {} references app {} but only {} profiles exist",
                job.id,
                job.app_index,
                apps.len()
            );
            assert!(
                job.size <= config.nodes,
                "job {} needs {} nodes but the system has {}",
                job.id,
                job.size,
                config.nodes
            );
        }
        let ips_noise = if config.ips_noise_rel > 0.0 {
            Some(Normal::new(0.0, config.ips_noise_rel).expect("valid sigma"))
        } else {
            None
        };
        Cluster {
            config,
            apps,
            scheduler: Scheduler::new(jobs),
            running: Vec::new(),
            records: Vec::new(),
            traces: HashMap::new(),
            time_s: 0.0,
            rng: StdRng::seed_from_u64(seed ^ 0x5043_5253_494d_5f31),
            ips_noise,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Runs the simulation to the configured duration under a policy.
    pub fn run(&mut self, policy: &mut dyn PowerPolicy) -> SimResult {
        let mut intervals = Vec::new();
        let mut decision_times = Vec::new();
        let mut violations = 0usize;

        while self.time_s < self.config.duration_s {
            let log = self.step(policy, &mut decision_times);
            if log.violation {
                violations += 1;
            }
            intervals.push(log);
        }

        // Close out still-running jobs.
        for job in self.running.drain(..) {
            self.records.push(JobRecord {
                app_name: job.app.name.clone(),
                spec: job.spec,
                start_s: job.start_s,
                end_s: self.config.duration_s,
                progress_s: job.progress_s,
                outcome: JobOutcome::Unfinished,
            });
        }
        self.records.sort_by_key(|r| r.spec.id);

        SimResult {
            policy: policy.name().to_string(),
            f: self.config.over_provisioning_factor(),
            records: std::mem::take(&mut self.records),
            intervals,
            traces: std::mem::take(&mut self.traces),
            budget_violations: violations,
            decision_times_s: decision_times,
        }
    }

    /// Executes one control interval; returns its log entry.
    fn step(&mut self, policy: &mut dyn PowerPolicy, decision_times: &mut Vec<f64>) -> IntervalLog {
        let dt = self.config.interval_s;

        // 1. Scheduling.
        let footprints: Vec<RunningFootprint> = self
            .running
            .iter()
            .map(|j| RunningFootprint {
                size: j.spec.size,
                estimated_end_s: j.start_s + j.spec.runtime_estimate_s,
            })
            .collect();
        let busy: usize = self.running.iter().map(|j| j.spec.size).sum();
        let free = self.config.nodes - busy;
        let started = self.scheduler.schedule(self.time_s, free, &footprints);
        for spec in started {
            let app = self.apps[spec.app_index].clone();
            let limits = CapLimits::new(self.config.cap_min_w, self.config.tdp_w);
            let rapl = SimulatedRapl::new(limits, 0.005, 0.01, spec.id ^ 0xABCD);
            self.running.push(RunningJob {
                cap_w: self.config.tdp_w,
                app,
                start_s: self.time_s,
                progress_s: 0.0,
                rapl,
                last_ips: None,
                last_power_w: None,
                is_new: true,
                spec,
            });
        }

        // 2. Policy decision.
        let busy: usize = self.running.iter().map(|j| j.spec.size).sum();
        let idle = self.config.nodes - busy;
        let busy_budget = self.config.budget_w() - idle as f64 * self.config.idle_w;
        let views: Vec<JobView> = self
            .running
            .iter()
            .map(|j| JobView {
                id: j.spec.id,
                size: j.spec.size,
                elapsed_s: self.time_s - j.start_s,
                measured_ips: j.last_ips,
                current_cap_w: j.cap_w,
                measured_power_w: j.last_power_w,
                remaining_node_hours: (j.spec.runtime_tdp_s - j.progress_s).max(0.0)
                    * j.spec.size as f64
                    / 3600.0,
                is_new: j.is_new,
            })
            .collect();
        let ctx = PolicyContext {
            time_s: self.time_s,
            interval_s: dt,
            busy_budget_w: busy_budget,
            cap_min_w: self.config.cap_min_w,
            cap_max_w: self.config.tdp_w,
            total_nodes: self.config.nodes,
            wp_nodes: self.config.wp_nodes,
            jobs: &views,
        };
        let decision_start = Instant::now();
        let assignments = policy.assign(&ctx);
        decision_times.push(decision_start.elapsed().as_secs_f64());
        assert_eq!(
            assignments.len(),
            self.running.len(),
            "policy {} returned {} assignments for {} jobs",
            policy.name(),
            assignments.len(),
            self.running.len()
        );

        // 3. Clamp caps to the admissible RAPL window. The budget is on
        //    *consumed* power (§2.4.1: "the overall power usage of the
        //    system remains below the system power budget"): caps are the
        //    enforcement mechanism, and a policy that over-commits caps on
        //    jobs that do not draw them is using the over-provisioning
        //    headroom exactly as intended. Consumption above the budget is
        //    recorded as a violation after the interval (step 4).
        let caps: Vec<f64> = assignments
            .iter()
            .map(|a| a.cap_w.clamp(self.config.cap_min_w, self.config.tdp_w))
            .collect();
        let committed_after: f64 = caps
            .iter()
            .zip(self.running.iter())
            .map(|(&c, j)| c * j.spec.size as f64)
            .sum();

        // 4. Advance jobs.
        let mut total_power = idle as f64 * self.config.idle_w;
        let mut finished: Vec<usize> = Vec::new();
        for (i, job) in self.running.iter_mut().enumerate() {
            job.cap_w = caps[i];
            job.rapl.request_cap(caps[i]);
            let elapsed = self.time_s - job.start_s;
            let cap_frac = caps[i] / self.config.tdp_w;
            let perf = job.app.perf_frac(cap_frac, elapsed);
            let demand_w = job.app.phase(elapsed).demand_frac * self.config.tdp_w;
            let consumed = job.rapl.advance(dt, demand_w);
            total_power += consumed * job.spec.size as f64;
            job.last_power_w = Some(job.rapl.measured_power());

            job.progress_s += perf * dt;

            // IPS telemetry (with optional noise and dropout).
            let true_ips = job.spec.size as f64 * BASE_NODE_IPS * perf;
            let noise = self
                .ips_noise
                .map(|n| n.sample(&mut self.rng))
                .unwrap_or(0.0);
            let measured = (true_ips * (1.0 + noise)).max(0.0);
            let dropped = self.config.ips_dropout_prob > 0.0
                && self.rng.gen_bool(self.config.ips_dropout_prob);
            job.last_ips = if dropped { None } else { Some(measured) };
            job.is_new = false;

            if self.config.trace_all || self.config.trace_jobs.contains(&job.spec.id) {
                self.traces
                    .entry(job.spec.id)
                    .or_default()
                    .points
                    .push(TracePoint {
                        t_s: self.time_s,
                        cap_w: caps[i],
                        ips: measured,
                        power_w: job.rapl.measured_power(),
                        target_ips: assignments[i].target_ips,
                    });
            }

            // Completion / crash.
            if job.progress_s >= job.spec.runtime_tdp_s {
                let overshoot = job.progress_s - job.spec.runtime_tdp_s;
                let end = if perf > 1e-12 {
                    self.time_s + dt - overshoot / perf
                } else {
                    self.time_s + dt
                };
                finished.push(i);
                self.records.push(JobRecord {
                    app_name: job.app.name.clone(),
                    spec: job.spec.clone(),
                    start_s: job.start_s,
                    end_s: end,
                    progress_s: job.spec.runtime_tdp_s,
                    outcome: JobOutcome::Completed,
                });
            } else if self.config.crash_prob > 0.0 && self.rng.gen_bool(self.config.crash_prob) {
                finished.push(i);
                self.records.push(JobRecord {
                    app_name: job.app.name.clone(),
                    spec: job.spec.clone(),
                    start_s: job.start_s,
                    end_s: self.time_s + dt,
                    progress_s: job.progress_s,
                    outcome: JobOutcome::Crashed,
                });
            }
        }
        for &i in finished.iter().rev() {
            let job = self.running.swap_remove(i);
            policy.job_departed(job.spec.id);
        }

        // Violation threshold includes a 0.05% allowance for the RAPL
        // actuation transient: a cap reduction takes ~5 ms to propagate,
        // during which the old (higher) cap is still enforced — a
        // physical artifact bounded by (delay/interval)·ΔP per node, not
        // a policy error.
        let violation = total_power > self.config.budget_w() * 1.0005;
        let log = IntervalLog {
            t_s: self.time_s,
            busy_nodes: busy,
            running_jobs: views.len(),
            total_power_w: total_power,
            committed_power_w: committed_after + idle as f64 * self.config.idle_w,
            violation,
        };
        self.time_s += dt;
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FairPolicy;
    use crate::trace::{SystemModel, TraceGenerator};

    fn small_config(f: f64, duration: f64) -> ClusterConfig {
        let system = SystemModel::tardis();
        let mut c = ClusterConfig::for_system(&system, f, duration);
        c.ips_noise_rel = 0.0;
        c
    }

    fn small_trace(n: usize) -> Vec<JobSpec> {
        TraceGenerator::new(SystemModel::tardis(), 11).generate(n)
    }

    #[test]
    fn budget_never_exceeded_by_committed_power() {
        let config = small_config(2.0, 1800.0);
        let budget = config.budget_w();
        let mut cluster = Cluster::new(config, small_trace(100), 1);
        let result = cluster.run(&mut FairPolicy::new());
        for log in &result.intervals {
            // FOP is conservative: its caps sum to the budget, so both the
            // committed (worst-case) and consumed power stay below it.
            assert!(
                log.committed_power_w <= budget + 1e-6,
                "committed {} > budget {budget} at t={}",
                log.committed_power_w,
                log.t_s
            );
            assert!(log.total_power_w <= budget * 1.0005);
            assert!(log.total_power_w <= log.committed_power_w * 1.0005);
        }
        assert_eq!(result.budget_violations, 0, "FOP must respect the budget");
    }

    #[test]
    fn all_jobs_at_tdp_when_underprovisioned() {
        // f = 1: FOP share = budget/busy >= TDP, so caps clamp at TDP and
        // every job runs at full speed.
        let config = small_config(1.0, 3600.0);
        let mut cluster = Cluster::new(config, small_trace(40), 1);
        let result = cluster.run(&mut FairPolicy::new());
        for rec in result.completed() {
            assert!(
                (rec.slowdown() - 1.0).abs() < 0.05,
                "job {} slowdown {}",
                rec.spec.id,
                rec.slowdown()
            );
        }
        assert!(result.throughput() > 0);
    }

    #[test]
    fn over_provisioned_fop_caps_below_tdp_and_slows_sensitive_jobs() {
        let config = small_config(2.0, 3600.0);
        let mut cluster = Cluster::new(config, small_trace(60), 1);
        let result = cluster.run(&mut FairPolicy::new());
        let slow = result.completed().filter(|r| r.slowdown() > 1.05).count();
        assert!(slow > 0, "power capping should slow some jobs");
    }

    #[test]
    fn throughput_increases_with_overprovisioning() {
        let t1 = {
            let mut c = Cluster::new(small_config(1.0, 4.0 * 3600.0), small_trace(400), 7);
            c.run(&mut FairPolicy::new()).throughput()
        };
        let t2 = {
            let mut c = Cluster::new(small_config(2.0, 4.0 * 3600.0), small_trace(400), 7);
            c.run(&mut FairPolicy::new()).throughput()
        };
        assert!(t2 > t1, "f=2 ({t2}) should beat f=1 ({t1})");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = || {
            let mut c = Cluster::new(small_config(1.5, 1800.0), small_trace(50), 99);
            c.run(&mut FairPolicy::new())
        };
        let a = run();
        let b = run();
        assert_eq!(a.records, b.records);
        assert_eq!(a.throughput(), b.throughput());
    }

    #[test]
    fn traces_recorded_for_requested_jobs() {
        let mut config = small_config(1.0, 900.0);
        config.trace_jobs = vec![0];
        let mut cluster = Cluster::new(config, small_trace(10), 1);
        let result = cluster.run(&mut FairPolicy::new());
        let trace = result.traces.get(&0).expect("job 0 traced");
        assert!(!trace.points.is_empty());
        for p in &trace.points {
            assert!(p.cap_w >= 90.0 && p.cap_w <= 290.0);
            assert!(p.ips >= 0.0);
        }
    }

    #[test]
    fn crash_injection_produces_crashed_records() {
        let mut config = small_config(1.0, 3600.0);
        config.crash_prob = 0.05;
        let mut cluster = Cluster::new(config, small_trace(50), 5);
        let result = cluster.run(&mut FairPolicy::new());
        assert!(result
            .records
            .iter()
            .any(|r| r.outcome == JobOutcome::Crashed));
    }

    #[test]
    fn ips_dropout_hides_reports_but_sim_continues() {
        struct AssertingPolicy {
            inner: FairPolicy,
            saw_none: bool,
        }
        impl PowerPolicy for AssertingPolicy {
            fn name(&self) -> &str {
                "assert"
            }
            fn assign(&mut self, ctx: &PolicyContext<'_>) -> Vec<crate::policy::PowerAssignment> {
                if ctx
                    .jobs
                    .iter()
                    .any(|j| j.measured_ips.is_none() && !j.is_new)
                {
                    self.saw_none = true;
                }
                self.inner.assign(ctx)
            }
        }
        let mut config = small_config(1.0, 1800.0);
        config.ips_dropout_prob = 0.5;
        let mut cluster = Cluster::new(config, small_trace(20), 5);
        let mut policy = AssertingPolicy {
            inner: FairPolicy::new(),
            saw_none: false,
        };
        let result = cluster.run(&mut policy);
        assert!(policy.saw_none, "dropouts should surface as None");
        assert!(result.throughput() > 0);
    }

    #[test]
    fn unfinished_jobs_are_recorded_at_window_close() {
        // One very long job in a short window.
        let jobs = vec![JobSpec {
            id: 0,
            app_index: 0,
            size: 4,
            runtime_tdp_s: 1e6,
            runtime_estimate_s: 1.3e6,
        }];
        let mut cluster = Cluster::new(small_config(1.0, 600.0), jobs, 1);
        let result = cluster.run(&mut FairPolicy::new());
        assert_eq!(result.throughput(), 0);
        assert_eq!(result.records.len(), 1);
        assert_eq!(result.records[0].outcome, JobOutcome::Unfinished);
        assert!(result.records[0].progress_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "budget cannot even idle")]
    fn impossible_idle_budget_rejected() {
        let system = SystemModel::tardis();
        let mut config = ClusterConfig::for_system(&system, 2.0, 600.0);
        config.idle_w = 400.0; // more than TDP/2 per node at f=2
        Cluster::new(config, Vec::new(), 1);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn oversized_job_rejected() {
        let jobs = vec![JobSpec {
            id: 0,
            app_index: 0,
            size: 10_000,
            runtime_tdp_s: 100.0,
            runtime_estimate_s: 130.0,
        }];
        Cluster::new(small_config(1.0, 600.0), jobs, 1);
    }
}
