use crate::budget::BudgetSchedule;
use crate::fault::{AppliedFault, FaultKind, FaultPlan};
use crate::job::{JobOutcome, JobRecord, JobSpec, JobTrace, TracePoint};
use crate::policy::{JobView, PolicyContext, PowerPolicy};
use crate::scheduler::{RunningFootprint, ScheduleScratch, Scheduler};
use crate::trace::SystemModel;
use perq_apps::{AppProfile, BASE_NODE_IPS, IDLE_WATTS, MIN_CAP_WATTS, TDP_WATTS};
use perq_rapl::{CapLimits, PowerCapDevice, SimulatedRapl};
use perq_telemetry::{FieldValue, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

/// Static configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Nodes in the over-provisioned system (`N_OP = f · N_WP`).
    pub nodes: usize,
    /// Nodes in the worst-case-provisioned system (`N_WP`); the power
    /// budget is `wp_nodes · tdp_w`.
    pub wp_nodes: usize,
    /// Control decision interval, seconds (paper default: 10 s).
    pub interval_s: f64,
    /// Simulated duration, seconds (paper: one day).
    pub duration_s: f64,
    /// Node TDP, watts.
    pub tdp_w: f64,
    /// Minimum per-node cap, watts.
    pub cap_min_w: f64,
    /// Idle node draw, watts.
    pub idle_w: f64,
    /// Relative standard deviation of IPS measurements.
    pub ips_noise_rel: f64,
    /// Probability that a job's IPS report is lost in a given interval
    /// (failure injection; the policy sees `None`).
    pub ips_dropout_prob: f64,
    /// Per-interval probability that a running job crashes (failure
    /// injection).
    pub crash_prob: f64,
    /// Job ids whose full power/IPS trace should be recorded; `None`
    /// records nothing, and an empty set with `trace_all` records all.
    pub trace_jobs: Vec<u64>,
    /// Record traces for every job (memory heavy; for small runs).
    pub trace_all: bool,
    /// Honour each job's [`JobSpec::submit_s`]: jobs enter the queue at
    /// their submit time instead of all being ready at `t = 0` (the
    /// paper's saturated queue, which stays the default). Arrival gaps
    /// are exactly the dead time the event engine skips.
    #[serde(default)]
    pub honor_arrivals: bool,
}

impl ClusterConfig {
    /// Standard configuration for a system model at over-provisioning
    /// factor `f`, running for `duration_s` seconds.
    pub fn for_system(system: &SystemModel, f: f64, duration_s: f64) -> Self {
        assert!(f >= 1.0, "over-provisioning factor must be >= 1");
        ClusterConfig {
            nodes: (system.wp_nodes as f64 * f).round() as usize,
            wp_nodes: system.wp_nodes,
            interval_s: 10.0,
            duration_s,
            tdp_w: TDP_WATTS,
            cap_min_w: MIN_CAP_WATTS,
            idle_w: IDLE_WATTS,
            ips_noise_rel: 0.01,
            ips_dropout_prob: 0.0,
            crash_prob: 0.0,
            trace_jobs: Vec::new(),
            trace_all: false,
            honor_arrivals: false,
        }
    }

    /// Total system power budget, watts.
    pub fn budget_w(&self) -> f64 {
        self.wp_nodes as f64 * self.tdp_w
    }

    /// Over-provisioning factor `f = N_OP / N_WP`.
    pub fn over_provisioning_factor(&self) -> f64 {
        self.nodes as f64 / self.wp_nodes as f64
    }

    fn validate(&self) {
        assert!(self.nodes >= 1 && self.wp_nodes >= 1, "need nodes");
        assert!(self.interval_s > 0.0, "interval must be positive");
        assert!(self.duration_s > 0.0, "duration must be positive");
        assert!(
            self.cap_min_w > 0.0 && self.cap_min_w <= self.tdp_w,
            "cap window invalid"
        );
        assert!(
            self.nodes as f64 * self.idle_w <= self.budget_w(),
            "budget cannot even idle the machine: {} nodes x {} W idle > {} W budget",
            self.nodes,
            self.idle_w,
            self.budget_w()
        );
    }
}

/// Per-interval system telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalLog {
    /// Interval start time, seconds.
    pub t_s: f64,
    /// Nodes occupied by running jobs.
    pub busy_nodes: usize,
    /// Running job count.
    pub running_jobs: usize,
    /// Total power drawn (busy consumption + idle draw), watts.
    pub total_power_w: f64,
    /// Sum of assigned caps (busy nodes) + idle draw, watts — the
    /// worst-case draw the caps admit (may exceed the budget when the
    /// policy deliberately over-commits caps on low-draw jobs).
    pub committed_power_w: f64,
    /// Whether *consumed* power exceeded the system budget this interval
    /// — the quantity the paper's constraint bounds.
    pub violation: bool,
}

/// Outcome of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Name of the policy that ran.
    pub policy: String,
    /// Over-provisioning factor of the run.
    pub f: f64,
    /// All job records (completed, crashed, unfinished).
    pub records: Vec<JobRecord>,
    /// Per-interval telemetry.
    pub intervals: Vec<IntervalLog>,
    /// Traces of the requested jobs.
    pub traces: HashMap<u64, JobTrace>,
    /// Number of intervals in which the policy requested more power than
    /// the budget (the simulator scaled the request down).
    pub budget_violations: usize,
    /// Total simulated time spent above the budget, seconds
    /// (`budget_violations · interval_s` — the degradation metric the
    /// fault suite bounds).
    pub budget_violation_s: f64,
    /// Faults actually applied during the run, in application order.
    pub faults: Vec<AppliedFault>,
    /// Latency of each node recovery (crash-to-recover time, seconds),
    /// matched first-crashed-first-recovered.
    pub recovery_latency_s: Vec<f64>,
    /// Wall-clock time of each policy decision, seconds (Fig. 13 data).
    pub decision_times_s: Vec<f64>,
}

impl SimResult {
    /// True when every *simulated* field of the two results matches.
    /// `decision_times_s` is a wall-clock measurement and is ignored: it
    /// is the one field that legitimately differs between replays of the
    /// same seed. Campaign determinism checks compare with this.
    pub fn same_simulation(&self, other: &SimResult) -> bool {
        self.policy == other.policy
            && self.f == other.f
            && self.records == other.records
            && self.intervals == other.intervals
            && self.traces == other.traces
            && self.budget_violations == other.budget_violations
            && self.budget_violation_s == other.budget_violation_s
            && self.faults == other.faults
            && self.recovery_latency_s == other.recovery_latency_s
    }

    /// Completed-job count — the paper's system-throughput metric.
    pub fn throughput(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome == JobOutcome::Completed)
            .count()
    }

    /// Records of completed jobs only.
    pub fn completed(&self) -> impl Iterator<Item = &JobRecord> {
        self.records
            .iter()
            .filter(|r| r.outcome == JobOutcome::Completed)
    }
}

/// A running job's live state.
struct RunningJob {
    spec: JobSpec,
    app: AppProfile,
    start_s: f64,
    progress_s: f64,
    cap_w: f64,
    /// Sequence stamp bumped by the event engine whenever the cap
    /// changes; pending completion predictions carry the stamp they
    /// were made under and die when it moves (see `event.rs`).
    prediction_stamp: u64,
    /// Cap the current completion prediction was computed at; a
    /// different applied cap invalidates the prediction.
    predicted_cap_w: f64,
    rapl: SimulatedRapl,
    last_ips: Option<f64>,
    last_power_w: Option<f64>,
    is_new: bool,
    /// Fault injection: IPS reports are suppressed until this step.
    ips_hidden_until: usize,
    /// Fault injection: the power reading freezes until this step.
    power_stale_until: usize,
    /// Fault injection: the next power reading is scaled by this factor.
    corrupt_power_factor: Option<f64>,
}

/// Reusable per-interval buffers. `Cluster::step` used to allocate
/// fresh `Vec`s for views, caps, and the finished list every interval;
/// they now live here and are cleared-and-refilled instead (same
/// pattern as the QP `Workspace`).
#[derive(Default)]
struct StepScratch {
    views: Vec<JobView>,
    caps: Vec<f64>,
    finished: Vec<usize>,
    started: Vec<JobSpec>,
    decision_times_s: Vec<f64>,
}

/// The cluster simulator. See the crate docs for the model.
pub struct Cluster {
    config: ClusterConfig,
    apps: Vec<AppProfile>,
    pub(crate) scheduler: Scheduler,
    running: Vec<RunningJob>,
    /// Scheduler footprints, mirrored in lockstep with `running` (same
    /// indices) so the hot path never rebuilds them from a rescan.
    footprints: Vec<RunningFootprint>,
    /// Sum of `running[i].spec.size`, maintained on delta.
    busy_nodes: usize,
    sched_scratch: ScheduleScratch,
    scratch: StepScratch,
    /// `config.trace_jobs` as a set: the per-job trace check is O(1)
    /// instead of a linear scan every job every interval.
    trace_set: HashSet<u64>,
    records: Vec<JobRecord>,
    traces: HashMap<u64, JobTrace>,
    time_s: f64,
    /// The seed `with_apps` was given, kept for per-job RAPL seed
    /// derivation (`rapl_seed`).
    seed: u64,
    rng: StdRng,
    ips_noise: Option<Normal<f64>>,
    /// Fault injection state. The plan is data fixed before the run; the
    /// cursor walks it as steps pass.
    pub(crate) fault_plan: FaultPlan,
    fault_cursor: usize,
    step_idx: usize,
    offline_nodes: usize,
    fault_log: Vec<AppliedFault>,
    /// Crash times awaiting a matching recovery (FIFO).
    crash_times: VecDeque<f64>,
    recovery_latency_s: Vec<f64>,
    recorder: Recorder,
    /// Engine diagnostics (event-queue depth, events processed, wall
    /// time per simulated day). Separate from `recorder` because these
    /// depend on the engine and on wall time, while `recorder` exports
    /// must stay byte-identical across engines.
    engine_recorder: Recorder,
    /// Budget in force instead of `config.budget_w()`, when a
    /// higher-level coordinator granted this cluster a share of a
    /// larger system's budget (hierarchical allocation, `hier.rs`).
    /// `None` — the flat default — leaves every budget computation on
    /// the exact `config.budget_w()` float, so flat runs are untouched.
    budget_override_w: Option<f64>,
    /// Time-varying budget curve (price/carbon markets). Consulted
    /// after the coordinator override and before the flat
    /// `config.budget_w()`; `None` keeps fixed-budget runs on the
    /// exact pre-schedule float expressions.
    budget_schedule: Option<BudgetSchedule>,
    /// Cumulative simulated seconds spent above the budget so far —
    /// surfaced to policies through `PolicyContext::violation_s`.
    violation_s_total: f64,
    /// A previous run's interval log handed back for reuse. Year-long
    /// runs allocate a ~150 MB log; recycling it across repeated
    /// replays (benchmark medians, back-to-back what-if runs) skips
    /// the kernel's first-touch page zeroing, which otherwise rivals
    /// the event engine's entire simulation cost.
    recycled_intervals: Option<Vec<IntervalLog>>,
    /// Routes scheduling through the pre-overhaul full-rescan + sort
    /// path, which also cross-checks the incremental mirrors each step.
    #[cfg(any(test, feature = "rescan-oracle"))]
    rescan_oracle: bool,
    /// Derives per-job RAPL seeds the pre-PR-6 way (`id ^ 0xABCD`,
    /// ignoring the cluster seed) so oracle comparisons stay
    /// byte-identical across the seed-derivation fix.
    #[cfg(any(test, feature = "rescan-oracle"))]
    legacy_rapl_seed: bool,
}

/// The finalization mix of `splitmix64` — a bijective `u64 → u64`
/// avalanche used to fold the cluster seed into per-job RAPL seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Cluster {
    /// Creates a simulator over a job trace, using the ECP application
    /// suite as the ground-truth behaviours.
    pub fn new(config: ClusterConfig, jobs: Vec<JobSpec>, seed: u64) -> Self {
        Self::with_apps(config, jobs, perq_apps::ecp_suite(), seed)
    }

    /// Creates a simulator with a custom application suite (the sysid
    /// training pipeline uses this with the NPB-like suite).
    pub fn with_apps(
        config: ClusterConfig,
        jobs: Vec<JobSpec>,
        apps: Vec<AppProfile>,
        seed: u64,
    ) -> Self {
        config.validate();
        assert!(!apps.is_empty(), "need at least one application profile");
        for job in &jobs {
            assert!(
                job.app_index < apps.len(),
                "job {} references app {} but only {} profiles exist",
                job.id,
                job.app_index,
                apps.len()
            );
            assert!(
                job.size <= config.nodes,
                "job {} needs {} nodes but the system has {}",
                job.id,
                job.size,
                config.nodes
            );
        }
        let ips_noise = if config.ips_noise_rel > 0.0 {
            Some(Normal::new(0.0, config.ips_noise_rel).expect("valid sigma"))
        } else {
            None
        };
        let trace_set = config.trace_jobs.iter().copied().collect();
        let scheduler = if config.honor_arrivals {
            Scheduler::with_arrivals(jobs)
        } else {
            Scheduler::new(jobs)
        };
        Cluster {
            config,
            apps,
            scheduler,
            running: Vec::new(),
            footprints: Vec::new(),
            busy_nodes: 0,
            sched_scratch: ScheduleScratch::default(),
            scratch: StepScratch::default(),
            trace_set,
            records: Vec::new(),
            traces: HashMap::new(),
            time_s: 0.0,
            seed,
            rng: StdRng::seed_from_u64(seed ^ 0x5043_5253_494d_5f31),
            ips_noise,
            fault_plan: FaultPlan::default(),
            fault_cursor: 0,
            step_idx: 0,
            offline_nodes: 0,
            fault_log: Vec::new(),
            crash_times: VecDeque::new(),
            recovery_latency_s: Vec::new(),
            recorder: Recorder::noop(),
            engine_recorder: Recorder::noop(),
            budget_override_w: None,
            budget_schedule: None,
            violation_s_total: 0.0,
            recycled_intervals: None,
            #[cfg(any(test, feature = "rescan-oracle"))]
            rescan_oracle: false,
            #[cfg(any(test, feature = "rescan-oracle"))]
            legacy_rapl_seed: false,
        }
    }

    /// Installs a fault plan to apply during the run (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self.fault_cursor = 0;
        self
    }

    /// Attaches a telemetry recorder (builder style). The simulator
    /// drives the recorder's clock from *simulated* time and forwards
    /// the handle to the policy at the start of [`Cluster::run`], so a
    /// single recorder collects `perq_sim_*`, `perq_core_*`, and
    /// `perq_qp_*` metrics for the whole run and its exports replay
    /// bit-for-bit under a fixed seed.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a recorder for *engine diagnostics* (builder style):
    /// `perq_sim_events_total`, `perq_sim_event_queue_depth`,
    /// `perq_sim_intervals_{executed,skipped}_total`, and the
    /// `perq_sim_wall_per_sim_day_seconds` histogram. These depend on
    /// the selected [`crate::SimEngine`] and on wall time, so they live
    /// on their own recorder: the main recorder's exports stay
    /// byte-identical between engines.
    pub fn with_engine_recorder(mut self, recorder: Recorder) -> Self {
        self.engine_recorder = recorder;
        self
    }

    /// The engine-diagnostics recorder handle.
    pub fn engine_recorder(&self) -> &Recorder {
        &self.engine_recorder
    }

    /// Hands a previous run's interval log back for reuse (builder
    /// style). The buffer is cleared and regrown in place, so repeated
    /// replays write into already-faulted pages instead of paying the
    /// kernel's first-touch zeroing of a fresh year-long allocation
    /// (~150 MB for a year at 10 s intervals). Results are unaffected:
    /// `take_interval_buffer` clears the buffer before either engine
    /// logs into it.
    pub fn with_recycled_intervals(mut self, buffer: Vec<IntervalLog>) -> Self {
        self.recycled_intervals = Some(buffer);
        self
    }

    /// Nodes currently offline due to injected crashes.
    pub fn offline_nodes(&self) -> usize {
        self.offline_nodes
    }

    /// Overrides the power budget in force (hierarchical allocation: a
    /// coordinator grants this cluster a share of a larger system's
    /// budget, re-granted every coordination epoch). `None` restores
    /// the flat `config.budget_w()`. The override must at least cover
    /// the whole machine idling — the same invariant
    /// `ClusterConfig::validate` enforces on the flat budget.
    pub fn set_budget_override(&mut self, budget_w: Option<f64>) {
        if let Some(b) = budget_w {
            let live = self.config.nodes - self.offline_nodes;
            assert!(
                b.is_finite() && b >= live as f64 * self.config.idle_w,
                "budget override {b} W cannot even idle {live} live nodes at {} W",
                self.config.idle_w
            );
        }
        self.budget_override_w = budget_w;
    }

    /// The budget override in force, if any.
    pub fn budget_override_w(&self) -> Option<f64> {
        self.budget_override_w
    }

    /// Installs a time-varying budget schedule (builder style). Every
    /// level of the schedule must at least idle the whole machine —
    /// the same invariant [`ClusterConfig`] enforces on the flat budget
    /// — so idle intervals can never violate regardless of where on
    /// the curve they fall (which is what keeps the event engine's
    /// bulk idle synthesis byte-identical to the stepper).
    pub fn with_budget_schedule(mut self, schedule: BudgetSchedule) -> Self {
        assert!(
            self.config.nodes as f64 * self.config.idle_w <= schedule.min_budget_w(),
            "schedule floor {} W cannot even idle {} nodes at {} W",
            schedule.min_budget_w(),
            self.config.nodes,
            self.config.idle_w
        );
        self.budget_schedule = Some(schedule);
        self
    }

    /// The budget schedule in force, if any.
    pub fn budget_schedule(&self) -> Option<&BudgetSchedule> {
        self.budget_schedule.as_ref()
    }

    /// The power budget in force at simulated time `t_s`: the
    /// coordinator-granted override when one is set (an enclave's
    /// grant already reflects whatever curve the coordinator follows),
    /// then the schedule level at `t_s`, then the flat
    /// `config.budget_w()` (the exact same float expression as before
    /// schedules existed, so fixed-budget runs are bit-identical).
    pub(crate) fn effective_budget_at(&self, t_s: f64) -> f64 {
        if let Some(b) = self.budget_override_w {
            return b;
        }
        match &self.budget_schedule {
            Some(schedule) => schedule.budget_at(t_s),
            None => self.config.budget_w(),
        }
    }

    /// The budget in force at the current interval's start.
    pub(crate) fn effective_budget_w(&self) -> f64 {
        self.effective_budget_at(self.time_s)
    }

    /// Schedules via the pre-overhaul full-rescan + sort path instead of
    /// the incremental mirrors + heap. Kept as a regression oracle: the
    /// rescan path additionally asserts the mirrors agree with a fresh
    /// scan every step. The oracle predates the seeded RAPL-derivation
    /// fix, so enabling it also switches to the legacy per-job seeds.
    #[cfg(any(test, feature = "rescan-oracle"))]
    pub fn set_rescan_oracle(&mut self, on: bool) {
        self.rescan_oracle = on;
        self.legacy_rapl_seed = on;
    }

    /// Derives per-job RAPL seeds the pre-PR-6 way (`id ^ 0xABCD`,
    /// independent of the cluster seed). Only for byte-identity
    /// comparisons against the rescan oracle; see DESIGN.md §10.
    #[cfg(any(test, feature = "rescan-oracle"))]
    pub fn set_legacy_rapl_seed(&mut self, on: bool) {
        self.legacy_rapl_seed = on;
    }

    /// Per-job RAPL seed: the legacy derivation XORed the job id with a
    /// constant, so two scenarios with the same job ids but different
    /// cluster seeds shared RAPL noise streams. The fix folds the
    /// cluster seed in through `splitmix64` (both inputs avalanched so
    /// related ids/seeds don't produce related streams).
    fn rapl_seed(&self, job_id: u64) -> u64 {
        #[cfg(any(test, feature = "rescan-oracle"))]
        if self.legacy_rapl_seed {
            return job_id ^ 0xABCD;
        }
        splitmix64(self.seed ^ splitmix64(job_id ^ 0xABCD))
    }

    /// Starts a job, updating the incremental mirrors.
    fn push_running(&mut self, job: RunningJob) {
        self.busy_nodes += job.spec.size;
        self.footprints.push(RunningFootprint {
            size: job.spec.size,
            estimated_end_s: job.start_s + job.spec.runtime_estimate_s,
        });
        self.running.push(job);
    }

    /// Removes a job preserving order (fault paths), updating the mirrors.
    fn remove_running(&mut self, idx: usize) -> RunningJob {
        let job = self.running.remove(idx);
        self.footprints.remove(idx);
        self.busy_nodes -= job.spec.size;
        job
    }

    /// Removes a job by swap (hot completion path), updating the mirrors.
    fn swap_remove_running(&mut self, idx: usize) -> RunningJob {
        let job = self.running.swap_remove(idx);
        self.footprints.swap_remove(idx);
        self.busy_nodes -= job.spec.size;
        job
    }

    /// The configuration in force.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Runs the simulation to the configured duration under a policy,
    /// with the reference stepper engine.
    pub fn run(&mut self, policy: &mut dyn PowerPolicy) -> SimResult {
        self.run_engine(policy, crate::SimEngine::Step)
    }

    /// Runs the simulation under the selected engine. Both engines
    /// produce byte-identical [`SimResult`]s and telemetry exports
    /// under a fixed seed (`decision_times_s`, the one wall-clock
    /// field, legitimately differs — the event engine decides less
    /// often); the event engine just skips the dead time.
    pub fn run_engine(
        &mut self,
        policy: &mut dyn PowerPolicy,
        engine: crate::SimEngine,
    ) -> SimResult {
        policy.set_recorder(self.recorder.clone());
        match engine {
            crate::SimEngine::Step => self.run_step_engine(policy),
            crate::SimEngine::Event => self.run_event(policy),
        }
    }

    /// The interval log to run with: the recycled buffer if one was
    /// handed over (cleared, its pages already faulted in), otherwise a
    /// fresh pre-sized allocation.
    pub(crate) fn take_interval_buffer(&mut self) -> Vec<IntervalLog> {
        let capacity = self.interval_capacity();
        match self.recycled_intervals.take() {
            Some(mut buffer) => {
                buffer.clear();
                buffer.reserve(capacity);
                buffer
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// The reference stepper: executes every interval in order.
    fn run_step_engine(&mut self, policy: &mut dyn PowerPolicy) -> SimResult {
        let mut intervals = self.take_interval_buffer();
        let mut violations = 0usize;
        let mut violation_s = 0.0;

        while self.time_s < self.config.duration_s {
            let log = self.step(policy);
            self.tally_violation(&log, &mut violations, &mut violation_s);
            intervals.push(log);
        }
        self.finish(policy.name(), intervals, violations, violation_s)
    }

    /// Number of intervals a full-window run produces (pre-sizing the
    /// interval log avoids repeated reallocation on year-long runs).
    pub(crate) fn interval_capacity(&self) -> usize {
        (self.config.duration_s / self.config.interval_s).ceil() as usize + 1
    }

    /// Folds one interval log into the violation tallies and telemetry,
    /// and into the running total policies observe through
    /// [`PolicyContext::violation_s`].
    pub(crate) fn tally_violation(
        &mut self,
        log: &IntervalLog,
        violations: &mut usize,
        violation_s: &mut f64,
    ) {
        if log.violation {
            *violations += 1;
            *violation_s += self.config.interval_s;
            self.violation_s_total = *violation_s;
            if self.recorder.enabled() {
                self.recorder
                    .counter_inc("perq_sim_budget_violations_total");
                self.recorder
                    .gauge_set("perq_sim_budget_violation_seconds", *violation_s);
            }
        }
    }

    /// Shared end-of-run epilogue: closes out still-running jobs and
    /// assembles the [`SimResult`].
    pub(crate) fn finish(
        &mut self,
        policy_name: &str,
        intervals: Vec<IntervalLog>,
        violations: usize,
        violation_s: f64,
    ) -> SimResult {
        for job in self.running.drain(..) {
            self.records.push(JobRecord {
                app_name: job.app.name.clone(),
                spec: job.spec,
                start_s: job.start_s,
                end_s: self.config.duration_s,
                progress_s: job.progress_s,
                outcome: JobOutcome::Unfinished,
            });
        }
        self.footprints.clear();
        self.busy_nodes = 0;
        self.records.sort_by_key(|r| r.spec.id);

        SimResult {
            policy: policy_name.to_string(),
            f: self.config.over_provisioning_factor(),
            records: std::mem::take(&mut self.records),
            intervals,
            traces: std::mem::take(&mut self.traces),
            budget_violations: violations,
            budget_violation_s: violation_s,
            faults: std::mem::take(&mut self.fault_log),
            recovery_latency_s: std::mem::take(&mut self.recovery_latency_s),
            decision_times_s: std::mem::take(&mut self.scratch.decision_times_s),
        }
    }

    /// Current simulated time, seconds (start of the next interval).
    pub(crate) fn sim_time_s(&self) -> f64 {
        self.time_s
    }

    /// Index of the next interval to execute.
    pub(crate) fn step_index(&self) -> usize {
        self.step_idx
    }

    /// True while any job is on the machine.
    pub(crate) fn has_running(&self) -> bool {
        !self.running.is_empty()
    }

    /// Live (non-offline) nodes not occupied by running jobs.
    pub(crate) fn free_live_nodes(&self) -> usize {
        (self.config.nodes - self.offline_nodes).saturating_sub(self.busy_nodes)
    }

    /// True when `stamp` is still the current prediction stamp of a
    /// running job — i.e. its cap has not changed since the prediction
    /// was issued (event-engine completion hints).
    pub(crate) fn prediction_is_current(&self, job_id: u64, stamp: u64) -> bool {
        self.running
            .iter()
            .any(|j| j.spec.id == job_id && j.prediction_stamp == stamp)
    }

    /// Refreshes completion predictions after an executed interval:
    /// every running job whose applied cap differs from the cap its
    /// outstanding prediction was computed at gets its stamp bumped
    /// (invalidating the old prediction) and a new
    /// `(job_id, stamp, steps_remaining)` estimate pushed to `out`.
    /// Predictions are *hints* — the event engine revalidates on pop —
    /// so the estimate may legitimately be wrong when the application
    /// changes phase or the policy moves the cap.
    pub(crate) fn refresh_completion_predictions(&mut self, out: &mut Vec<(u64, u64, usize)>) {
        out.clear();
        let dt = self.config.interval_s;
        for job in &mut self.running {
            if job.cap_w == job.predicted_cap_w {
                continue;
            }
            job.predicted_cap_w = job.cap_w;
            job.prediction_stamp += 1;
            let remaining = (job.spec.runtime_tdp_s - job.progress_s).max(0.0);
            let cap_frac = job.cap_w / self.config.tdp_w;
            let perf = job
                .app
                .perf_frac(cap_frac, self.time_s - job.start_s)
                .max(1e-9);
            let steps = (remaining / (perf * dt)).ceil().max(1.0) as usize;
            out.push((job.spec.id, job.prediction_stamp, steps));
        }
    }

    /// Synthesizes idle intervals — no running jobs, nothing startable,
    /// no fault or arrival due — from the current step up to (not
    /// including) `wake_step`, bounded by the window end. Reproduces
    /// the stepper byte-for-byte: interval times accumulate by the same
    /// repeated `+= interval_s`, the step counter advances in bulk, the
    /// idle gauges take their last-write-wins values, and the recorder
    /// clock ratchets to the last synthesized interval's start time (so
    /// journal events stamped after the run agree across engines).
    /// Returns the number of intervals skipped.
    pub(crate) fn skip_idle_until(
        &mut self,
        wake_step: usize,
        intervals: &mut Vec<IntervalLog>,
    ) -> u64 {
        debug_assert!(self.running.is_empty(), "cannot skip busy intervals");
        let dt = self.config.interval_s;
        let live = self.config.nodes - self.offline_nodes;
        let idle_power = live as f64 * self.config.idle_w;
        let mut last_t = self.time_s;
        let mut skipped = 0u64;
        // Bulk-synthesize most of the gap through one sized `extend`
        // (a single reservation, no per-push bookkeeping) — this loop
        // is the event engine's floor on sparse traces. The interval
        // times must accumulate by the same repeated `+= dt` as the
        // stepper, so the bulk count is derived conservatively (two
        // steps short of the window end, more than covering any float
        // drift of the accumulated clock against `k * dt`) and the
        // exact tail loop below finishes against the stepper's own
        // `time_s < duration_s` test.
        let window = if self.time_s < self.config.duration_s {
            (((self.config.duration_s - self.time_s) / dt).floor() as usize).saturating_sub(2)
        } else {
            0
        };
        let bulk = wake_step.saturating_sub(self.step_idx).min(window);
        if bulk > 0 {
            let mut t = self.time_s;
            intervals.extend((0..bulk).map(|_| {
                let log = IntervalLog {
                    t_s: t,
                    busy_nodes: 0,
                    running_jobs: 0,
                    total_power_w: idle_power,
                    committed_power_w: idle_power,
                    // `validate()` guarantees full-machine idle fits
                    // the budget, so an idle interval never violates.
                    violation: false,
                };
                last_t = t;
                t += dt;
                log
            }));
            self.time_s = t;
            self.step_idx += bulk;
            skipped += bulk as u64;
        }
        while self.step_idx < wake_step && self.time_s < self.config.duration_s {
            last_t = self.time_s;
            intervals.push(IntervalLog {
                t_s: last_t,
                busy_nodes: 0,
                running_jobs: 0,
                total_power_w: idle_power,
                committed_power_w: idle_power,
                violation: false,
            });
            self.time_s += dt;
            self.step_idx += 1;
            skipped += 1;
        }
        if skipped > 0 && self.recorder.enabled() {
            self.recorder.set_time_s(last_t);
            self.recorder.counter_add("perq_sim_steps_total", skipped);
            self.recorder.gauge_set("perq_sim_power_w", idle_power);
            // The stepper writes this gauge every idle interval; its
            // last write is at `last_t`, so under a budget schedule the
            // bulk path must read the curve there, not at the wake step
            // the clock has already advanced to.
            self.recorder
                .gauge_set("perq_sim_budget_w", self.effective_budget_at(last_t));
            self.recorder
                .gauge_set("perq_sim_committed_power_w", idle_power);
            self.recorder
                .gauge_set("perq_sim_queue_depth", self.scheduler.pending() as f64);
            self.recorder.gauge_set("perq_sim_running_jobs", 0.0);
            self.recorder.gauge_set("perq_sim_busy_nodes", 0.0);
            self.recorder
                .gauge_set("perq_sim_offline_nodes", self.offline_nodes as f64);
        }
        skipped
    }

    /// Executes one control interval; returns its log entry.
    pub(crate) fn step(&mut self, policy: &mut dyn PowerPolicy) -> IntervalLog {
        let dt = self.config.interval_s;
        // Telemetry timestamps follow simulated time, never wall time.
        self.recorder.set_time_s(self.time_s);

        // 0. Fault injection: apply every event due at this step.
        self.apply_due_faults(policy);
        let live_nodes = self.config.nodes - self.offline_nodes;

        // 1. Arrivals, then scheduling (onto live nodes only).
        //    `footprints` and `busy_nodes` mirror `running` on delta, so
        //    no rescan here. The started list is a reused scratch buffer.
        self.scheduler.release_due(self.time_s);
        let free = live_nodes.saturating_sub(self.busy_nodes);
        let mut started = std::mem::take(&mut self.scratch.started);
        self.schedule_started(free, &mut started);
        for spec in started.drain(..) {
            let app = self.apps[spec.app_index].clone();
            let limits = CapLimits::new(self.config.cap_min_w, self.config.tdp_w);
            let rapl = SimulatedRapl::new(limits, 0.005, 0.01, self.rapl_seed(spec.id));
            self.push_running(RunningJob {
                cap_w: self.config.tdp_w,
                app,
                start_s: self.time_s,
                progress_s: 0.0,
                rapl,
                last_ips: None,
                last_power_w: None,
                is_new: true,
                ips_hidden_until: 0,
                power_stale_until: 0,
                corrupt_power_factor: None,
                prediction_stamp: 0,
                predicted_cap_w: f64::NAN,
                spec,
            });
        }
        self.scratch.started = started;

        // 2. Policy decision. Offline nodes draw nothing and charge
        //    nothing, so their share of the budget flows to the survivors
        //    (the paper's reclamation step, applied to capacity loss).
        let busy = self.busy_nodes;
        let idle = live_nodes.saturating_sub(busy);
        let busy_budget = self.effective_budget_w() - idle as f64 * self.config.idle_w;
        self.scratch.views.clear();
        for j in &self.running {
            self.scratch.views.push(JobView {
                id: j.spec.id,
                size: j.spec.size,
                elapsed_s: self.time_s - j.start_s,
                measured_ips: j.last_ips,
                current_cap_w: j.cap_w,
                measured_power_w: j.last_power_w,
                remaining_node_hours: (j.spec.runtime_tdp_s - j.progress_s).max(0.0)
                    * j.spec.size as f64
                    / 3600.0,
                is_new: j.is_new,
            });
        }
        let running_jobs = self.scratch.views.len();
        let ctx = PolicyContext {
            time_s: self.time_s,
            interval_s: dt,
            busy_budget_w: busy_budget,
            cap_min_w: self.config.cap_min_w,
            cap_max_w: self.config.tdp_w,
            total_nodes: self.config.nodes,
            wp_nodes: self.config.wp_nodes,
            queue_depth: self.scheduler.pending(),
            violation_s: self.violation_s_total,
            jobs: &self.scratch.views,
        };
        let decision_start = Instant::now();
        let assignments = policy.assign(&ctx);
        self.scratch
            .decision_times_s
            .push(decision_start.elapsed().as_secs_f64());
        assert_eq!(
            assignments.len(),
            self.running.len(),
            "policy {} returned {} assignments for {} jobs",
            policy.name(),
            assignments.len(),
            self.running.len()
        );

        // 3. Clamp caps to the admissible RAPL window. The budget is on
        //    *consumed* power (§2.4.1: "the overall power usage of the
        //    system remains below the system power budget"): caps are the
        //    enforcement mechanism, and a policy that over-commits caps on
        //    jobs that do not draw them is using the over-provisioning
        //    headroom exactly as intended. Consumption above the budget is
        //    recorded as a violation after the interval (step 4).
        self.scratch.caps.clear();
        self.scratch.caps.extend(
            assignments
                .iter()
                .map(|a| a.cap_w.clamp(self.config.cap_min_w, self.config.tdp_w)),
        );
        let caps = &self.scratch.caps;
        let committed_after: f64 = caps
            .iter()
            .zip(self.running.iter())
            .map(|(&c, j)| c * j.spec.size as f64)
            .sum();

        // 4. Advance jobs.
        let mut total_power = idle as f64 * self.config.idle_w;
        for (i, job) in self.running.iter_mut().enumerate() {
            job.cap_w = caps[i];
            job.rapl.request_cap(caps[i]);
            let elapsed = self.time_s - job.start_s;
            let cap_frac = caps[i] / self.config.tdp_w;
            let perf = job.app.perf_frac(cap_frac, elapsed);
            let demand_w = job.app.phase(elapsed).demand_frac * self.config.tdp_w;
            let consumed = job.rapl.advance(dt, demand_w);
            total_power += consumed * job.spec.size as f64;

            // Power telemetry: faults corrupt what the policy *sees*, not
            // the physics — consumption above stays ground truth.
            let true_power = job.rapl.measured_power();
            job.last_power_w = if self.step_idx < job.power_stale_until {
                // Stale sensor: the previous reading is repeated.
                Some(job.last_power_w.unwrap_or(true_power))
            } else if let Some(factor) = job.corrupt_power_factor.take() {
                Some(true_power * factor)
            } else {
                Some(true_power)
            };

            job.progress_s += perf * dt;

            // IPS telemetry (with optional noise, dropout, and injected
            // blackouts).
            let true_ips = job.spec.size as f64 * BASE_NODE_IPS * perf;
            let noise = self
                .ips_noise
                .map(|n| n.sample(&mut self.rng))
                .unwrap_or(0.0);
            let measured = (true_ips * (1.0 + noise)).max(0.0);
            let dropped = self.config.ips_dropout_prob > 0.0
                && self.rng.gen_bool(self.config.ips_dropout_prob);
            let hidden = self.step_idx < job.ips_hidden_until;
            job.last_ips = if dropped || hidden {
                None
            } else {
                Some(measured)
            };
            job.is_new = false;

            if self.config.trace_all || self.trace_set.contains(&job.spec.id) {
                self.traces
                    .entry(job.spec.id)
                    .or_default()
                    .points
                    .push(TracePoint {
                        t_s: self.time_s,
                        cap_w: caps[i],
                        ips: measured,
                        power_w: job.rapl.measured_power(),
                        target_ips: assignments[i].target_ips,
                    });
            }

            // Completion / crash.
            if job.progress_s >= job.spec.runtime_tdp_s {
                let overshoot = job.progress_s - job.spec.runtime_tdp_s;
                let end = if perf > 1e-12 {
                    self.time_s + dt - overshoot / perf
                } else {
                    self.time_s + dt
                };
                self.scratch.finished.push(i);
                self.records.push(JobRecord {
                    app_name: job.app.name.clone(),
                    spec: job.spec.clone(),
                    start_s: job.start_s,
                    end_s: end,
                    progress_s: job.spec.runtime_tdp_s,
                    outcome: JobOutcome::Completed,
                });
            } else if self.config.crash_prob > 0.0 && self.rng.gen_bool(self.config.crash_prob) {
                self.scratch.finished.push(i);
                self.records.push(JobRecord {
                    app_name: job.app.name.clone(),
                    spec: job.spec.clone(),
                    start_s: job.start_s,
                    end_s: self.time_s + dt,
                    progress_s: job.progress_s,
                    outcome: JobOutcome::Crashed,
                });
            }
        }
        // `finished` is ascending; popping removes back-to-front so the
        // swap never disturbs a still-pending index.
        while let Some(i) = self.scratch.finished.pop() {
            let job = self.swap_remove_running(i);
            policy.job_departed(job.spec.id);
        }

        // Violation threshold includes a 0.05% allowance for the RAPL
        // actuation transient: a cap reduction takes ~5 ms to propagate,
        // during which the old (higher) cap is still enforced — a
        // physical artifact bounded by (delay/interval)·ΔP per node, not
        // a policy error.
        let violation = total_power > self.effective_budget_w() * 1.0005;
        let log = IntervalLog {
            t_s: self.time_s,
            busy_nodes: busy,
            running_jobs,
            total_power_w: total_power,
            committed_power_w: committed_after + idle as f64 * self.config.idle_w,
            violation,
        };
        if self.recorder.enabled() {
            self.recorder.counter_inc("perq_sim_steps_total");
            self.recorder.gauge_set("perq_sim_power_w", total_power);
            self.recorder
                .gauge_set("perq_sim_budget_w", self.effective_budget_w());
            self.recorder
                .gauge_set("perq_sim_committed_power_w", log.committed_power_w);
            self.recorder
                .gauge_set("perq_sim_queue_depth", self.scheduler.pending() as f64);
            self.recorder
                .gauge_set("perq_sim_running_jobs", log.running_jobs as f64);
            self.recorder.gauge_set("perq_sim_busy_nodes", busy as f64);
            self.recorder
                .gauge_set("perq_sim_offline_nodes", self.offline_nodes as f64);
        }
        self.time_s += dt;
        self.step_idx += 1;
        log
    }

    /// Picks the jobs to start this interval into `out`: the heap-based
    /// scheduler over the incremental mirrors, or the rescan oracle
    /// when enabled.
    fn schedule_started(&mut self, free: usize, out: &mut Vec<JobSpec>) {
        #[cfg(any(test, feature = "rescan-oracle"))]
        if self.rescan_oracle {
            out.clear();
            out.extend(self.schedule_via_rescan(free));
            return;
        }
        self.scheduler.schedule_with_scratch_into(
            self.time_s,
            free,
            &self.footprints,
            &mut self.sched_scratch,
            out,
        );
    }

    /// Pre-overhaul reference path: rebuild the footprints with a full
    /// rescan of `running` and reserve via the sorting scheduler,
    /// cross-checking the incremental mirrors on the way.
    #[cfg(any(test, feature = "rescan-oracle"))]
    fn schedule_via_rescan(&mut self, free: usize) -> Vec<JobSpec> {
        let footprints: Vec<RunningFootprint> = self
            .running
            .iter()
            .map(|j| RunningFootprint {
                size: j.spec.size,
                estimated_end_s: j.start_s + j.spec.runtime_estimate_s,
            })
            .collect();
        let busy: usize = self.running.iter().map(|j| j.spec.size).sum();
        assert_eq!(busy, self.busy_nodes, "busy-node mirror out of sync");
        assert_eq!(footprints, self.footprints, "footprint mirror out of sync");
        self.scheduler.schedule(self.time_s, free, &footprints)
    }

    /// Applies every fault-plan event due at the current step. Targets
    /// are resolved deterministically (`nth % running_jobs`), so a fixed
    /// plan on a fixed workload yields an identical applied-fault log on
    /// every run.
    fn apply_due_faults(&mut self, policy: &mut dyn PowerPolicy) {
        while self.fault_cursor < self.fault_plan.events().len()
            && self.fault_plan.events()[self.fault_cursor].step <= self.step_idx
        {
            let event = self.fault_plan.events()[self.fault_cursor];
            self.fault_cursor += 1;
            let mut job_id = None;
            match event.kind {
                FaultKind::NodeCrash { count } => {
                    // Never take the machine below one live node.
                    let live = self.config.nodes - self.offline_nodes;
                    let count = count.min(live.saturating_sub(1));
                    if count == 0 {
                        continue;
                    }
                    self.offline_nodes += count;
                    for _ in 0..count {
                        self.crash_times.push_back(self.time_s);
                    }
                    self.displace_jobs_over_capacity(policy);
                }
                FaultKind::NodeRecover { count } => {
                    let count = count.min(self.offline_nodes);
                    if count == 0 {
                        continue;
                    }
                    self.offline_nodes -= count;
                    for _ in 0..count {
                        if let Some(t0) = self.crash_times.pop_front() {
                            self.recovery_latency_s.push(self.time_s - t0);
                        }
                    }
                }
                FaultKind::TelemetryDropout { nth, intervals } => {
                    if self.running.is_empty() {
                        continue;
                    }
                    let idx = nth % self.running.len();
                    let job = &mut self.running[idx];
                    job.ips_hidden_until = self.step_idx + intervals;
                    job_id = Some(job.spec.id);
                }
                FaultKind::StalePower { nth, intervals } => {
                    if self.running.is_empty() {
                        continue;
                    }
                    let idx = nth % self.running.len();
                    let job = &mut self.running[idx];
                    job.power_stale_until = self.step_idx + intervals;
                    job_id = Some(job.spec.id);
                }
                FaultKind::CorruptPower { nth, factor } => {
                    if self.running.is_empty() {
                        continue;
                    }
                    let idx = nth % self.running.len();
                    let job = &mut self.running[idx];
                    job.corrupt_power_factor = Some(factor);
                    job_id = Some(job.spec.id);
                }
                FaultKind::JobKill { nth } => {
                    if self.running.is_empty() {
                        continue;
                    }
                    let job = self.remove_running(nth % self.running.len());
                    job_id = Some(job.spec.id);
                    policy.job_departed(job.spec.id);
                    self.records.push(JobRecord {
                        app_name: job.app.name.clone(),
                        spec: job.spec,
                        start_s: job.start_s,
                        end_s: self.time_s,
                        progress_s: job.progress_s,
                        outcome: JobOutcome::Killed,
                    });
                }
            }
            if self.recorder.enabled() {
                self.recorder.counter_inc("perq_sim_faults_total");
                let kind = match event.kind {
                    FaultKind::NodeCrash { .. } => "node_crash",
                    FaultKind::NodeRecover { .. } => "node_recover",
                    FaultKind::TelemetryDropout { .. } => "telemetry_dropout",
                    FaultKind::StalePower { .. } => "stale_power",
                    FaultKind::CorruptPower { .. } => "corrupt_power",
                    FaultKind::JobKill { .. } => "job_kill",
                };
                let mut fields = vec![
                    ("step", FieldValue::U64(self.step_idx as u64)),
                    ("kind", FieldValue::Str(kind)),
                    ("nodes_offline", FieldValue::U64(self.offline_nodes as u64)),
                ];
                if let Some(id) = job_id {
                    fields.push(("job_id", FieldValue::U64(id)));
                }
                self.recorder.event("perq_sim_fault", &fields);
            }
            self.fault_log.push(AppliedFault {
                t_s: self.time_s,
                step: self.step_idx,
                kind: event.kind,
                job_id,
                nodes_offline_after: self.offline_nodes,
            });
        }
    }

    /// After a capacity loss, displaces the most recently started jobs
    /// until the busy footprint fits the live machine. Displaced jobs
    /// lose their progress but return to the queue head, restarting once
    /// capacity allows — graceful degradation instead of a wedge.
    fn displace_jobs_over_capacity(&mut self, policy: &mut dyn PowerPolicy) {
        let live = self.config.nodes - self.offline_nodes;
        while self.busy_nodes > live && !self.running.is_empty() {
            let (idx, _) = self
                .running
                .iter()
                .enumerate()
                .max_by(|(ia, a), (ib, b)| {
                    a.start_s
                        .partial_cmp(&b.start_s)
                        .expect("finite start times")
                        .then(ia.cmp(ib))
                })
                .expect("non-empty running list");
            let job = self.remove_running(idx);
            policy.job_departed(job.spec.id);
            self.scheduler.requeue_front(job.spec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultEvent, FaultRates};
    use crate::policy::FairPolicy;
    use crate::trace::{SystemModel, TraceGenerator};

    fn small_config(f: f64, duration: f64) -> ClusterConfig {
        let system = SystemModel::tardis();
        let mut c = ClusterConfig::for_system(&system, f, duration);
        c.ips_noise_rel = 0.0;
        c
    }

    fn small_trace(n: usize) -> Vec<JobSpec> {
        TraceGenerator::new(SystemModel::tardis(), 11).generate(n)
    }

    #[test]
    fn budget_never_exceeded_by_committed_power() {
        let config = small_config(2.0, 1800.0);
        let budget = config.budget_w();
        let mut cluster = Cluster::new(config, small_trace(100), 1);
        let result = cluster.run(&mut FairPolicy::new());
        for log in &result.intervals {
            // FOP is conservative: its caps sum to the budget, so both the
            // committed (worst-case) and consumed power stay below it.
            assert!(
                log.committed_power_w <= budget + 1e-6,
                "committed {} > budget {budget} at t={}",
                log.committed_power_w,
                log.t_s
            );
            assert!(log.total_power_w <= budget * 1.0005);
            assert!(log.total_power_w <= log.committed_power_w * 1.0005);
        }
        assert_eq!(result.budget_violations, 0, "FOP must respect the budget");
    }

    #[test]
    fn all_jobs_at_tdp_when_underprovisioned() {
        // f = 1: FOP share = budget/busy >= TDP, so caps clamp at TDP and
        // every job runs at full speed.
        let config = small_config(1.0, 3600.0);
        let mut cluster = Cluster::new(config, small_trace(40), 1);
        let result = cluster.run(&mut FairPolicy::new());
        for rec in result.completed() {
            assert!(
                (rec.slowdown() - 1.0).abs() < 0.05,
                "job {} slowdown {}",
                rec.spec.id,
                rec.slowdown()
            );
        }
        assert!(result.throughput() > 0);
    }

    #[test]
    fn over_provisioned_fop_caps_below_tdp_and_slows_sensitive_jobs() {
        let config = small_config(2.0, 3600.0);
        let mut cluster = Cluster::new(config, small_trace(60), 1);
        let result = cluster.run(&mut FairPolicy::new());
        let slow = result.completed().filter(|r| r.slowdown() > 1.05).count();
        assert!(slow > 0, "power capping should slow some jobs");
    }

    #[test]
    fn throughput_increases_with_overprovisioning() {
        let t1 = {
            let mut c = Cluster::new(small_config(1.0, 4.0 * 3600.0), small_trace(400), 7);
            c.run(&mut FairPolicy::new()).throughput()
        };
        let t2 = {
            let mut c = Cluster::new(small_config(2.0, 4.0 * 3600.0), small_trace(400), 7);
            c.run(&mut FairPolicy::new()).throughput()
        };
        assert!(t2 > t1, "f=2 ({t2}) should beat f=1 ({t1})");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = || {
            let mut c = Cluster::new(small_config(1.5, 1800.0), small_trace(50), 99);
            c.run(&mut FairPolicy::new())
        };
        let a = run();
        let b = run();
        assert_eq!(a.records, b.records);
        assert_eq!(a.throughput(), b.throughput());
    }

    #[test]
    fn traces_recorded_for_requested_jobs() {
        let mut config = small_config(1.0, 900.0);
        config.trace_jobs = vec![0];
        let mut cluster = Cluster::new(config, small_trace(10), 1);
        let result = cluster.run(&mut FairPolicy::new());
        let trace = result.traces.get(&0).expect("job 0 traced");
        assert!(!trace.points.is_empty());
        for p in &trace.points {
            assert!(p.cap_w >= 90.0 && p.cap_w <= 290.0);
            assert!(p.ips >= 0.0);
        }
    }

    #[test]
    fn crash_injection_produces_crashed_records() {
        let mut config = small_config(1.0, 3600.0);
        config.crash_prob = 0.05;
        let mut cluster = Cluster::new(config, small_trace(50), 5);
        let result = cluster.run(&mut FairPolicy::new());
        assert!(result
            .records
            .iter()
            .any(|r| r.outcome == JobOutcome::Crashed));
    }

    #[test]
    fn ips_dropout_hides_reports_but_sim_continues() {
        struct AssertingPolicy {
            inner: FairPolicy,
            saw_none: bool,
        }
        impl PowerPolicy for AssertingPolicy {
            fn name(&self) -> &str {
                "assert"
            }
            fn assign(&mut self, ctx: &PolicyContext<'_>) -> Vec<crate::policy::PowerAssignment> {
                if ctx
                    .jobs
                    .iter()
                    .any(|j| j.measured_ips.is_none() && !j.is_new)
                {
                    self.saw_none = true;
                }
                self.inner.assign(ctx)
            }
        }
        let mut config = small_config(1.0, 1800.0);
        config.ips_dropout_prob = 0.5;
        let mut cluster = Cluster::new(config, small_trace(20), 5);
        let mut policy = AssertingPolicy {
            inner: FairPolicy::new(),
            saw_none: false,
        };
        let result = cluster.run(&mut policy);
        assert!(policy.saw_none, "dropouts should surface as None");
        assert!(result.throughput() > 0);
    }

    #[test]
    fn unfinished_jobs_are_recorded_at_window_close() {
        // One very long job in a short window.
        let jobs = vec![JobSpec {
            id: 0,
            app_index: 0,
            size: 4,
            runtime_tdp_s: 1e6,
            runtime_estimate_s: 1.3e6,
            submit_s: 0.0,
        }];
        let mut cluster = Cluster::new(small_config(1.0, 600.0), jobs, 1);
        let result = cluster.run(&mut FairPolicy::new());
        assert_eq!(result.throughput(), 0);
        assert_eq!(result.records.len(), 1);
        assert_eq!(result.records[0].outcome, JobOutcome::Unfinished);
        assert!(result.records[0].progress_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "budget cannot even idle")]
    fn impossible_idle_budget_rejected() {
        let system = SystemModel::tardis();
        let mut config = ClusterConfig::for_system(&system, 2.0, 600.0);
        config.idle_w = 400.0; // more than TDP/2 per node at f=2
        Cluster::new(config, Vec::new(), 1);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn oversized_job_rejected() {
        let jobs = vec![JobSpec {
            id: 0,
            app_index: 0,
            size: 10_000,
            runtime_tdp_s: 100.0,
            runtime_estimate_s: 130.0,
            submit_s: 0.0,
        }];
        Cluster::new(small_config(1.0, 600.0), jobs, 1);
    }

    fn long_jobs(n: usize) -> Vec<JobSpec> {
        (0..n as u64)
            .map(|id| JobSpec {
                id,
                app_index: 0,
                size: 1,
                runtime_tdp_s: 1e6,
                runtime_estimate_s: 1.3e6,
                submit_s: 0.0,
            })
            .collect()
    }

    #[test]
    fn node_crash_shrinks_capacity_and_recovery_is_timed() {
        // 8 live nodes, 8 single-node jobs; lose 2 nodes at step 5 and get
        // them back at step 20.
        let plan = FaultPlan::new(vec![
            FaultEvent {
                step: 5,
                kind: FaultKind::NodeCrash { count: 2 },
            },
            FaultEvent {
                step: 20,
                kind: FaultKind::NodeRecover { count: 2 },
            },
        ]);
        let mut cluster =
            Cluster::new(small_config(1.0, 300.0), long_jobs(8), 1).with_fault_plan(plan);
        let result = cluster.run(&mut FairPolicy::new());

        assert_eq!(result.faults.len(), 2);
        assert_eq!(result.faults[0].nodes_offline_after, 2);
        assert_eq!(result.faults[1].nodes_offline_after, 0);
        // Two jobs are displaced while the machine is short, and restart
        // after the recovery.
        for log in &result.intervals {
            let expected = if (50.0..200.0).contains(&log.t_s) {
                6
            } else {
                8
            };
            assert_eq!(log.busy_nodes, expected, "at t={}", log.t_s);
        }
        // Crash at t=50, recovery at t=200: 150 s latency per node.
        assert_eq!(result.recovery_latency_s, vec![150.0, 150.0]);
        assert_eq!(result.budget_violations, 0);
    }

    #[test]
    fn displaced_job_requeues_and_completes_after_recovery() {
        // One 8-node job on an 8-node machine; losing any node displaces
        // it. It must restart from scratch once the node returns and still
        // complete — one record, outcome Completed.
        let jobs = vec![JobSpec {
            id: 0,
            app_index: 0,
            size: 8,
            runtime_tdp_s: 100.0,
            runtime_estimate_s: 130.0,
            submit_s: 0.0,
        }];
        let plan = FaultPlan::new(vec![
            FaultEvent {
                step: 2,
                kind: FaultKind::NodeCrash { count: 1 },
            },
            FaultEvent {
                step: 5,
                kind: FaultKind::NodeRecover { count: 1 },
            },
        ]);
        let mut cluster = Cluster::new(small_config(1.0, 600.0), jobs, 1).with_fault_plan(plan);
        let result = cluster.run(&mut FairPolicy::new());

        assert_eq!(result.records.len(), 1, "{:?}", result.records);
        let rec = &result.records[0];
        assert_eq!(rec.outcome, JobOutcome::Completed);
        assert_eq!(rec.start_s, 50.0, "restart must wait for the recovery");
        assert!(rec.slowdown() < 1.05, "slowdown {}", rec.slowdown());
        assert_eq!(result.recovery_latency_s, vec![30.0]);
    }

    #[test]
    fn job_kill_produces_killed_record() {
        let plan = FaultPlan::new(vec![FaultEvent {
            step: 3,
            kind: FaultKind::JobKill { nth: 0 },
        }]);
        let mut cluster =
            Cluster::new(small_config(1.0, 300.0), long_jobs(2), 1).with_fault_plan(plan);
        let result = cluster.run(&mut FairPolicy::new());

        let killed: Vec<_> = result
            .records
            .iter()
            .filter(|r| r.outcome == JobOutcome::Killed)
            .collect();
        assert_eq!(killed.len(), 1);
        assert_eq!(killed[0].spec.id, 0);
        assert_eq!(killed[0].end_s, 30.0);
        assert_eq!(result.faults.len(), 1);
        assert_eq!(result.faults[0].job_id, Some(0));
        // The survivor runs to the window close.
        assert!(result
            .records
            .iter()
            .any(|r| r.spec.id == 1 && r.outcome == JobOutcome::Unfinished));
    }

    #[test]
    fn generated_fault_plan_replays_bit_for_bit() {
        let config = small_config(2.0, 1800.0);
        let steps = (config.duration_s / config.interval_s) as usize;
        let run = || {
            let plan = FaultPlan::generate(13, steps, &FaultRates::aggressive());
            let mut c =
                Cluster::new(small_config(2.0, 1800.0), small_trace(40), 99).with_fault_plan(plan);
            c.run(&mut FairPolicy::new())
        };
        let a = run();
        let b = run();
        assert!(!a.faults.is_empty(), "aggressive plan must apply faults");
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.records, b.records);
        assert_eq!(a.intervals, b.intervals);
        assert_eq!(a.recovery_latency_s, b.recovery_latency_s);
        assert_eq!(a.budget_violations, b.budget_violations);
        // budget_violation_s is the violation count expressed in seconds.
        let expected_s = a.budget_violations as f64 * config.interval_s;
        assert!((a.budget_violation_s - expected_s).abs() < 1e-9);
    }

    #[test]
    fn incremental_hot_path_matches_rescan_oracle() {
        // The oracle is the pre-overhaul loop: footprints rebuilt by a
        // full rescan each interval and the reservation computed by a
        // stable sort. On a recorded scenario with an aggressive fault
        // plan (crashes, displacement, kills — every mirror mutation
        // path), the incremental heap path must reproduce the exact
        // IntervalLog sequence, records, and fault log. The oracle run
        // additionally cross-checks the mirrors against a fresh scan at
        // every step.
        let config = small_config(2.0, 1800.0);
        let steps = (config.duration_s / config.interval_s) as usize;
        let run = |oracle: bool| {
            let plan = FaultPlan::generate(13, steps, &FaultRates::aggressive());
            let mut c =
                Cluster::new(small_config(2.0, 1800.0), small_trace(40), 99).with_fault_plan(plan);
            c.set_rescan_oracle(oracle);
            // The oracle predates the seeded RAPL-derivation fix; pin
            // the fast run to the legacy seeds so the comparison is
            // byte-for-byte.
            c.set_legacy_rapl_seed(true);
            c.run(&mut FairPolicy::new())
        };
        let fast = run(false);
        let slow = run(true);
        assert!(!slow.faults.is_empty(), "scenario must exercise faults");
        assert_eq!(fast.intervals, slow.intervals);
        assert_eq!(fast.records, slow.records);
        assert_eq!(fast.faults, slow.faults);
        assert_eq!(fast.recovery_latency_s, slow.recovery_latency_s);
        assert!(fast.same_simulation(&slow));
    }

    #[test]
    fn rapl_seeds_mix_in_the_cluster_seed() {
        // Same jobs, different cluster seeds: with the legacy derivation
        // (`job_id ^ 0xABCD`, cluster seed ignored) every cluster drew
        // identical RAPL measurement-noise streams, so the measured
        // power traces matched point-for-point across seeds. The
        // splitmix64 fix decouples them. RAPL noise only perturbs
        // *measured* power, so the traced `power_w` is the observable.
        let run = |seed: u64| {
            let mut config = small_config(2.0, 900.0);
            config.trace_all = true;
            config.crash_prob = 0.0;
            let mut c = Cluster::new(config, small_trace(20), seed);
            c.run(&mut FairPolicy::new())
        };
        let a = run(1);
        let b = run(2);
        let powers = |r: &SimResult| -> Vec<f64> {
            let mut ids: Vec<u64> = r.traces.keys().copied().collect();
            ids.sort_unstable();
            ids.iter()
                .flat_map(|id| r.traces[id].points.iter().map(|p| p.power_w))
                .collect()
        };
        assert!(
            powers(&a)
                .iter()
                .zip(powers(&b).iter())
                .any(|(x, y)| x != y),
            "different cluster seeds must drive different RAPL noise"
        );
        // And the derivation stays deterministic per seed.
        assert!(run(1).same_simulation(&a));
    }

    #[test]
    fn arrival_workload_idles_until_jobs_arrive() {
        let mut config = small_config(1.0, 600.0);
        config.honor_arrivals = true;
        let jobs = vec![JobSpec {
            id: 0,
            app_index: 0,
            size: 2,
            runtime_tdp_s: 100.0,
            runtime_estimate_s: 130.0,
            submit_s: 200.0,
        }];
        let mut cluster = Cluster::new(config, jobs, 1);
        let result = cluster.run(&mut FairPolicy::new());
        for log in &result.intervals {
            let expected = if log.t_s < 200.0 || log.t_s >= 300.0 {
                0
            } else {
                2
            };
            assert_eq!(log.busy_nodes, expected, "at t={}", log.t_s);
        }
        assert_eq!(result.records[0].start_s, 200.0);
        assert_eq!(result.records[0].outcome, JobOutcome::Completed);
    }

    #[test]
    fn same_simulation_ignores_wall_clock_only() {
        let run = || {
            let mut c = Cluster::new(small_config(1.5, 900.0), small_trace(30), 7);
            c.run(&mut FairPolicy::new())
        };
        let a = run();
        let mut b = run();
        assert!(a.same_simulation(&b));
        b.decision_times_s.clear();
        assert!(a.same_simulation(&b), "wall-clock field must not matter");
        b.budget_violations += 1;
        assert!(!a.same_simulation(&b));
    }

    #[test]
    fn telemetry_faults_corrupt_what_the_policy_sees() {
        struct Recorder {
            inner: FairPolicy,
            powers: Vec<Option<f64>>,
            ips: Vec<Option<f64>>,
        }
        impl PowerPolicy for Recorder {
            fn name(&self) -> &str {
                "recorder"
            }
            fn assign(&mut self, ctx: &PolicyContext<'_>) -> Vec<crate::policy::PowerAssignment> {
                if let Some(j) = ctx.jobs.iter().find(|j| j.id == 0) {
                    self.powers.push(j.measured_power_w);
                    self.ips.push(j.measured_ips);
                }
                self.inner.assign(ctx)
            }
        }
        let plan = FaultPlan::new(vec![
            FaultEvent {
                step: 5,
                kind: FaultKind::StalePower {
                    nth: 0,
                    intervals: 3,
                },
            },
            FaultEvent {
                step: 12,
                kind: FaultKind::CorruptPower {
                    nth: 0,
                    factor: 10.0,
                },
            },
            FaultEvent {
                step: 20,
                kind: FaultKind::TelemetryDropout {
                    nth: 0,
                    intervals: 2,
                },
            },
        ]);
        let mut cluster =
            Cluster::new(small_config(1.0, 400.0), long_jobs(1), 3).with_fault_plan(plan);
        let mut policy = Recorder {
            inner: FairPolicy::new(),
            powers: Vec::new(),
            ips: Vec::new(),
        };
        cluster.run(&mut policy);

        // Stale sensor at steps 5..8: the step-4 reading is repeated, so
        // the policy sees an identical value at steps 5..=8 (views lag the
        // measurement by one interval).
        let frozen = policy.powers[5].expect("reading present");
        for step in 6..=8 {
            assert_eq!(policy.powers[step], Some(frozen), "step {step}");
        }
        // Corruption at step 12 (factor 10) shows up in the step-13 view
        // as a physically impossible per-node reading.
        assert!(
            policy.powers[13].expect("reading present") > TDP_WATTS,
            "corrupt reading {:?} should exceed TDP",
            policy.powers[13]
        );
        // IPS blackout at steps 20..22: the policy sees None.
        assert!(policy.ips[19].is_some());
        assert!(policy.ips[21].is_none());
        assert!(policy.ips[22].is_none());
    }

    #[test]
    fn crash_never_takes_the_machine_below_one_node() {
        let plan = FaultPlan::new(vec![FaultEvent {
            step: 1,
            kind: FaultKind::NodeCrash { count: 100 },
        }]);
        let mut cluster =
            Cluster::new(small_config(1.0, 300.0), long_jobs(4), 1).with_fault_plan(plan);
        let result = cluster.run(&mut FairPolicy::new());
        assert_eq!(result.faults.len(), 1);
        assert_eq!(
            result.faults[0].nodes_offline_after, 7,
            "8-node machine keeps one live node"
        );
        assert_eq!(cluster.offline_nodes(), 7);
        assert!(result
            .intervals
            .iter()
            .skip(1)
            .all(|log| log.busy_nodes <= 1));
    }
}
