/// Per-job information a power-allocation policy sees at a decision
/// instance.
///
/// Everything here is observable telemetry except `remaining_node_hours`,
/// which is *oracle* information (real systems do not know job completion
/// times). It is provided because the paper's SRN baseline deliberately
/// uses future knowledge "in order to demonstrate that PERQ provides
/// comparable throughput improvement to a policy which may have prior
/// knowledge"; PERQ itself must not read it.
#[derive(Debug, Clone)]
pub struct JobView {
    /// Job id (stable across intervals).
    pub id: u64,
    /// Number of nodes the job occupies.
    pub size: usize,
    /// Seconds since the job started.
    pub elapsed_s: f64,
    /// Job-aggregate IPS measured over the last interval (the slowest
    /// rank's per-node IPS times the node count). `None` when the report
    /// was lost (failure injection) or the job just started.
    pub measured_ips: Option<f64>,
    /// Per-node power cap currently applied, watts.
    pub current_cap_w: f64,
    /// Average per-node power *consumed* over the last interval, watts
    /// (RAPL meter reading). `None` before the first interval completes.
    /// This is what lets a feedback policy discover that a job draws less
    /// than its cap and reclaim the headroom.
    pub measured_power_w: Option<f64>,
    /// Oracle: remaining work in node-hours at TDP speed. Only the SRN
    /// baseline may use this.
    pub remaining_node_hours: f64,
    /// True on the first decision instance after the job started.
    pub is_new: bool,
}

/// Cluster-level information available at a decision instance.
#[derive(Debug, Clone)]
pub struct PolicyContext<'a> {
    /// Simulation time, seconds.
    pub time_s: f64,
    /// Control interval length, seconds.
    pub interval_s: f64,
    /// Power available to *busy* nodes this interval: the system budget
    /// minus the idle draw of idle nodes, watts.
    pub busy_budget_w: f64,
    /// Lowest admissible per-node cap, watts.
    pub cap_min_w: f64,
    /// Highest admissible per-node cap (TDP), watts.
    pub cap_max_w: f64,
    /// Number of nodes in the over-provisioned system (`N_OP`).
    pub total_nodes: usize,
    /// Number of nodes in the worst-case-provisioned system (`N_WP`).
    pub wp_nodes: usize,
    /// Jobs waiting in the scheduler queue (released but not started).
    /// Zero in contexts without a batch queue (the live control plane).
    pub queue_depth: usize,
    /// Cumulative simulated time the system has spent above its power
    /// budget so far this run, seconds. Grows monotonically; a policy
    /// (or a learning agent shaping rewards) can difference successive
    /// values to detect fresh violations.
    pub violation_s: f64,
    /// Currently running jobs.
    pub jobs: &'a [JobView],
}

impl PolicyContext<'_> {
    /// Sum of nodes occupied by running jobs.
    pub fn busy_nodes(&self) -> usize {
        self.jobs.iter().map(|j| j.size).sum()
    }

    /// The fair per-node power level `P_fair = TDP · N_WP / N_OP`
    /// (§2.4.1), clamped into the admissible cap window.
    pub fn fair_cap_w(&self) -> f64 {
        let p = self.cap_max_w * self.wp_nodes as f64 / self.total_nodes.max(1) as f64;
        p.clamp(self.cap_min_w, self.cap_max_w)
    }
}

/// A policy's decision for one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerAssignment {
    /// Per-node power cap for every node of the job, watts.
    pub cap_w: f64,
    /// Job-level IPS target, published for tracing/analysis when the
    /// policy computes one (PERQ does).
    pub target_ips: Option<f64>,
}

impl PowerAssignment {
    /// Assignment with no published target.
    pub fn cap(cap_w: f64) -> Self {
        PowerAssignment {
            cap_w,
            target_ips: None,
        }
    }
}

/// A power-allocation policy invoked once per control interval.
///
/// Implementations must return exactly one assignment per entry of
/// `ctx.jobs`, in the same order. The system budget bounds *consumed*
/// power; caps are the enforcement mechanism. A conservative policy keeps
/// `Σ size·cap ≤ ctx.busy_budget_w` (then consumption can never exceed
/// the budget); a feedback policy may over-commit caps on jobs it has
/// observed drawing less, and is responsible for keeping predicted
/// consumption within budget — the simulator records any interval whose
/// consumption exceeds it.
pub trait PowerPolicy {
    /// Short policy name for reports ("FOP", "PERQ", ...).
    fn name(&self) -> &str;

    /// Computes per-job power caps for the next interval.
    fn assign(&mut self, ctx: &PolicyContext<'_>) -> Vec<PowerAssignment>;

    /// Notifies the policy that a job left the system (completed or
    /// crashed) so it can drop per-job state. Default: no-op.
    fn job_departed(&mut self, _job_id: u64) {}

    /// Attaches a telemetry recorder so the policy can report its own
    /// metrics (solver iterations, gate rejections, ...). Default: the
    /// policy records nothing.
    fn set_recorder(&mut self, _recorder: perq_telemetry::Recorder) {}

    /// Arms (or clears) a wall-clock deadline for subsequent
    /// [`PowerPolicy::assign`] calls. Control loops that batch readings
    /// and decide on a fixed tick (`perq-serve`) set `tick_start +
    /// budget` each tick; an iterative policy then degrades gracefully
    /// to its best solution so far instead of overrunning the tick.
    /// Default: ignored — closed-form policies always finish instantly.
    fn set_decide_deadline(&mut self, _deadline: Option<std::time::Instant>) {}

    /// Stable label of the numeric profile this policy decides with, used
    /// to split decide-latency telemetry by precision/layout
    /// (`f64_aos`, `f64_soa`, `f32_soa`, `mixed_soa`). Closed-form
    /// policies compute in plain `f64`, so the default is the reference
    /// label.
    fn solver_profile_label(&self) -> &'static str {
        "f64_aos"
    }
}

/// The fairness-oriented policy (FOP): every busy node gets an equal share
/// of the busy budget. By construction it is the fairness reference the
/// degradation metrics compare against.
#[derive(Debug, Clone, Default)]
pub struct FairPolicy {
    _private: (),
}

impl FairPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        FairPolicy::default()
    }
}

impl PowerPolicy for FairPolicy {
    fn name(&self) -> &str {
        "FOP"
    }

    fn assign(&mut self, ctx: &PolicyContext<'_>) -> Vec<PowerAssignment> {
        let busy = ctx.busy_nodes();
        if busy == 0 {
            return Vec::new();
        }
        let share = (ctx.busy_budget_w / busy as f64).clamp(ctx.cap_min_w, ctx.cap_max_w);
        ctx.jobs
            .iter()
            .map(|_| PowerAssignment::cap(share))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with(jobs: &[JobView]) -> PolicyContext<'_> {
        PolicyContext {
            time_s: 0.0,
            interval_s: 10.0,
            busy_budget_w: 290.0 * 8.0,
            cap_min_w: 90.0,
            cap_max_w: 290.0,
            total_nodes: 16,
            wp_nodes: 8,
            queue_depth: 0,
            violation_s: 0.0,
            jobs,
        }
    }

    fn job(id: u64, size: usize) -> JobView {
        JobView {
            id,
            size,
            elapsed_s: 0.0,
            measured_ips: None,
            current_cap_w: 290.0,
            measured_power_w: None,
            remaining_node_hours: 1.0,
            is_new: true,
        }
    }

    #[test]
    fn fair_policy_splits_budget_evenly() {
        let jobs = vec![job(0, 8), job(1, 8)];
        let ctx = ctx_with(&jobs);
        let out = FairPolicy::new().assign(&ctx);
        assert_eq!(out.len(), 2);
        // 2320 W over 16 nodes = 145 W/node.
        for a in &out {
            assert!((a.cap_w - 145.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fair_policy_clamps_to_window() {
        // Few busy nodes: share would exceed TDP.
        let jobs = vec![job(0, 2)];
        let ctx = ctx_with(&jobs);
        let out = FairPolicy::new().assign(&ctx);
        assert_eq!(out[0].cap_w, 290.0);
    }

    #[test]
    fn fair_cap_definition() {
        let jobs: Vec<JobView> = Vec::new();
        let ctx = ctx_with(&jobs);
        // TDP · 8/16 = 145.
        assert!((ctx.fair_cap_w() - 145.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_no_assignments() {
        let jobs: Vec<JobView> = Vec::new();
        let ctx = ctx_with(&jobs);
        assert!(FairPolicy::new().assign(&ctx).is_empty());
    }
}
