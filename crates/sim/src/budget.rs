//! Time-varying power budgets.
//!
//! The paper evaluates a *fixed* site budget (`N_WP · TDP`), but real
//! over-provisioned sites increasingly buy power on markets where the
//! admissible draw follows a price or carbon-intensity curve (ROADMAP
//! open item: carbon/price-aware budget schedules). A
//! [`BudgetSchedule`] is a piecewise-constant map from simulated time
//! to the system budget in watts: the budget in force over
//! `[t_k, t_{k+1})` is the value attached to `t_k`. Schedules are pure
//! data (serde round-trip, `PartialEq`), so campaign scenarios carry
//! them like any other field and two runs with equal schedules are
//! byte-identical.
//!
//! The schedule replaces `ClusterConfig::budget_w()` wherever the
//! simulator consults the budget — the busy-budget handed to policies,
//! the violation check, and the `perq_sim_budget_w` gauge — while a
//! hierarchical coordinator's per-epoch override still takes priority
//! (an enclave's grant already reflects whatever schedule the
//! coordinator sees). Every level of the schedule must at least idle
//! the whole machine, the same invariant `ClusterConfig::validate`
//! enforces on the flat budget, so synthesized idle intervals can never
//! violate and the event engine's bulk idle skip stays byte-identical
//! to the stepper.

use serde::{Deserialize, Serialize};

/// A piecewise-constant budget curve: `(t_s, budget_w)` breakpoints
/// sorted by time, with the first breakpoint at `t = 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetSchedule {
    points: Vec<(f64, f64)>,
}

impl BudgetSchedule {
    /// A schedule from explicit breakpoints. Breakpoints must start at
    /// `t = 0`, be strictly increasing in time, and carry finite
    /// positive budgets.
    pub fn piecewise(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "schedule needs at least one level");
        assert!(
            points[0].0 == 0.0,
            "first breakpoint must be at t=0, got {}",
            points[0].0
        );
        for w in points.windows(2) {
            assert!(
                w[1].0 > w[0].0,
                "breakpoints must be strictly increasing: {} then {}",
                w[0].0,
                w[1].0
            );
        }
        for &(t, b) in &points {
            assert!(
                b.is_finite() && b > 0.0,
                "budget at t={t} must be finite and positive, got {b}"
            );
        }
        BudgetSchedule { points }
    }

    /// A flat schedule (degenerates to the fixed budget — useful as the
    /// identity arm of schedule ablations).
    pub fn flat(budget_w: f64) -> Self {
        Self::piecewise(vec![(0.0, budget_w)])
    }

    /// A diurnal price/carbon curve: the budget steps between
    /// `base_w · low_frac` (expensive/dirty hours) and
    /// `base_w · high_frac` (cheap/clean hours), alternating every
    /// `period_s`, starting high. This is the shape the carbon-varying
    /// evaluation regime and `examples/power_trading.rs` use: power is
    /// abundant when the grid is green and scarce when it is not.
    pub fn diurnal(
        base_w: f64,
        low_frac: f64,
        high_frac: f64,
        period_s: f64,
        duration_s: f64,
    ) -> Self {
        assert!(period_s > 0.0, "period must be positive");
        assert!(
            0.0 < low_frac && low_frac <= high_frac,
            "need 0 < low_frac <= high_frac"
        );
        let mut points = Vec::new();
        let mut t = 0.0;
        let mut high = true;
        while t < duration_s {
            let frac = if high { high_frac } else { low_frac };
            points.push((t, base_w * frac));
            t += period_s;
            high = !high;
        }
        Self::piecewise(points)
    }

    /// The budget in force at simulated time `t_s`, watts. Times before
    /// the first breakpoint (there are none for well-formed schedules)
    /// use the first level; times past the last breakpoint hold its
    /// level forever.
    pub fn budget_at(&self, t_s: f64) -> f64 {
        let mut budget = self.points[0].1;
        for &(t, b) in &self.points {
            if t <= t_s {
                budget = b;
            } else {
                break;
            }
        }
        budget
    }

    /// The lowest level anywhere on the schedule — what the simulator
    /// validates against the machine's idle floor.
    pub fn min_budget_w(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, b)| b)
            .fold(f64::INFINITY, f64::min)
    }

    /// The breakpoints, sorted by time.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piecewise_lookup_is_right_continuous() {
        let s = BudgetSchedule::piecewise(vec![(0.0, 100.0), (60.0, 50.0), (120.0, 80.0)]);
        assert_eq!(s.budget_at(0.0), 100.0);
        assert_eq!(s.budget_at(59.9), 100.0);
        assert_eq!(s.budget_at(60.0), 50.0);
        assert_eq!(s.budget_at(119.0), 50.0);
        assert_eq!(s.budget_at(120.0), 80.0);
        assert_eq!(s.budget_at(1e9), 80.0);
        assert_eq!(s.min_budget_w(), 50.0);
    }

    #[test]
    fn flat_schedule_is_constant() {
        let s = BudgetSchedule::flat(2320.0);
        assert_eq!(s.budget_at(0.0), 2320.0);
        assert_eq!(s.budget_at(12345.6), 2320.0);
        assert_eq!(s.min_budget_w(), 2320.0);
    }

    #[test]
    fn diurnal_alternates_levels() {
        let s = BudgetSchedule::diurnal(1000.0, 0.8, 1.1, 600.0, 1800.0);
        assert_eq!(s.points().len(), 3);
        assert!((s.budget_at(0.0) - 1100.0).abs() < 1e-9);
        assert!((s.budget_at(600.0) - 800.0).abs() < 1e-9);
        assert!((s.budget_at(1200.0) - 1100.0).abs() < 1e-9);
        assert!((s.min_budget_w() - 800.0).abs() < 1e-9);
    }

    #[test]
    fn schedule_round_trips_through_serde() {
        let s = BudgetSchedule::diurnal(2320.0, 0.8, 1.05, 300.0, 900.0);
        let json = serde_json::to_string(&s).unwrap();
        let back: BudgetSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_breakpoints_rejected() {
        BudgetSchedule::piecewise(vec![(0.0, 10.0), (5.0, 20.0), (5.0, 30.0)]);
    }

    #[test]
    #[should_panic(expected = "first breakpoint")]
    fn missing_origin_rejected() {
        BudgetSchedule::piecewise(vec![(10.0, 10.0)]);
    }
}
